//! C10K-style demonstration of the event-driven server core: one
//! poller thread holds N concurrent `/events` subscribers (default
//! 1024, override with `UNICO_C10K_SUBS`) while a stream of short
//! jobs runs through the scheduler, and job throughput must be
//! independent of the subscriber count.
//!
//! Shape:
//!
//! * **Phase A (baseline)** — a fresh daemon runs a long "anchor" job
//!   on one worker while M short jobs complete on the other; wall time
//!   is the zero-subscriber baseline.
//! * **Phase B (loaded)** — an identical daemon, but with N idle
//!   subscribers tailing the anchor job's event stream before the same
//!   M short jobs run. The subscribers are mostly idle: the anchor
//!   emits an event per iteration, which the client side sweeps off
//!   its sockets in non-blocking batches.
//!
//! Asserted invariants: all N subscribers stay connected on the single
//! poller thread, loaded wall time is within 10% (+ scheduling slack)
//! of the baseline, p99 `/healthz` latency stays bounded with all
//! subscribers attached, and resident memory grows by a bounded amount
//! per connection.
//!
//! ```sh
//! UNICO_C10K_SUBS=1024 cargo run --release --example service_c10k
//! ```

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use unico::prelude::*;
use unico::serve::{json, metrics};

const MEASURED_JOBS: usize = 3;
const SEEDS: [u64; MEASURED_JOBS] = [100, 101, 102];

fn short_spec(seed: u64) -> String {
    format!(
        r#"{{"platform": "spatial-edge", "workloads": ["mobilenet"],
             "max_iter": 3, "batch": 6, "b_max": 32, "candidate_pool": 32,
             "power_cap_mw": 2000, "seed": {seed}}}"#
    )
}

/// The anchor job: effectively infinite, cancelled when the run ends.
fn anchor_spec() -> String {
    r#"{"platform": "spatial-edge", "workloads": ["mobilenet"],
        "max_iter": 1000000, "batch": 6, "b_max": 32, "candidate_pool": 32,
        "power_cap_mw": 2000, "seed": 9}"#
        .to_string()
}

fn boot(tag: &str) -> (Server, Arc<Scheduler>, SocketAddr) {
    let state_dir = std::env::temp_dir().join("unico-c10k").join(tag);
    std::fs::remove_dir_all(&state_dir).ok();
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        state_dir,
        ..ServeConfig::default()
    };
    let sched = Scheduler::start(&cfg, Arc::new(EvalCache::new())).expect("boot scheduler");
    let server = Server::serve(&cfg, Arc::clone(&sched)).expect("boot server");
    let addr = server.addr();
    (server, sched, addr)
}

fn request(addr: SocketAddr, raw: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect to daemon");
    conn.set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    conn.write_all(raw.as_bytes()).expect("send request");
    let mut text = String::new();
    conn.read_to_string(&mut text).expect("read response");
    text
}

fn body(resp: &str) -> &str {
    resp.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("")
}

fn submit(addr: SocketAddr, spec: &str) -> String {
    let resp = request(
        addr,
        &format!(
            "POST /v1/jobs HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{spec}",
            spec.len()
        ),
    );
    assert!(resp.starts_with("HTTP/1.1 201"), "submit failed: {resp}");
    json::parse(body(&resp))
        .expect("submit response")
        .get("id")
        .expect("id")
        .as_str("id")
        .expect("id string")
        .to_string()
}

/// Sweeps every subscriber socket with non-blocking reads, discarding
/// whatever the anchor job has streamed since the last sweep. Returns
/// the number of sockets the server has closed (must stay zero while
/// the measurement runs).
fn drain_all(subs: &mut [TcpStream], scratch: &mut [u8]) -> usize {
    let mut closed = 0;
    for sock in subs.iter_mut() {
        loop {
            match sock.read(scratch) {
                Ok(0) => {
                    closed += 1;
                    break;
                }
                Ok(_) => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => panic!("subscriber read: {e}"),
            }
        }
    }
    closed
}

/// Runs the M short jobs to completion, sweeping subscriber sockets
/// between status polls, and returns the wall time.
fn run_measured_jobs(addr: SocketAddr, subs: &mut [TcpStream], scratch: &mut [u8]) -> Duration {
    let t0 = Instant::now();
    let ids: Vec<String> = SEEDS
        .iter()
        .map(|s| submit(addr, &short_spec(*s)))
        .collect();
    for id in &ids {
        loop {
            let resp = request(
                addr,
                &format!("GET /v1/jobs/{id} HTTP/1.1\r\nconnection: close\r\n\r\n"),
            );
            let state = json::parse(body(&resp))
                .expect("status")
                .get("state")
                .expect("state")
                .as_str("state")
                .expect("state string")
                .to_string();
            match state.as_str() {
                "completed" => break,
                "failed" | "cancelled" => panic!("job {id} ended {state}"),
                _ => {
                    assert_eq!(drain_all(subs, scratch), 0, "subscriber dropped mid-run");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }
    t0.elapsed()
}

/// Resident set size in bytes, from /proc (None off Linux).
fn vm_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn main() {
    let n: usize = std::env::var("UNICO_C10K_SUBS")
        .ok()
        .map(|v| v.parse().expect("UNICO_C10K_SUBS must be an integer"))
        .unwrap_or(1024);
    let mut scratch = vec![0u8; 64 * 1024];

    // Phase A: baseline throughput with zero subscribers. The anchor
    // job occupies one worker in both phases, so the only variable in
    // phase B is the subscriber population.
    let (server, sched, addr) = boot("baseline");
    let _anchor = submit(addr, &anchor_spec());
    let t_base = run_measured_jobs(addr, &mut [], &mut scratch);
    println!(
        "phase A: {MEASURED_JOBS} jobs, 0 subscribers: {:.0} ms",
        t_base.as_secs_f64() * 1000.0
    );
    server.shutdown();
    sched.shutdown();

    // Phase B: same daemon shape, N idle subscribers on the anchor.
    let (server, sched, addr) = boot("loaded");
    let anchor = submit(addr, &anchor_spec());
    let stats = server.stats();
    let rss_before = vm_rss_bytes();

    let mut subs: Vec<TcpStream> = Vec::with_capacity(n);
    for i in 0..n {
        let mut sock = TcpStream::connect(addr).expect("connect subscriber");
        sock.write_all(format!("GET /v1/jobs/{anchor}/events HTTP/1.1\r\n\r\n").as_bytes())
            .expect("subscribe");
        sock.set_nonblocking(true).expect("nonblocking subscriber");
        subs.push(sock);
        // Pace the burst so the accept backlog never builds up, and
        // sweep replayed events off the early sockets.
        if (i + 1) % 64 == 0 {
            let want = (i + 1) as u64;
            let t0 = Instant::now();
            while stats.event_subscribers.load(Ordering::Relaxed) < want {
                assert!(
                    t0.elapsed() < Duration::from_secs(30),
                    "poller fell behind the connect burst at {want}"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
            assert_eq!(drain_all(&mut subs, &mut scratch), 0);
        }
    }
    let t0 = Instant::now();
    while stats.event_subscribers.load(Ordering::Relaxed) < n as u64 {
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "subscribers missing"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    println!(
        "phase B: {} concurrent idle subscribers on one poller thread",
        stats.event_subscribers.load(Ordering::Relaxed)
    );

    if let (Some(before), Some(after)) = (rss_before, vm_rss_bytes()) {
        let per_conn = after.saturating_sub(before) / n.max(1) as u64;
        println!(
            "memory: {} KiB resident per connection (client+server)",
            per_conn / 1024
        );
        if n >= 256 {
            assert!(
                per_conn <= 64 * 1024,
                "per-connection memory must stay bounded, got {per_conn} B"
            );
        }
    }

    let t_sub = run_measured_jobs(addr, &mut subs, &mut scratch);
    println!(
        "phase B: {MEASURED_JOBS} jobs, {n} subscribers: {:.0} ms",
        t_sub.as_secs_f64() * 1000.0
    );
    let ceiling = t_base.mul_f64(1.10) + Duration::from_millis(300);
    assert!(
        t_sub <= ceiling,
        "throughput must be independent of subscriber count: \
         {t_sub:?} with {n} subscribers vs {t_base:?} baseline"
    );

    // Interactive latency with every subscriber still attached.
    let mut lat: Vec<Duration> = (0..200)
        .map(|i| {
            if i % 20 == 0 {
                assert_eq!(drain_all(&mut subs, &mut scratch), 0);
            }
            let t = Instant::now();
            let resp = request(addr, "GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n");
            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
            t.elapsed()
        })
        .collect();
    lat.sort();
    let p99 = lat[lat.len() * 99 / 100];
    println!(
        "healthz p99 with {n} subscribers: {:.1} ms",
        p99.as_secs_f64() * 1000.0
    );
    assert!(
        p99 < Duration::from_millis(250),
        "p99 out of bounds: {p99:?}"
    );

    // Wind down: cancel the anchor; its stream must end with a clean
    // terminal event on a sample of subscribers.
    sched.cancel(&anchor).expect("anchor exists");
    for sock in subs.iter_mut().take(8) {
        sock.set_nonblocking(false).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let mut text = String::new();
        sock.read_to_string(&mut text)
            .expect("anchor stream drains");
        // The head and earlier events were swept off during the run;
        // the tail must still carry the terminal done event.
        let terminal = text
            .lines()
            .rev()
            .find(|l| l.contains("\"event\":\"done\""))
            .expect("stream ends with a done event");
        assert!(terminal.contains("\"state\":\"cancelled\""), "{terminal}");
    }

    let metrics_resp = request(addr, "GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n");
    let exposition = body(&metrics_resp);
    metrics::validate_exposition(exposition).expect("metrics exposition parses");
    for line in exposition.lines().filter(|l| {
        l.starts_with("unico_serve_open_connections")
            || l.starts_with("unico_serve_event_subscribers")
            || l.starts_with("unico_serve_connections_accepted_total")
            || l.starts_with("unico_serve_slow_subscribers_dropped_total")
    }) {
        println!("  {line}");
    }

    drop(subs);
    server.shutdown();
    sched.shutdown();
    println!("service_c10k: OK");
}
