//! Robust hardware search: co-optimize on a training set of DNNs, then
//! check how the robustness metric `R` correlates with performance on
//! *unseen* networks — a miniature of the paper's Fig. 8 study.
//!
//! ```sh
//! cargo run --release --example robust_hw_search
//! ```

use unico::prelude::*;
use unico_core::experiments::validate_on_network;
use unico_search::EnvConfig;

fn main() {
    let platform = SpatialPlatform::edge();
    let train = vec![zoo::unet(), zoo::srgan()];
    let unseen = [zoo::resnet50(), zoo::vit_base()];
    println!(
        "training on {:?}, validating on {:?}",
        train.iter().map(Network::name).collect::<Vec<_>>(),
        unseen.iter().map(Network::name).collect::<Vec<_>>()
    );

    let env = CoSearchEnv::new(
        &platform,
        &train,
        EnvConfig {
            max_layers_per_network: 2,
            power_cap_mw: Some(2_000.0),
            area_cap_mm2: None,
        },
    );

    // Robustness-aware UNICO: R is both an objective and a surrogate
    // selection signal.
    let result = Unico::new(UnicoConfig {
        max_iter: 8,
        batch: 12,
        b_max: 64,
        seed: 3,
        ..UnicoConfig::default()
    })
    .run(&env);

    // Fig. 8 discipline: only designs with SIMILAR training PPA are
    // comparable — otherwise the robustness signal is drowned by raw
    // capability differences. Pick the pair with the largest R gap among
    // similar-PPA front designs.
    let designs: Vec<_> = result
        .front
        .iter()
        .map(|(_, &idx)| &result.evaluations[idx])
        .filter(|r| r.robustness.is_some() && r.assessment.is_some())
        .collect();
    let similar = |a: &unico_core::HwRecord<HwConfig>, b: &unico_core::HwRecord<HwConfig>| {
        let (x, y) = (
            a.assessment.expect("filtered"),
            b.assessment.expect("filtered"),
        );
        let rel = |u: f64, v: f64| (u - v).abs() / u.max(v).max(1e-12);
        (rel(x.latency_s, y.latency_s) + rel(x.power_mw, y.power_mw) + rel(x.area_mm2, y.area_mm2))
            / 3.0
            < 0.35
    };
    let mut best_pair: Option<(usize, usize, f64)> = None;
    for i in 0..designs.len() {
        for j in i + 1..designs.len() {
            if similar(designs[i], designs[j]) {
                let gap = (designs[i].robustness.expect("filtered")
                    - designs[j].robustness.expect("filtered"))
                .abs();
                if best_pair.is_none_or(|(_, _, g)| gap > g) {
                    best_pair = Some((i, j, gap));
                }
            }
        }
    }
    let Some((i, j, _)) = best_pair else {
        println!("no similar-PPA pair on the front at this scale; rerun with a larger budget");
        return;
    };
    let (most_robust, least_robust) = if designs[i].robustness <= designs[j].robustness {
        (designs[i], designs[j])
    } else {
        (designs[j], designs[i])
    };
    println!(
        "\nmost robust  (R = {:.4}): {:?}",
        most_robust.robustness.expect("filtered"),
        most_robust.hw
    );
    println!(
        "least robust (R = {:.4}): {:?}",
        least_robust.robustness.expect("filtered"),
        least_robust.hw
    );

    for (label, rec) in [("most robust", most_robust), ("least robust", least_robust)] {
        let mut mean = 0.0;
        let mut count = 0;
        for (k, net) in unseen.iter().enumerate() {
            if let Some(a) = validate_on_network(&platform, rec.hw, net, 2, 64, 100 + k as u64) {
                println!(
                    "  {label} on {:>10}: latency {:.3} ms, power {:.1} mW",
                    net.name(),
                    a.latency_s * 1e3,
                    a.power_mw
                );
                mean += a.latency_s;
                count += 1;
            }
        }
        if count > 0 {
            println!(
                "  {label} mean unseen latency: {:.3} ms",
                mean / count as f64 * 1e3
            );
        }
    }
}
