//! Edge co-design bake-off: UNICO vs the HASCO-like and NSGA-II
//! baselines on a vision workload, reporting Pareto quality and
//! simulated search cost side by side — a miniature of the paper's
//! Table 1.
//!
//! ```sh
//! cargo run --release --example edge_codesign
//! ```

use unico::prelude::*;
use unico_search::{run_hasco, run_nsga2, EnvConfig, HascoConfig, Nsga2Config};
use unico_surrogate::hypervolume::hypervolume;
use unico_surrogate::scalarize::normalize_columns;

fn main() {
    let platform = SpatialPlatform::edge();
    let workload = zoo::resnet50();
    println!("workload: {} on spatial-edge", workload.name());

    let env = CoSearchEnv::new(
        &platform,
        &[workload],
        EnvConfig {
            max_layers_per_network: 2,
            power_cap_mw: Some(2_000.0),
            area_cap_mm2: None,
        },
    );

    let b_max = 96;
    let unico = Unico::new(UnicoConfig {
        max_iter: 8,
        batch: 12,
        b_max,
        seed: 1,
        ..UnicoConfig::default()
    })
    .run(&env);
    let hasco = run_hasco(
        &env,
        &HascoConfig {
            iterations: 32,
            inner_budget: b_max,
            seed: 1,
            ..HascoConfig::default()
        },
    );
    let nsga = run_nsga2(
        &env,
        &Nsga2Config {
            population: 12,
            generations: 6,
            inner_budget: b_max,
            seed: 1,
            ..Nsga2Config::default()
        },
    );

    // Compare by hypervolume in a common normalized space.
    let mut all: Vec<Vec<f64>> = Vec::new();
    let fronts = [
        ("UNICO", unico.front.objectives(), unico.wall_clock_s),
        ("HASCO", hasco.front.objectives(), hasco.wall_clock_s),
        ("NSGAII", nsga.front.objectives(), nsga.wall_clock_s),
    ];
    for (_, f, _) in &fronts {
        all.extend(f.iter().cloned());
    }
    let normalized_all = normalize_columns(&all);
    let mut offset = 0;
    println!(
        "\n{:<8} {:>8} {:>12} {:>10}",
        "method", "designs", "hypervolume", "cost (h)"
    );
    for (name, f, secs) in &fronts {
        let pts: Vec<Vec<f64>> = normalized_all[offset..offset + f.len()].to_vec();
        offset += f.len();
        let hv = hypervolume(&pts, &[1.1, 1.1, 1.1]);
        println!(
            "{:<8} {:>8} {:>12.4} {:>10.2}",
            name,
            f.len(),
            hv,
            secs / 3600.0
        );
    }

    println!("\nUNICO knee design:");
    if let Some(rec) = unico.min_euclidean_record() {
        let a = rec.assessment.expect("knee is feasible");
        println!(
            "  {:?}\n  latency {:.3} ms, power {:.1} mW, area {:.2} mm²",
            rec.hw,
            a.latency_s * 1e3,
            a.power_mw,
            a.area_mm2
        );
    }
}
