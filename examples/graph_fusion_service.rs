//! End-to-end frontend + fusion demo: imports the committed tiny-cnn
//! fixture through the graph frontend, submits it to a real in-process
//! `unico-served` daemon as an inline `"graph"` job, and checks that
//! the co-optimization run accepted at least one multi-layer fused
//! group — visible both in `/metrics` and in a local fused-cost report
//! whose modeled DRAM traffic is strictly below the unfused plan.
//!
//! ```sh
//! cargo run --release --example graph_fusion_service
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use unico::prelude::*;
use unico::serve::{json, metrics};

const FIXTURE: &str = include_str!("../tests/fixtures/tiny_cnn.graph.json");

fn request(addr: SocketAddr, raw: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect to daemon");
    conn.set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    conn.write_all(raw.as_bytes()).expect("send request");
    let mut text = String::new();
    conn.read_to_string(&mut text).expect("read response");
    text
}

fn body(resp: &str) -> &str {
    resp.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("")
}

fn submit(addr: SocketAddr, spec: &str) -> String {
    let resp = request(
        addr,
        &format!(
            "POST /v1/jobs HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{spec}",
            spec.len()
        ),
    );
    assert!(resp.starts_with("HTTP/1.1 201"), "submit failed: {resp}");
    json::parse(body(&resp))
        .expect("submit response")
        .get("id")
        .expect("id")
        .as_str("id")
        .expect("id string")
        .to_string()
}

fn await_completion(addr: SocketAddr, id: &str) {
    loop {
        let resp = request(
            addr,
            &format!("GET /v1/jobs/{id} HTTP/1.1\r\nconnection: close\r\n\r\n"),
        );
        let state = json::parse(body(&resp))
            .expect("status")
            .get("state")
            .expect("state")
            .as_str("state")
            .expect("state string")
            .to_string();
        match state.as_str() {
            "completed" => return,
            "failed" | "cancelled" => panic!("job {id} ended {state}"),
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Scrapes a counter value out of the Prometheus exposition.
fn counter(exposition: &str, name: &str) -> u64 {
    let needle = format!("unico_serve_search_counter_total{{counter=\"{name}\"}}");
    exposition
        .lines()
        .find_map(|l| l.strip_prefix(&needle))
        .map(|rest| rest.trim().parse().expect("counter value"))
        .unwrap_or(0)
}

fn main() {
    // Part 1: the service path. Boot a daemon over a scratch state dir
    // and submit the fixture network inline — the daemon's frontend
    // lowers it, the search co-optimizes against it, and the fusion
    // counters surface in /metrics.
    let state_dir = std::env::temp_dir().join("unico-graph-fusion");
    std::fs::remove_dir_all(&state_dir).ok();
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        state_dir,
        ..ServeConfig::default()
    };
    let cache = Arc::new(EvalCache::new());
    let sched = Scheduler::start(&cfg, Arc::clone(&cache)).expect("boot scheduler");
    let server = Server::serve(&cfg, Arc::clone(&sched)).expect("boot server");
    let addr = server.addr();

    let spec = format!(
        r#"{{"platform": "spatial-edge", "graph": {},
             "max_iter": 2, "batch": 4, "b_max": 24, "candidate_pool": 16,
             "max_layers_per_network": 4, "seed": 7}}"#,
        json::escape(FIXTURE)
    );
    let id = submit(addr, &spec);
    println!("submitted fixture network as job {id}");
    await_completion(addr, &id);

    let metrics_resp = request(addr, "GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n");
    let exposition = body(&metrics_resp);
    metrics::validate_exposition(exposition).expect("metrics exposition parses");
    let lowered = counter(exposition, "frontend_ops_lowered");
    let tried = counter(exposition, "fusion_groups_tried");
    let accepted = counter(exposition, "fusion_groups_accepted");
    println!("frontend ops lowered: {lowered}");
    println!("fusion groups tried: {tried}, accepted: {accepted}");
    assert!(lowered >= 9, "fixture lowers nine ONNX ops, saw {lowered}");
    assert!(tried >= 1, "search never priced a fused group");
    assert!(accepted >= 1, "no multi-layer fused group was accepted");
    server.shutdown();
    sched.shutdown();

    // Part 2: the accounting claim behind those counters. Build the
    // same environment locally and find an accepted group's fused-cost
    // report: its modeled DRAM bytes must be strictly below running
    // the members standalone, at equal legality.
    let graph = frontend::import_json(FIXTURE).expect("fixture imports");
    let env_cfg = EnvConfig {
        max_layers_per_network: 4,
        power_cap_mw: None,
        area_cap_mm2: None,
    };
    let platform = SpatialPlatform::edge();
    let env = CoSearchEnv::with_graphs(&platform, std::slice::from_ref(&graph), env_cfg);
    let mut rng = rand::SeedableRng::seed_from_u64(17);
    for attempt in 0..60 {
        let hw = env.platform().sample_hw(&mut rng);
        let mut session = env.session(hw, attempt);
        session.advance_to(80);
        if session.assess().is_none() {
            continue;
        }
        let Some(report) = session.fusion_report_at(80) else {
            continue;
        };
        if report.stats.groups_accepted == 0 {
            continue;
        }
        assert!(
            report.dram_bytes_fused < report.dram_bytes_unfused,
            "accepted groups must strictly reduce DRAM traffic"
        );
        println!(
            "accepted fused plan on sample {attempt}: {} -> {} modeled DRAM bytes \
             ({} group(s), {} layer overrides)",
            report.dram_bytes_unfused,
            report.dram_bytes_fused,
            report.plans.len(),
            report.overrides.len()
        );
        println!("graph fusion service demo passed");
        return;
    }
    panic!("no hardware sample accepted a fused group in 60 attempts");
}
