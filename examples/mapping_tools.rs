//! Mapping-tool comparison: random vs FlexTensor-style annealing vs
//! GAMMA-style genetic vs Q-learning vs DOSA-style gradient search on
//! one convolution layer of a fixed accelerator — the inner loop of
//! co-optimization in isolation.
//!
//! Also prints the best-so-far curves' AUC, the convergence-rate signal
//! UNICO's modified successive halving promotes on.
//!
//! ```sh
//! cargo run --release --example mapping_tools
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use unico::prelude::*;
use unico_mapping::{
    AnnealingSearch, GeneticConfig, GeneticSearch, GradientSearcher, QLearningSearch, RandomSearch,
};
use unico_model::BoundSpatialCost;

fn main() {
    // A mid-size ResNet conv layer on a fixed edge configuration.
    let nest = TensorOp::Conv2d {
        n: 1,
        k: 128,
        c: 128,
        y: 28,
        x: 28,
        r: 3,
        s: 3,
        stride: 1,
    }
    .to_loop_nest();
    let platform = SpatialPlatform::edge();
    let hw = HwConfig::new(12, 12, 4096, 1024 * 1024, 128, Dataflow::WeightStationary);
    let cost = BoundSpatialCost::new(platform.model(), hw, nest, 1.0);
    let budget = 400u64;

    println!("layer: {nest}");
    println!("hardware: {hw}");
    println!("budget: {budget} evaluations per tool\n");
    println!(
        "{:<12} {:>14} {:>10} {:>10} {:>8}",
        "tool", "best latency", "feasible", "AUC", "@half"
    );

    let tools: Vec<(&str, Box<dyn unico_mapping::MappingSearcher>)> = vec![
        (
            "random",
            Box::new(RandomSearch::new(
                MappingSpace::new(&nest),
                StdRng::seed_from_u64(1),
            )),
        ),
        (
            "annealing",
            Box::new(AnnealingSearch::new(
                MappingSpace::new(&nest),
                StdRng::seed_from_u64(1),
            )),
        ),
        (
            "genetic",
            Box::new(GeneticSearch::new(
                MappingSpace::new(&nest),
                StdRng::seed_from_u64(1),
                GeneticConfig::default(),
            )),
        ),
        (
            "q-learning",
            Box::new(QLearningSearch::new(
                MappingSpace::new(&nest),
                StdRng::seed_from_u64(1),
            )),
        ),
        (
            "gradient",
            Box::new(GradientSearcher::new(
                MappingSpace::new(&nest),
                StdRng::seed_from_u64(1),
            )),
        ),
    ];

    for (name, mut tool) in tools {
        tool.run_until(&cost, budget);
        let h = tool.history();
        let best = h.terminal_value();
        let at_half = h
            .best_at(budget / 2)
            .map(|r| format!("{:.3}ms", r.loss * 1e3))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<12} {:>11.3} ms {:>9}/{budget} {:>10.4} {:>8}",
            name,
            best * 1e3,
            h.evaluations(),
            h.auc(budget),
            at_half
        );
    }

    println!(
        "\nhigher AUC = steeper convergence; UNICO's MSH reserves p = 0.15N\n\
         promotion slots for exactly this signal (paper Fig. 4)."
    );
}
