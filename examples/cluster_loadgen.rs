//! Cluster-mode load generator and oracle: runs the same seeded job
//! mix through (a) the single-process daemon, (b) a coordinator with
//! one worker, and (c) a coordinator with four workers, then restarts
//! the fleet over the warm disk tier. Asserts the three cluster
//! properties the architecture promises:
//!
//! * **Throughput** — four workers finish the mix at least 2.5× faster
//!   than one (asserted only on machines with ≥ 4 cores; override the
//!   floor with `UNICO_CLUSTER_MIN_SPEEDUP`, set it to `0` to skip).
//! * **Determinism** — every job's Pareto-front bits and deterministic
//!   report are byte-identical across single-process mode and every
//!   cluster topology.
//! * **Durable warmth** — a fresh coordinator + worker fleet booted
//!   over the previous fleet's disk-cache directory answers evaluations
//!   from disk (nonzero disk-tier hits) and posts a strictly higher
//!   aggregate hit rate than the cold fleet did.
//!
//! ```sh
//! cargo run --release --example cluster_loadgen
//! ```

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use unico::model::{DiskTier, EvalCache};
use unico::serve::worker::{self, WorkerConfig, WorkerHandle};
use unico::serve::{client, json, ClusterState, Scheduler, ServeConfig, Server};

/// Eight jobs over distinct seeds and two tenants: distinct seeds keep
/// the 1-worker and 4-worker runs cache-symmetric (no same-seed replay
/// advantage for either), two tenants exercise the fair queue.
const JOBS: usize = 8;

/// `engine_workers` caps each run's simulated-engine thread pool at 2
/// so four concurrent jobs do not oversubscribe small CI machines and
/// the 1-vs-4 worker comparison measures job-level parallelism.
fn spec(seed: u64) -> String {
    format!(
        r#"{{"platform": "spatial-edge", "workloads": ["mobilenet"],
             "max_iter": 4, "batch": 8, "b_max": 48, "candidate_pool": 48,
             "power_cap_mw": 2000, "seed": {seed}, "tenant": "team-{}",
             "engine_workers": 2}}"#,
        seed % 2
    )
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir()
        .join("unico-cluster-loadgen")
        .join(format!("{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

struct Coordinator {
    server: Server,
    sched: Arc<Scheduler>,
    addr: String,
}

impl Coordinator {
    fn boot(state_dir: &Path) -> Coordinator {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            state_dir: state_dir.to_path_buf(),
            ..ServeConfig::default()
        };
        let sched = Scheduler::start(&cfg, Arc::new(EvalCache::new())).expect("boot scheduler");
        let cluster = Arc::new(ClusterState::new(Arc::clone(&sched), cfg.lease_timeout));
        let server = Server::serve_cluster(&cfg, Arc::clone(&sched), Some(cluster))
            .expect("boot coordinator");
        let addr = server.addr().to_string();
        Coordinator {
            server,
            sched,
            addr,
        }
    }

    fn shutdown(self) {
        self.server.shutdown();
        self.sched.shutdown();
    }
}

fn spawn_worker(
    coordinator: &str,
    state_dir: &Path,
    disk_dir: &Path,
    id: usize,
) -> (WorkerHandle, Arc<EvalCache>) {
    let cache = Arc::new(
        EvalCache::new().with_disk(Arc::new(DiskTier::open(disk_dir).expect("open disk tier"))),
    );
    let mut cfg = WorkerConfig::new(coordinator, state_dir);
    cfg.worker_id = format!("loadgen-worker-{id}");
    cfg.poll_interval = Duration::from_millis(10);
    let handle = worker::spawn(cfg, Arc::clone(&cache)).expect("spawn worker");
    (handle, cache)
}

fn submit(addr: &str, spec: &str) -> String {
    let (status, body) =
        client::post(addr, "/v1/jobs", spec, Duration::from_secs(10)).expect("submit");
    assert_eq!(status, 201, "submit failed: {body}");
    json::parse(&body)
        .expect("submit response")
        .get("id")
        .expect("id")
        .as_str("id")
        .expect("id string")
        .to_string()
}

fn await_completion(addr: &str, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        let (status, body) = client::get(addr, &format!("/v1/jobs/{id}"), Duration::from_secs(10))
            .expect("status request");
        assert_eq!(status, 200, "status failed: {body}");
        let state = json::parse(&body)
            .expect("status json")
            .get("state")
            .expect("state")
            .as_str("state")
            .expect("state string")
            .to_string();
        match state.as_str() {
            "completed" => return,
            "failed" | "cancelled" => panic!("job {id} ended {state}: {body}"),
            _ => {
                assert!(Instant::now() < deadline, "job {id} timed out ({state})");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

/// Fleet-wide cache accounting: a lookup is "answered" when either the
/// in-memory tier hits or the disk tier does (a disk hit is counted as
/// an in-memory miss by design, so the two tiers partition the misses).
#[derive(Debug, Default, Clone, Copy)]
struct Aggregate {
    mem_hits: u64,
    mem_misses: u64,
    disk_hits: u64,
}

impl Aggregate {
    fn absorb(&mut self, cache: &EvalCache) {
        let mem = cache.stats();
        self.mem_hits += mem.hits;
        self.mem_misses += mem.misses;
        self.disk_hits += cache.disk_stats().map_or(0, |d| d.hits);
    }

    fn hit_rate(&self) -> f64 {
        let lookups = self.mem_hits + self.mem_misses;
        if lookups == 0 {
            return 0.0;
        }
        (self.mem_hits + self.disk_hits) as f64 / lookups as f64
    }
}

/// Runs the job mix through a coordinator + `n_workers` fleet over
/// `disk_dir`. Returns per-job Pareto-front bit patterns (submit
/// order), the wall-clock time, and the fleet's cache accounting.
/// Front bits are the cross-topology oracle: the run *reports* also
/// embed absolute shared-cache occupancy, which legitimately depends
/// on which other jobs warmed the same process cache.
fn run_fleet(
    tag: &str,
    n_workers: usize,
    disk_dir: &Path,
) -> (Vec<Vec<Vec<u64>>>, Duration, Aggregate) {
    let state_dir = scratch(tag);
    let coord = Coordinator::boot(&state_dir);
    let fleet: Vec<(WorkerHandle, Arc<EvalCache>)> = (0..n_workers)
        .map(|i| spawn_worker(&coord.addr, &state_dir, disk_dir, i))
        .collect();

    let started = Instant::now();
    let ids: Vec<String> = (0..JOBS as u64)
        .map(|s| submit(&coord.addr, &spec(s)))
        .collect();
    for id in &ids {
        await_completion(&coord.addr, id);
    }
    let elapsed = started.elapsed();

    let outcomes: Vec<Vec<Vec<u64>>> = ids
        .iter()
        .map(|id| {
            coord
                .sched
                .get(id)
                .expect("job known")
                .outcome()
                .expect("job completed")
                .front_bits
        })
        .collect();
    let mut agg = Aggregate::default();
    let mut disk_hits_per_worker = Vec::new();
    for (handle, cache) in fleet {
        agg.absorb(&cache);
        disk_hits_per_worker.push(cache.disk_stats().map_or(0, |d| d.hits));
        handle.stop();
    }
    println!(
        "{tag}: {JOBS} jobs on {n_workers} worker(s) in {:.2}s \
         (aggregate hit rate {:.1}%, disk hits {:?})",
        elapsed.as_secs_f64(),
        100.0 * agg.hit_rate(),
        disk_hits_per_worker
    );
    coord.shutdown();
    (outcomes, elapsed, agg)
}

fn main() {
    // Reference: the plain single-process daemon (one local worker, no
    // cluster, no disk tier) defines the ground-truth bits per seed.
    let state_dir = scratch("single");
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        state_dir,
        ..ServeConfig::default()
    };
    let sched = Scheduler::start(&cfg, Arc::new(EvalCache::new())).expect("boot scheduler");
    let server = Server::serve(&cfg, Arc::clone(&sched)).expect("boot server");
    let addr = server.addr().to_string();
    let ids: Vec<String> = (0..JOBS as u64).map(|s| submit(&addr, &spec(s))).collect();
    for id in &ids {
        await_completion(&addr, id);
    }
    let reference: Vec<Vec<Vec<u64>>> = ids
        .iter()
        .map(|id| {
            sched
                .get(id)
                .expect("job known")
                .outcome()
                .expect("completed")
                .front_bits
        })
        .collect();
    println!("single-process reference captured ({JOBS} jobs)");
    server.shutdown();
    sched.shutdown();

    // Cold fleets: one worker, then four, each over its own cold disk
    // tier so the throughput comparison is cache-symmetric.
    let disk1 = scratch("disk1");
    let (out1, t1, _) = run_fleet("cluster-1w", 1, &disk1);
    let disk4 = scratch("disk4");
    let (out4, t4, cold_agg) = run_fleet("cluster-4w-cold", 4, &disk4);

    assert_eq!(
        reference, out1,
        "1-worker cluster diverged from single-process bits"
    );
    assert_eq!(
        reference, out4,
        "4-worker cluster diverged from single-process bits"
    );
    println!("determinism: all topologies byte-identical to the single-process reference");

    let speedup = t1.as_secs_f64() / t4.as_secs_f64();
    let min_speedup: f64 = std::env::var("UNICO_CLUSTER_MIN_SPEEDUP")
        .ok()
        .map(|v| {
            v.parse()
                .expect("UNICO_CLUSTER_MIN_SPEEDUP must be a float")
        })
        .unwrap_or(2.5);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("throughput: 1-worker {t1:.2?} vs 4-worker {t4:.2?} = {speedup:.2}x ({cores} cores)");
    if cores >= 4 && min_speedup > 0.0 {
        assert!(
            speedup >= min_speedup,
            "4-worker fleet must be >= {min_speedup}x faster than 1 worker, got {speedup:.2}x"
        );
    } else {
        println!("  (speedup floor not asserted: {cores} cores < 4 or floor disabled)");
    }

    // Warm restart: a brand-new coordinator + fleet over the 4-worker
    // fleet's disk directory. Same bits, nonzero disk hits, and a
    // strictly better aggregate hit rate than the cold fleet.
    let (out_warm, _, warm_agg) = run_fleet("cluster-4w-warm", 4, &disk4);
    assert_eq!(
        reference, out_warm,
        "warm fleet diverged from single-process bits"
    );
    assert!(
        warm_agg.disk_hits > 0,
        "warm fleet must answer evaluations from the disk tier"
    );
    assert!(
        warm_agg.hit_rate() > cold_agg.hit_rate(),
        "warm aggregate hit rate {:.3} must beat cold {:.3}",
        warm_agg.hit_rate(),
        cold_agg.hit_rate()
    );
    println!(
        "durable warmth: disk tier answered {} lookups, hit rate {:.1}% (cold {:.1}%)",
        warm_agg.disk_hits,
        100.0 * warm_agg.hit_rate(),
        100.0 * cold_agg.hit_rate()
    );
    println!("cluster loadgen oracle passed");
}
