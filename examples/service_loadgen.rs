//! Service-mode load generator: boots an in-process `unico-served`
//! daemon, fires N concurrent jobs at its HTTP API, and demonstrates
//! the cross-job evaluation-cache effect — jobs over the same workload
//! warm each other's PPA evaluations, so the fleet's aggregate cache
//! hits exceed what any single job can achieve alone.
//!
//! ```sh
//! cargo run --release --example service_loadgen
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use unico::prelude::*;
use unico::serve::{json, metrics};

fn spec(seed: u64) -> String {
    format!(
        r#"{{"platform": "spatial-edge", "workloads": ["mobilenet"],
             "max_iter": 3, "batch": 6, "b_max": 32, "candidate_pool": 32,
             "power_cap_mw": 2000, "seed": {seed}}}"#
    )
}

fn request(addr: SocketAddr, raw: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect to daemon");
    conn.set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    conn.write_all(raw.as_bytes()).expect("send request");
    let mut text = String::new();
    conn.read_to_string(&mut text).expect("read response");
    text
}

fn body(resp: &str) -> &str {
    resp.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("")
}

fn submit(addr: SocketAddr, spec: &str) -> String {
    let resp = request(
        addr,
        &format!(
            "POST /v1/jobs HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{spec}",
            spec.len()
        ),
    );
    assert!(resp.starts_with("HTTP/1.1 201"), "submit failed: {resp}");
    json::parse(body(&resp))
        .expect("submit response")
        .get("id")
        .expect("id")
        .as_str("id")
        .expect("id string")
        .to_string()
}

fn await_completion(addr: SocketAddr, id: &str) {
    loop {
        let resp = request(
            addr,
            &format!("GET /v1/jobs/{id} HTTP/1.1\r\nconnection: close\r\n\r\n"),
        );
        let state = json::parse(body(&resp))
            .expect("status")
            .get("state")
            .expect("state")
            .as_str("state")
            .expect("state string")
            .to_string();
        match state.as_str() {
            "completed" => return,
            "failed" | "cancelled" => panic!("job {id} ended {state}"),
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Boots a daemon over a scratch state dir with `workers` workers and
/// its own shared cache; returns the pieces plus the cache handle.
fn boot(tag: &str, workers: usize) -> (Server, Arc<Scheduler>, Arc<EvalCache>, SocketAddr) {
    let state_dir = std::env::temp_dir().join("unico-loadgen").join(tag);
    std::fs::remove_dir_all(&state_dir).ok();
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        state_dir,
        ..ServeConfig::default()
    };
    let cache = Arc::new(EvalCache::new());
    let sched = Scheduler::start(&cfg, Arc::clone(&cache)).expect("boot scheduler");
    let server = Server::serve(&cfg, Arc::clone(&sched)).expect("boot server");
    let addr = server.addr();
    (server, sched, cache, addr)
}

fn main() {
    // Baseline: one daemon, one job — how many cache hits does a
    // single run produce on its own (intra-run repeats only)?
    let (server, sched, cache, addr) = boot("baseline", 1);
    let id = submit(addr, &spec(7));
    await_completion(addr, &id);
    let baseline_hits = cache.stats().hits;
    println!("single-job baseline: {baseline_hits} cache hits");
    server.shutdown();
    sched.shutdown();

    // Fleet: N concurrent jobs, two per seed, against one daemon with
    // a shared cache. Same-seed pairs evaluate identical hardware
    // candidates, so the later job replays the earlier one's misses.
    let jobs = 4;
    let (server, sched, cache, addr) = boot("fleet", 2);
    let ids: Vec<String> = (0..jobs)
        .map(|i| submit(addr, &spec(7 + (i % 2) as u64)))
        .collect();
    println!("submitted {jobs} concurrent jobs: {ids:?}");
    for id in &ids {
        await_completion(addr, id);
    }

    let stats = cache.stats();
    println!(
        "fleet aggregate: {} hits / {} misses (hit rate {:.1}%)",
        stats.hits,
        stats.misses,
        100.0 * stats.hit_rate()
    );
    let metrics_resp = request(addr, "GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n");
    let exposition = body(&metrics_resp);
    metrics::validate_exposition(exposition).expect("metrics exposition parses");
    for line in exposition.lines().filter(|l| {
        l.starts_with("unico_serve_cache_") || l.starts_with("unico_serve_jobs_completed_total")
    }) {
        println!("  {line}");
    }

    assert!(
        stats.hits > baseline_hits,
        "cross-job sharing must beat the single-job baseline \
         ({} aggregate hits vs {baseline_hits})",
        stats.hits
    );
    println!(
        "cross-job cache effect confirmed: {} aggregate hits > {baseline_hits} single-job hits",
        stats.hits
    );
    server.shutdown();
    sched.shutdown();
}
