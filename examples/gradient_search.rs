//! Gradient vs black-box mapping search: sample efficiency on one conv
//! layer (the paper's Fig. 7 viewpoint — quality as a function of exact
//! model evaluations spent).
//!
//! The gradient searcher descends the differentiable relaxation of the
//! analytical cost (surrogate steps are free — only legalized exact
//! re-evaluations spend budget), so it should need far fewer exact
//! samples to match the quality annealing reaches with its full budget.
//! This example measures exactly that and **asserts** the gradient
//! searcher matches annealing's terminal quality in at most half of
//! annealing's evaluation budget; the CI smoke job runs it in release
//! mode.
//!
//! ```sh
//! cargo run --release --example gradient_search
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use unico::prelude::*;
use unico_mapping::{
    AnnealingSearch, GeneticConfig, GeneticSearch, GradientSearcher, MappingSearcher,
    QLearningSearch, RandomSearch,
};
use unico_model::BoundSpatialCost;
use unico_search::{Counter, Telemetry};

/// First budget at which `tool`'s best-so-far loss reaches `target`.
fn samples_to_quality(tool: &dyn MappingSearcher, budget: u64, target: f64) -> Option<u64> {
    (1..=budget).find(|&b| {
        tool.history()
            .best_at(b)
            .is_some_and(|r| r.loss <= target * (1.0 + 1e-12))
    })
}

fn main() {
    // A mid-size ResNet conv layer on a fixed edge configuration — the
    // same inner-loop setup as the `mapping_tools` example.
    let nest = TensorOp::Conv2d {
        n: 1,
        k: 128,
        c: 128,
        y: 28,
        x: 28,
        r: 3,
        s: 3,
        stride: 1,
    }
    .to_loop_nest();
    let platform = SpatialPlatform::edge();
    let hw = HwConfig::new(12, 12, 4096, 1024 * 1024, 128, Dataflow::WeightStationary);
    let cost = BoundSpatialCost::new(platform.model(), hw, nest, 1.0);
    let budget = 400u64;

    println!("layer: {nest}");
    println!("hardware: {hw}");
    println!("budget: {budget} exact evaluations per tool\n");

    // The quality bar: annealing's best after its full budget.
    let mut annealing = AnnealingSearch::new(MappingSpace::new(&nest), StdRng::seed_from_u64(1));
    annealing.run_until(&cost, budget);
    let target = annealing.history().terminal_value();
    println!(
        "annealing terminal latency after {budget} evals: {:.3} ms (the quality bar)\n",
        target * 1e3
    );

    let mut tools: Vec<(&str, Box<dyn MappingSearcher>)> = vec![
        ("annealing", Box::new(annealing)),
        (
            "random",
            Box::new(RandomSearch::new(
                MappingSpace::new(&nest),
                StdRng::seed_from_u64(1),
            )),
        ),
        (
            "genetic",
            Box::new(GeneticSearch::new(
                MappingSpace::new(&nest),
                StdRng::seed_from_u64(1),
                GeneticConfig::default(),
            )),
        ),
        (
            "q-learning",
            Box::new(QLearningSearch::new(
                MappingSpace::new(&nest),
                StdRng::seed_from_u64(1),
            )),
        ),
        (
            "gradient",
            Box::new(GradientSearcher::new(
                MappingSpace::new(&nest),
                StdRng::seed_from_u64(1),
            )),
        ),
    ];

    println!(
        "{:<12} {:>14} {:>16} {:>10}",
        "tool", "best latency", "samples→quality", "AUC"
    );
    let mut gradient_samples = None;
    for (name, tool) in &mut tools {
        if tool.history().spent() < budget {
            tool.run_until(&cost, budget);
        }
        let h = tool.history();
        let samples = samples_to_quality(tool.as_ref(), budget, target);
        if *name == "gradient" {
            gradient_samples = samples;
        }
        println!(
            "{:<12} {:>11.3} ms {:>16} {:>10.4}",
            name,
            h.terminal_value() * 1e3,
            samples.map_or("—".into(), |s| format!("{s}/{budget}")),
            h.auc(budget)
        );
    }

    // Surface the gradient searcher's internal counters through the
    // normal run-report path.
    let telemetry = Telemetry::global();
    for (name, tool) in &tools {
        if let Some(stats) = tool.gradient_stats() {
            assert_eq!(*name, "gradient", "only the gradient tool has stats");
            telemetry.add_gradient_stats(stats);
        }
    }
    let report = telemetry.report("gradient-search");
    println!(
        "\ngradient counters: {} steps, {} legalizations, {} backtracks, {} restarts",
        report.counters["gradient_steps"],
        report.counters["gradient_legalizations"],
        report.counters["gradient_backtracks"],
        report.counters["gradient_restarts"],
    );
    assert!(telemetry.get(Counter::GradientSteps) > 0);

    // The sample-efficiency claim this example (and the CI smoke job)
    // pins: gradient search reaches annealing's full-budget quality in
    // at most half the exact evaluations.
    let s = gradient_samples.expect("gradient search never reached annealing quality");
    assert!(
        s <= budget / 2,
        "gradient needed {s} samples to reach annealing quality ({} allowed)",
        budget / 2
    );
    println!(
        "\ngradient search matched annealing's {budget}-eval quality after only {s} exact\n\
         evaluations ({}x fewer) — surrogate descent steps are free; budget is\n\
         spent only on legalized exact re-evaluations.",
        budget / s.max(1)
    );
}
