//! Industrial deployment: tune the Ascend-like architecture for a
//! super-resolution workload with the cycle-level simulator, and compare
//! the found configuration against the expert default — a miniature of
//! the paper's Fig. 11 study.
//!
//! The CAModel regime makes every PPA evaluation cost minutes of
//! *simulated* wall-clock, so watch the reported search cost: sample
//! efficiency is everything here.
//!
//! ```sh
//! cargo run --release --example ascend_tuning
//! ```

use unico::prelude::*;
use unico_core::experiments::validate_on_network;
use unico_search::EnvConfig;

fn main() {
    let platform = AscendPlatform::new();
    let workload = zoo::fsrcnn(320, 120);
    println!(
        "tuning Ascend-like core for {} ({:.2} GMACs)",
        workload.name(),
        workload.total_macs() as f64 / 1e9
    );

    let env = CoSearchEnv::new(
        &platform,
        std::slice::from_ref(&workload),
        EnvConfig {
            max_layers_per_network: 2,
            power_cap_mw: None,
            area_cap_mm2: Some(200.0), // the paper's edge-chip area budget
        },
    );

    // The paper's industrial configuration: N = 8, b_max = 200, scaled
    // down in iterations for a fast demo.
    let result = Unico::new(UnicoConfig {
        max_iter: 5,
        batch: 8,
        b_max: 60,
        seed: 11,
        ..UnicoConfig::default()
    })
    .run(&env);
    println!(
        "evaluated {} configurations, simulated search cost {:.1} h",
        result.hw_evals,
        result.wall_clock_s / 3600.0
    );

    let default_hw = AscendConfig::expert_default();
    // Select the design minimizing the worst (latency, power) ratio to
    // the default, i.e. prefer designs that beat the default on both.
    let default_ppa = validate_on_network(&platform, default_hw, &workload, 2, 60, 0);
    let found = result
        .evaluations
        .iter()
        .filter_map(|r| r.assessment.map(|a| (r.hw, a)))
        .min_by(|(_, a), (_, b)| {
            let score = |x: &unico_search::Assessment| match &default_ppa {
                Some(d) => (x.latency_s / d.latency_s).max(x.power_mw / d.power_mw),
                None => x.latency_s,
            };
            score(a)
                .partial_cmp(&score(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(hw, _)| hw)
        .unwrap_or(default_hw);
    println!("\nexpert default: {default_hw}");
    println!("UNICO found:    {found}");

    // Head-to-head with fresh depth-first fusion mapping searches.
    let d = validate_on_network(&platform, default_hw, &workload, 2, 60, 1);
    let u = validate_on_network(&platform, found, &workload, 2, 60, 2);
    match (d, u) {
        (Some(d), Some(u)) => {
            println!(
                "\n{:<16} {:>12} {:>12} {:>10}",
                "", "latency (ms)", "power (mW)", "area (mm²)"
            );
            println!(
                "{:<16} {:>12.3} {:>12.1} {:>10.1}",
                "expert default",
                d.latency_s * 1e3,
                d.power_mw,
                d.area_mm2
            );
            println!(
                "{:<16} {:>12.3} {:>12.1} {:>10.1}",
                "UNICO",
                u.latency_s * 1e3,
                u.power_mw,
                u.area_mm2
            );
            println!(
                "\nlatency saving {:+.1}%, power saving {:+.1}%",
                (d.latency_s - u.latency_s) / d.latency_s * 100.0,
                (d.power_mw - u.power_mw) / d.power_mw * 100.0
            );
        }
        _ => println!("a design had no feasible mapping at this tiny budget"),
    }
}
