//! Quickstart: co-optimize an edge accelerator for MobileNet in a few
//! seconds and print the Pareto front.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use unico::prelude::*;
use unico_search::EnvConfig as SearchEnvConfig;

fn main() {
    // 1. Pick a platform: the open-source 2-D spatial template under the
    //    edge power envelope.
    let platform = SpatialPlatform::edge();

    // 2. Pick the workload(s) to co-optimize for.
    let workload = zoo::mobilenet_v1();
    println!(
        "co-optimizing for {} ({:.2} GMACs, {} layer entries)",
        workload.name(),
        workload.total_macs() as f64 / 1e9,
        workload.len()
    );

    // 3. Build the co-search environment: dominant layers only, and the
    //    paper's 2 W edge power cap.
    let env = CoSearchEnv::new(
        &platform,
        &[workload],
        SearchEnvConfig {
            max_layers_per_network: 2,
            power_cap_mw: Some(2_000.0),
            area_cap_mm2: None,
        },
    );

    // 4. Run UNICO at a small scale (a few seconds of real time).
    let config = UnicoConfig {
        max_iter: 6,
        batch: 10,
        b_max: 64,
        seed: 7,
        ..UnicoConfig::default()
    };
    let result = Unico::new(config).run(&env);

    // 5. Inspect the Pareto front.
    println!(
        "\nevaluated {} hardware configurations in {:.2} simulated hours",
        result.hw_evals,
        result.wall_clock_s / 3600.0
    );
    println!("Pareto front ({} designs):", result.front.len());
    for (objectives, &idx) in result.front.iter() {
        let rec = &result.evaluations[idx];
        println!(
            "  latency {:>10.4} ms | power {:>7.1} mW | area {:>5.2} mm² | R {:>6.4} | {:?}",
            objectives[0] * 1e3,
            objectives[1],
            objectives[2],
            rec.robustness.unwrap_or(f64::NAN),
            rec.hw
        );
    }

    if let Some(best) = result.min_euclidean_record() {
        println!("\nrecommended design (min-Euclidean knee): {:?}", best.hw);
    }
}
