//! Golden-network fixtures for the graph frontend.
//!
//! Each fixture network is committed in both input forms — the
//! human-writable JSON graph and the ONNX-subset protobuf wire bytes —
//! and this suite pins that both forms lower to the *byte-identical*
//! nest fingerprint, so neither parser can drift without failing CI.
//!
//! Regenerate the wire forms from the JSON sources with
//! `UNICO_RECORD_FIXTURES=1 cargo test --test frontend_fixtures`.

use std::path::{Path, PathBuf};

use unico::workloads::frontend::{self, json, wire};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn record_mode() -> bool {
    std::env::var_os("UNICO_RECORD_FIXTURES").is_some_and(|v| v == "1")
}

/// Loads one fixture in both forms (recording the wire form first when
/// asked to) and returns `(via_json, via_wire)`.
fn load_both(stem: &str) -> (frontend::ImportedGraph, frontend::ImportedGraph) {
    let dir = fixtures_dir();
    let json_path = dir.join(format!("{stem}.graph.json"));
    let onnx_path = dir.join(format!("{stem}.onnx"));
    let text = std::fs::read_to_string(&json_path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", json_path.display()));
    if record_mode() {
        let ir = json::parse_graph_json(&text).expect("fixture JSON parses");
        std::fs::write(&onnx_path, wire::encode_model(&ir))
            .unwrap_or_else(|e| panic!("writing {}: {e}", onnx_path.display()));
    }
    let via_json = frontend::import_json(&text).expect("fixture JSON imports");
    let bytes = std::fs::read(&onnx_path).unwrap_or_else(|e| {
        panic!(
            "reading {}: {e} (run with UNICO_RECORD_FIXTURES=1)",
            onnx_path.display()
        )
    });
    let via_wire = frontend::import_onnx(&bytes).expect("fixture wire bytes import");
    (via_json, via_wire)
}

#[test]
fn tiny_cnn_round_trips_byte_identically() {
    let (via_json, via_wire) = load_both("tiny_cnn");
    assert_eq!(via_json.fingerprint(), via_wire.fingerprint());
    assert_eq!(via_json, via_wire);
    let net = via_json.network();
    assert_eq!(net.name(), "tiny-cnn");
    let kinds: Vec<&str> = net.layers().iter().map(|l| l.op().kind()).collect();
    assert_eq!(kinds, vec!["conv", "dwconv", "conv", "gemm"]);
    // conv1 -> dw -> pw fuse candidates; the MaxPool breaks pw -> fc.
    assert_eq!(via_json.edges().len(), 2);
    assert_eq!(via_json.ops_lowered(), 9);
}

#[test]
fn mlp_round_trips_byte_identically() {
    let (via_json, via_wire) = load_both("mlp");
    assert_eq!(via_json.fingerprint(), via_wire.fingerprint());
    assert_eq!(via_json, via_wire);
    let net = via_json.network();
    assert_eq!(net.name(), "mlp-block");
    let kinds: Vec<&str> = net.layers().iter().map(|l| l.op().kind()).collect();
    assert_eq!(kinds, vec!["gemm", "gemm"]);
    // proj1 -(Add, Relu)-> proj2 survives as one fusion edge over the
    // 32x128 intermediate.
    assert_eq!(
        via_json.edges(),
        &[frontend::FusionEdge {
            producer: 0,
            consumer: 1,
            elems: 32 * 128,
        }]
    );
}

/// The lowered forms are pinned by value: a parser or lowering change
/// that shifts any extent, stride, repeat or edge fails here before it
/// can silently invalidate recorded service results.
#[test]
fn fixture_fingerprints_are_pinned() {
    let (cnn, _) = load_both("tiny_cnn");
    let (mlp, _) = load_both("mlp");
    assert_eq!(cnn.fingerprint(), PINNED_TINY_CNN);
    assert_eq!(mlp.fingerprint(), PINNED_MLP);
}

const PINNED_TINY_CNN: u64 = 6013989175444613194;
const PINNED_MLP: u64 = 7370462611507651710;
