//! Seeded determinism and golden-trace record/replay, end to end.
//!
//! Two [`Unico`] runs with the same seed on fresh platforms must be
//! byte-for-byte identical: same Pareto front bit patterns, same
//! deterministic run-report JSON, same evaluation-cache trace. The
//! committed golden trace under `tests/golden/` pins the smoke run's
//! every PPA evaluation; replaying it resolves the whole run from the
//! trace with zero cache misses.
//!
//! Regenerate the golden trace after an intentional model change with:
//!
//! ```sh
//! UNICO_RECORD_GOLDEN=1 cargo test --test determinism
//! ```

use std::sync::Arc;

use unico::prelude::*;
use unico_model::EvalCache;
use unico_search::{run_mobohb, EnvConfig, MobohbConfig};
use unico_workloads::Network;

const GOLDEN_TRACE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/unico_smoke.trace"
);

const GOLDEN_CHECKPOINT: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/unico_resume.checkpoint"
);

fn smoke_cfg(seed: u64) -> UnicoConfig {
    UnicoConfig {
        max_iter: 3,
        batch: 6,
        b_max: 32,
        candidate_pool: 32,
        seed,
        ..UnicoConfig::default()
    }
}

fn edge_env<'p>(
    platform: &'p SpatialPlatform,
    nets: &[Network],
) -> CoSearchEnv<'p, SpatialPlatform> {
    CoSearchEnv::new(
        platform,
        nets,
        EnvConfig {
            max_layers_per_network: 1,
            power_cap_mw: Some(2_000.0),
            area_cap_mm2: None,
        },
    )
}

/// Runs the smoke configuration on a fresh edge platform carrying
/// `cache`, returning the result.
fn smoke_run(cache: Arc<EvalCache>) -> UnicoResult<unico_model::HwConfig> {
    let platform = SpatialPlatform::edge().with_eval_cache(cache);
    let nets = [zoo::mobilenet_v1()];
    let env = edge_env(&platform, &nets);
    Unico::new(smoke_cfg(7)).run(&env)
}

fn front_bits(r: &UnicoResult<unico_model::HwConfig>) -> Vec<Vec<u64>> {
    r.front
        .objectives()
        .iter()
        .map(|y| y.iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn seeded_runs_are_byte_identical() {
    let cache_a = Arc::new(EvalCache::new());
    let cache_b = Arc::new(EvalCache::new());
    let a = smoke_run(Arc::clone(&cache_a));
    let b = smoke_run(Arc::clone(&cache_b));

    // Bit-level front equality, not just PartialEq (which NaN or -0.0
    // could blur).
    assert_eq!(front_bits(&a), front_bits(&b));

    // Deterministic report JSON (wall-clock phase timers excluded) is
    // byte-identical, including the cache section.
    let (ja, jb) = (a.report.deterministic_json(), b.report.deterministic_json());
    assert_eq!(ja, jb);
    assert!(ja.contains("\"cache\":{\"hits\":"));

    // The caches saw identical evaluation streams.
    assert_eq!(cache_a.to_trace(), cache_b.to_trace());
    assert!(cache_a.stats().misses > 0);
}

#[test]
fn golden_trace_matches_committed() {
    let cache = Arc::new(EvalCache::new());
    let _ = smoke_run(Arc::clone(&cache));
    let trace = cache.to_trace();

    if std::env::var("UNICO_RECORD_GOLDEN").is_ok() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_TRACE).parent().unwrap())
            .expect("create tests/golden");
        std::fs::write(GOLDEN_TRACE, &trace).expect("write golden trace");
        return;
    }

    let committed = std::fs::read_to_string(GOLDEN_TRACE)
        .expect("golden trace missing; record with UNICO_RECORD_GOLDEN=1");
    assert_eq!(
        trace, committed,
        "evaluation stream diverged from the committed golden trace; \
         if the model change is intentional, re-record with \
         UNICO_RECORD_GOLDEN=1"
    );
}

#[test]
fn replay_resolves_run_from_trace_with_zero_misses() {
    if std::env::var("UNICO_RECORD_GOLDEN").is_ok() {
        return; // trace is being (re-)recorded in this very test run
    }
    let committed = std::fs::read_to_string(GOLDEN_TRACE)
        .expect("golden trace missing; record with UNICO_RECORD_GOLDEN=1");
    let replay = Arc::new(EvalCache::from_trace(&committed).expect("valid trace"));
    assert!(replay.is_replay());

    let replayed = smoke_run(Arc::clone(&replay));

    // Every evaluation resolved from the trace: a single miss would have
    // panicked, and the counters confirm none occurred.
    let s = replay.stats();
    assert_eq!(s.misses, 0, "replay must never compute");
    assert!(s.hits > 0);

    // The replayed run reproduces the recorded run bit-for-bit.
    let recorded = smoke_run(Arc::new(EvalCache::new()));
    assert_eq!(front_bits(&replayed), front_bits(&recorded));
}

/// The committed mid-run checkpoint (`unico.checkpoint.v1`, captured by
/// the crash path at boundary 2 of the 3-iteration seed-7 smoke run)
/// must still resume into a final state bit-identical to an
/// uninterrupted smoke run — pinning the checkpoint format itself, not
/// just in-process round trips. Re-record alongside the golden trace
/// with `UNICO_RECORD_GOLDEN=1`.
#[test]
fn resume_from_committed_checkpoint_reproduces_smoke_run() {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    if std::env::var("UNICO_RECORD_GOLDEN").is_ok() {
        // Record: crash the smoke run at boundary 2 with the checkpoint
        // pointed at the golden path; the panic guard flushes the
        // boundary-2 snapshot — the exact file a real crash leaves.
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_CHECKPOINT).parent().unwrap())
            .expect("create tests/golden");
        std::fs::remove_file(GOLDEN_CHECKPOINT).ok();
        let cache = Arc::new(EvalCache::new());
        let platform = SpatialPlatform::edge().with_eval_cache(Arc::clone(&cache));
        let nets = [zoo::mobilenet_v1()];
        let env = edge_env(&platform, &nets);
        let opts = RunOptions {
            checkpoint: Some(CheckpointPolicy::new(std::path::PathBuf::from(
                GOLDEN_CHECKPOINT,
            ))),
            kill_after: Some(2),
            ..RunOptions::default()
        };
        let unico = Unico::new(smoke_cfg(7));
        let outcome = catch_unwind(AssertUnwindSafe(|| unico.run_with_options(&env, &opts)));
        assert!(outcome.is_err(), "recording kill must fire");
        let ck =
            Checkpoint::read(std::path::Path::new(GOLDEN_CHECKPOINT)).expect("recorded checkpoint");
        assert_eq!(ck.iterations_done, 2);
        return;
    }

    let ck = Checkpoint::read(std::path::Path::new(GOLDEN_CHECKPOINT))
        .expect("golden checkpoint missing; record with UNICO_RECORD_GOLDEN=1");
    assert_eq!(ck.iterations_done, 2, "golden snapshot sits at boundary 2");

    let cache = Arc::new(EvalCache::new());
    let platform = SpatialPlatform::edge().with_eval_cache(Arc::clone(&cache));
    let nets = [zoo::mobilenet_v1()];
    let env = edge_env(&platform, &nets);
    let resumed = Unico::resume(&env, std::path::Path::new(GOLDEN_CHECKPOINT)).expect(
        "golden checkpoint diverged from the current format; \
                 if the change is intentional, re-record with \
                 UNICO_RECORD_GOLDEN=1",
    );

    let reference_cache = Arc::new(EvalCache::new());
    let reference = smoke_run(Arc::clone(&reference_cache));
    assert_eq!(
        front_bits(&resumed),
        front_bits(&reference),
        "resumed front diverged from the uninterrupted smoke run"
    );
    assert_eq!(resumed.evaluations.len(), reference.evaluations.len());
    assert_eq!(resumed.wall_clock_s, reference.wall_clock_s);
    // The resumed cache (restored trace + post-resume evaluations) saw
    // the exact evaluation stream of the uninterrupted run.
    assert_eq!(cache.to_trace(), reference_cache.to_trace());
}

/// The batch evaluation path is a locking/layout optimization, not a
/// semantics change: forcing the scalar per-candidate path (the
/// `UNICO_BATCH_EVAL=0` bisection lever) must reproduce the batched
/// smoke run bit-for-bit — same front bits, same cache trace, same
/// hit/miss accounting. Only the batch-lookup counters may differ
/// (the scalar twin books none).
#[test]
fn scalar_path_reproduces_batched_run_bitwise() {
    // The genetic mapping tool scores whole GA cohorts through
    // `assess_batch` (annealing stays scalar by design — its RNG is
    // conditioned on each step's outcome), so it exercises the batched
    // cache entry point end-to-end.
    let run = |cache: Arc<EvalCache>, batch_eval: bool| {
        let platform = SpatialPlatform::edge()
            .with_mapping_tool(unico_model::MappingTool::Genetic)
            .with_eval_cache(cache)
            .with_batch_eval(batch_eval);
        let nets = [zoo::mobilenet_v1()];
        let env = edge_env(&platform, &nets);
        Unico::new(smoke_cfg(7)).run(&env)
    };
    let batched_cache = Arc::new(EvalCache::new());
    let batched = run(Arc::clone(&batched_cache), true);
    let scalar_cache = Arc::new(EvalCache::new());
    let scalar = run(Arc::clone(&scalar_cache), false);

    assert_eq!(
        front_bits(&batched),
        front_bits(&scalar),
        "scalar-path front diverged from the batched front"
    );
    assert_eq!(
        batched_cache.to_trace(),
        scalar_cache.to_trace(),
        "scalar-path evaluation stream diverged from the batched stream"
    );
    assert_eq!(batched_cache.stats().hits, scalar_cache.stats().hits);
    assert_eq!(batched_cache.stats().misses, scalar_cache.stats().misses);
    // The batched run actually took the batched entry point; the scalar
    // run never did.
    assert!(batched_cache.batch_stats().lookups > 0);
    assert_eq!(scalar_cache.batch_stats().lookups, 0);
}

/// `UNICO_BATCH_EVAL` is read at platform construction: `0` forces the
/// scalar path, `1` and unset select the batched path. (Flipping the
/// variable mid-test is benign for concurrent tests — the two paths are
/// bitwise identical by construction, which is the point of the lever.)
#[test]
fn batch_eval_env_toggle_forces_scalar_path() {
    std::env::set_var("UNICO_BATCH_EVAL", "0");
    let forced_off = SpatialPlatform::edge();
    std::env::set_var("UNICO_BATCH_EVAL", "1");
    let forced_on = SpatialPlatform::edge();
    std::env::remove_var("UNICO_BATCH_EVAL");
    let default = SpatialPlatform::edge();
    assert!(!forced_off.batch_eval());
    assert!(forced_on.batch_eval());
    assert!(default.batch_eval(), "unset must select the batched path");
}

/// Incremental GP refits are deterministic and actually exercised: two
/// same-seed runs long enough to re-enter the surrogate after the first
/// full hyper-search fit produce byte-identical reports and book at
/// least one incremental fit (strictly fewer than total fits — full
/// refits still happen when the training set doubles).
#[test]
fn incremental_gp_runs_are_deterministic_and_booked() {
    let run = |cache: Arc<EvalCache>| {
        let platform = SpatialPlatform::edge().with_eval_cache(cache);
        let nets = [zoo::mobilenet_v1()];
        let env = edge_env(&platform, &nets);
        let cfg = UnicoConfig {
            max_iter: 6,
            ..smoke_cfg(11)
        };
        Unico::new(cfg).run(&env)
    };
    let a = run(Arc::new(EvalCache::new()));
    let b = run(Arc::new(EvalCache::new()));
    assert_eq!(front_bits(&a), front_bits(&b));
    assert_eq!(a.report.deterministic_json(), b.report.deterministic_json());
    let incremental = a.report.counters["gp_fits_incremental"];
    let total = a.report.counters["gp_fits"];
    assert!(
        incremental >= 1,
        "a 6-iteration run must reuse hypers at least once (got {incremental})"
    );
    assert!(
        incremental < total,
        "incremental fits ({incremental}) must stay below total fits ({total})"
    );
}

/// The gradient mapping tool is seeded-deterministic end to end: two
/// same-seed co-optimization runs through `MappingTool::Gradient`
/// produce byte-identical fronts, deterministic reports, and
/// evaluation-cache traces — descent, backtracking, restarts,
/// surrogate screening and the free integer polish all replay exactly.
/// The report also books the gradient telemetry counters, pinning the
/// searcher-stats funnel (`GradientStats` deltas absorbed at the
/// successive-halving boundary).
#[test]
fn gradient_tool_runs_are_deterministic_and_booked() {
    let run = |cache: Arc<EvalCache>| {
        let platform = SpatialPlatform::edge()
            .with_mapping_tool(unico_model::MappingTool::Gradient)
            .with_eval_cache(cache);
        let nets = [zoo::mobilenet_v1()];
        let env = edge_env(&platform, &nets);
        Unico::new(smoke_cfg(7)).run(&env)
    };
    let cache_a = Arc::new(EvalCache::new());
    let cache_b = Arc::new(EvalCache::new());
    let a = run(Arc::clone(&cache_a));
    let b = run(Arc::clone(&cache_b));

    assert_eq!(front_bits(&a), front_bits(&b));
    assert_eq!(a.report.deterministic_json(), b.report.deterministic_json());
    assert_eq!(cache_a.to_trace(), cache_b.to_trace());

    let steps = a.report.counters["gradient_steps"];
    let legalizations = a.report.counters["gradient_legalizations"];
    assert!(steps > 0, "gradient runs must book surrogate steps");
    assert!(
        legalizations > 0,
        "gradient runs must book legalized exact evaluations"
    );
    assert!(
        steps > legalizations,
        "surrogate steps ({steps}) should outnumber paid \
         legalizations ({legalizations})"
    );
}

/// Fusion-aware co-optimization is seeded-deterministic end to end:
/// two same-seed runs over the committed tiny-CNN fixture (imported
/// through the graph frontend, fused via the greedy planner during
/// every assessment) produce byte-identical fronts, deterministic
/// reports and cache traces, and book the fusion telemetry counters.
#[test]
fn fused_graph_runs_are_deterministic_and_booked() {
    let graph =
        unico_workloads::frontend::import_json(include_str!("fixtures/tiny_cnn.graph.json"))
            .expect("committed fixture imports");
    let run = |cache: Arc<EvalCache>| {
        let platform = SpatialPlatform::edge().with_eval_cache(cache);
        let env = CoSearchEnv::with_graphs(
            &platform,
            std::slice::from_ref(&graph),
            EnvConfig {
                max_layers_per_network: 4, // keep the whole fusable chain
                power_cap_mw: Some(2_000.0),
                area_cap_mm2: None,
            },
        );
        Unico::new(smoke_cfg(7)).run(&env)
    };
    let cache_a = Arc::new(EvalCache::new());
    let cache_b = Arc::new(EvalCache::new());
    let a = run(Arc::clone(&cache_a));
    let b = run(Arc::clone(&cache_b));

    assert_eq!(front_bits(&a), front_bits(&b));
    assert_eq!(a.report.deterministic_json(), b.report.deterministic_json());
    assert_eq!(cache_a.to_trace(), cache_b.to_trace());

    let tried = a.report.counters["fusion_groups_tried"];
    let accepted = a.report.counters["fusion_groups_accepted"];
    assert!(tried >= 1, "fused runs must price candidate groups");
    assert!(accepted <= tried);
}

/// Fig. 9-style MOBOHB baseline: at realistic per-session mapping
/// budgets the random tiling samplers revisit mappings and successive
/// halving re-assesses survivors, so the evaluation stream is heavily
/// repetitive — exactly what the cache exploits. The acceptance bar is
/// a >50% hit rate (this configuration measures ~59%).
#[test]
fn mobohb_smoke_run_exceeds_half_hit_rate() {
    let cache = Arc::new(EvalCache::new());
    let platform = SpatialPlatform::edge().with_eval_cache(Arc::clone(&cache));
    let nets = [zoo::mobilenet_v1()];
    let env = edge_env(&platform, &nets);
    let cfg = MobohbConfig {
        iterations: 4,
        batch: 6,
        b_max: 2000,
        candidate_pool: 32,
        seed: 7,
        ..MobohbConfig::default()
    };
    let _ = run_mobohb(&env, &cfg);
    let s = cache.stats();
    assert!(s.lookups() > 0);
    assert!(
        s.hit_rate() > 0.5,
        "hit rate {:.3} ({} hits / {} lookups) below the 50% bar",
        s.hit_rate(),
        s.hits,
        s.lookups()
    );
}
