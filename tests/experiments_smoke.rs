//! Smoke tests of every experiment driver at tiny scale: the same code
//! paths the paper-scale binaries execute, checked for structural
//! soundness in seconds.

use unico_core::experiments::ablation::run_ablation;
use unico_core::experiments::ascend::run_ascend;
use unico_core::experiments::generalization::run_generalization;
use unico_core::experiments::hv_trace::{final_hv_differences, run_hv_trace};
use unico_core::experiments::robust_pairs::run_robust_pairs;
use unico_core::experiments::table::{compare_on_network, render, Scenario};
use unico_core::experiments::Scale;
use unico_workloads::zoo;

#[test]
fn table_comparison_smoke() {
    let c = compare_on_network(Scenario::Edge, &zoo::xception(), &Scale::smoke(), 5);
    assert_eq!(c.rows.len(), 3);
    assert!(c.rows.iter().any(|r| r.ppa.is_some()));
    // UNICO is the cheapest of the three at equal-ish quality budgets.
    let cost = |m: &str| {
        c.rows
            .iter()
            .find(|r| r.method == m)
            .expect("method present")
            .cost_h
    };
    assert!(
        cost("UNICO") < cost("HASCO"),
        "UNICO must be cheaper than HASCO"
    );
    let md = render(Scenario::Edge, &[c]);
    assert!(md.contains("Xception"));
}

#[test]
fn cloud_scenario_smoke() {
    let c = compare_on_network(Scenario::Cloud, &zoo::mobilenet_v1(), &Scale::smoke(), 6);
    for r in &c.rows {
        if let Some((_, p, _)) = r.ppa {
            assert!(p <= 20_000.0, "cloud power cap violated");
        }
    }
}

#[test]
fn hv_trace_smoke() {
    let res = run_hv_trace(Scenario::Edge, &[zoo::unet()], &Scale::smoke(), 7);
    assert_eq!(res.methods.len(), 4);
    let finals = final_hv_differences(&res);
    assert!(finals.iter().all(|&(_, d)| d.is_finite()));
}

#[test]
fn ablation_smoke() {
    let res = run_ablation(&Scale::smoke(), 8);
    assert_eq!(res.rows.len(), 4);
    assert_eq!(res.rows[0].variant, "HASCO");
    assert_eq!(res.rows[0].vs_hasco_pct, 0.0);
    assert!(res.rows.iter().all(|r| r.hypervolume >= 0.0));
}

#[test]
fn robust_pairs_smoke() {
    // A generous similarity threshold so tiny fronts still yield pairs.
    let res = run_robust_pairs(&Scale::smoke(), 9, 2, 0.8);
    assert!(res.front_size >= 1);
    for p in &res.pairs {
        assert!(p.robustness.0 >= 0.0 && p.robustness.1 >= 0.0);
        assert!(p.validation_latency_s.0 > 0.0 && p.validation_latency_s.1 > 0.0);
    }
}

#[test]
fn generalization_smoke() {
    let res = run_generalization(&Scale::smoke(), 10);
    assert_eq!(res.rows.len(), 8, "eight unseen networks");
    // Hypervolumes are finite and at least half the networks have
    // non-empty validated fronts for both methods at smoke scale.
    let populated = res
        .rows
        .iter()
        .filter(|r| r.unico_hv > 0.0 && r.hasco_hv > 0.0)
        .count();
    assert!(populated >= 4, "only {populated}/8 networks populated");
    assert!(res.mean_gain().is_some());
}

#[test]
fn ascend_smoke() {
    let suite = vec![zoo::fsrcnn(160, 60)];
    let res = run_ascend(&Scale::smoke(), 11, Some(suite));
    assert_eq!(res.rows.len(), 1);
    assert!(res.search_cost_h > 0.0);
    // Default config must be evaluable.
    assert!(res.rows[0].default.is_some());
}
