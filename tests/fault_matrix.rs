//! The fault matrix: every fault kind (eval error, worker panic,
//! stall-past-deadline) injected at the first, middle, and last SH
//! round of the smoke run. Every cell must complete the run without
//! aborting, and the v3 run report must surface the injection, retry,
//! and quarantine counters.
//!
//! Batch numbering: the smoke configuration runs 3 MOBO iterations of
//! 3 SH rounds each (`ceil(log2 6)` with `batch = 6`), so advance
//! batches 0..=8 cover the run; 0 is the first round, 4 the middle,
//! 8 the last. A fault planted at `(batch, session)` only fires if
//! that session is still selected in that round, so each cell plants
//! its fault on every session index — whichever survivors the round
//! actually advances get hit.

use std::sync::Arc;

use unico::prelude::*;

const BATCH: usize = 6;
const FIRST: u64 = 0;
const MIDDLE: u64 = 4;
const LAST: u64 = 8;

fn smoke_cfg(seed: u64) -> UnicoConfig {
    UnicoConfig {
        max_iter: 3,
        batch: BATCH,
        b_max: 32,
        candidate_pool: 32,
        seed,
        ..UnicoConfig::default()
    }
}

fn run_with_plan(plan: FaultPlan) -> UnicoResult<HwConfig> {
    let cache = Arc::new(EvalCache::new());
    let platform = SpatialPlatform::edge().with_eval_cache(cache);
    let nets = [zoo::mobilenet_v1()];
    let env = CoSearchEnv::new(
        &platform,
        &nets,
        EnvConfig {
            max_layers_per_network: 1,
            power_cap_mw: Some(2_000.0),
            area_cap_mm2: None,
        },
    );
    let ctx = FaultContext::new(plan, RetryPolicy::default());
    let opts = RunOptions {
        faults: Some(&ctx),
        ..RunOptions::default()
    };
    Unico::new(smoke_cfg(7)).run_with_options(&env, &opts)
}

fn plan_for_all_sessions(batch: u64, kind: FaultKind) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for session in 0..BATCH {
        plan = plan.with_fault(batch, session, kind);
    }
    plan
}

#[test]
fn fault_matrix_completes_every_cell() {
    for kind in [
        FaultKind::EvalError,
        FaultKind::WorkerPanic,
        FaultKind::Stall,
    ] {
        for batch in [FIRST, MIDDLE, LAST] {
            let res = run_with_plan(plan_for_all_sessions(batch, kind));
            // The run ran to completion: every iteration evaluated its
            // full batch and the trace recorded every boundary.
            assert_eq!(res.evaluations.len(), 18, "{kind:?}@{batch}");
            assert_eq!(res.trace.points().len(), 3, "{kind:?}@{batch}");
            let f = res
                .report
                .faults
                .unwrap_or_else(|| panic!("{kind:?}@{batch}: fault section missing"));
            assert!(f.injected > 0, "{kind:?}@{batch}: nothing injected");
            let kind_count = match kind {
                FaultKind::EvalError => f.errors,
                FaultKind::WorkerPanic => f.panics,
                FaultKind::Stall => f.stalls,
            };
            assert!(kind_count > 0, "{kind:?}@{batch}: kind counter empty");
            let json = res.report.deterministic_json();
            assert!(
                json.contains("\"faults\":{\"injected\":"),
                "{kind:?}@{batch}: report lacks faults section"
            );
            match kind {
                // Single-fire errors and stalls recover on the first
                // retry; nothing is quarantined.
                FaultKind::EvalError | FaultKind::Stall => {
                    assert!(f.retries > 0, "{kind:?}@{batch}: no retry issued");
                    assert_eq!(f.quarantines, 0, "{kind:?}@{batch}");
                }
                // Worker panics poison the session outright (the engine
                // contains the panic); no retry is attempted.
                FaultKind::WorkerPanic => {
                    assert_eq!(f.retries, 0, "{kind:?}@{batch}");
                    assert!(
                        res.report.counters["engine_panics"] >= f.panics,
                        "{kind:?}@{batch}: engine must contain every injected panic"
                    );
                }
            }
        }
    }
}

#[test]
fn repeating_fault_exhausts_retries_and_quarantines() {
    // Fire on every attempt (initial + both retries): the session must
    // be quarantined and the round still completes.
    let mut plan = FaultPlan::new();
    for session in 0..BATCH {
        plan = plan.with_repeating_fault(FIRST, session, FaultKind::EvalError, 3);
    }
    let res = run_with_plan(plan);
    assert_eq!(res.evaluations.len(), 18);
    let f = res.report.faults.expect("faults fired");
    assert!(f.quarantines > 0, "exhausted retries must quarantine");
    assert!(f.retries > 0);
    // Quarantined sessions surface as infeasible records in iteration 0.
    let infeasible_iter0 = res
        .evaluations
        .iter()
        .filter(|r| r.iteration == 0 && r.assessment.is_none())
        .count();
    assert!(infeasible_iter0 > 0, "quarantine must score infeasible");
}

#[test]
fn seeded_fault_plans_are_deterministic() {
    let plan = || FaultPlan::seeded(33, 0.35);
    let a = run_with_plan(plan());
    let b = run_with_plan(plan());
    assert_eq!(a.report.faults, b.report.faults, "same seed, same faults");
    assert_eq!(a.report.deterministic_json(), b.report.deterministic_json());
    let f = a.report.faults.expect("35% rate over 9 batches must fire");
    assert!(f.injected > 0);
}

#[test]
fn fault_free_plan_leaves_report_clean() {
    let res = run_with_plan(FaultPlan::new());
    assert!(res.report.faults.is_none());
    assert!(res.report.deterministic_json().contains("\"faults\":null"));
}
