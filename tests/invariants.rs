//! Property-based integration tests of the cross-crate invariants the
//! co-optimizer relies on.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use unico::prelude::*;
use unico_mapping::{MappingCost, MappingOutcome};
use unico_model::{AnalyticalModel, TechParams};
use unico_surrogate::hypervolume::hypervolume;
use unico_surrogate::pareto::{dominates, non_dominated_indices};

fn arb_nest() -> impl Strategy<Value = unico_workloads::LoopNest> {
    (
        1u64..=4,
        1u64..=64,
        1u64..=64,
        1u64..=32,
        1u64..=32,
        1u64..=5,
        1u64..=5,
        1u64..=2,
    )
        .prop_map(|(n, k, c, y, x, r, s, stride)| {
            TensorOp::Conv2d {
                n,
                k,
                c,
                y,
                x,
                r,
                s,
                stride,
            }
            .to_loop_nest()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any mapping the space produces is legal for its nest, and the
    /// analytical model either prices it or rejects it — never panics.
    #[test]
    fn model_total_on_space_samples(nest in arb_nest(), seed in 0u64..1000) {
        let space = MappingSpace::new(&nest);
        let mut rng = StdRng::seed_from_u64(seed);
        let model = AnalyticalModel::new(TechParams::default());
        let hw = HwSpace::edge().sample(&mut rng);
        for _ in 0..10 {
            let m = space.sample(&mut rng);
            if let Ok(ppa) = model.evaluate(&hw, &m, &nest) {
                prop_assert!(ppa.latency_s > 0.0);
                prop_assert!(ppa.power_mw > 0.0);
                prop_assert!(ppa.energy_pj > 0.0);
                // Latency respects the compute bound.
                let floor = nest.macs() as f64
                    / (hw.num_pes() as f64 * model.tech().clock_hz);
                prop_assert!(ppa.latency_s >= floor * 0.99);
            }
        }
    }

    /// Shrink chains always terminate in a feasible or minimal mapping,
    /// and never grow any tile.
    #[test]
    fn shrink_is_monotone(nest in arb_nest(), seed in 0u64..1000) {
        let space = MappingSpace::new(&nest);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = space.sample(&mut rng);
        for _ in 0..64 {
            let next = space.shrink(&mut rng, &m);
            let grew = next
                .l1_tile()
                .iter()
                .zip(m.l1_tile())
                .any(|(a, b)| *a > b)
                && next
                    .l2_tile()
                    .iter()
                    .zip(m.l2_tile())
                    .any(|(a, b)| *a > b);
            prop_assert!(!grew, "shrink grew both tile levels");
            m = next;
        }
        // After many shrinks the working set is tiny.
        prop_assert!(m.l1_tile_macs() <= 4096);
    }

    /// The best-so-far curve of any searcher is monotone non-increasing
    /// and budget accounting is exact.
    #[test]
    fn search_histories_are_monotone(seed in 0u64..500) {
        let nest = TensorOp::Conv2d {
            n: 1, k: 32, c: 16, y: 16, x: 16, r: 3, s: 3, stride: 1,
        }.to_loop_nest();
        struct Quadratic;
        impl MappingCost for Quadratic {
            fn assess(&self, m: &Mapping) -> Option<MappingOutcome> {
                let t = m.l1_tile();
                if t[1] > 16 { return None; }
                let loss = (t[1] as f64 - 8.0).powi(2) + t[2] as f64;
                Some(MappingOutcome { loss, latency_s: loss, power_mw: 1.0 })
            }
        }
        let mut s = unico_mapping::AnnealingSearch::new(
            MappingSpace::new(&nest),
            StdRng::seed_from_u64(seed),
        );
        s.run_until(&Quadratic, 120);
        prop_assert_eq!(s.history().spent(), 120);
        let mut prev = f64::INFINITY;
        for b in 1..=120 {
            if let Some(best) = s.history().best_at(b) {
                prop_assert!(best.loss <= prev + 1e-12);
                prev = best.loss;
            }
        }
    }

    /// The two analytical engines (data-centric / loop-centric) agree on
    /// feasibility and area, and price feasible mappings within a small
    /// factor of each other — the property that makes them
    /// interchangeable prototyping oracles.
    #[test]
    fn analytical_engines_are_consistent(nest in arb_nest(), seed in 0u64..400) {
        use unico_model::{AnalyticalModel, LoopCentricModel};
        let dc = AnalyticalModel::new(TechParams::default());
        let lc = LoopCentricModel::new(TechParams::default());
        let space = MappingSpace::new(&nest);
        let mut rng = StdRng::seed_from_u64(seed);
        let hw = HwSpace::edge().sample(&mut rng);
        for _ in 0..6 {
            let m = space.sample(&mut rng);
            let a = dc.evaluate(&hw, &m, &nest);
            let b = lc.evaluate(&hw, &m, &nest);
            prop_assert_eq!(a.is_ok(), b.is_ok(), "feasibility must agree");
            if let (Ok(a), Ok(b)) = (a, b) {
                prop_assert_eq!(a.area_mm2, b.area_mm2, "area must be identical");
                let ratio = a.latency_s / b.latency_s;
                prop_assert!(
                    (0.05..20.0).contains(&ratio),
                    "engines diverge wildly: {} vs {}",
                    a.latency_s,
                    b.latency_s
                );
            }
        }
    }

    /// Pareto front + hypervolume invariants on random point clouds.
    #[test]
    fn pareto_hypervolume_invariants(
        pts in proptest::collection::vec(
            proptest::array::uniform3(0.0f64..1.0), 1..40)
    ) {
        let cloud: Vec<Vec<f64>> = pts.iter().map(|p| p.to_vec()).collect();
        let nd = non_dominated_indices(&cloud);
        prop_assert!(!nd.is_empty());
        // Non-dominated subset has the same hypervolume as the cloud.
        let reference = vec![1.1, 1.1, 1.1];
        let hv_all = hypervolume(&cloud, &reference);
        let front: Vec<Vec<f64>> = nd.iter().map(|&i| cloud[i].clone()).collect();
        let hv_front = hypervolume(&front, &reference);
        prop_assert!((hv_all - hv_front).abs() < 1e-9);
        // No front member dominates another.
        for i in 0..front.len() {
            for j in 0..front.len() {
                if i != j {
                    prop_assert!(!dominates(&front[i], &front[j]));
                }
            }
        }
    }

    /// The robustness metric stays within its analytic bounds
    /// `(1 + min F)·Δ ≤ R ≤ 3Δ` on arbitrary optimal/sub-optimal pairs.
    /// The paper's polynomial dips slightly below zero at its vertex
    /// (`θ* = 5π/12`, `F(θ*) = 1 − 25/24 ≈ −0.0417`), so the exact lower
    /// bound is `(1 − 25/24 + 1)·Δ = (23/24)·Δ`.
    #[test]
    fn robustness_bounds(
        lat in 0.01f64..10.0,
        pow in 1.0f64..1000.0,
        dlat in 0.0f64..5.0,
        dpow in -0.9f64..5.0,
    ) {
        let sub_lat = lat * (1.0 + dlat);
        let sub_pow = pow * (1.0 + dpow);
        let r = unico_core::robustness::robustness_from_points(lat, pow, sub_lat, sub_pow);
        let dx = dlat;
        let dy = dpow;
        let delta = (dx * dx + dy * dy).sqrt();
        prop_assert!(r >= (23.0 / 24.0) * delta - 1e-9, "R {} vs 23Δ/24 {}", r, delta);
        prop_assert!(r <= 3.0 * delta + 1e-9);
    }
}
