//! End-to-end integration tests spanning the whole stack: workloads →
//! platform → mapping search → SH/MSH → UNICO, on both platforms.

use unico::prelude::*;
use unico_search::{run_mobohb, EnvConfig, MobohbConfig};

fn edge_env<'p>(
    platform: &'p SpatialPlatform,
    nets: &[Network],
) -> CoSearchEnv<'p, SpatialPlatform> {
    CoSearchEnv::new(
        platform,
        nets,
        EnvConfig {
            max_layers_per_network: 1,
            power_cap_mw: Some(2_000.0),
            area_cap_mm2: None,
        },
    )
}

fn smoke_unico(seed: u64) -> UnicoConfig {
    UnicoConfig {
        max_iter: 3,
        batch: 6,
        b_max: 32,
        candidate_pool: 32,
        seed,
        ..UnicoConfig::default()
    }
}

#[test]
fn unico_full_pipeline_on_spatial_platform() {
    let platform = SpatialPlatform::edge();
    let env = edge_env(&platform, &[zoo::mobilenet_v1()]);
    let result = Unico::new(smoke_unico(1)).run(&env);

    assert_eq!(result.hw_evals, 18);
    assert!(!result.front.is_empty(), "Pareto front must not be empty");
    // Every front point satisfies the power cap.
    for (y, _) in result.front.iter() {
        assert!(y[1] <= 2_000.0, "power cap violated: {} mW", y[1]);
        assert!(y[0] > 0.0 && y[2] > 0.0);
    }
    // The knee design is a real evaluated record with a feasible
    // assessment.
    let knee = result.min_euclidean_record().expect("non-empty front");
    assert!(knee.assessment.is_some());
    // Simulated cost is consistent with the per-eval charge: no more
    // than evals x b_max x jobs x 1s of CPU.
    let cpu_upper = 18.0 * 32.0 * env.num_jobs() as f64;
    assert!(result.wall_clock_s <= cpu_upper);
    assert!(result.wall_clock_s > 0.0);
}

#[test]
fn unico_runs_on_ascend_platform_with_area_cap() {
    let platform = AscendPlatform::new();
    let env = CoSearchEnv::new(
        &platform,
        &[zoo::fsrcnn(160, 60)],
        EnvConfig {
            max_layers_per_network: 1,
            power_cap_mw: None,
            area_cap_mm2: Some(200.0),
        },
    );
    let result = Unico::new(smoke_unico(2)).run(&env);
    assert!(!result.front.is_empty(), "Ascend front must not be empty");
    for (y, _) in result.front.iter() {
        assert!(y[2] <= 200.0, "area cap violated: {} mm²", y[2]);
    }
    // CAModel evaluations cost minutes: wall clock must reflect it.
    assert!(
        result.wall_clock_s > 1_000.0,
        "CAModel cost regime missing: {} s",
        result.wall_clock_s
    );
}

#[test]
fn unico_beats_pure_random_search_given_equal_iterations() {
    // MOBOHB with random_fraction = 1.0 degenerates to random batch
    // sampling + SH; UNICO's surrogate guidance should on average reach
    // an equal-or-better front. The robustness objective is disabled so
    // both sides optimize the same 3-dim PPA target (with R enabled,
    // UNICO deliberately trades a little PPA hypervolume for
    // generalization). Compare hypervolumes in a shared normalized space
    // over a couple of seeds.
    use unico_surrogate::hypervolume::hypervolume;
    use unico_surrogate::scalarize::normalize_columns;

    let platform = SpatialPlatform::edge();
    let env = edge_env(&platform, &[zoo::resnet50()]);
    let mut unico_wins = 0;
    let seeds = [3u64, 17, 91];
    for &seed in &seeds {
        let unico = Unico::new(
            UnicoConfig {
                max_iter: 5,
                batch: 8,
                b_max: 48,
                candidate_pool: 64,
                seed,
                ..UnicoConfig::default()
            }
            .without_robustness(),
        )
        .run(&env);
        let random = run_mobohb(
            &env,
            &MobohbConfig {
                iterations: 5,
                batch: 8,
                b_max: 48,
                random_fraction: 1.0,
                seed,
                ..MobohbConfig::default()
            },
        );
        let mut all = unico.front.objectives();
        let split = all.len();
        all.extend(random.front.objectives());
        let normalized = normalize_columns(&all);
        let hv_unico = hypervolume(&normalized[..split], &[1.1, 1.1, 1.1]);
        let hv_random = hypervolume(&normalized[split..], &[1.1, 1.1, 1.1]);
        if hv_unico >= hv_random {
            unico_wins += 1;
        }
    }
    assert!(
        unico_wins >= 2,
        "UNICO won only {unico_wins}/{} seeds against random",
        seeds.len()
    );
}

#[test]
fn multi_workload_co_optimization() {
    let platform = SpatialPlatform::edge();
    let nets = vec![zoo::mobilenet_v1(), zoo::resnet50()];
    let env = edge_env(&platform, &nets);
    assert_eq!(env.num_jobs(), 2);
    let result = Unico::new(smoke_unico(4)).run(&env);
    // Multi-workload fronts exist and record robustness.
    assert!(!result.front.is_empty());
    assert!(result
        .evaluations
        .iter()
        .any(|r| r.assessment.is_some() && r.robustness.is_some()));
}

#[test]
fn facade_prelude_exposes_the_stack() {
    // Compile-time check that the prelude covers the common types, plus
    // a tiny runtime sanity pass through each re-exported module.
    let nest = TensorOp::Gemm { m: 8, n: 8, k: 8 }.to_loop_nest();
    let space = MappingSpace::new(&nest);
    let mapping = Mapping::identity(&nest);
    assert!(space.log10_size() > 0.0);
    assert_eq!(mapping.num_l2_tiles(&nest), 1);
    assert!(HwSpace::edge().size() > 0);
    assert_eq!(
        HwConfig::new(2, 2, 64, 1024, 64, Dataflow::WeightStationary).num_pes(),
        4
    );
    assert_eq!(AscendConfig::expert_default().cube_macs(), 4096);
    assert!(Scale::smoke().batch < Scale::paper().batch);
}
