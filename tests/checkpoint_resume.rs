//! The resume-equivalence oracle: killing a seeded run at *every*
//! checkpoint boundary and resuming it must reproduce an uninterrupted
//! same-seed run bit-for-bit — same Pareto-front bit patterns, same
//! deterministic run-report JSON, and the same evaluation-cache trace.
//!
//! The kill is a real panic: `RunOptions::kill_after` fires at the
//! boundary *after* the snapshot is armed but *before* the periodic
//! write, so the file the resume reads is the one flushed by the
//! panic-guard `Drop` — the crash path, not the happy path.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

use unico::prelude::*;
use unico_core::checkpoint;

fn smoke_cfg(seed: u64) -> UnicoConfig {
    UnicoConfig {
        max_iter: 3,
        batch: 6,
        b_max: 32,
        candidate_pool: 32,
        seed,
        ..UnicoConfig::default()
    }
}

fn edge_env<'p>(
    platform: &'p SpatialPlatform,
    nets: &[Network],
) -> CoSearchEnv<'p, SpatialPlatform> {
    CoSearchEnv::new(
        platform,
        nets,
        EnvConfig {
            max_layers_per_network: 1,
            power_cap_mw: Some(2_000.0),
            area_cap_mm2: None,
        },
    )
}

fn front_bits(r: &UnicoResult<HwConfig>) -> Vec<Vec<u64>> {
    r.front
        .objectives()
        .iter()
        .map(|y| y.iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("unico-resume-oracle");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(name)
}

/// One uninterrupted checkpointed run: the reference the killed/resumed
/// runs are compared against.
fn reference_run(path: &std::path::Path) -> (UnicoResult<HwConfig>, String) {
    let cache = Arc::new(EvalCache::new());
    let platform = SpatialPlatform::edge().with_eval_cache(Arc::clone(&cache));
    let nets = [zoo::mobilenet_v1()];
    let env = edge_env(&platform, &nets);
    let opts = RunOptions {
        checkpoint: Some(CheckpointPolicy::new(path.to_path_buf())),
        ..RunOptions::default()
    };
    let res = Unico::new(smoke_cfg(7)).run_with_options(&env, &opts);
    (res, cache.to_trace())
}

#[test]
fn kill_at_every_boundary_then_resume_matches_uninterrupted() {
    let ref_path = scratch("reference.checkpoint");
    let (reference, reference_trace) = reference_run(&ref_path);
    let reference_front = front_bits(&reference);
    let reference_json = reference.report.deterministic_json();
    assert!(
        reference_json.contains("\"checkpoint\":{\"written\":3}"),
        "every=1 over 3 iterations writes 3 checkpoints: {reference_json}"
    );

    let max_iter = smoke_cfg(7).max_iter;
    for kill_at in 1..max_iter {
        let path = scratch(&format!("killed-at-{kill_at}.checkpoint"));
        std::fs::remove_file(&path).ok();

        // Phase 1: run with the kill hook armed; the panic guard must
        // flush boundary `kill_at` on the way out.
        {
            let cache = Arc::new(EvalCache::new());
            let platform = SpatialPlatform::edge().with_eval_cache(Arc::clone(&cache));
            let nets = [zoo::mobilenet_v1()];
            let env = edge_env(&platform, &nets);
            let opts = RunOptions {
                checkpoint: Some(CheckpointPolicy::new(path.clone())),
                kill_after: Some(kill_at),
                ..RunOptions::default()
            };
            let unico = Unico::new(smoke_cfg(7));
            let outcome = catch_unwind(AssertUnwindSafe(|| unico.run_with_options(&env, &opts)));
            assert!(outcome.is_err(), "kill hook must abort the run");
        }
        let flushed = checkpoint::Checkpoint::read(&path)
            .unwrap_or_else(|e| panic!("boundary {kill_at} checkpoint unreadable: {e}"));
        assert_eq!(flushed.iterations_done, kill_at);
        assert_eq!(
            flushed.counters["checkpoints_written"], kill_at as u64,
            "guard flush counts itself"
        );

        // Phase 2: resume on a fresh platform with a fresh cache.
        let cache = Arc::new(EvalCache::new());
        let platform = SpatialPlatform::edge().with_eval_cache(Arc::clone(&cache));
        let nets = [zoo::mobilenet_v1()];
        let env = edge_env(&platform, &nets);
        let opts = RunOptions {
            checkpoint: Some(CheckpointPolicy::new(path.clone())),
            ..RunOptions::default()
        };
        let resumed = Unico::resume_with_options(&env, &path, &opts)
            .unwrap_or_else(|e| panic!("resume from boundary {kill_at} failed: {e}"));

        // The oracle: bit-identical front, byte-identical deterministic
        // report, byte-identical cache trace.
        assert_eq!(
            front_bits(&resumed),
            reference_front,
            "front diverged after kill at boundary {kill_at}"
        );
        assert_eq!(
            resumed.report.deterministic_json(),
            reference_json,
            "report diverged after kill at boundary {kill_at}"
        );
        assert_eq!(
            cache.to_trace(),
            reference_trace,
            "cache trace diverged after kill at boundary {kill_at}"
        );
        assert_eq!(resumed.evaluations.len(), reference.evaluations.len());
        assert_eq!(resumed.wall_clock_s, reference.wall_clock_s);
    }
}

#[test]
fn resume_refuses_mismatched_platform() {
    let path = scratch("platform-mismatch.checkpoint");
    let cache = Arc::new(EvalCache::new());
    let platform = SpatialPlatform::edge().with_eval_cache(Arc::clone(&cache));
    let nets = [zoo::mobilenet_v1()];
    let env = edge_env(&platform, &nets);
    let opts = RunOptions {
        checkpoint: Some(CheckpointPolicy::new(path.clone())),
        ..RunOptions::default()
    };
    let _ = Unico::new(smoke_cfg(11)).run_with_options(&env, &opts);

    let other = SpatialPlatform::cloud();
    let other_env = CoSearchEnv::new(
        &other,
        &nets,
        EnvConfig {
            max_layers_per_network: 1,
            power_cap_mw: Some(2_000.0),
            area_cap_mm2: None,
        },
    );
    match Unico::resume(&other_env, &path) {
        Err(CheckpointError::Schema(m)) => {
            assert!(m.contains("spatial-edge") && m.contains("spatial-cloud"))
        }
        other => panic!("expected platform mismatch, got {other:?}"),
    }
}

#[test]
fn resume_of_completed_run_returns_final_state_without_rerunning() {
    let path = scratch("completed.checkpoint");
    let cache = Arc::new(EvalCache::new());
    let platform = SpatialPlatform::edge().with_eval_cache(Arc::clone(&cache));
    let nets = [zoo::mobilenet_v1()];
    let env = edge_env(&platform, &nets);
    let opts = RunOptions {
        checkpoint: Some(CheckpointPolicy::new(path.clone())),
        ..RunOptions::default()
    };
    let full = Unico::new(smoke_cfg(7)).run_with_options(&env, &opts);

    let cache2 = Arc::new(EvalCache::new());
    let platform2 = SpatialPlatform::edge().with_eval_cache(Arc::clone(&cache2));
    let env2 = edge_env(&platform2, &nets);
    let resumed = Unico::resume(&env2, &path).expect("resume completed run");
    assert_eq!(front_bits(&resumed), front_bits(&full));
    assert_eq!(resumed.evaluations.len(), full.evaluations.len());
    // No new iterations ran: the resumed run evaluated nothing.
    assert_eq!(resumed.report.counters["hw_evals"], 18);
}

#[test]
fn coarser_cadence_still_recovers_from_last_written_boundary() {
    // every=2 over 3 iterations writes at boundaries 2 and 3. Killing at
    // boundary 1 leaves the guard-flushed boundary-1 snapshot; resume
    // completes the run with a correct front.
    let path = scratch("cadence-2.checkpoint");
    std::fs::remove_file(&path).ok();
    let nets = [zoo::mobilenet_v1()];
    {
        let cache = Arc::new(EvalCache::new());
        let platform = SpatialPlatform::edge().with_eval_cache(Arc::clone(&cache));
        let env = edge_env(&platform, &nets);
        let opts = RunOptions {
            checkpoint: Some(CheckpointPolicy::new(path.clone()).with_every(2)),
            kill_after: Some(1),
            ..RunOptions::default()
        };
        let unico = Unico::new(smoke_cfg(7));
        assert!(catch_unwind(AssertUnwindSafe(|| unico.run_with_options(&env, &opts))).is_err());
    }
    let flushed = checkpoint::Checkpoint::read(&path).expect("guard flushed boundary 1");
    assert_eq!(flushed.iterations_done, 1);

    let cache = Arc::new(EvalCache::new());
    let platform = SpatialPlatform::edge().with_eval_cache(Arc::clone(&cache));
    let env = edge_env(&platform, &nets);
    let resumed = Unico::resume(&env, &path).expect("resume");
    // Same final front as a plain run (report counters differ: the
    // cadence changes how many checkpoints are written).
    let reference = {
        let cache = Arc::new(EvalCache::new());
        let platform = SpatialPlatform::edge().with_eval_cache(Arc::clone(&cache));
        let env = edge_env(&platform, &nets);
        Unico::new(smoke_cfg(7)).run(&env)
    };
    assert_eq!(front_bits(&resumed), front_bits(&reference));
}
