//! Differential tests for fusion-aware assessment, at the level the
//! service runs it: whole co-optimization environments over committed
//! fixture networks.
//!
//! The contract under test:
//!
//! * an environment whose graphs carry **no usable fusion context**
//!   (edge-less graphs, or a platform without a fused-cost pricer) is
//!   **bitwise identical** to the historical per-layer path — same
//!   front bits, same evaluation-cache trace, same report;
//! * any **accepted multi-layer group** strictly reduces modeled DRAM
//!   traffic versus running its members standalone, while its members
//!   stay legal (the pricer rejects any group whose resident
//!   intermediates would overflow L2 — pinned at the model layer in
//!   `unico-model`'s fused tests).

use std::sync::Arc;

use unico::model::PpaEngine;
use unico::prelude::*;

fn smoke_cfg(seed: u64) -> UnicoConfig {
    UnicoConfig {
        max_iter: 2,
        batch: 4,
        b_max: 24,
        candidate_pool: 16,
        seed,
        ..UnicoConfig::default()
    }
}

fn fixture_graph() -> ImportedGraph {
    frontend::import_json(include_str!("fixtures/tiny_cnn.graph.json"))
        .expect("committed fixture imports")
}

fn front_bits(r: &UnicoResult<unico::model::HwConfig>) -> Vec<Vec<u64>> {
    r.front
        .objectives()
        .iter()
        .map(|y| y.iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// Wrapping plain networks as edge-less imported graphs must not
/// change a single bit of the run: same front, same cache trace.
#[test]
fn edgeless_graphs_reproduce_per_layer_run_bitwise() {
    let net = zoo::mobilenet_v1();
    let cfg = EnvConfig {
        max_layers_per_network: 1,
        power_cap_mw: Some(2_000.0),
        area_cap_mm2: None,
    };
    let cache_plain = Arc::new(EvalCache::new());
    let plain = {
        let platform = SpatialPlatform::edge().with_eval_cache(Arc::clone(&cache_plain));
        let env = CoSearchEnv::new(&platform, std::slice::from_ref(&net), cfg);
        Unico::new(smoke_cfg(7)).run(&env)
    };
    let cache_wrapped = Arc::new(EvalCache::new());
    let wrapped = {
        let platform = SpatialPlatform::edge().with_eval_cache(Arc::clone(&cache_wrapped));
        let graphs = [ImportedGraph::from_network(net.clone())];
        let env = CoSearchEnv::with_graphs(&platform, &graphs, cfg);
        Unico::new(smoke_cfg(7)).run(&env)
    };
    assert_eq!(front_bits(&plain), front_bits(&wrapped));
    assert_eq!(
        plain.report.deterministic_json(),
        wrapped.report.deterministic_json()
    );
    assert_eq!(cache_plain.to_trace(), cache_wrapped.to_trace());
}

/// A graph **with** fusion edges on a platform **without** a fused
/// pricer (loop-centric engine) also reproduces the per-layer run
/// bitwise — the fusion machinery must be inert, not just close.
#[test]
fn pricer_less_platform_keeps_fused_env_bitwise_identical() {
    let graph = fixture_graph();
    let cfg = EnvConfig {
        max_layers_per_network: 4,
        power_cap_mw: Some(2_000.0),
        area_cap_mm2: None,
    };
    let cache_plain = Arc::new(EvalCache::new());
    let plain = {
        let platform = SpatialPlatform::edge()
            .with_engine(PpaEngine::LoopCentric)
            .with_eval_cache(Arc::clone(&cache_plain));
        let nets = [graph.network().clone()];
        let env = CoSearchEnv::new(&platform, &nets, cfg);
        Unico::new(smoke_cfg(7)).run(&env)
    };
    let cache_fused = Arc::new(EvalCache::new());
    let fused = {
        let platform = SpatialPlatform::edge()
            .with_engine(PpaEngine::LoopCentric)
            .with_eval_cache(Arc::clone(&cache_fused));
        let env = CoSearchEnv::with_graphs(&platform, std::slice::from_ref(&graph), cfg);
        Unico::new(smoke_cfg(7)).run(&env)
    };
    assert_eq!(front_bits(&plain), front_bits(&fused));
    assert_eq!(cache_plain.to_trace(), cache_fused.to_trace());
    assert_eq!(
        plain.report.counters["fusion_groups_tried"],
        fused.report.counters["fusion_groups_tried"]
    );
    assert_eq!(fused.report.counters["fusion_groups_tried"], 0);
}

/// Accepted multi-layer groups strictly reduce modeled DRAM bytes and
/// never worsen the assessment versus the unfused twin on the same
/// hardware and seed.
#[test]
fn accepted_groups_strictly_reduce_dram_on_fixture_network() {
    let graph = fixture_graph();
    let cfg = EnvConfig {
        max_layers_per_network: 4,
        power_cap_mw: None,
        area_cap_mm2: None,
    };
    let platform = SpatialPlatform::edge();
    let nets = [graph.network().clone()];
    let e_plain = CoSearchEnv::new(&platform, &nets, cfg);
    let e_fused = CoSearchEnv::with_graphs(&platform, std::slice::from_ref(&graph), cfg);
    let mut rng = rand::SeedableRng::seed_from_u64(17);
    for attempt in 0..60 {
        let hw = e_plain.platform().sample_hw(&mut rng);
        let mut plain = e_plain.session(hw, attempt);
        let mut fused = e_fused.session(hw, attempt);
        plain.advance_to(80);
        fused.advance_to(80);
        let (Some(pa), Some(pf)) = (plain.assess(), fused.assess()) else {
            continue;
        };
        let Some(report) = fused.fusion_report_at(80) else {
            continue;
        };
        if report.stats.groups_accepted == 0 {
            continue;
        }
        assert!(
            report.dram_bytes_fused < report.dram_bytes_unfused,
            "accepted groups must strictly reduce DRAM traffic \
             (fused {} vs unfused {})",
            report.dram_bytes_fused,
            report.dram_bytes_unfused
        );
        assert!(pf.latency_s <= pa.latency_s);
        assert!(!report.overrides.is_empty());
        return;
    }
    panic!("no hardware with an accepted fused group in 60 samples");
}
