//! Offline drop-in shim for the subset of the crates.io `rand` 0.8 API
//! that the UNICO workspace uses.
//!
//! The build environment for this repository is air-gapped: no registry
//! is reachable, so external crates cannot be resolved. This local
//! package keeps the familiar `rand` import paths (`rand::Rng`,
//! `rand::SeedableRng`, `rand::rngs::StdRng`, `rand::seq::SliceRandom`)
//! while providing a self-contained, deterministic implementation:
//! [`rngs::StdRng`] is a SplitMix64-seeded xoshiro256++ generator.
//!
//! The shim intentionally implements only what the workspace calls:
//! `gen_range` over (inclusive) ranges of the primitive integer and
//! float types, `gen_bool`, `seed_from_u64`, `shuffle` and `choose`.
//! Statistical quality matches the upstream generator family; the
//! streams differ from upstream `StdRng` (which is seed-stable only
//! within this workspace anyway).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64` words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`] (mirroring upstream `rand`).
pub trait Rng: RngCore {
    /// A uniform value in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps a `u64` to the unit interval `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)` (`hi` inclusive when `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample from empty range");
                // Modulo bias is negligible for the spans this workspace
                // draws from (all far below 2^64).
                let offset = (rng.next_u64() as u128 % span as u128) as i128;
                (lo_w + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo < hi || (_inclusive && lo == hi), "cannot sample from empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Seedable generators (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded through
    /// SplitMix64. Deterministic, `Clone`, and fast; not cryptographic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Blackman & Vigna's guidance for
            // seeding xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing a generator
        /// mid-stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`StdRng::state`]; the restored generator continues the
        /// original stream exactly.
        ///
        /// # Panics
        ///
        /// Panics if the state is all-zero (the one state xoshiro256++
        /// cannot leave).
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s.iter().any(|&w| w != 0), "xoshiro state must be nonzero");
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers (the `rand::seq` subset).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let draws_a: Vec<u64> = (0..16).map(|_| a.gen_range(0..1u64 << 40)).collect();
        let draws_c: Vec<u64> = (0..16).map(|_| c.gen_range(0..1u64 << 40)).collect();
        assert_ne!(draws_a, draws_c, "different seeds should diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
        assert_eq!(rng.gen_range(4usize..5), 4);
        assert_eq!(rng.gen_range(9i64..=9), 9);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn float_draws_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.0f64..1.0);
            lo = lo.min(v);
            hi = hi.max(v);
            assert!((0.0..1.0).contains(&v));
        }
        assert!(lo < 0.05 && hi > 0.95, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn shuffle_is_permutation_and_choose_in_slice() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..37 {
            let _ = a.gen_range(0u64..1000);
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1 << 50), b.gen_range(0u64..1 << 50));
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn all_zero_state_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let v = draw(&mut rng);
        assert!(v < 100);
    }
}
