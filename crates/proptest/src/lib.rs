//! Offline drop-in shim for the subset of the `proptest` 1.x API that
//! the UNICO workspace uses.
//!
//! The build environment is air-gapped, so the real crates.io `proptest`
//! cannot be resolved. This package keeps the familiar surface — the
//! [`proptest!`] macro, [`Strategy`] combinators (`prop_map`,
//! `prop_shuffle`), range/tuple/[`Just`] strategies,
//! [`array::uniform3`]-style array strategies, [`collection::vec`], and
//! the `prop_assert*` macros — backed by a simple deterministic
//! random-testing engine.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its case index and the
//!   test's deterministic seed; re-running reproduces it exactly.
//! * **Deterministic seeding.** Case `i` of test `t` draws from
//!   `StdRng::seed_from_u64(fnv1a(t) ^ i)`, so failures are stable
//!   across runs and machines.
//! * **No `.proptest-regressions` files.** Upstream persists shrunk
//!   failures to per-crate regression files and replays them first; this
//!   shim neither reads nor writes them (deterministic seeding already
//!   makes every failure reproducible), so such files next to tests are
//!   dead weight and should not be committed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng;

/// Re-exports everything tests conventionally import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Per-test configuration (the `with_cases` subset).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Uniformly shuffles the generated collection.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { inner: self }
    }
}

/// Collections [`Strategy::prop_shuffle`] can permute.
pub trait Shuffleable {
    /// Shuffles `self` in place.
    fn shuffle(&mut self, rng: &mut StdRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut StdRng) {
        rand::seq::SliceRandom::shuffle(self.as_mut_slice(), rng);
    }
}

impl<T, const N: usize> Shuffleable for [T; N] {
    fn shuffle(&mut self, rng: &mut StdRng) {
        rand::seq::SliceRandom::shuffle(self.as_mut_slice(), rng);
    }
}

/// Strategy producing a constant (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Debug, Clone)]
pub struct Shuffle<S> {
    inner: S,
}

impl<S> Strategy for Shuffle<S>
where
    S: Strategy,
    S::Value: Shuffleable,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        let mut v = self.inner.new_value(rng);
        v.shuffle(rng);
        v
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0 / 0);
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6);
impl_tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7
);
impl_tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7,
    S8 / 8
);
impl_tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7,
    S8 / 8,
    S9 / 9
);

/// Fixed-size array strategies (`uniform2(s)` ⇒ `[S::Value; 2]`, …).
pub mod array {
    use super::{StdRng, Strategy};

    /// Strategy producing `[S::Value; N]` from one element strategy.
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            std::array::from_fn(|_| self.0.new_value(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($name:ident => $n:literal),+ $(,)?) => {$(
            /// Array strategy drawing every element from `strategy`.
            pub fn $name<S: Strategy>(strategy: S) -> UniformArray<S, $n> {
                UniformArray(strategy)
            }
        )+};
    }

    uniform_fns!(
        uniform1 => 1, uniform2 => 2, uniform3 => 3, uniform4 => 4,
        uniform5 => 5, uniform6 => 6, uniform7 => 7, uniform8 => 8,
    );
}

/// Collection strategies (the `vec` subset).
pub mod collection {
    use super::{Rng, StdRng, Strategy};

    /// Strategy producing vectors with length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A vector strategy: every element from `element`, length uniform in
    /// `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.start..self.len.end);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// FNV-1a hash of a test name; the per-test seed base.
pub fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Runs `cases` deterministic cases of a property. Used by the
/// [`proptest!`] macro; not intended to be called directly.
pub fn run_property<V>(
    test_name: &str,
    config: &ProptestConfig,
    strategy: &impl Strategy<Value = V>,
    body: impl Fn(V),
) {
    let base = fnv1a(test_name);
    for case in 0..u64::from(config.cases) {
        let mut rng = StdRng::seed_from_u64(base ^ case);
        let value = strategy.new_value(&mut rng);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(value)));
        if let Err(panic) = outcome {
            eprintln!(
                "proptest shim: property `{test_name}` failed at case {case}/{} \
                 (deterministic seed {:#x}); rerun to reproduce",
                config.cases,
                base ^ case,
            );
            std::panic::resume_unwind(panic);
        }
    }
}

pub use rand::SeedableRng as __SeedableRng;

/// Defines property tests: `proptest! { #![proptest_config(cfg)] fn
/// name(x in strategy, ...) { body } ... }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; do not use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            $crate::run_property(
                stringify!($name),
                &config,
                &strategy,
                |($($arg,)+)| { $body },
            );
        }
    )*};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)+) => { assert!($($tt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)+) => { assert_eq!($($tt)+) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)+) => { assert_ne!($($tt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_values_per_case() {
        let strat = (0u64..1000, 0.0f64..1.0);
        let mut first: Vec<(u64, f64)> = Vec::new();
        let mut second: Vec<(u64, f64)> = Vec::new();
        for out in [&mut first, &mut second] {
            let base = crate::fnv1a("t");
            for case in 0..10 {
                let mut rng = rand::SeedableRng::seed_from_u64(base ^ case);
                out.push(crate::Strategy::new_value(&strat, &mut rng));
            }
        }
        assert_eq!(first, second);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in bounds.
        fn ranges_in_bounds(a in 3u64..17, b in -2i64..=2, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2..=2).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        /// Mapped, tupled, vec and array strategies compose.
        fn combinators_compose(
            v in crate::collection::vec((1u32..5).prop_map(|x| x * 2), 1..6),
            arr in crate::array::uniform4(0.0f64..1.0),
            perm in Just([1u8, 2, 3, 4, 5]).prop_shuffle(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|x| x % 2 == 0 && (2..10).contains(x)));
            prop_assert!(arr.iter().all(|x| (0.0..1.0).contains(x)));
            let mut sorted = perm;
            sorted.sort_unstable();
            prop_assert_eq!(sorted, [1, 2, 3, 4, 5], "shuffle must permute {:?}", perm);
        }
    }
}
