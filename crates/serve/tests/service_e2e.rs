//! End-to-end service tests over real TCP.
//!
//! The durability oracle: boot a daemon, submit a seeded job, kill it
//! mid-run (the `kill_after` hook panics the worker at a checkpoint
//! boundary and leaves the on-disk state exactly as a SIGKILL would —
//! manifest still `running`, checkpoint flushed by the panic guard),
//! boot a fresh daemon over the same state directory, and require the
//! auto-resumed job's Pareto front bits and deterministic run report
//! to be byte-identical to an uninterrupted same-seed run.
//!
//! Plus: cross-job evaluation-cache sharing observable in `/metrics`,
//! and NDJSON event streaming over a live connection.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use unico_model::EvalCache;
use unico_serve::metrics::validate_exposition;
use unico_serve::{json, Scheduler, ServeConfig, Server};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("unico-serve-e2e").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Boots a daemon (scheduler + HTTP server) over `state_dir` with its
/// own fresh cache, mirroring a separate OS process.
fn boot(state_dir: &std::path::Path, workers: usize) -> (Server, Arc<Scheduler>) {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        state_dir: state_dir.to_path_buf(),
        ..ServeConfig::default()
    };
    let sched = Scheduler::start(&cfg, Arc::new(EvalCache::new())).expect("boot scheduler");
    let server = Server::serve(&cfg, Arc::clone(&sched)).expect("boot server");
    (server, sched)
}

/// One HTTP exchange on a fresh connection; returns (status, body).
fn request(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    conn.write_all(raw.as_bytes()).expect("send");
    let mut text = String::new();
    conn.read_to_string(&mut text).expect("read");
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(
        addr,
        &format!("GET {path} HTTP/1.1\r\nconnection: close\r\n\r\n"),
    )
}

fn post_job(addr: SocketAddr, body: &str) -> String {
    let raw = format!(
        "POST /v1/jobs HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    let (status, resp) = request(addr, &raw);
    assert_eq!(status, 201, "submit failed: {resp}");
    json::parse(&resp)
        .expect("submit response is JSON")
        .get("id")
        .expect("submit response has id")
        .as_str("id")
        .expect("id is a string")
        .to_string()
}

fn seeded_spec(seed: u64, kill_after: Option<usize>) -> String {
    let kill = kill_after
        .map(|k| format!(", \"kill_after\": {k}"))
        .unwrap_or_default();
    format!(
        r#"{{"platform": "spatial-edge", "workloads": ["mobilenet"],
             "max_iter": 3, "batch": 6, "b_max": 32, "candidate_pool": 32,
             "power_cap_mw": 2000, "seed": {seed}{kill}}}"#
    )
}

fn wait_for_state(addr: SocketAddr, id: &str, want: &str) -> String {
    for _ in 0..1200 {
        let (status, body) = get(addr, &format!("/v1/jobs/{id}"));
        assert_eq!(status, 200, "{body}");
        let state = json::parse(&body)
            .expect("status is JSON")
            .get("state")
            .expect("status has state")
            .as_str("state")
            .expect("state is a string")
            .to_string();
        if state == want {
            return body;
        }
        assert!(
            !(state == "failed" && want != "failed"),
            "job {id} failed while waiting for {want}: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("job {id} never reached state {want:?}");
}

#[test]
fn killed_daemon_resumes_and_matches_uninterrupted_run() {
    // Reference: an uninterrupted run in its own daemon.
    let ref_dir = scratch("oracle-reference");
    let (ref_server, ref_sched) = boot(&ref_dir, 1);
    let ref_id = post_job(ref_server.addr(), &seeded_spec(7, None));
    wait_for_state(ref_server.addr(), &ref_id, "completed");
    let reference = ref_sched
        .get(&ref_id)
        .and_then(|j| j.outcome())
        .expect("reference outcome");
    ref_server.shutdown();
    ref_sched.shutdown();

    // Daemon 1: same seed, killed at checkpoint boundary 1.
    let dir = scratch("oracle-killed");
    let (server1, sched1) = boot(&dir, 1);
    let id = post_job(server1.addr(), &seeded_spec(7, Some(1)));
    for _ in 0..1200 {
        if sched1
            .counters
            .kills_simulated
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(
        sched1
            .counters
            .kills_simulated
            .load(std::sync::atomic::Ordering::Relaxed),
        1,
        "kill hook must fire"
    );
    // The dying daemon's API still says running — no terminal
    // transition was persisted, which is the point.
    let (_, body) = get(server1.addr(), &format!("/v1/jobs/{id}"));
    assert!(body.contains("\"state\":\"running\""), "{body}");
    server1.shutdown();
    sched1.shutdown();

    // Daemon 2 (fresh process, fresh cache, same state dir): recovery
    // requeues the job and resumes it from the flushed checkpoint.
    let (server2, sched2) = boot(&dir, 1);
    let status = wait_for_state(server2.addr(), &id, "completed");
    assert!(status.contains("\"resumed\":true"), "{status}");
    let resumed = sched2
        .get(&id)
        .and_then(|j| j.outcome())
        .expect("resumed outcome");

    // The oracle: bit-identical front, byte-identical deterministic
    // report.
    assert_eq!(resumed.front_bits, reference.front_bits);
    assert_eq!(resumed.deterministic_json(), reference.deterministic_json());
    assert_eq!(resumed.iterations_done, 3);

    // The status document exposes the front and full report.
    assert!(status.contains("\"front_bits\""), "{status}");
    assert!(status.contains("\"report\""), "{status}");
    server2.shutdown();
    sched2.shutdown();
}

#[test]
fn two_jobs_sharing_a_workload_show_cache_hits_in_metrics() {
    let dir = scratch("cache-metrics");
    let (server, sched) = boot(&dir, 1); // one worker: jobs run back to back
    let addr = server.addr();
    let a = post_job(addr, &seeded_spec(5, None));
    let b = post_job(addr, &seeded_spec(5, None));
    wait_for_state(addr, &a, "completed");
    wait_for_state(addr, &b, "completed");

    let (status, text) = get(addr, "/metrics");
    assert_eq!(status, 200);
    validate_exposition(&text).expect("exposition parses");

    let sample = |name: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with(&format!("{name} ")))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing:\n{text}"))
    };
    assert_eq!(sample("unico_serve_jobs_completed_total"), 2.0);
    assert!(
        sample("unico_serve_cache_hits_total") > 0.0,
        "second identical job must hit the shared cache:\n{text}"
    );
    assert!(sample("unico_serve_cache_hit_rate") > 0.0);
    // Phase timers aggregated over both runs are present.
    assert!(
        text.contains("unico_serve_phase_seconds_total{phase="),
        "{text}"
    );
    server.shutdown();
    sched.shutdown();
}

#[test]
fn event_stream_is_ndjson_terminated_by_done() {
    let dir = scratch("events");
    let (server, sched) = boot(&dir, 1);
    let addr = server.addr();
    let id = post_job(addr, &seeded_spec(11, None));

    // Subscribe while the job runs; read until the server closes.
    let (status, framed) = get(addr, &format!("/v1/jobs/{id}/events"));
    assert_eq!(status, 200);
    let payload = decode_chunked(&framed).expect("well-formed chunked stream");
    let lines: Vec<&str> = payload.lines().collect();
    assert!(!lines.is_empty());
    for line in &lines {
        json::parse(line).unwrap_or_else(|e| panic!("invalid NDJSON line {line:?}: {e}"));
    }
    let last = json::parse(lines.last().unwrap()).unwrap();
    assert_eq!(
        last.get("event").unwrap().as_str("event").unwrap(),
        "done",
        "stream must terminate with a done event: {payload}"
    );
    let iteration_lines = lines
        .iter()
        .filter(|l| l.contains("\"event\":\"iteration\""))
        .count();
    assert_eq!(iteration_lines, 3, "one event per iteration: {payload}");

    // Late subscriber: the job is long done, the stream replays the
    // log and still terminates with done.
    wait_for_state(addr, &id, "completed");
    let (_, framed) = get(addr, &format!("/v1/jobs/{id}/events"));
    let replay = decode_chunked(&framed).expect("replay stream");
    assert!(replay
        .lines()
        .last()
        .unwrap()
        .contains("\"event\":\"done\""));

    // Cancelled jobs also close their stream with done.
    let victim = post_job(addr, &seeded_spec(12, None));
    let raw = format!("DELETE /v1/jobs/{victim} HTTP/1.1\r\nconnection: close\r\n\r\n");
    let (code, _) = request(addr, &raw);
    assert_eq!(code, 202);
    server.shutdown();
    sched.shutdown();
}

/// Minimal chunked-transfer decoder (test-side oracle).
fn decode_chunked(mut framed: &str) -> Result<String, String> {
    let mut out = String::new();
    loop {
        let (size_line, rest) = framed.split_once("\r\n").ok_or("missing chunk size line")?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| format!("bad chunk size {size_line:?}"))?;
        if size == 0 {
            return Ok(out);
        }
        if rest.len() < size + 2 {
            return Err("truncated chunk".to_string());
        }
        out.push_str(&rest[..size]);
        framed = &rest[size + 2..];
    }
}
