//! Connection-lifecycle regressions over the event-driven core.
//!
//! These are the bugs the readiness poller exposed and fixed:
//!
//! * a half-sent request line used to pin a worker thread forever —
//!   now the slowloris deadline reaps it (best-effort 408);
//! * an idle keep-alive connection used to occupy a thread until the
//!   daemon died — now the idle deadline drops it, while reuse within
//!   the window keeps working;
//! * a stalled `/events` subscriber used to park a thread and could
//!   back-pressure the job's iteration callback — now its bounded
//!   queue overflows, it is disconnected with a terminal NDJSON
//!   `error` line, the drop is counted in the stats, and job progress
//!   (plus healthy subscribers) is unaffected;
//! * a failed bind or scheduler boot used to panic the daemon — now
//!   both exit nonzero with a one-line diagnostic.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use unico_model::EvalCache;
use unico_serve::{json, Scheduler, ServeConfig, Server};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("unico-serve-lifecycle")
        .join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn boot_with(name: &str, tune: impl FnOnce(&mut ServeConfig)) -> (Server, Arc<Scheduler>) {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        state_dir: scratch(name),
        ..ServeConfig::default()
    };
    tune(&mut cfg);
    let sched = Scheduler::start(&cfg, Arc::new(EvalCache::new())).expect("boot scheduler");
    let server = Server::serve(&cfg, Arc::clone(&sched)).expect("boot server");
    (server, sched)
}

/// Reads until the server closes the connection (or the cap expires);
/// returns whatever arrived.
fn read_until_close(conn: &mut TcpStream, cap: Duration) -> String {
    conn.set_read_timeout(Some(cap)).unwrap();
    let mut text = String::new();
    let mut buf = [0u8; 4096];
    let start = Instant::now();
    loop {
        match conn.read(&mut buf) {
            Ok(0) => return text,
            Ok(n) => text.push_str(&String::from_utf8_lossy(&buf[..n])),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                assert!(
                    start.elapsed() < cap,
                    "server never closed; got so far: {text:?}"
                );
            }
            Err(e) => panic!("read: {e}"),
        }
    }
}

fn request(addr: SocketAddr, raw: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(raw.as_bytes()).expect("send");
    read_until_close(&mut conn, Duration::from_secs(30))
}

fn job_spec(seed: u64, max_iter: usize) -> String {
    format!(
        r#"{{"platform": "spatial-edge", "workloads": ["mobilenet"],
             "max_iter": {max_iter}, "batch": 6, "b_max": 32, "candidate_pool": 32,
             "power_cap_mw": 2000, "seed": {seed}}}"#
    )
}

fn submit(addr: SocketAddr, spec: &str) -> String {
    let resp = request(
        addr,
        &format!(
            "POST /v1/jobs HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{spec}",
            spec.len()
        ),
    );
    assert!(resp.starts_with("HTTP/1.1 201"), "submit failed: {resp}");
    let body = resp.split_once("\r\n\r\n").map(|(_, b)| b).unwrap();
    json::parse(body)
        .expect("submit response")
        .get("id")
        .expect("id")
        .as_str("id")
        .expect("id string")
        .to_string()
}

fn wait_completed(addr: SocketAddr, id: &str) {
    for _ in 0..1200 {
        let resp = request(
            addr,
            &format!("GET /v1/jobs/{id} HTTP/1.1\r\nconnection: close\r\n\r\n"),
        );
        if resp.contains("\"state\":\"completed\"") {
            return;
        }
        assert!(
            !resp.contains("\"state\":\"failed\""),
            "job {id} failed: {resp}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("job {id} never completed");
}

/// Minimal chunked-transfer decoder (test-side oracle).
fn decode_chunked(mut framed: &str) -> Result<String, String> {
    let mut out = String::new();
    loop {
        let (size_line, rest) = framed.split_once("\r\n").ok_or("missing chunk size line")?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| format!("bad chunk size {size_line:?}"))?;
        if size == 0 {
            return Ok(out);
        }
        if rest.len() < size + 2 {
            return Err("truncated chunk".to_string());
        }
        out.push_str(&rest[..size]);
        framed = &rest[size + 2..];
    }
}

#[test]
fn half_sent_request_is_reaped_by_the_slowloris_deadline() {
    let (server, sched) = boot_with("slowloris", |cfg| {
        cfg.head_timeout = Duration::from_millis(300);
    });
    let addr = server.addr();

    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(b"GET /heal").expect("half a request line");
    // Trickling more bytes must NOT reset the deadline.
    std::thread::sleep(Duration::from_millis(150));
    let _ = conn.write_all(b"t");

    let t0 = Instant::now();
    let resp = read_until_close(&mut conn, Duration::from_secs(10));
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "reap must be prompt, took {:?}",
        t0.elapsed()
    );
    // Best-effort 408 when the socket could still take it.
    if !resp.is_empty() {
        assert!(resp.starts_with("HTTP/1.1 408"), "{resp}");
    }
    assert!(
        server
            .stats()
            .connection_timeouts_total
            .load(Ordering::Relaxed)
            >= 1,
        "timeout must be counted"
    );

    // The server is still healthy for well-behaved clients.
    let ok = request(addr, "GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n");
    assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
    server.shutdown();
    sched.shutdown();
}

#[test]
fn keep_alive_reuse_within_the_window_survives_and_idle_is_reaped() {
    let (server, sched) = boot_with("idle", |cfg| {
        cfg.idle_timeout = Duration::from_millis(400);
    });
    let addr = server.addr();

    // Reuse within the window: two requests with a pause shorter than
    // the idle timeout, on one connection.
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for pause in [Duration::ZERO, Duration::from_millis(150)] {
        std::thread::sleep(pause);
        conn.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let mut got = String::new();
        let mut buf = [0u8; 1024];
        while !got.contains("{\"ok\":true}") {
            let n = conn.read(&mut buf).expect("read");
            assert!(n > 0, "connection died inside the idle window: {got:?}");
            got.push_str(&String::from_utf8_lossy(&buf[..n]));
        }
    }

    // Now go idle past the window: the server reaps the connection.
    let t0 = Instant::now();
    let rest = read_until_close(&mut conn, Duration::from_secs(10));
    assert!(rest.is_empty(), "idle reap sends nothing: {rest:?}");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "idle reap must be prompt, took {:?}",
        t0.elapsed()
    );
    assert!(
        server
            .stats()
            .connection_timeouts_total
            .load(Ordering::Relaxed)
            >= 1
    );
    server.shutdown();
    sched.shutdown();
}

#[test]
fn stalled_subscriber_overflowing_its_queue_is_dropped_with_an_error_line() {
    // Zero workers: the submitted job stays queued forever, so its
    // event log is open and nothing but this test writes to it — the
    // flood below is fully deterministic, in debug and release alike.
    let (server, sched) = boot_with("stalled-subscriber", |cfg| {
        cfg.workers = 0;
        cfg.subscriber_queue_max = 16 * 1024;
    });
    let addr = server.addr();
    let queued = submit(addr, &job_spec(2, 3));

    // A stalled subscriber: subscribes, then never reads.
    let mut stalled = TcpStream::connect(addr).expect("connect stalled");
    stalled
        .write_all(format!("GET /v1/jobs/{queued}/events HTTP/1.1\r\n\r\n").as_bytes())
        .unwrap();
    std::thread::sleep(Duration::from_millis(150)); // let it subscribe

    // Flood: 64 KiB of synthetic events against the 16 KiB queue bound.
    let job = sched.get(&queued).expect("queued job");
    let pad = "x".repeat(1000);
    for i in 0..64 {
        job.events.push(format!(
            "{{\"event\":\"flood\",\"n\":{i},\"pad\":\"{pad}\"}}"
        ));
    }

    // The poller must disconnect the stalled subscriber and count it.
    let stats = server.stats();
    for _ in 0..200 {
        if stats.slow_subscribers_dropped_total.load(Ordering::Relaxed) >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert_eq!(
        stats.slow_subscribers_dropped_total.load(Ordering::Relaxed),
        1,
        "stalled subscriber must be dropped"
    );
    assert!(
        stats
            .subscriber_events_dropped_total
            .load(Ordering::Relaxed)
            > 0,
        "dropped event lines must be counted"
    );

    // The stalled client's stream ends with a terminal NDJSON error
    // line and a well-formed chunk terminator.
    let text = read_until_close(&mut stalled, Duration::from_secs(10));
    let framed = text.split_once("\r\n\r\n").map(|(_, f)| f).unwrap();
    let payload = decode_chunked(framed).expect("well-formed despite the drop");
    let last = payload.lines().last().expect("at least the error line");
    let doc = json::parse(last).expect("terminal line is JSON");
    assert_eq!(
        doc.get("event").unwrap().as_str("event").unwrap(),
        "error",
        "stream must end with the error event: {payload}"
    );

    // The drop shows up in the exposition.
    let metrics = request(addr, "GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n");
    assert!(
        metrics.contains("unico_serve_slow_subscribers_dropped_total 1"),
        "{metrics}"
    );
    server.shutdown();
    sched.shutdown();
}

#[test]
fn stalled_reader_does_not_block_job_progress_or_healthy_subscribers() {
    let (server, sched) = boot_with("stalled-progress", |cfg| {
        // Short drain deadline so the finished-but-unread stream is
        // cleaned up promptly at the end of the test.
        cfg.head_timeout = Duration::from_millis(500);
    });
    let addr = server.addr();
    let id = submit(addr, &job_spec(7, 3));

    // A healthy subscriber and a deliberately stalled one, both on the
    // same job. Under the old thread-per-connection design a stalled
    // reader parked a thread for the job's lifetime; here it must be
    // invisible to everyone else.
    let mut healthy = TcpStream::connect(addr).expect("connect healthy");
    healthy
        .write_all(format!("GET /v1/jobs/{id}/events HTTP/1.1\r\n\r\n").as_bytes())
        .unwrap();
    let stalled = TcpStream::connect(addr).expect("connect stalled");
    {
        let mut s = &stalled;
        s.write_all(format!("GET /v1/jobs/{id}/events HTTP/1.1\r\n\r\n").as_bytes())
            .unwrap();
    }

    // The job completes promptly despite the stalled reader, and the
    // healthy subscriber sees every iteration plus the done event.
    wait_completed(addr, &id);
    let text = read_until_close(&mut healthy, Duration::from_secs(30));
    let framed = text.split_once("\r\n\r\n").map(|(_, f)| f).unwrap();
    let payload = decode_chunked(framed).expect("healthy stream stays well-formed");
    let iterations = payload
        .lines()
        .filter(|l| l.contains("\"event\":\"iteration\""))
        .count();
    assert_eq!(
        iterations, 3,
        "healthy subscriber misses nothing: {payload}"
    );
    assert!(payload
        .lines()
        .last()
        .unwrap()
        .contains("\"event\":\"done\""));
    assert_eq!(
        server
            .stats()
            .slow_subscribers_dropped_total
            .load(Ordering::Relaxed),
        0,
        "small streams never overflow the default queue bound"
    );
    drop(stalled);
    server.shutdown();
    sched.shutdown();
}

#[test]
fn daemon_binary_reports_bind_failure_and_exits_nonzero() {
    let taken = TcpListener::bind("127.0.0.1:0").expect("hold a port");
    let out = Command::new(env!("CARGO_BIN_EXE_unico-served"))
        .env("UNICO_SERVE_ADDR", taken.local_addr().unwrap().to_string())
        .env("UNICO_SERVE_STATE_DIR", scratch("bin-bind"))
        .output()
        .expect("run daemon");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "bind clash must exit nonzero");
    assert!(stderr.contains("unico-served:"), "{stderr}");
    assert!(stderr.contains("bind"), "{stderr}");
    assert!(!stderr.contains("panicked"), "no panic backtrace: {stderr}");
}

#[test]
fn daemon_binary_reports_scheduler_boot_failure_and_exits_nonzero() {
    let dir = scratch("bin-state");
    let file = dir.join("state-is-a-file");
    std::fs::write(&file, b"x").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_unico-served"))
        .env("UNICO_SERVE_ADDR", "127.0.0.1:0")
        .env("UNICO_SERVE_STATE_DIR", &file)
        .output()
        .expect("run daemon");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "state-dir clash must exit nonzero");
    assert!(stderr.contains("unico-served:"), "{stderr}");
    assert!(stderr.contains("state-is-a-file"), "{stderr}");
    assert!(!stderr.contains("panicked"), "no panic backtrace: {stderr}");
}

#[test]
fn daemon_binary_reports_malformed_config_and_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_unico-served"))
        .env("UNICO_SERVE_ADDR", "127.0.0.1:0")
        .env("UNICO_SERVE_STATE_DIR", scratch("bin-config"))
        .env("UNICO_SERVE_HEAD_TIMEOUT_MS", "soon")
        .output()
        .expect("run daemon");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success());
    assert!(stderr.contains("UNICO_SERVE_HEAD_TIMEOUT_MS"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}
