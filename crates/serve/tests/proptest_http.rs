//! Property tests of the HTTP message layer and the NDJSON stream
//! framing.
//!
//! The incremental parser's contract: for any valid message, feeding
//! any prefix yields "need more bytes", feeding the whole buffer
//! yields the same request as one-shot parsing, and pipelined
//! messages pop off the front one at a time with exact byte
//! accounting. Size limits must trip (413/431) for any oversized
//! message, never a hang or a partial parse.

use proptest::prelude::*;

use unico_serve::http::{
    parse_request, write_chunk, write_chunk_end, write_stream_head, HttpError, HttpLimits,
};
use unico_serve::json;

/// A generated request: method/target/headers/body, rendered to wire
/// bytes. Header names cycle through a fixed alphabet; values and the
/// body come from the generator.
fn render(method_idx: usize, path_len: usize, header_vals: &[u8], body: &[u8]) -> Vec<u8> {
    let methods = ["GET", "POST", "DELETE", "PUT"];
    let method = methods[method_idx % methods.len()];
    let path = "a".repeat(1 + path_len % 24);
    let mut raw = format!("{method} /{path} HTTP/1.1\r\n");
    for (i, v) in header_vals.iter().enumerate() {
        raw.push_str(&format!("x-h{i}: v{v}\r\n"));
    }
    // Body-bearing methods must declare a length; harmless on GET.
    raw.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    let mut bytes = raw.into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

fn limits() -> HttpLimits {
    HttpLimits::default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any strict prefix parses to "need more"; the full buffer parses
    /// to the same request as any other split schedule, consuming
    /// exactly the message's bytes.
    #[test]
    fn split_reads_never_change_the_parse(
        method_idx in 0usize..4,
        path_len in 0usize..32,
        header_vals in proptest::collection::vec(0u8..255, 0..6),
        body in proptest::collection::vec(0u8..255, 0..48),
        cut in 0usize..4096,
    ) {
        let raw = render(method_idx, path_len, &header_vals, &body);
        let (reference, used) = parse_request(&raw, &limits())
            .expect("generated message is valid")
            .expect("complete message parses");
        prop_assert_eq!(used, raw.len());
        prop_assert_eq!(&reference.body, &body);

        // A strict prefix — cut anywhere, including inside the head,
        // on the \r\n\r\n boundary, or mid-body — always asks for more.
        let cut = cut % raw.len();
        prop_assert_eq!(parse_request(&raw[..cut], &limits()).expect("prefix is not an error"), None);

        // Simulated arbitrary read schedule: grow the buffer byte by
        // byte past the cut; the first complete parse is at the end
        // and matches the one-shot reference.
        let mut first_complete = None;
        for end in cut..=raw.len() {
            if let Some((req, n)) = parse_request(&raw[..end], &limits()).expect("no error mid-stream") {
                first_complete = Some((req, n, end));
                break;
            }
        }
        let (req, n, end) = first_complete.expect("message eventually completes");
        prop_assert_eq!(end, raw.len());
        prop_assert_eq!(n, raw.len());
        prop_assert_eq!(req, reference);
    }

    /// Pipelined messages parse front-to-back with exact byte
    /// accounting, regardless of how many are concatenated.
    #[test]
    fn pipelined_messages_pop_one_at_a_time(
        specs in proptest::collection::vec((0usize..4, 0usize..16, proptest::collection::vec(0u8..255, 0..12)), 1..5),
    ) {
        let mut wire = Vec::new();
        let mut expected_paths = Vec::new();
        for (m, p, body) in &specs {
            let raw = render(*m, *p, &[], body);
            let (req, _) = parse_request(&raw, &limits()).unwrap().unwrap();
            expected_paths.push(req.path);
            wire.extend_from_slice(&raw);
        }
        let mut parsed_paths = Vec::new();
        let mut offset = 0;
        while offset < wire.len() {
            let (req, used) = parse_request(&wire[offset..], &limits())
                .expect("pipelined stream is valid")
                .expect("complete message at the front");
            parsed_paths.push(req.path);
            offset += used;
        }
        prop_assert_eq!(offset, wire.len());
        prop_assert_eq!(parsed_paths, expected_paths);
    }

    /// Any declared body length beyond the limit is a 413 as soon as
    /// the head completes, before any body bytes arrive.
    #[test]
    fn oversized_bodies_are_rejected_with_413(excess in 1usize..1_000_000) {
        let tiny = HttpLimits { max_head: 16 * 1024, max_body: 4096 };
        let head = format!(
            "POST /v1/jobs HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            tiny.max_body + excess
        );
        let err = parse_request(head.as_bytes(), &tiny).expect_err("over the cap");
        prop_assert_eq!(err.status(), 413);
        prop_assert_eq!(err, HttpError::BodyTooLarge);
    }

    /// Heads that never terminate within the cap are a 431, whether or
    /// not the terminator ever arrives.
    #[test]
    fn oversized_heads_are_rejected_with_431(pad in 0usize..4096) {
        let tiny = HttpLimits { max_head: 256, max_body: 4096 };
        let raw = format!(
            "GET / HTTP/1.1\r\nx-pad: {}\r\n\r\n",
            "p".repeat(tiny.max_head + pad)
        );
        let err = parse_request(raw.as_bytes(), &tiny).expect_err("over the cap");
        prop_assert_eq!(err.status(), 431);
        // Same outcome even before the head terminator shows up.
        let partial = &raw.as_bytes()[..raw.len() - 4];
        prop_assert_eq!(
            parse_request(partial, &tiny).expect_err("partial over the cap").status(),
            431
        );
    }

    /// Request smuggling: a message carrying two Content-Length
    /// headers is rejected with 400 for EVERY pair of values —
    /// agreeing, conflicting, zero, whatever — and for every placement
    /// relative to other headers. No value pair may ever parse.
    #[test]
    fn duplicate_content_lengths_always_reject(
        first in 0usize..64,
        second in 0usize..64,
        pad_headers in 0usize..4,
    ) {
        let body = "x".repeat(first.max(second));
        let mut raw = String::from("POST /v1/jobs HTTP/1.1\r\n");
        for i in 0..pad_headers {
            raw.push_str(&format!("x-pad{i}: y\r\n"));
        }
        raw.push_str(&format!(
            "content-length: {first}\r\ncontent-length: {second}\r\n\r\n{body}"
        ));
        let err = parse_request(raw.as_bytes(), &limits()).expect_err("duplicate CL must reject");
        prop_assert_eq!(err.status(), 400);
    }

    /// Request smuggling: any non-digit byte inside a Content-Length
    /// value (signs, separators, hex prefixes, folded lists) is a 400,
    /// as is any value that overflows usize.
    #[test]
    fn malformed_content_lengths_always_reject(
        n in 0usize..1000,
        junk_idx in 0usize..7,
    ) {
        let junk = ["+", "-", " 1, ", ",", "0x", "e3", "."];
        let value = format!("{n}{}{n}", junk[junk_idx % junk.len()]);
        let raw = format!("POST / HTTP/1.1\r\ncontent-length: {value}\r\n\r\n");
        let err = parse_request(raw.as_bytes(), &limits()).expect_err("non-digit CL must reject");
        prop_assert_eq!(err.status(), 400);

        // Overflowing usize is a 400, not a capacity panic.
        let overflow = format!("POST / HTTP/1.1\r\ncontent-length: {}{n:03}\r\n\r\n", usize::MAX);
        let err = parse_request(overflow.as_bytes(), &limits()).expect_err("overflow CL");
        prop_assert_eq!(err.status(), 400);
    }

    /// Chunked NDJSON framing: however the event lines are sliced into
    /// chunks, the decoded stream is newline-delimited JSON, one
    /// document per line, ending with a `done` event.
    #[test]
    fn ndjson_streams_decode_to_valid_json_lines(
        iterations in 1usize..12,
        chunk_stride in 1usize..64,
    ) {
        let mut lines: Vec<String> = (1..=iterations)
            .map(|i| format!("{{\"event\":\"iteration\",\"iteration\":{i},\"delta\":{{\"counters\":{{\"x\":{i}}}}}}}"))
            .collect();
        lines.push("{\"event\":\"done\",\"state\":\"completed\"}".to_string());
        let payload: String = lines.iter().map(|l| format!("{l}\n")).collect();

        // Frame the payload into chunks of arbitrary stride.
        let mut wire = Vec::new();
        write_stream_head(&mut wire, "application/x-ndjson").unwrap();
        for piece in payload.as_bytes().chunks(chunk_stride) {
            write_chunk(&mut wire, piece).unwrap();
        }
        write_chunk_end(&mut wire).unwrap();

        let text = String::from_utf8(wire).expect("stream is utf-8");
        let (head, framed) = text.split_once("\r\n\r\n").expect("head terminator");
        prop_assert!(head.contains("transfer-encoding: chunked"));

        let decoded = decode_chunked(framed).expect("well-formed chunked framing");
        prop_assert_eq!(&decoded, &payload);
        let decoded_lines: Vec<&str> = decoded.lines().collect();
        prop_assert_eq!(decoded_lines.len(), iterations + 1);
        for line in &decoded_lines {
            prop_assert!(json::parse(line).is_ok(), "invalid NDJSON line {line:?}");
        }
        let last = json::parse(decoded_lines.last().unwrap()).unwrap();
        prop_assert_eq!(last.get("event").unwrap().as_str("event").unwrap(), "done");
    }
}

/// Minimal chunked-transfer decoder (test-side oracle).
fn decode_chunked(mut framed: &str) -> Result<String, String> {
    let mut out = String::new();
    loop {
        let (size_line, rest) = framed.split_once("\r\n").ok_or("missing chunk size line")?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| format!("bad chunk size {size_line:?}"))?;
        if size == 0 {
            return if rest == "\r\n" || rest.is_empty() {
                Ok(out)
            } else {
                Err(format!("trailing bytes after terminal chunk: {rest:?}"))
            };
        }
        if rest.len() < size + 2 {
            return Err("truncated chunk".to_string());
        }
        out.push_str(&rest[..size]);
        if &rest[size..size + 2] != "\r\n" {
            return Err("chunk not CRLF-terminated".to_string());
        }
        framed = &rest[size + 2..];
    }
}
