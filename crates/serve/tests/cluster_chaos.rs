//! Cluster chaos oracles: kill a worker mid-job and a coordinator
//! mid-stream, and require the surviving fleet to finish the job with
//! results byte-identical to an uninterrupted run.
//!
//! Worker death reuses the `kill_after` hook: the run panics at a
//! checkpoint boundary, and with `die_on_kill_hook` the whole pull
//! loop exits without a word — no fail report, no more heartbeats —
//! exactly the observable shape of a SIGKILLed worker process. The
//! coordinator's lease reaper must notice the silence, requeue the
//! job, and the replacement worker must auto-resume from the shared
//! checkpoint.
//!
//! Coordinator death is a server shutdown with the scheduler leaked
//! (no graceful teardown touches the state dir). The in-flight worker
//! loses its heartbeat target and abandons; a fresh coordinator booted
//! over the same state directory requeues the `running` manifest and a
//! fresh worker resumes it.

use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use unico_model::EvalCache;
use unico_serve::worker::{self, WorkerConfig, WorkerHandle};
use unico_serve::{client, json, ClusterState, JobOutcome, Scheduler, ServeConfig, Server};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("unico-cluster-chaos").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn seeded_spec(seed: u64, kill_after: Option<usize>) -> String {
    let kill = kill_after
        .map(|k| format!(", \"kill_after\": {k}"))
        .unwrap_or_default();
    format!(
        r#"{{"platform": "spatial-edge", "workloads": ["mobilenet"],
             "max_iter": 3, "batch": 6, "b_max": 32, "candidate_pool": 32,
             "power_cap_mw": 2000, "seed": {seed}{kill}}}"#
    )
}

/// Boots a coordinator (zero local workers) with a fast lease reaper.
fn boot_coordinator(state_dir: &Path) -> (Server, Arc<Scheduler>, Arc<ClusterState>, String) {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 0,
        state_dir: state_dir.to_path_buf(),
        lease_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let sched = Scheduler::start(&cfg, Arc::new(EvalCache::new())).expect("boot scheduler");
    let cluster = Arc::new(ClusterState::new(Arc::clone(&sched), cfg.lease_timeout));
    let server = Server::serve_cluster(&cfg, Arc::clone(&sched), Some(Arc::clone(&cluster)))
        .expect("boot coordinator");
    let addr = server.addr().to_string();
    (server, sched, cluster, addr)
}

/// Spawns a worker with its own cache (mirroring a separate process)
/// and a heartbeat cadence far under the coordinator's lease timeout.
fn spawn_worker(coordinator: &str, state_dir: &Path, id: &str) -> WorkerHandle {
    let mut cfg = WorkerConfig::new(coordinator, state_dir);
    cfg.worker_id = id.to_string();
    cfg.poll_interval = Duration::from_millis(10);
    cfg.heartbeat_interval = Duration::from_millis(50);
    worker::spawn(cfg, Arc::new(EvalCache::new())).expect("spawn worker")
}

fn submit(addr: &str, spec: &str) -> String {
    let (status, body) =
        client::post(addr, "/v1/jobs", spec, Duration::from_secs(10)).expect("submit");
    assert_eq!(status, 201, "submit failed: {body}");
    json::parse(&body)
        .expect("submit response")
        .get("id")
        .expect("id")
        .as_str("id")
        .expect("id string")
        .to_string()
}

fn job_state(addr: &str, id: &str) -> (String, String) {
    let (status, body) =
        client::get(addr, &format!("/v1/jobs/{id}"), Duration::from_secs(10)).expect("status");
    assert_eq!(status, 200, "{body}");
    let state = json::parse(&body)
        .expect("status json")
        .get("state")
        .expect("state")
        .as_str("state")
        .expect("state string")
        .to_string();
    (state, body)
}

fn wait_for_state(addr: &str, id: &str, want: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (state, body) = job_state(addr, id);
        if state == want {
            return body;
        }
        assert!(
            !(state == "failed" && want != "failed"),
            "job {id} failed while waiting for {want}: {body}"
        );
        assert!(
            Instant::now() < deadline,
            "job {id} stuck in {state} waiting for {want}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Runs `seed` uninterrupted on a one-worker cluster and returns the
/// ground-truth outcome.
fn reference_outcome(tag: &str, seed: u64) -> JobOutcome {
    let dir = scratch(tag);
    let (server, sched, _cluster, addr) = boot_coordinator(&dir);
    let w = spawn_worker(&addr, &dir, "ref-worker");
    let id = submit(&addr, &seeded_spec(seed, None));
    wait_for_state(&addr, &id, "completed");
    let outcome = sched.get(&id).and_then(|j| j.outcome()).expect("outcome");
    w.stop();
    server.shutdown();
    sched.shutdown();
    outcome
}

#[test]
fn killed_worker_lease_is_reassigned_and_resumed_byte_identically() {
    let reference = reference_outcome("worker-kill-reference", 11);

    let dir = scratch("worker-kill");
    let (server, sched, cluster, addr) = boot_coordinator(&dir);

    // Worker A dies at checkpoint boundary 1 (die_on_kill_hook is the
    // WorkerConfig::new default): heartbeats simply stop.
    let a = spawn_worker(&addr, &dir, "doomed-worker");
    let id = submit(&addr, &seeded_spec(11, Some(1)));
    let deadline = Instant::now() + Duration::from_secs(60);
    while !a.is_finished() {
        assert!(Instant::now() < deadline, "worker A never died");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(a.counters.kills_simulated.load(Ordering::Relaxed), 1);
    // Nothing terminal was reported: the job still looks live.
    let (state, _) = job_state(&addr, &id);
    assert!(
        state == "running" || state == "queued",
        "job must not be terminal after worker death, got {state}"
    );

    // Worker B arrives; its lease request forces a reap of A's silent
    // lease, the job requeues, and B resumes it from A's checkpoint.
    let b = spawn_worker(&addr, &dir, "successor-worker");
    let status = wait_for_state(&addr, &id, "completed");
    assert!(status.contains("\"resumed\":true"), "{status}");
    assert!(
        cluster.counters.leases_expired.load(Ordering::Relaxed) >= 1,
        "the dead worker's lease must be reaped"
    );
    assert_eq!(b.counters.jobs_completed.load(Ordering::Relaxed), 1);
    assert_eq!(cluster.active_leases(), 0);

    let resumed = sched.get(&id).and_then(|j| j.outcome()).expect("outcome");
    assert_eq!(resumed.front_bits, reference.front_bits);
    assert_eq!(
        resumed.deterministic_report_json,
        reference.deterministic_report_json
    );
    assert!(!resumed.cancelled);

    // The lease-reaped event is visible in the job's event stream.
    let (events, _) = sched.get(&id).expect("job").events.snapshot();
    assert!(
        events.iter().any(|e| e.contains("lease-reaped")),
        "missing lease-reaped event: {events:?}"
    );

    b.stop();
    server.shutdown();
    sched.shutdown();
}

#[test]
fn killed_coordinator_recovers_in_flight_job_byte_identically() {
    let reference = reference_outcome("coord-kill-reference", 13);

    let dir = scratch("coord-kill");
    let (server1, sched1, _cluster1, addr1) = boot_coordinator(&dir);
    let a = spawn_worker(&addr1, &dir, "orphaned-worker");
    let id = submit(&addr1, &seeded_spec(13, None));

    // Kill the coordinator mid-stream: wait until the job is leased,
    // running, and has flushed at least one checkpoint (so the
    // recovery boot has something to resume from), then drop the
    // server without any graceful scheduler teardown (the Arc is
    // leaked, as a crash would leave it).
    let checkpoint = dir.join(format!("{id}.checkpoint"));
    let deadline = Instant::now() + Duration::from_secs(60);
    while sched1.get(&id).map(|j| j.state().name()) != Some("running") || !checkpoint.exists() {
        assert!(
            Instant::now() < deadline,
            "job never running + checkpointed"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    server1.shutdown();
    std::mem::forget(sched1);

    // The orphaned worker loses eight heartbeats in a row, abandons the
    // run and discards its result.
    let deadline = Instant::now() + Duration::from_secs(60);
    while a.counters.jobs_abandoned.load(Ordering::Relaxed) == 0 {
        assert!(Instant::now() < deadline, "worker never abandoned the run");
        std::thread::sleep(Duration::from_millis(10));
    }
    a.stop();

    // A fresh coordinator over the same state dir requeues the
    // `running` manifest; a fresh worker resumes from the checkpoint.
    let (server2, sched2, _cluster2, addr2) = boot_coordinator(&dir);
    let b = spawn_worker(&addr2, &dir, "recovery-worker");
    let status = wait_for_state(&addr2, &id, "completed");
    assert!(status.contains("\"resumed\":true"), "{status}");

    let recovered = sched2.get(&id).and_then(|j| j.outcome()).expect("outcome");
    assert_eq!(recovered.front_bits, reference.front_bits);
    assert_eq!(
        recovered.deterministic_report_json,
        reference.deterministic_report_json
    );
    assert!(!recovered.cancelled);

    b.stop();
    server2.shutdown();
    sched2.shutdown();
}
