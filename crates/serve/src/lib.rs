//! `unico-served`: a durable co-optimization job service.
//!
//! This crate turns the UNICO optimizer into a long-running daemon:
//! clients submit job specifications over a small HTTP/1.1 + JSON API,
//! a bounded worker pool drives [`unico_core::Unico`] runs, and every
//! job checkpoints to disk so a killed daemon resumes its in-flight
//! work on the next boot — bit-for-bit, thanks to the resume-
//! equivalence guarantees of `unico-core`'s checkpoint format. All
//! jobs share one process-wide [`unico_model::EvalCache`], so
//! submissions over the same workload warm each other's PPA
//! evaluations.
//!
//! Everything is hand-rolled on `std` (TCP, HTTP parsing, JSON,
//! Prometheus exposition): the build stays dependency-free and
//! air-gap friendly.
//!
//! # API
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /v1/jobs` | Submit a job spec; returns the job id. |
//! | `GET /v1/jobs` | List jobs and states. |
//! | `GET /v1/jobs/{id}` | Status + Pareto front + run report. |
//! | `GET /v1/jobs/{id}/events` | Chunked NDJSON stream of per-iteration telemetry deltas, terminated by a `done` event. |
//! | `DELETE /v1/jobs/{id}` | Cancel (cooperative at iteration boundaries). |
//! | `GET /metrics` | Prometheus text exposition. |
//! | `GET /healthz` | Liveness probe. |
//!
//! # Cluster mode
//!
//! The daemon also runs as a *coordinator* (`unico-served
//! --coordinator`) that admits jobs over the same API and shards them
//! across worker processes (`unico-served --worker`) via a pull-based
//! lease protocol under `/cluster/v1/*` — see [`cluster`] and
//! [`worker`]. A shared on-disk eval-cache tier
//! ([`unico_model::DiskTier`], `UNICO_CLUSTER_DISK_CACHE`) lets the
//! warm-cache effect survive restarts and compound across the fleet.
//!
//! # Example
//!
//! ```no_run
//! use std::sync::Arc;
//! use unico_serve::{Scheduler, Server, ServeConfig};
//!
//! let cfg = ServeConfig::default();
//! let sched = Scheduler::start(&cfg, unico_model::EvalCache::process_shared()).unwrap();
//! let server = Server::serve(&cfg, Arc::clone(&sched)).unwrap();
//! println!("listening on {}", server.addr());
//! ```

#![warn(missing_docs)]
// Deny rather than forbid: the readiness poller in `poll.rs` needs two
// documented `#[allow(unsafe_code)]` FFI blocks (epoll/poll syscalls
// over raw fds, the same vendored-shim policy as `unico-search`).
// Everything else in the crate remains unsafe-free.
#![deny(unsafe_code)]

pub mod client;
pub mod cluster;
pub mod conn;
pub mod http;
pub mod job;
pub mod json;
pub mod metrics;
pub mod poll;
pub mod scheduler;
pub mod server;
pub mod spec;
pub mod worker;

pub use cluster::{ClusterState, WorkerCacheReport};
pub use conn::NetStats;
pub use job::{EventLog, Job, JobOutcome, JobState};
pub use scheduler::{Scheduler, SubmitError};
pub use server::{BootError, Server};
pub use spec::{JobSpec, PlatformKind, ServeConfig};
pub use worker::{WorkerConfig, WorkerCounters, WorkerHandle};
