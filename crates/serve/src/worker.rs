//! The cluster worker: a pull loop that leases jobs from a
//! coordinator, runs them with the shared execution path, heartbeats
//! while running, and reports completion over the wire.
//!
//! Workers are deliberately dumb: no local queue, no retry state. One
//! lease at a time, heartbeats carry the run's event stream to the
//! coordinator, and a lost lease (410, or a dead coordinator) makes
//! the worker *abandon* the run — cancel cooperatively, discard the
//! result — because the coordinator has already requeued the job for
//! someone else. Abandonment is safe precisely because runs are
//! deterministic and checkpointed: whoever picks the job up resumes
//! from the shared state dir and produces byte-identical results.
//!
//! The `kill_after` hook emulates worker death: the run panics at a
//! checkpoint boundary and (with [`WorkerConfig::die_on_kill_hook`])
//! the pull loop exits without reporting anything — heartbeats just
//! stop, exactly like a SIGKILLed process, and the coordinator's lease
//! reaper takes it from there.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use unico_model::EvalCache;

use crate::client;
use crate::cluster::{cache_report_to_wire, telemetry_to_wire, WorkerCacheReport};
use crate::job::{Job, JobPaths};
use crate::json;
use crate::scheduler;
use crate::spec::{parse_positive, JobSpec};

/// How a worker connects to its coordinator and behaves under the
/// kill hook.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub coordinator: String,
    /// The shared state directory (checkpoints + manifests); must be
    /// the same filesystem path the coordinator uses.
    pub state_dir: PathBuf,
    /// Stable worker identity, shown in leases and events.
    pub worker_id: String,
    /// Idle-poll interval between lease attempts.
    pub poll_interval: Duration,
    /// Heartbeat cadence while running a job; must be well under the
    /// coordinator's lease timeout.
    pub heartbeat_interval: Duration,
    /// Whether the `kill_after` hook kills the whole pull loop
    /// (emulating worker death) or just the one run.
    pub die_on_kill_hook: bool,
}

impl WorkerConfig {
    /// A worker for `coordinator` over `state_dir` with test-friendly
    /// defaults (fast polling, death on the kill hook).
    pub fn new(coordinator: impl Into<String>, state_dir: impl Into<PathBuf>) -> Self {
        WorkerConfig {
            coordinator: coordinator.into(),
            state_dir: state_dir.into(),
            worker_id: format!("worker-{}", std::process::id()),
            poll_interval: Duration::from_millis(50),
            heartbeat_interval: Duration::from_millis(250),
            die_on_kill_hook: true,
        }
    }

    /// Reads the worker configuration from `UNICO_CLUSTER_*` /
    /// `UNICO_SERVE_STATE_DIR` environment variables.
    ///
    /// # Errors
    ///
    /// A message naming the variable: `UNICO_CLUSTER_COORDINATOR` is
    /// required, the rest must parse if set.
    pub fn try_from_env() -> Result<Self, String> {
        let coordinator = std::env::var("UNICO_CLUSTER_COORDINATOR")
            .map_err(|_| "UNICO_CLUSTER_COORDINATOR must be set for --worker".to_string())?;
        let state_dir = std::env::var_os("UNICO_SERVE_STATE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("unico-serve-state"));
        let mut cfg = WorkerConfig::new(coordinator, state_dir);
        if let Ok(id) = std::env::var("UNICO_CLUSTER_WORKER_ID") {
            cfg.worker_id = id;
        }
        let hb = std::env::var("UNICO_CLUSTER_HEARTBEAT_MS").ok();
        if let Some(ms) = parse_positive("UNICO_CLUSTER_HEARTBEAT_MS", hb.as_deref())? {
            cfg.heartbeat_interval = Duration::from_millis(ms as u64);
        }
        // Real daemons keep running after a kill-hook job (the hook is
        // a per-job test fixture); only in-process chaos tests die.
        cfg.die_on_kill_hook = false;
        Ok(cfg)
    }
}

/// Monotonic worker counters (inspected by the chaos oracles).
#[derive(Debug, Default)]
pub struct WorkerCounters {
    /// Jobs run to completion and accepted by the coordinator.
    pub jobs_completed: AtomicU64,
    /// Runs discarded: lost lease, unreachable coordinator, or a
    /// completion the coordinator refused.
    pub jobs_abandoned: AtomicU64,
    /// Runs that panicked (reported via `/cluster/v1/fail`).
    pub jobs_failed: AtomicU64,
    /// `kill_after` hook firings.
    pub kills_simulated: AtomicU64,
    /// Heartbeats answered 410 — the lease had been reaped.
    pub leases_lost: AtomicU64,
}

/// A running worker; stop (or let it die) then join.
pub struct WorkerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    /// The worker's lifecycle counters.
    pub counters: Arc<WorkerCounters>,
}

impl WorkerHandle {
    /// Whether the pull loop has exited (worker death or stop).
    pub fn is_finished(&self) -> bool {
        self.thread.as_ref().is_none_or(JoinHandle::is_finished)
    }

    /// Signals the pull loop to stop after the current job and joins.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

enum RunEnd {
    Continue,
    Die,
}

/// Starts a worker pull loop on its own thread.
///
/// # Errors
///
/// Creating the state directory or spawning the thread.
pub fn spawn(cfg: WorkerConfig, cache: Arc<EvalCache>) -> std::io::Result<WorkerHandle> {
    std::fs::create_dir_all(&cfg.state_dir)?;
    let stop = Arc::new(AtomicBool::new(false));
    let counters = Arc::new(WorkerCounters::default());
    let thread = {
        let stop = Arc::clone(&stop);
        let counters = Arc::clone(&counters);
        std::thread::Builder::new()
            .name(format!("unico-cluster-{}", cfg.worker_id))
            .spawn(move || pull_loop(&cfg, &cache, &stop, &counters))?
    };
    Ok(WorkerHandle {
        stop,
        thread: Some(thread),
        counters,
    })
}

fn pull_loop(
    cfg: &WorkerConfig,
    cache: &Arc<EvalCache>,
    stop: &Arc<AtomicBool>,
    counters: &Arc<WorkerCounters>,
) {
    let timeout = Duration::from_secs(5);
    let lease_body = format!("{{\"worker\":{}}}", json::escape(&cfg.worker_id));
    while !stop.load(Ordering::SeqCst) {
        match client::post(&cfg.coordinator, "/cluster/v1/lease", &lease_body, timeout) {
            Ok((200, doc)) => {
                if let RunEnd::Die = run_leased(cfg, cache, counters, &doc) {
                    return;
                }
            }
            // 204 (idle) and any error both mean: poll again shortly.
            Ok(_) | Err(_) => sleep_unless(stop, cfg.poll_interval),
        }
    }
}

/// Runs one leased job end to end. Returns [`RunEnd::Die`] when the
/// kill hook fired and this worker is configured to die with it.
fn run_leased(
    cfg: &WorkerConfig,
    cache: &Arc<EvalCache>,
    counters: &Arc<WorkerCounters>,
    doc: &str,
) -> RunEnd {
    let Ok(v) = json::parse(doc) else {
        return RunEnd::Continue;
    };
    let (Some(Ok(lease)), Some(Ok(job_id)), Some(spec_json)) = (
        v.get("lease").map(|l| l.as_str("lease")),
        v.get("job").map(|j| j.as_str("job")),
        v.get("spec"),
    ) else {
        return RunEnd::Continue;
    };
    let Ok(spec) = JobSpec::from_json(spec_json) else {
        return RunEnd::Continue;
    };
    let lease = lease.to_string();
    let job = Arc::new(Job::new(job_id.to_string(), spec.clone()));
    let paths = JobPaths::new(&cfg.state_dir, &job.id);

    let abandoned = Arc::new(AtomicBool::new(false));
    let cursor = Arc::new(AtomicUsize::new(0));
    let hb_stop = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let cfg = cfg.clone();
        let lease = lease.clone();
        let job = Arc::clone(&job);
        let cache = Arc::clone(cache);
        let abandoned = Arc::clone(&abandoned);
        let cursor = Arc::clone(&cursor);
        let hb_stop = Arc::clone(&hb_stop);
        let counters = Arc::clone(counters);
        std::thread::spawn(move || {
            heartbeat_loop(
                &cfg, &lease, &job, &cache, &cursor, &hb_stop, &abandoned, &counters,
            )
        })
    };

    let result = catch_unwind(AssertUnwindSafe(|| {
        scheduler::execute(&spec, &paths, Arc::clone(cache), &job)
    }));
    hb_stop.store(true, Ordering::SeqCst);
    let _ = heartbeat.join();

    match result {
        Ok((outcome, telemetry)) => {
            if abandoned.load(Ordering::SeqCst) {
                counters.jobs_abandoned.fetch_add(1, Ordering::Relaxed);
                return RunEnd::Continue;
            }
            let resumed = job.resumed.load(Ordering::SeqCst);
            let (events, _) = job.events.read_past(cursor.load(Ordering::SeqCst));
            let doc = format!(
                "{{\"schema\":\"unico.cluster_complete.v1\",\"lease\":{},\"job\":{},\"worker\":{},\"resumed\":{},\"outcome\":{},\"telemetry\":{},\"events\":{},\"cache\":{}}}",
                json::escape(&lease),
                json::escape(&job.id),
                json::escape(&cfg.worker_id),
                resumed,
                outcome.to_wire_json(),
                telemetry_to_wire(&telemetry),
                render_events(&events),
                cache_report_to_wire(&cache_report(cache)),
            );
            let timeout = Duration::from_secs(5);
            for attempt in 0..3 {
                match client::post(&cfg.coordinator, "/cluster/v1/complete", &doc, timeout) {
                    Ok((200, _)) => {
                        counters.jobs_completed.fetch_add(1, Ordering::Relaxed);
                        return RunEnd::Continue;
                    }
                    // Terminal refusals: someone else's completion won.
                    Ok((409, _)) | Ok((404, _)) | Ok((422, _)) => break,
                    Ok(_) | Err(_) if attempt < 2 => {
                        std::thread::sleep(Duration::from_millis(100));
                    }
                    Ok(_) | Err(_) => {}
                }
            }
            counters.jobs_abandoned.fetch_add(1, Ordering::Relaxed);
            RunEnd::Continue
        }
        Err(panic) => {
            let msg = scheduler::panic_message(panic.as_ref());
            if msg.contains("kill_after") {
                counters.kills_simulated.fetch_add(1, Ordering::Relaxed);
                if cfg.die_on_kill_hook {
                    // Simulated worker death: no fail report, no more
                    // heartbeats. The coordinator's reaper requeues.
                    return RunEnd::Die;
                }
                return RunEnd::Continue;
            }
            counters.jobs_failed.fetch_add(1, Ordering::Relaxed);
            let doc = format!(
                "{{\"lease\":{},\"job\":{},\"worker\":{},\"error\":{},\"events\":{}}}",
                json::escape(&lease),
                json::escape(&job.id),
                json::escape(&cfg.worker_id),
                json::escape(&msg),
                render_events(&job.events.read_past(cursor.load(Ordering::SeqCst)).0),
            );
            let _ = client::post(
                &cfg.coordinator,
                "/cluster/v1/fail",
                &doc,
                Duration::from_secs(5),
            );
            RunEnd::Continue
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn heartbeat_loop(
    cfg: &WorkerConfig,
    lease: &str,
    job: &Arc<Job>,
    cache: &Arc<EvalCache>,
    cursor: &Arc<AtomicUsize>,
    hb_stop: &Arc<AtomicBool>,
    abandoned: &Arc<AtomicBool>,
    counters: &Arc<WorkerCounters>,
) {
    let timeout = Duration::from_secs(5);
    let mut failures = 0u32;
    loop {
        sleep_unless(hb_stop, cfg.heartbeat_interval);
        if hb_stop.load(Ordering::SeqCst) {
            return;
        }
        let (events, _) = job.events.read_past(cursor.load(Ordering::SeqCst));
        cursor.fetch_add(events.len(), Ordering::SeqCst);
        let body = format!(
            "{{\"worker\":{},\"lease\":{},\"events\":{},\"cache\":{}}}",
            json::escape(&cfg.worker_id),
            json::escape(lease),
            render_events(&events),
            cache_report_to_wire(&cache_report(cache)),
        );
        match client::post(&cfg.coordinator, "/cluster/v1/heartbeat", &body, timeout) {
            Ok((200, resp)) => {
                failures = 0;
                if resp.contains("\"cancel\":true") {
                    job.cancel.store(true, Ordering::SeqCst);
                }
            }
            Ok((410, _)) => {
                // The lease was reaped: the job belongs to someone
                // else now. Stop the run and discard its result.
                counters.leases_lost.fetch_add(1, Ordering::Relaxed);
                abandoned.store(true, Ordering::SeqCst);
                job.cancel.store(true, Ordering::SeqCst);
                return;
            }
            Ok(_) | Err(_) => {
                failures += 1;
                if failures >= 8 {
                    // Coordinator unreachable for ~8 beats: assume it
                    // is gone (or we are partitioned) and abandon.
                    abandoned.store(true, Ordering::SeqCst);
                    job.cancel.store(true, Ordering::SeqCst);
                    return;
                }
            }
        }
    }
}

fn cache_report(cache: &EvalCache) -> WorkerCacheReport {
    let mem = cache.stats();
    let disk = cache.disk_stats().unwrap_or_default();
    WorkerCacheReport {
        hits: mem.hits,
        misses: mem.misses,
        entries: mem.entries,
        disk_hits: disk.hits,
        disk_entries: disk.entries,
    }
}

fn render_events(events: &[String]) -> String {
    let escaped: Vec<String> = events.iter().map(|e| json::escape(e)).collect();
    format!("[{}]", escaped.join(","))
}

/// Sleeps up to `dur`, returning early once `stop` is set.
fn sleep_unless(stop: &AtomicBool, dur: Duration) {
    let step = Duration::from_millis(10).min(dur);
    let deadline = std::time::Instant::now() + dur;
    while std::time::Instant::now() < deadline {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(step);
    }
}
