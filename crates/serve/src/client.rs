//! A minimal blocking HTTP/1.1 client for intra-cluster calls.
//!
//! Workers talk to the coordinator over the same hand-rolled HTTP
//! layer the daemon serves — one connection per request, `Connection:
//! close`, read-to-end. That is deliberately the simplest correct
//! thing: cluster calls are small JSON documents exchanged every few
//! hundred milliseconds, so connection reuse buys nothing and the
//! close semantics make response framing trivial.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Sends one request and returns `(status, body)`.
///
/// # Errors
///
/// Any socket error, a timeout, or an unparseable response head.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let payload = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        payload.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// `POST` with a JSON body.
///
/// # Errors
///
/// See [`request`].
pub fn post(
    addr: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<(u16, String)> {
    request(addr, "POST", path, Some(body), timeout)
}

/// `GET` with no body.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: &str, path: &str, timeout: Duration) -> std::io::Result<(u16, String)> {
    request(addr, "GET", path, None, timeout)
}

/// Parses a `Connection: close` response: status from the first line,
/// body after the blank line (de-chunked if the server streamed).
fn parse_response(raw: &[u8]) -> std::io::Result<(u16, String)> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response missing head terminator"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("head is not utf-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("unparseable status line"))?;
    let chunked = lines.any(|l| {
        let lower = l.to_ascii_lowercase();
        lower.starts_with("transfer-encoding:") && lower.contains("chunked")
    });
    let body = &raw[head_end + 4..];
    let text = if chunked {
        String::from_utf8(dechunk(body)?).map_err(|_| bad("body is not utf-8"))?
    } else {
        String::from_utf8(body.to_vec()).map_err(|_| bad("body is not utf-8"))?
    };
    Ok((status, text))
}

fn dechunk(mut body: &[u8]) -> std::io::Result<Vec<u8>> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut out = Vec::new();
    loop {
        let line_end = body
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or_else(|| bad("chunk size line missing"))?;
        let size_str =
            std::str::from_utf8(&body[..line_end]).map_err(|_| bad("chunk size not utf-8"))?;
        let size =
            usize::from_str_radix(size_str.trim(), 16).map_err(|_| bad("chunk size not hex"))?;
        body = &body[line_end + 2..];
        if size == 0 {
            return Ok(out);
        }
        if body.len() < size + 2 {
            return Err(bad("truncated chunk"));
        }
        out.extend_from_slice(&body[..size]);
        body = &body[size + 2..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_content_length_response() {
        let raw = b"HTTP/1.1 201 Created\r\nContent-Type: application/json\r\nContent-Length: 11\r\n\r\n{\"ok\":true}";
        let (status, body) = parse_response(raw).expect("parse");
        assert_eq!(status, 201);
        assert_eq!(body, "{\"ok\":true}");
    }

    #[test]
    fn parses_chunked_response() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        let (status, body) = parse_response(raw).expect("parse");
        assert_eq!(status, 200);
        assert_eq!(body, "hello world");
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        for raw in [&b"nope"[..], &b"HTTP/1.1 xx OK\r\n\r\n"[..], &b""[..]] {
            assert!(parse_response(raw).is_err(), "{raw:?}");
        }
    }
}
