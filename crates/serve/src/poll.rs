//! Readiness polling over raw file descriptors, with no dependencies.
//!
//! The event-driven server core needs one primitive the standard
//! library does not expose: "block until any of these sockets is
//! readable or writable". This module provides it as a thin [`Poller`]
//! over two interchangeable backends:
//!
//! * **epoll** (Linux, the default): `epoll_create1`/`epoll_ctl`/
//!   `epoll_wait`, O(ready) wakeups — thousands of idle subscriber
//!   connections cost nothing per tick.
//! * **poll(2)** (POSIX, the fallback and a test oracle): a single
//!   portable syscall over the full interest set, O(registered) per
//!   wakeup. Slower at C10K scale but semantically identical, which
//!   the unit tests exploit by running every scenario on both.
//!
//! Neither backend adds a crate to the dependency tree. The syscalls
//! are declared directly as `extern "C"` items against symbols the
//! platform C runtime already provides (std itself links it), so the
//! build stays air-gap friendly — the same vendored-shim philosophy as
//! `crates/rand` and `crates/proptest`, applied to the OS interface.
//! All `unsafe` in the crate is confined to the two tiny `sys` blocks
//! in this file; everything above them is safe Rust over owned fds.
//!
//! Events are level-triggered on both backends: a socket that is still
//! readable (or still has buffer space) reports again on the next
//! wait, so handlers may consume partially without losing wakeups.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Caller-chosen identifier attached to a registered fd and reported
/// back on its events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub u64);

/// What readiness a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read + write interest.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: Token,
    /// The fd (or its peer) is readable; includes hangup/error so a
    /// subsequent `read` observes the EOF or failure.
    pub readable: bool,
    /// The fd has send-buffer space.
    pub writable: bool,
    /// The peer hung up or the fd errored; the connection is dead.
    pub hangup: bool,
}

/// Which implementation a [`Poller`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll` — O(ready) per wakeup.
    Epoll,
    /// POSIX `poll(2)` — O(registered) per wakeup.
    Poll,
}

/// A readiness poller. Register sockets with a [`Token`], then call
/// [`Poller::wait`] in a loop; deregister before closing the fd.
pub struct Poller {
    imp: Imp,
}

enum Imp {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    Poll(pollset::PollSet),
}

impl Poller {
    /// Creates a poller on the platform's best backend (epoll on
    /// Linux, `poll(2)` elsewhere).
    ///
    /// # Errors
    ///
    /// The OS refused the epoll fd (fd exhaustion); `poll(2)` backend
    /// creation itself cannot fail.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            Ok(Poller {
                imp: Imp::Epoll(epoll::Epoll::new()?),
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Ok(Poller {
                imp: Imp::Poll(pollset::PollSet::new()),
            })
        }
    }

    /// Creates a poller on an explicit backend. [`Backend::Epoll`] is
    /// only available on Linux.
    ///
    /// # Errors
    ///
    /// Backend unavailable on this platform, or fd exhaustion.
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        match backend {
            Backend::Poll => Ok(Poller {
                imp: Imp::Poll(pollset::PollSet::new()),
            }),
            #[cfg(target_os = "linux")]
            Backend::Epoll => Ok(Poller {
                imp: Imp::Epoll(epoll::Epoll::new()?),
            }),
            #[cfg(not(target_os = "linux"))]
            Backend::Epoll => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll backend requires Linux",
            )),
        }
    }

    /// Which backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(_) => Backend::Epoll,
            Imp::Poll(_) => Backend::Poll,
        }
    }

    /// Starts watching `fd` with `interest`, reporting `token` on its
    /// events. The fd must stay open until [`Poller::deregister`].
    ///
    /// # Errors
    ///
    /// The OS rejected the registration (bad fd, duplicate add).
    pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(e) => e.add(fd, token, interest),
            Imp::Poll(p) => p.add(fd, token, interest),
        }
    }

    /// Changes the interest set of a registered fd.
    ///
    /// # Errors
    ///
    /// The fd was never registered.
    pub fn modify(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(e) => e.modify(fd, token, interest),
            Imp::Poll(p) => p.modify(fd, token, interest),
        }
    }

    /// Stops watching a registered fd. Call before closing the fd.
    ///
    /// # Errors
    ///
    /// The fd was never registered.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(e) => e.delete(fd),
            Imp::Poll(p) => p.delete(fd),
        }
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` blocks indefinitely), appending readiness
    /// reports to `events` (which is cleared first). `EINTR` retries
    /// internally.
    ///
    /// # Errors
    ///
    /// Unrecoverable OS errors from the wait syscall.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let timeout_ms = timeout_millis(timeout);
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(e) => e.wait(events, timeout_ms),
            Imp::Poll(p) => p.wait(events, timeout_ms),
        }
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("backend", &self.backend())
            .finish()
    }
}

/// Converts an optional timeout to the millisecond convention both
/// syscalls share: `-1` blocks, `0` polls, positive waits. Sub-
/// millisecond timeouts round *up* so a 100 µs deadline never busy-
/// spins at timeout 0.
fn timeout_millis(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_nanos().div_ceil(1_000_000);
            ms.min(i32::MAX as u128) as i32
        }
    }
}

#[cfg(target_os = "linux")]
mod epoll {
    //! The Linux epoll backend.

    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_int;

    use super::{Event, Interest, Token};

    /// Safety: these declarations mirror the Linux epoll ABI exactly —
    /// `epoll_event` is packed on x86-64 (and only there), the ops and
    /// flag values are stable kernel constants, and every call passes a
    /// live fd plus a buffer it owns for the duration of the call.
    #[allow(unsafe_code)]
    mod sys {
        use std::os::raw::c_int;

        #[repr(C)]
        #[cfg_attr(target_arch = "x86_64", repr(packed))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            pub fn close(fd: c_int) -> c_int;
        }

        pub const EPOLL_CLOEXEC: c_int = 0o2000000;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
    }

    /// An owned epoll instance.
    pub struct Epoll {
        epfd: RawFd,
    }

    /// Room for one `epoll_wait` batch; level triggering re-reports
    /// anything beyond it on the next call.
    const WAIT_BATCH: usize = 256;

    impl Epoll {
        #[allow(unsafe_code)] // see sys: plain syscall, no pointers
        pub fn new() -> io::Result<Epoll> {
            let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll { epfd })
        }

        fn interest_bits(interest: Interest) -> u32 {
            let mut bits = 0;
            if interest.readable {
                bits |= sys::EPOLLIN;
            }
            if interest.writable {
                bits |= sys::EPOLLOUT;
            }
            bits
        }

        #[allow(unsafe_code)] // event buffer is a live local for the call
        fn ctl(&self, op: c_int, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
            let mut ev = sys::EpollEvent { events, data };
            let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn add(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(
                sys::EPOLL_CTL_ADD,
                fd,
                Self::interest_bits(interest),
                token.0,
            )
        }

        pub fn modify(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(
                sys::EPOLL_CTL_MOD,
                fd,
                Self::interest_bits(interest),
                token.0,
            )
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            // Pre-2.6.9 kernels required a non-null event for DEL; a
            // zeroed one keeps the call portable either way.
            self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0)
        }

        #[allow(unsafe_code)] // buffer outlives the call; n bounds the read-back
        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            let mut buf = [sys::EpollEvent { events: 0, data: 0 }; WAIT_BATCH];
            let n = loop {
                let n = unsafe {
                    sys::epoll_wait(self.epfd, buf.as_mut_ptr(), WAIT_BATCH as c_int, timeout_ms)
                };
                if n >= 0 {
                    break n as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for ev in buf.iter().take(n) {
                // Copy fields out of the (possibly packed) struct.
                let bits = { ev.events };
                let data = { ev.data };
                let hangup = bits & (sys::EPOLLHUP | sys::EPOLLERR) != 0;
                out.push(Event {
                    token: Token(data),
                    readable: bits & sys::EPOLLIN != 0 || hangup,
                    writable: bits & sys::EPOLLOUT != 0,
                    hangup,
                });
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        #[allow(unsafe_code)] // closing the fd we exclusively own
        fn drop(&mut self) {
            unsafe {
                sys::close(self.epfd);
            }
        }
    }
}

mod pollset {
    //! The portable `poll(2)` backend.

    use std::collections::BTreeMap;
    use std::io;
    use std::os::fd::RawFd;

    use super::{Event, Interest, Token};

    /// Safety: `struct pollfd` has this exact layout on every POSIX
    /// platform; `poll` reads `nfds` entries from a buffer the caller
    /// owns for the duration of the call.
    #[allow(unsafe_code)]
    mod sys {
        use std::os::raw::{c_int, c_short};

        #[repr(C)]
        #[derive(Clone, Copy)]
        pub struct PollFd {
            pub fd: c_int,
            pub events: c_short,
            pub revents: c_short,
        }

        #[cfg(target_os = "linux")]
        pub type NFds = std::os::raw::c_ulong;
        #[cfg(not(target_os = "linux"))]
        pub type NFds = std::os::raw::c_uint;

        extern "C" {
            pub fn poll(fds: *mut PollFd, nfds: NFds, timeout: c_int) -> c_int;
        }

        pub const POLLIN: c_short = 0x001;
        pub const POLLOUT: c_short = 0x004;
        pub const POLLERR: c_short = 0x008;
        pub const POLLHUP: c_short = 0x010;
        pub const POLLNVAL: c_short = 0x020;
    }

    /// Interest bookkeeping + a rebuilt `pollfd` array per wait.
    pub struct PollSet {
        interests: BTreeMap<RawFd, (Token, Interest)>,
    }

    impl PollSet {
        pub fn new() -> PollSet {
            PollSet {
                interests: BTreeMap::new(),
            }
        }

        pub fn add(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            if self.interests.contains_key(&fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!("fd {fd} already registered"),
                ));
            }
            self.interests.insert(fd, (token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            match self.interests.get_mut(&fd) {
                Some(slot) => {
                    *slot = (token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("fd {fd} not registered"),
                )),
            }
        }

        pub fn delete(&mut self, fd: RawFd) -> io::Result<()> {
            match self.interests.remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("fd {fd} not registered"),
                )),
            }
        }

        #[allow(unsafe_code)] // fds buffer is a live local for the call
        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            let mut fds: Vec<sys::PollFd> = self
                .interests
                .iter()
                .map(|(fd, (_, interest))| {
                    let mut events = 0;
                    if interest.readable {
                        events |= sys::POLLIN;
                    }
                    if interest.writable {
                        events |= sys::POLLOUT;
                    }
                    sys::PollFd {
                        fd: *fd,
                        events,
                        revents: 0,
                    }
                })
                .collect();
            loop {
                let rc = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as sys::NFds, timeout_ms) };
                if rc >= 0 {
                    break;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
            for pfd in &fds {
                if pfd.revents == 0 {
                    continue;
                }
                let (token, _) = self.interests[&pfd.fd];
                let hangup = pfd.revents & (sys::POLLHUP | sys::POLLERR | sys::POLLNVAL) != 0;
                out.push(Event {
                    token,
                    readable: pfd.revents & sys::POLLIN != 0 || hangup,
                    writable: pfd.revents & sys::POLLOUT != 0,
                    hangup,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    /// A connected nonblocking loopback socket pair.
    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let a = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    fn backends() -> Vec<Poller> {
        let mut pollers = vec![Poller::with_backend(Backend::Poll).expect("poll backend")];
        if cfg!(target_os = "linux") {
            pollers.push(Poller::with_backend(Backend::Epoll).expect("epoll backend"));
        }
        pollers
    }

    #[test]
    fn readable_after_peer_writes_and_not_before() {
        for mut poller in backends() {
            let (mut a, b) = socket_pair();
            let mut events = Vec::new();
            poller
                .register(b.as_raw_fd(), Token(7), Interest::READABLE)
                .expect("register");

            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .expect("wait");
            assert!(
                events.is_empty(),
                "{:?}: no data yet, no events",
                poller.backend()
            );

            a.write_all(b"ping").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            assert_eq!(events.len(), 1, "{:?}", poller.backend());
            assert_eq!(events[0].token, Token(7));
            assert!(events[0].readable);
            assert!(!events[0].writable);

            poller.deregister(b.as_raw_fd()).expect("deregister");
        }
    }

    #[test]
    fn writable_sockets_report_immediately_and_levels_persist() {
        for mut poller in backends() {
            let (_a, b) = socket_pair();
            let mut events = Vec::new();
            poller
                .register(b.as_raw_fd(), Token(1), Interest::BOTH)
                .expect("register");

            // A fresh socket has send-buffer space: writable at once,
            // and again on the next wait (level-triggered).
            for _ in 0..2 {
                poller
                    .wait(&mut events, Some(Duration::from_secs(5)))
                    .expect("wait");
                assert_eq!(events.len(), 1, "{:?}", poller.backend());
                assert!(events[0].writable);
            }
            poller.deregister(b.as_raw_fd()).expect("deregister");
        }
    }

    #[test]
    fn hangup_reports_as_readable_eof() {
        for mut poller in backends() {
            let (a, mut b) = socket_pair();
            let mut events = Vec::new();
            poller
                .register(b.as_raw_fd(), Token(3), Interest::READABLE)
                .expect("register");
            drop(a);
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            assert_eq!(events.len(), 1, "{:?}", poller.backend());
            assert!(events[0].readable, "hangup must surface as readable");
            let mut buf = [0u8; 8];
            assert_eq!(b.read(&mut buf).expect("EOF read"), 0);
            poller.deregister(b.as_raw_fd()).expect("deregister");
        }
    }

    #[test]
    fn timeout_expires_without_events() {
        for mut poller in backends() {
            let (_a, b) = socket_pair();
            let mut events = Vec::new();
            poller
                .register(b.as_raw_fd(), Token(1), Interest::READABLE)
                .expect("register");
            let start = Instant::now();
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .expect("wait");
            assert!(events.is_empty());
            assert!(
                start.elapsed() >= Duration::from_millis(45),
                "{:?}: timeout must block",
                poller.backend()
            );
            poller.deregister(b.as_raw_fd()).expect("deregister");
        }
    }

    #[test]
    fn modify_and_deregister_change_the_report_set() {
        for mut poller in backends() {
            let (mut a, b) = socket_pair();
            let mut events = Vec::new();
            poller
                .register(b.as_raw_fd(), Token(9), Interest::READABLE)
                .expect("register");
            a.write_all(b"x").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            assert_eq!(events.len(), 1);

            // Interest off: the still-readable socket goes quiet.
            poller
                .modify(b.as_raw_fd(), Token(9), Interest::default())
                .expect("modify");
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .expect("wait");
            assert!(events.is_empty(), "{:?}", poller.backend());

            poller.deregister(b.as_raw_fd()).expect("deregister");
            assert!(
                poller.deregister(b.as_raw_fd()).is_err(),
                "double deregister must fail"
            );
        }
    }

    #[test]
    fn sub_millisecond_timeouts_round_up() {
        assert_eq!(timeout_millis(None), -1);
        assert_eq!(timeout_millis(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_millis(Some(Duration::from_micros(100))), 1);
        assert_eq!(timeout_millis(Some(Duration::from_millis(250))), 250);
        assert_eq!(timeout_millis(Some(Duration::from_secs(1 << 40))), i32::MAX);
    }
}
