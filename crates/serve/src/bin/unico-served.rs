//! The UNICO job-service daemon.
//!
//! Roles (first CLI argument):
//!
//! * *(none)* — single-process daemon: HTTP API + local worker pool.
//! * `--coordinator` — cluster coordinator: HTTP API + `/cluster/v1/*`
//!   lease protocol, zero local workers; `--worker` processes do the
//!   running.
//! * `--worker` — cluster worker: no listen socket, pulls leases from
//!   `UNICO_CLUSTER_COORDINATOR` and runs jobs over the shared state
//!   dir.
//!
//! Configuration comes from the environment (all optional unless
//! noted, malformed values abort the boot with a diagnostic and a
//! nonzero exit):
//!
//! * `UNICO_SERVE_ADDR` — listen address (default `127.0.0.1:8787`).
//! * `UNICO_SERVE_WORKERS` — worker threads (default 2; ignored in
//!   `--coordinator` mode, which runs zero local workers).
//! * `UNICO_SERVE_STATE_DIR` — manifests/checkpoints/results
//!   directory (default `unico-serve-state`); cluster roles must
//!   share it.
//! * `UNICO_SERVE_MAX_BODY` — request-body cap in bytes (default 1 MiB).
//! * `UNICO_SERVE_HEAD_TIMEOUT_MS` — slowloris guard: total time a
//!   client gets to deliver one request (default 10000).
//! * `UNICO_SERVE_IDLE_TIMEOUT_MS` — idle keep-alive lifetime
//!   (default 60000).
//! * `UNICO_SERVE_SUBSCRIBER_QUEUE` — per-`/events`-subscriber queue
//!   bound in bytes (default 262144).
//! * `UNICO_CLUSTER_MAX_QUEUE` — admission bound before 429 (default 256).
//! * `UNICO_CLUSTER_LEASE_TIMEOUT_MS` — silence before a worker's
//!   lease is reaped (default 10000).
//! * `UNICO_CLUSTER_DISK_CACHE` — directory for the shared on-disk
//!   eval-cache tier (unset: memory-only).
//! * `UNICO_CLUSTER_COORDINATOR` — coordinator `host:port` (**required**
//!   for `--worker`).
//! * `UNICO_CLUSTER_WORKER_ID` — worker identity (default `worker-<pid>`).
//! * `UNICO_CLUSTER_HEARTBEAT_MS` — heartbeat cadence (default 250).
//!
//! On boot the daemon scans the state directory and requeues every job
//! whose manifest is not terminal; jobs with a surviving checkpoint
//! resume from it instead of restarting.

use std::sync::Arc;

use unico_model::{DiskTier, EvalCache};
use unico_serve::{BootError, ClusterState, Scheduler, ServeConfig, Server, WorkerConfig};

/// Builds the process cache, attaching the disk tier when configured.
fn build_cache(cfg: &ServeConfig) -> Result<Arc<EvalCache>, BootError> {
    match &cfg.disk_cache {
        None => Ok(EvalCache::process_shared()),
        Some(dir) => {
            let tier = DiskTier::open(dir).map_err(|e| BootError::Scheduler {
                state_dir: dir.clone(),
                source: e,
            })?;
            Ok(Arc::new(EvalCache::new().with_disk(Arc::new(tier))))
        }
    }
}

fn run_single() -> Result<(), BootError> {
    let cfg = ServeConfig::try_from_env().map_err(BootError::Config)?;
    let cache = build_cache(&cfg)?;
    let sched = Scheduler::start(&cfg, cache).map_err(|e| BootError::Scheduler {
        state_dir: cfg.state_dir.clone(),
        source: e,
    })?;
    let server = Server::serve(&cfg, Arc::clone(&sched)).map_err(|e| BootError::Bind {
        addr: cfg.addr.clone(),
        source: e,
    })?;
    println!("unico-served listening on {}", server.addr());
    println!(
        "unico-served state dir {} ({} workers)",
        cfg.state_dir.display(),
        cfg.workers
    );
    sleep_forever()
}

fn run_coordinator() -> Result<(), BootError> {
    let mut cfg = ServeConfig::try_from_env().map_err(BootError::Config)?;
    // Remote workers do all the running; a local pool would race them
    // for queue pops and defeat the throughput accounting.
    cfg.workers = 0;
    let cache = build_cache(&cfg)?;
    let sched = Scheduler::start(&cfg, cache).map_err(|e| BootError::Scheduler {
        state_dir: cfg.state_dir.clone(),
        source: e,
    })?;
    let cluster = Arc::new(ClusterState::new(Arc::clone(&sched), cfg.lease_timeout));
    let server = Server::serve_cluster(&cfg, Arc::clone(&sched), Some(cluster)).map_err(|e| {
        BootError::Bind {
            addr: cfg.addr.clone(),
            source: e,
        }
    })?;
    println!("unico-served coordinator listening on {}", server.addr());
    println!(
        "unico-served state dir {} (lease timeout {:?})",
        cfg.state_dir.display(),
        cfg.lease_timeout
    );
    sleep_forever()
}

fn run_worker() -> Result<(), BootError> {
    let serve_cfg = ServeConfig::try_from_env().map_err(BootError::Config)?;
    let cfg = WorkerConfig::try_from_env().map_err(BootError::Config)?;
    let cache = build_cache(&serve_cfg)?;
    let handle =
        unico_serve::worker::spawn(cfg.clone(), cache).map_err(|e| BootError::Scheduler {
            state_dir: cfg.state_dir.clone(),
            source: e,
        })?;
    println!(
        "unico-served worker {} pulling from {}",
        cfg.worker_id, cfg.coordinator
    );
    // Block until the pull loop exits (normally never — workers run
    // until killed; the kill hook only ends a loop in-process tests
    // configure to die).
    while !handle.is_finished() {
        std::thread::sleep(std::time::Duration::from_millis(500));
    }
    handle.stop();
    Ok(())
}

fn sleep_forever() -> Result<(), BootError> {
    // Serve until killed; durability is the whole point — recovery
    // happens on the next boot, not on the way down.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn main() {
    let role = std::env::args().nth(1);
    let result = match role.as_deref() {
        None => run_single(),
        Some("--coordinator") => run_coordinator(),
        Some("--worker") => run_worker(),
        Some(other) => {
            eprintln!("unico-served: unknown role {other:?} (expected --coordinator or --worker)");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("unico-served: {e}");
        std::process::exit(1);
    }
}
