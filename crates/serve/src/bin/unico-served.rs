//! The UNICO job-service daemon.
//!
//! Configuration comes from the environment (all optional, malformed
//! values abort the boot):
//!
//! * `UNICO_SERVE_ADDR` — listen address (default `127.0.0.1:8787`).
//! * `UNICO_SERVE_WORKERS` — worker threads (default 2).
//! * `UNICO_SERVE_STATE_DIR` — manifests/checkpoints/results
//!   directory (default `unico-serve-state`).
//! * `UNICO_SERVE_MAX_BODY` — request-body cap in bytes (default 1 MiB).
//!
//! On boot the daemon scans the state directory and requeues every job
//! whose manifest is not terminal; jobs with a surviving checkpoint
//! resume from it instead of restarting.

use std::sync::Arc;

use unico_model::EvalCache;
use unico_serve::{Scheduler, ServeConfig, Server};

fn main() {
    let cfg = ServeConfig::from_env();
    let sched = Scheduler::start(&cfg, EvalCache::process_shared())
        .unwrap_or_else(|e| panic!("unico-served: state dir {}: {e}", cfg.state_dir.display()));
    let server = Server::serve(&cfg, Arc::clone(&sched))
        .unwrap_or_else(|e| panic!("unico-served: bind {}: {e}", cfg.addr));
    println!("unico-served listening on {}", server.addr());
    println!(
        "unico-served state dir {} ({} workers)",
        cfg.state_dir.display(),
        cfg.workers
    );
    // Serve until killed; durability is the whole point — recovery
    // happens on the next boot, not on the way down.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
