//! The UNICO job-service daemon.
//!
//! Configuration comes from the environment (all optional, malformed
//! values abort the boot with a diagnostic and a nonzero exit):
//!
//! * `UNICO_SERVE_ADDR` — listen address (default `127.0.0.1:8787`).
//! * `UNICO_SERVE_WORKERS` — worker threads (default 2).
//! * `UNICO_SERVE_STATE_DIR` — manifests/checkpoints/results
//!   directory (default `unico-serve-state`).
//! * `UNICO_SERVE_MAX_BODY` — request-body cap in bytes (default 1 MiB).
//! * `UNICO_SERVE_HEAD_TIMEOUT_MS` — slowloris guard: total time a
//!   client gets to deliver one request (default 10000).
//! * `UNICO_SERVE_IDLE_TIMEOUT_MS` — idle keep-alive lifetime
//!   (default 60000).
//! * `UNICO_SERVE_SUBSCRIBER_QUEUE` — per-`/events`-subscriber queue
//!   bound in bytes (default 262144).
//!
//! On boot the daemon scans the state directory and requeues every job
//! whose manifest is not terminal; jobs with a surviving checkpoint
//! resume from it instead of restarting.

use std::sync::Arc;

use unico_model::EvalCache;
use unico_serve::{BootError, Scheduler, ServeConfig, Server};

fn run() -> Result<(), BootError> {
    let cfg = ServeConfig::try_from_env().map_err(BootError::Config)?;
    let sched =
        Scheduler::start(&cfg, EvalCache::process_shared()).map_err(|e| BootError::Scheduler {
            state_dir: cfg.state_dir.clone(),
            source: e,
        })?;
    let server = Server::serve(&cfg, Arc::clone(&sched)).map_err(|e| BootError::Bind {
        addr: cfg.addr.clone(),
        source: e,
    })?;
    println!("unico-served listening on {}", server.addr());
    println!(
        "unico-served state dir {} ({} workers)",
        cfg.state_dir.display(),
        cfg.workers
    );
    // Serve until killed; durability is the whole point — recovery
    // happens on the next boot, not on the way down.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("unico-served: {e}");
        std::process::exit(1);
    }
}
