//! The event-driven server core: one poller thread, many connections.
//!
//! Instead of thread-per-connection, a single thread owns a readiness
//! poller ([`crate::poll::Poller`]) plus every connection as a small
//! state object ([`crate::conn::Connection`]). Sockets are
//! non-blocking; the loop accepts, reads, parses (re-using the
//! incremental [`crate::http::parse_request`] buffer model, so split
//! reads and pipelined requests follow the exact same path as before),
//! routes, and drains outbound queues as writability allows. `/events`
//! subscribers tail their job's [`crate::job::EventLog`] through a
//! bounded per-connection queue — thousands of idle watchers cost one
//! fd each, and a slow subscriber is disconnected rather than ever
//! back-pressuring the job's iteration callback.
//!
//! Lifecycle deadlines (all config-tunable via [`ServeConfig`]):
//!
//! * **header-read deadline** — once the first byte of a request
//!   arrives, the complete message must follow within `head_timeout`
//!   (the slowloris guard); the connection gets a best-effort 408 and
//!   is reaped.
//! * **idle deadline** — a keep-alive connection with no buffered
//!   bytes is dropped after `idle_timeout`.
//! * **drain deadline** — closing connections (including dropped-slow
//!   subscribers) get `head_timeout` to take their final bytes.

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cluster::ClusterState;
use crate::conn::{ConnState, Connection, NetStats, OutBuf, ReadOutcome, Stream};
use crate::http::{self, HttpLimits, Request};
use crate::json;
use crate::metrics;
use crate::poll::{Event, Poller, Token};
use crate::scheduler::{Scheduler, SubmitError};
use crate::spec::{self, ServeConfig};

/// Why the daemon failed to boot. Each variant carries enough context
/// for a one-line operator diagnostic; the binary prints it and exits
/// nonzero instead of panicking.
#[derive(Debug)]
pub enum BootError {
    /// A malformed `UNICO_SERVE_*` environment variable.
    Config(String),
    /// The scheduler could not create or scan its state directory, or
    /// could not spawn its worker pool.
    Scheduler {
        /// The configured state directory.
        state_dir: PathBuf,
        /// The underlying I/O failure.
        source: io::Error,
    },
    /// The listen address could not be bound (or the poller thread
    /// could not start).
    Bind {
        /// The configured listen address.
        addr: String,
        /// The underlying I/O failure.
        source: io::Error,
    },
}

impl fmt::Display for BootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BootError::Config(msg) => write!(f, "configuration: {msg}"),
            BootError::Scheduler { state_dir, source } => {
                write!(
                    f,
                    "scheduler boot over state dir {}: {source}",
                    state_dir.display()
                )
            }
            BootError::Bind { addr, source } => write!(f, "bind {addr}: {source}"),
        }
    }
}

impl std::error::Error for BootError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BootError::Config(_) => None,
            BootError::Scheduler { source, .. } | BootError::Bind { source, .. } => Some(source),
        }
    }
}

/// A running HTTP front-end over a [`Scheduler`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<NetStats>,
    poller_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr` and starts the poller thread.
    ///
    /// # Errors
    ///
    /// I/O errors binding the listen address, registering it with the
    /// poller, or spawning the poller thread — no panic on any boot
    /// path.
    pub fn serve(cfg: &ServeConfig, sched: Arc<Scheduler>) -> io::Result<Server> {
        Self::serve_cluster(cfg, sched, None)
    }

    /// [`Server::serve`] with cluster state attached: the `/cluster/v1/*`
    /// routes come alive and `/metrics` gains the fleet exposition.
    ///
    /// # Errors
    ///
    /// Same as [`Server::serve`].
    pub fn serve_cluster(
        cfg: &ServeConfig,
        sched: Arc<Scheduler>,
        cluster: Option<Arc<ClusterState>>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(NetStats::default());
        let mut poller = Poller::new()?;
        poller.register(
            listener.as_raw_fd(),
            LISTENER,
            crate::poll::Interest::READABLE,
        )?;
        let mut event_loop = EventLoop {
            listener,
            poller,
            sched,
            cluster,
            stop: Arc::clone(&stop),
            stats: Arc::clone(&stats),
            limits: HttpLimits {
                max_body: cfg.max_body,
                ..HttpLimits::default()
            },
            head_timeout: cfg.head_timeout,
            idle_timeout: cfg.idle_timeout,
            queue_max: cfg.subscriber_queue_max,
            conns: HashMap::new(),
            next_token: LISTENER.0 + 1,
        };
        let poller_thread = std::thread::Builder::new()
            .name("unico-serve-poller".to_string())
            .spawn(move || event_loop.run())?;
        Ok(Server {
            addr,
            stop,
            stats,
            poller_thread: Some(poller_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The poller thread's connection-layer counters and gauges.
    pub fn stats(&self) -> Arc<NetStats> {
        Arc::clone(&self.stats)
    }

    /// Stops the poller thread and joins it. Open streams receive a
    /// synthesized terminal `done` event and the chunk terminator
    /// (best-effort) before their sockets close.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the poller out of its wait with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.poller_thread.take() {
            let _ = t.join();
        }
    }
}

/// The listening socket's poller token; connections count up from 1.
const LISTENER: Token = Token(0);

/// Poll tick while at least one healthy stream is open (how quickly
/// new event-log lines reach subscribers).
const STREAM_TICK: Duration = Duration::from_millis(25);
/// Poll tick with no streams: only deadlines need servicing.
const IDLE_TICK: Duration = Duration::from_millis(200);

struct EventLoop {
    listener: TcpListener,
    poller: Poller,
    sched: Arc<Scheduler>,
    cluster: Option<Arc<ClusterState>>,
    stop: Arc<AtomicBool>,
    stats: Arc<NetStats>,
    limits: HttpLimits,
    head_timeout: Duration,
    idle_timeout: Duration,
    queue_max: usize,
    conns: HashMap<u64, Connection>,
    next_token: u64,
}

/// What routing one request decided for the connection. (Whether to
/// close afterwards is the client's call via `connection: close`;
/// routing itself never forces one.)
enum Routed {
    /// Response queued; await the next request.
    KeepAlive,
    /// Upgrade to a chunked NDJSON stream of this job's events.
    Stream(Arc<crate::job::Job>),
}

impl EventLoop {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = self.wait_timeout();
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                break;
            }
            if self.stop.load(Ordering::SeqCst) {
                self.drain_on_shutdown();
                return;
            }
            let tokens: Vec<(u64, bool)> = events
                .iter()
                .map(|ev| (ev.token.0, ev.readable || ev.hangup))
                .collect();
            for (token, readable) in tokens {
                if token == LISTENER.0 {
                    self.accept_ready();
                } else {
                    self.service(token, readable);
                }
            }
            self.pump_streams();
            self.reap_deadlines();
            self.refresh_gauges();
        }
    }

    /// How long the poller may sleep this iteration: the stream tick
    /// when subscribers are waiting on new events, bounded by the
    /// nearest connection deadline.
    fn wait_timeout(&self) -> Duration {
        let streaming = self
            .conns
            .values()
            .any(|c| matches!(&c.state, ConnState::Streaming(st) if !st.finished));
        let mut timeout = if streaming { STREAM_TICK } else { IDLE_TICK };
        let now = Instant::now();
        for conn in self.conns.values() {
            if let Some(deadline) = conn.deadline {
                timeout = timeout.min(deadline.saturating_duration_since(now));
            }
        }
        timeout
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((sock, _)) => {
                    if sock.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = Token(self.next_token);
                    self.next_token += 1;
                    let conn = Connection::new(sock, token, Instant::now() + self.idle_timeout);
                    if self
                        .poller
                        .register(conn.sock.as_raw_fd(), token, conn.interest)
                        .is_ok()
                    {
                        self.stats.accepted_total.fetch_add(1, Ordering::Relaxed);
                        self.stats.open_connections.fetch_add(1, Ordering::Relaxed);
                        self.conns.insert(token.0, conn);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Services one readiness event on a connection: read, parse,
    /// route, flush.
    fn service(&mut self, token: u64, readable: bool) {
        let mut dead = false;
        if let Some(conn) = self.conns.get_mut(&token) {
            if readable {
                let had_partial = !conn.buf.is_empty();
                match conn.fill_read_buf() {
                    ReadOutcome::Progress => {
                        if matches!(conn.state, ConnState::Reading) {
                            Self::process_buffer(
                                conn,
                                &self.sched,
                                self.cluster.as_ref(),
                                &self.stats,
                                &self.limits,
                                self.head_timeout,
                                self.idle_timeout,
                                self.queue_max,
                                had_partial,
                            );
                        }
                    }
                    ReadOutcome::Eof | ReadOutcome::Broken => dead = true,
                }
            } else {
                // Writability: the socket drained some of its send
                // buffer.
                conn.write_blocked = false;
            }
        } else {
            return;
        }
        if dead {
            self.close(token);
            return;
        }
        self.flush_and_update(token);
    }

    /// Parses and routes every complete request in the buffer (the
    /// pipelining loop), then arms the appropriate deadline.
    #[allow(clippy::too_many_arguments)]
    fn process_buffer(
        conn: &mut Connection,
        sched: &Arc<Scheduler>,
        cluster: Option<&Arc<ClusterState>>,
        stats: &NetStats,
        limits: &HttpLimits,
        head_timeout: Duration,
        idle_timeout: Duration,
        queue_max: usize,
        had_partial: bool,
    ) {
        loop {
            if !matches!(conn.state, ConnState::Reading) {
                return;
            }
            match http::parse_request(&conn.buf, limits) {
                Ok(Some((req, used))) => {
                    conn.buf.drain(..used);
                    stats.requests_total.fetch_add(1, Ordering::Relaxed);
                    let wants_close = req.wants_close();
                    match route(&req, sched, cluster, stats, &mut conn.out) {
                        Routed::Stream(job) => {
                            let _ = http::write_stream_head(&mut conn.out, "application/x-ndjson");
                            conn.state = ConnState::Streaming(Stream {
                                job,
                                cursor: 0,
                                saw_done: false,
                                finished: false,
                            });
                            // Healthy streams have no deadline; EOF or
                            // queue overflow ends them.
                            conn.deadline = None;
                            stats.event_subscribers.fetch_add(1, Ordering::Relaxed);
                            let _ =
                                conn.pump_stream(queue_max, stats, Instant::now() + head_timeout);
                            return;
                        }
                        Routed::KeepAlive if !wants_close => {
                            conn.deadline = Some(Instant::now() + idle_timeout);
                        }
                        Routed::KeepAlive => {
                            conn.state = ConnState::Closing;
                            conn.deadline = Some(Instant::now() + head_timeout);
                            return;
                        }
                    }
                }
                Ok(None) => {
                    if conn.buf.is_empty() {
                        conn.deadline = Some(Instant::now() + idle_timeout);
                    } else if !had_partial {
                        // First bytes of a new message: the slowloris
                        // clock starts now and is NOT reset by later
                        // trickle — the whole head+body must land
                        // within the window.
                        conn.deadline = Some(Instant::now() + head_timeout);
                    }
                    return;
                }
                Err(e) => {
                    let body = format!("{{\"error\":{}}}", json::escape(&e.message()));
                    let _ = http::write_response(
                        &mut conn.out,
                        e.status(),
                        "application/json",
                        body.as_bytes(),
                        true,
                    );
                    conn.state = ConnState::Closing;
                    conn.deadline = Some(Instant::now() + head_timeout);
                    return;
                }
            }
        }
    }

    /// Tails every healthy stream's event log into its bounded queue.
    fn pump_streams(&mut self) {
        let flush_deadline = Instant::now() + self.head_timeout;
        let tokens: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| matches!(&c.state, ConnState::Streaming(st) if !st.finished))
            .map(|(t, _)| *t)
            .collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.pump_stream(self.queue_max, &self.stats, flush_deadline);
            }
            self.flush_and_update(token);
        }
    }

    /// Flushes a connection's outbound queue, closes it when done and
    /// closing, and re-registers poller interest if it changed.
    fn flush_and_update(&mut self, token: u64) {
        let mut remove = false;
        if let Some(conn) = self.conns.get_mut(&token) {
            if !conn.write_blocked && conn.flush().is_err() {
                remove = true;
            } else {
                let drained = conn.out.pending() == 0;
                let finished_stream =
                    matches!(&conn.state, ConnState::Streaming(st) if st.finished);
                if drained && (finished_stream || matches!(conn.state, ConnState::Closing)) {
                    remove = true;
                } else {
                    let desired = conn.desired_interest();
                    if desired != conn.interest {
                        conn.interest = desired;
                        let _ = self
                            .poller
                            .modify(conn.sock.as_raw_fd(), conn.token, desired);
                    }
                }
            }
        }
        if remove {
            self.close(token);
        }
    }

    /// Reaps connections whose deadline expired: slowloris partials
    /// get a best-effort 408, idle keep-alives and stuck drains are
    /// dropped silently.
    fn reap_deadlines(&mut self) {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.deadline.is_some_and(|d| d <= now))
            .map(|(t, _)| *t)
            .collect();
        for token in expired {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            self.stats
                .connection_timeouts_total
                .fetch_add(1, Ordering::Relaxed);
            if matches!(conn.state, ConnState::Reading) && !conn.buf.is_empty() {
                // Half-delivered request: tell the client why, if the
                // socket will take it.
                let _ = http::write_response(
                    &mut conn.out,
                    408,
                    "application/json",
                    b"{\"error\":\"request timeout\"}",
                    true,
                );
                let _ = conn.flush();
            }
            self.close(token);
        }
    }

    fn refresh_gauges(&self) {
        let queued: u64 = self
            .conns
            .values()
            .filter(|c| c.is_subscriber())
            .map(|c| c.out.pending() as u64)
            .sum();
        self.stats
            .subscriber_queue_bytes
            .store(queued, Ordering::Relaxed);
    }

    /// Deregisters and drops one connection, maintaining the gauges.
    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            if conn.is_subscriber() {
                self.stats.event_subscribers.fetch_sub(1, Ordering::Relaxed);
            }
            self.stats.open_connections.fetch_sub(1, Ordering::Relaxed);
            let _ = self.poller.deregister(conn.sock.as_raw_fd());
        }
    }

    /// On shutdown: terminate open streams with a synthesized `done`
    /// plus the chunk terminator, flush everything best-effort, drop
    /// all connections.
    fn drain_on_shutdown(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                if let ConnState::Streaming(st) = &mut conn.state {
                    if !st.finished {
                        if !st.saw_done {
                            let line = format!(
                                "{{\"event\":\"done\",\"state\":{}}}\n",
                                json::escape(st.job.state().name())
                            );
                            let _ = http::write_chunk(&mut conn.out, line.as_bytes());
                        }
                        let _ = http::write_chunk_end(&mut conn.out);
                        st.finished = true;
                    }
                }
                let _ = conn.flush();
            }
            self.close(token);
        }
    }
}

fn json_response(out: &mut OutBuf, status: u16, body: &str) -> Routed {
    let _ = http::write_response(out, status, "application/json", body.as_bytes(), false);
    Routed::KeepAlive
}

fn error_response(out: &mut OutBuf, status: u16, msg: &str) -> Routed {
    json_response(out, status, &format!("{{\"error\":{}}}", json::escape(msg)))
}

/// Routes one parsed request, queueing the response bytes; returns
/// what should happen to the connection afterwards.
fn route(
    req: &Request,
    sched: &Arc<Scheduler>,
    cluster: Option<&Arc<ClusterState>>,
    stats: &NetStats,
    out: &mut OutBuf,
) -> Routed {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => json_response(out, 200, "{\"ok\":true}"),
        ("GET", ["metrics"]) => {
            let text = metrics::render(sched, stats, cluster.map(Arc::as_ref));
            let _ = http::write_response(
                out,
                200,
                "text/plain; version=0.0.4",
                text.as_bytes(),
                false,
            );
            Routed::KeepAlive
        }
        ("POST", ["v1", "jobs"]) => match spec::parse_submission(&req.body) {
            Ok(spec) => match sched.submit(spec) {
                Ok(job) => json_response(
                    out,
                    201,
                    &format!(
                        "{{\"id\":{},\"state\":{}}}",
                        json::escape(&job.id),
                        json::escape(job.state().name())
                    ),
                ),
                Err(SubmitError::QueueFull { depth }) => {
                    let body = format!("{{\"error\":\"admission queue full\",\"queued\":{depth}}}");
                    let _ = http::write_response_with_headers(
                        out,
                        429,
                        "application/json",
                        &[("retry-after", "1")],
                        body.as_bytes(),
                        false,
                    );
                    Routed::KeepAlive
                }
                Err(SubmitError::InvalidGraph(e)) => error_response(out, 422, &e),
                Err(e) => error_response(out, 500, &format!("persisting job: {e}")),
            },
            Err(e) => error_response(out, 422, &e),
        },
        ("POST", ["cluster", "v1", action]) => match cluster {
            Some(cs) => {
                let body = std::str::from_utf8(&req.body)
                    .map_err(|_| "body is not utf-8".to_string())
                    .and_then(json::parse);
                match body {
                    Ok(v) => {
                        let (status, doc) = match *action {
                            "lease" => cs.handle_lease(&v),
                            "heartbeat" => cs.handle_heartbeat(&v),
                            "complete" => cs.handle_complete(&v),
                            "fail" => cs.handle_fail(&v),
                            _ => (
                                404,
                                format!("{{\"error\":\"no cluster action {action:?}\"}}"),
                            ),
                        };
                        json_response(out, status, &doc)
                    }
                    Err(e) => error_response(out, 400, &e),
                }
            }
            None => error_response(out, 503, "not a coordinator"),
        },
        ("GET", ["cluster", "v1", "status"]) => match cluster {
            Some(cs) => json_response(out, 200, &cs.status_json()),
            None => error_response(out, 503, "not a coordinator"),
        },
        ("GET", ["v1", "jobs"]) => {
            let items: Vec<String> = sched
                .jobs()
                .iter()
                .map(|j| {
                    format!(
                        "{{\"id\":{},\"state\":{}}}",
                        json::escape(&j.id),
                        json::escape(j.state().name())
                    )
                })
                .collect();
            json_response(out, 200, &format!("{{\"jobs\":[{}]}}", items.join(",")))
        }
        ("GET", ["v1", "jobs", id]) => match sched.get(id) {
            Some(job) => json_response(out, 200, &job.status_json()),
            None => error_response(out, 404, &format!("no job {id:?}")),
        },
        ("DELETE", ["v1", "jobs", id]) => match sched.cancel(id) {
            Some(observed) => json_response(
                out,
                202,
                &format!(
                    "{{\"id\":{},\"state_observed\":{}}}",
                    json::escape(id),
                    json::escape(observed.name())
                ),
            ),
            None => error_response(out, 404, &format!("no job {id:?}")),
        },
        ("GET", ["v1", "jobs", id, "events"]) => match sched.get(id) {
            Some(job) => Routed::Stream(job),
            None => error_response(out, 404, &format!("no job {id:?}")),
        },
        (_, ["v1", "jobs", ..]) | (_, ["metrics"]) | (_, ["healthz"]) => {
            error_response(out, 405, "method not allowed")
        }
        _ => error_response(out, 404, &format!("no route {}", req.path)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::path::PathBuf;
    use unico_model::EvalCache;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("unico-serve-server-tests")
            .join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn boot(name: &str) -> (Server, Arc<Scheduler>) {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            state_dir: scratch(name),
            ..ServeConfig::default()
        };
        let sched = Scheduler::start(&cfg, Arc::new(EvalCache::new())).expect("boot scheduler");
        let server = Server::serve(&cfg, Arc::clone(&sched)).expect("boot server");
        (server, sched)
    }

    fn request(addr: SocketAddr, raw: &str) -> String {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(raw.as_bytes()).expect("send");
        let mut out = String::new();
        conn.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        conn.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn health_metrics_and_unknown_routes() {
        let (server, sched) = boot("routes");
        let addr = server.addr();

        let health = request(addr, "GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
        assert!(health.ends_with("{\"ok\":true}"));

        let m = request(addr, "GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n");
        let body = m.split("\r\n\r\n").nth(1).expect("body");
        metrics::validate_exposition(body).expect("valid exposition over HTTP");
        assert!(body.contains("unico_serve_open_connections"), "{body}");

        let missing = request(addr, "GET /nope HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        let wrong = request(
            addr,
            "PUT /metrics HTTP/1.1\r\ncontent-length: 0\r\nconnection: close\r\n\r\n",
        );
        assert!(wrong.starts_with("HTTP/1.1 405"), "{wrong}");

        let unknown_job = request(
            addr,
            "GET /v1/jobs/job-999999 HTTP/1.1\r\nconnection: close\r\n\r\n",
        );
        assert!(unknown_job.starts_with("HTTP/1.1 404"), "{unknown_job}");

        server.shutdown();
        sched.shutdown();
    }

    #[test]
    fn submission_validation_maps_to_422() {
        let (server, sched) = boot("submit-422");
        let body = r#"{"platform": "spatial-edge", "workloads": ["not-a-net"]}"#;
        let raw = format!(
            "POST /v1/jobs HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        );
        let resp = request(server.addr(), &raw);
        assert!(resp.starts_with("HTTP/1.1 422"), "{resp}");
        assert!(resp.contains("unknown network"), "{resp}");
        server.shutdown();
        sched.shutdown();
    }

    #[test]
    fn keep_alive_serves_sequential_and_pipelined_requests() {
        let (server, sched) = boot("keep-alive");
        let mut conn = TcpStream::connect(server.addr()).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();

        // Two sequential requests on one connection.
        for _ in 0..2 {
            conn.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let mut buf = [0u8; 1024];
            let mut got = String::new();
            while !got.contains("{\"ok\":true}") {
                let n = conn.read(&mut buf).expect("read");
                assert!(n > 0, "server closed a keep-alive connection");
                got.push_str(&String::from_utf8_lossy(&buf[..n]));
            }
            assert!(got.contains("connection: keep-alive"), "{got}");
        }

        // Two pipelined requests in one write; the second closes.
        conn.write_all(
            b"GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
        )
        .unwrap();
        let mut rest = String::new();
        conn.read_to_string(&mut rest).expect("read to close");
        assert_eq!(
            rest.matches("{\"ok\":true}").count(),
            2,
            "both pipelined responses must arrive: {rest}"
        );
        server.shutdown();
        sched.shutdown();
    }

    #[test]
    fn startup_errors_are_typed_not_panics() {
        // Bind failure: the port is already taken.
        let taken = TcpListener::bind("127.0.0.1:0").expect("hold a port");
        let cfg = ServeConfig {
            addr: taken.local_addr().unwrap().to_string(),
            workers: 1,
            state_dir: scratch("boot-bind"),
            ..ServeConfig::default()
        };
        let sched = Scheduler::start(&cfg, Arc::new(EvalCache::new())).expect("boot scheduler");
        let err = Server::serve(&cfg, Arc::clone(&sched))
            .err()
            .expect("bind must fail");
        let boot = BootError::Bind {
            addr: cfg.addr.clone(),
            source: err,
        };
        assert!(boot.to_string().contains(&cfg.addr), "{boot}");
        assert!(std::error::Error::source(&boot).is_some());
        sched.shutdown();

        // Scheduler-boot failure: the state dir path is a file.
        let dir = scratch("boot-state");
        let file = dir.join("not-a-dir");
        std::fs::write(&file, b"x").unwrap();
        let cfg = ServeConfig {
            state_dir: file.clone(),
            workers: 1,
            ..ServeConfig::default()
        };
        let err = Scheduler::start(&cfg, Arc::new(EvalCache::new()))
            .err()
            .expect("boot must fail");
        let boot = BootError::Scheduler {
            state_dir: file.clone(),
            source: err,
        };
        assert!(
            boot.to_string().contains("not-a-dir"),
            "diagnostic names the path: {boot}"
        );
    }
}
