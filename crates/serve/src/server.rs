//! The TCP accept loop and request router.
//!
//! Thread-per-connection with keep-alive: the connection task reads
//! into a growing buffer and repeatedly asks [`crate::http::parse_request`]
//! for the next complete message, so pipelined requests and requests
//! split across arbitrary read boundaries follow the same path. The
//! events route upgrades the connection to a chunked NDJSON stream and
//! closes it when the job's event log does.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::http::{self, HttpError, HttpLimits, Request};
use crate::json;
use crate::metrics;
use crate::scheduler::Scheduler;
use crate::spec::{self, ServeConfig};

/// A running HTTP front-end over a [`Scheduler`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr` and starts accepting connections.
    ///
    /// # Errors
    ///
    /// I/O errors binding the listen address.
    pub fn serve(cfg: &ServeConfig, sched: Arc<Scheduler>) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let limits = HttpLimits {
            max_body: cfg.max_body,
            ..HttpLimits::default()
        };
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("unico-serve-accept".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    let sched = Arc::clone(&sched);
                    let stop = Arc::clone(&accept_stop);
                    let _ = std::thread::Builder::new()
                        .name("unico-serve-conn".to_string())
                        .spawn(move || {
                            let _ = handle_connection(conn, &sched, &limits, &stop);
                        });
                }
            })
            .expect("spawn accept thread");
        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread.
    /// In-flight connection threads drain on their own (they observe
    /// the stop flag at their next read timeout).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// How long one read may block before the connection re-checks the
/// stop flag (and how often streams poll their event log).
const READ_TICK: Duration = Duration::from_millis(200);
/// Idle ticks before a keep-alive connection is dropped.
const MAX_IDLE_TICKS: u32 = 300;

fn handle_connection(
    mut conn: TcpStream,
    sched: &Arc<Scheduler>,
    limits: &HttpLimits,
    stop: &AtomicBool,
) -> io::Result<()> {
    conn.set_read_timeout(Some(READ_TICK))?;
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 8192];
    let mut idle_ticks = 0u32;
    loop {
        match http::parse_request(&buf, limits) {
            Ok(Some((req, used))) => {
                buf.drain(..used);
                idle_ticks = 0;
                let close = req.wants_close();
                match route(&req, sched, &mut conn, stop) {
                    Ok(Handled::KeepAlive) if !close => continue,
                    _ => return Ok(()),
                }
            }
            Ok(None) => match conn.read(&mut tmp) {
                Ok(0) => return Ok(()),
                Ok(n) => {
                    buf.extend_from_slice(&tmp[..n]);
                    idle_ticks = 0;
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    idle_ticks += 1;
                    if stop.load(Ordering::SeqCst) || idle_ticks > MAX_IDLE_TICKS {
                        return Ok(());
                    }
                }
                Err(e) => return Err(e),
            },
            Err(e) => {
                respond_error(&mut conn, &e)?;
                return Ok(());
            }
        }
    }
}

enum Handled {
    KeepAlive,
    Close,
}

fn respond_error(conn: &mut TcpStream, e: &HttpError) -> io::Result<()> {
    let body = format!("{{\"error\":{}}}", json::escape(&e.message()));
    http::write_response(conn, e.status(), "application/json", body.as_bytes(), true)
}

fn json_response(conn: &mut TcpStream, status: u16, body: &str) -> io::Result<Handled> {
    http::write_response(conn, status, "application/json", body.as_bytes(), false)?;
    Ok(Handled::KeepAlive)
}

fn error_response(conn: &mut TcpStream, status: u16, msg: &str) -> io::Result<Handled> {
    json_response(
        conn,
        status,
        &format!("{{\"error\":{}}}", json::escape(msg)),
    )
}

fn route(
    req: &Request,
    sched: &Arc<Scheduler>,
    conn: &mut TcpStream,
    stop: &AtomicBool,
) -> io::Result<Handled> {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => json_response(conn, 200, "{\"ok\":true}"),
        ("GET", ["metrics"]) => {
            let text = metrics::render(sched);
            http::write_response(
                conn,
                200,
                "text/plain; version=0.0.4",
                text.as_bytes(),
                false,
            )?;
            Ok(Handled::KeepAlive)
        }
        ("POST", ["v1", "jobs"]) => match spec::parse_submission(&req.body) {
            Ok(spec) => match sched.submit(spec) {
                Ok(job) => json_response(
                    conn,
                    201,
                    &format!(
                        "{{\"id\":{},\"state\":{}}}",
                        json::escape(&job.id),
                        json::escape(job.state().name())
                    ),
                ),
                Err(e) => error_response(conn, 500, &format!("persisting job: {e}")),
            },
            Err(e) => error_response(conn, 422, &e),
        },
        ("GET", ["v1", "jobs"]) => {
            let items: Vec<String> = sched
                .jobs()
                .iter()
                .map(|j| {
                    format!(
                        "{{\"id\":{},\"state\":{}}}",
                        json::escape(&j.id),
                        json::escape(j.state().name())
                    )
                })
                .collect();
            json_response(conn, 200, &format!("{{\"jobs\":[{}]}}", items.join(",")))
        }
        ("GET", ["v1", "jobs", id]) => match sched.get(id) {
            Some(job) => json_response(conn, 200, &job.status_json()),
            None => error_response(conn, 404, &format!("no job {id:?}")),
        },
        ("DELETE", ["v1", "jobs", id]) => match sched.cancel(id) {
            Some(observed) => json_response(
                conn,
                202,
                &format!(
                    "{{\"id\":{},\"state_observed\":{}}}",
                    json::escape(id),
                    json::escape(observed.name())
                ),
            ),
            None => error_response(conn, 404, &format!("no job {id:?}")),
        },
        ("GET", ["v1", "jobs", id, "events"]) => match sched.get(id) {
            Some(job) => stream_events(conn, &job, stop).map(|()| Handled::Close),
            None => error_response(conn, 404, &format!("no job {id:?}")),
        },
        (_, ["v1", "jobs", ..]) | (_, ["metrics"]) | (_, ["healthz"]) => {
            error_response(conn, 405, "method not allowed")
        }
        _ => error_response(conn, 404, &format!("no route {}", req.path)),
    }
}

/// Streams the job's NDJSON event log as a chunked response. The
/// stream always terminates with a `{"event":"done",...}` line — the
/// log's own terminal event when there is one, or a synthesized one
/// (simulated-kill streams and server shutdown close logs without a
/// terminal transition).
fn stream_events(conn: &mut TcpStream, job: &crate::job::Job, stop: &AtomicBool) -> io::Result<()> {
    http::write_stream_head(conn, "application/x-ndjson")?;
    let mut cursor = 0usize;
    let mut saw_done = false;
    loop {
        let (lines, closed) = job.events.wait_past(cursor, READ_TICK);
        for line in &lines {
            saw_done = saw_done || line.starts_with("{\"event\":\"done\"");
            http::write_chunk(conn, format!("{line}\n").as_bytes())?;
        }
        cursor += lines.len();
        if closed || stop.load(Ordering::SeqCst) {
            break;
        }
    }
    if !saw_done {
        let line = format!(
            "{{\"event\":\"done\",\"state\":{}}}\n",
            json::escape(job.state().name())
        );
        http::write_chunk(conn, line.as_bytes())?;
    }
    http::write_chunk_end(conn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::path::PathBuf;
    use unico_model::EvalCache;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("unico-serve-server-tests")
            .join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn boot(name: &str) -> (Server, Arc<Scheduler>) {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            state_dir: scratch(name),
            ..ServeConfig::default()
        };
        let sched = Scheduler::start(&cfg, Arc::new(EvalCache::new())).expect("boot scheduler");
        let server = Server::serve(&cfg, Arc::clone(&sched)).expect("boot server");
        (server, sched)
    }

    fn request(addr: SocketAddr, raw: &str) -> String {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(raw.as_bytes()).expect("send");
        let mut out = String::new();
        conn.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        conn.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn health_metrics_and_unknown_routes() {
        let (server, sched) = boot("routes");
        let addr = server.addr();

        let health = request(addr, "GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
        assert!(health.ends_with("{\"ok\":true}"));

        let m = request(addr, "GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n");
        let body = m.split("\r\n\r\n").nth(1).expect("body");
        metrics::validate_exposition(body).expect("valid exposition over HTTP");

        let missing = request(addr, "GET /nope HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        let wrong = request(
            addr,
            "PUT /metrics HTTP/1.1\r\ncontent-length: 0\r\nconnection: close\r\n\r\n",
        );
        assert!(wrong.starts_with("HTTP/1.1 405"), "{wrong}");

        let unknown_job = request(
            addr,
            "GET /v1/jobs/job-999999 HTTP/1.1\r\nconnection: close\r\n\r\n",
        );
        assert!(unknown_job.starts_with("HTTP/1.1 404"), "{unknown_job}");

        server.shutdown();
        sched.shutdown();
    }

    #[test]
    fn submission_validation_maps_to_422() {
        let (server, sched) = boot("submit-422");
        let body = r#"{"platform": "spatial-edge", "workloads": ["not-a-net"]}"#;
        let raw = format!(
            "POST /v1/jobs HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        );
        let resp = request(server.addr(), &raw);
        assert!(resp.starts_with("HTTP/1.1 422"), "{resp}");
        assert!(resp.contains("unknown network"), "{resp}");
        server.shutdown();
        sched.shutdown();
    }
}
