//! Hand-rolled HTTP/1.1 message layer.
//!
//! The daemon serves a handful of JSON endpoints plus one streaming
//! route; it does not need (and the air-gapped build cannot take) a
//! full web framework. The parser here is deliberately incremental:
//! [`parse_request`] is called on the connection's accumulated read
//! buffer and either yields a complete request plus the number of
//! bytes it consumed, asks for more bytes, or rejects the message.
//! Re-parsing from the buffer keeps split reads (a header straddling
//! two TCP segments) and pipelined requests (two messages in one
//! segment) on the exact same code path, which the property tests
//! exercise directly.

use std::collections::BTreeMap;
use std::io::{self, Write};

/// Upper bounds on message size, applied before any allocation grows
/// unboundedly on attacker input.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Maximum bytes in the request line + headers (431 beyond this).
    pub max_head: usize,
    /// Maximum bytes in the body (413 beyond this).
    pub max_body: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head: 16 * 1024,
            max_body: 1024 * 1024,
        }
    }
}

/// A fully received request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the target, without query string.
    pub path: String,
    /// Query string after `?`, empty if absent.
    pub query: String,
    /// Headers with lowercased names; later duplicates overwrite —
    /// except `Content-Length`, where a duplicate (even a repeated
    /// identical value) rejects the whole message as
    /// request-smuggling-shaped.
    pub headers: BTreeMap<String, String>,
    /// Request body (empty unless Content-Length was given).
    pub body: Vec<u8>,
}

impl Request {
    /// Header lookup by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(|s| s.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be parsed; each maps to one status code.
#[derive(Debug, Clone, PartialEq)]
pub enum HttpError {
    /// Malformed request line, header, or Content-Length value → 400.
    Bad(String),
    /// Body-bearing method without Content-Length → 411.
    LengthRequired,
    /// Declared body exceeds [`HttpLimits::max_body`] → 413.
    BodyTooLarge,
    /// Head exceeds [`HttpLimits::max_head`] → 431.
    HeadTooLarge,
    /// Transfer-Encoding requests we do not implement → 501.
    Unsupported(String),
}

impl HttpError {
    /// The HTTP status code this parse failure is reported as.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Bad(_) => 400,
            HttpError::LengthRequired => 411,
            HttpError::BodyTooLarge => 413,
            HttpError::HeadTooLarge => 431,
            HttpError::Unsupported(_) => 501,
        }
    }

    /// Human-readable reason, embedded in the error response body.
    pub fn message(&self) -> String {
        match self {
            HttpError::Bad(m) => format!("bad request: {m}"),
            HttpError::LengthRequired => "length required".into(),
            HttpError::BodyTooLarge => "body too large".into(),
            HttpError::HeadTooLarge => "request head too large".into(),
            HttpError::Unsupported(m) => format!("not implemented: {m}"),
        }
    }
}

/// Attempts to parse one request from the front of `buf`.
///
/// Returns `Ok(Some((request, consumed)))` when a complete message is
/// available (the caller drains `consumed` bytes and may find another
/// pipelined message behind it), `Ok(None)` when more bytes are
/// needed, and `Err` when the message is invalid and the connection
/// should be failed.
pub fn parse_request(
    buf: &[u8],
    limits: &HttpLimits,
) -> Result<Option<(Request, usize)>, HttpError> {
    let head_end = match find_head_end(buf) {
        Some(end) => end,
        None => {
            // Partial head: still enforce the cap so a client cannot
            // feed headers forever.
            if buf.len() > limits.max_head {
                return Err(HttpError::HeadTooLarge);
            }
            return Ok(None);
        }
    };
    if head_end > limits.max_head {
        return Err(HttpError::HeadTooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Bad("head is not utf-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::Bad(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Bad(format!("unsupported version {version:?}")));
    }

    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Bad(format!("malformed header {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Bad(format!("malformed header name {name:?}")));
        }
        let name = name.to_ascii_lowercase();
        // Two Content-Length headers is the classic smuggling shape:
        // two parsers picking different values see two different
        // message boundaries. Reject even agreeing duplicates — a
        // legitimate client has no reason to send them.
        if name == "content-length" && headers.contains_key(&name) {
            return Err(HttpError::Bad("duplicate content-length".into()));
        }
        headers.insert(name, value.trim().to_string());
    }

    if let Some(te) = headers.get("transfer-encoding") {
        return Err(HttpError::Unsupported(format!("transfer-encoding {te:?}")));
    }

    let body_len = match headers.get("content-length") {
        Some(v) => {
            // Digits only: no sign, no whitespace, no comma-joined
            // value lists ("5, 5" is a folded duplicate — the same
            // smuggling shape as two headers). Overflow of usize is a
            // parse error and rejects too.
            if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
                return Err(HttpError::Bad(format!("bad content-length {v:?}")));
            }
            v.parse::<usize>()
                .map_err(|_| HttpError::Bad(format!("content-length overflows: {v:?}")))?
        }
        None if matches!(method, "POST" | "PUT" | "PATCH") => {
            return Err(HttpError::LengthRequired)
        }
        None => 0,
    };
    if body_len > limits.max_body {
        return Err(HttpError::BodyTooLarge);
    }
    let total = head_end + body_len;
    if buf.len() < total {
        return Ok(None);
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Ok(Some((
        Request {
            method: method.to_string(),
            path,
            query,
            headers,
            body: buf[head_end..total].to_vec(),
        },
        total,
    )))
}

/// Byte offset just past the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Reason phrase for the status codes the daemon emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        405 => "Method Not Allowed",
        409 => "Conflict",
        410 => "Gone",
        429 => "Too Many Requests",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete, Content-Length-framed response.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    write_response_with_headers(w, status, content_type, &[], body, close)
}

/// [`write_response`] with extra response headers (e.g. `Retry-After`
/// on a 429). Header names and values must already be valid token /
/// field-value bytes; this writer does no escaping.
pub fn write_response_with_headers(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        reason(status),
        body.len(),
        if close { "close" } else { "keep-alive" },
    )?;
    for (name, value) in extra {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// Writes the head of a chunked streaming response; follow with
/// [`write_chunk`] calls and one [`write_chunk_end`].
pub fn write_stream_head(w: &mut impl Write, content_type: &str) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 200 OK\r\ncontent-type: {content_type}\r\ntransfer-encoding: chunked\r\nconnection: close\r\n\r\n",
    )?;
    w.flush()
}

/// Writes one non-empty chunk in chunked transfer encoding.
pub fn write_chunk(w: &mut impl Write, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", data.len())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")?;
    w.flush()
}

/// Terminates a chunked stream.
pub fn write_chunk_end(w: &mut impl Write) -> io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> HttpLimits {
        HttpLimits::default()
    }

    #[test]
    fn parses_a_get_with_query_and_headers() {
        let raw = b"GET /v1/jobs/abc?events=1 HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n";
        let (req, used) = parse_request(raw, &limits()).unwrap().unwrap();
        assert_eq!(used, raw.len());
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/jobs/abc");
        assert_eq!(req.query, "events=1");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(req.body.is_empty());
        assert!(!req.wants_close());
    }

    #[test]
    fn needs_more_bytes_until_the_message_completes() {
        let raw = b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 4\r\n\r\nbody";
        for cut in 0..raw.len() {
            assert_eq!(
                parse_request(&raw[..cut], &limits()).unwrap(),
                None,
                "prefix of {cut} bytes must ask for more"
            );
        }
        let (req, used) = parse_request(raw, &limits()).unwrap().unwrap();
        assert_eq!(used, raw.len());
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn pipelined_messages_consume_exactly_one_each() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nconnection: close\r\n\r\n";
        let (first, used) = parse_request(raw, &limits()).unwrap().unwrap();
        assert_eq!(first.path, "/a");
        let (second, used2) = parse_request(&raw[used..], &limits()).unwrap().unwrap();
        assert_eq!(second.path, "/b");
        assert!(second.wants_close());
        assert_eq!(used + used2, raw.len());
    }

    #[test]
    fn error_statuses_match_the_failure() {
        let post_no_len = b"POST /v1/jobs HTTP/1.1\r\n\r\n";
        assert_eq!(
            parse_request(post_no_len, &limits()).unwrap_err(),
            HttpError::LengthRequired
        );

        let huge = b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 999999999\r\n\r\n";
        assert_eq!(parse_request(huge, &limits()).unwrap_err().status(), 413);

        let tiny = HttpLimits {
            max_head: 16,
            max_body: 16,
        };
        let long_head = b"GET /averylongpathindeed HTTP/1.1\r\nx: y\r\n\r\n";
        assert_eq!(parse_request(long_head, &tiny).unwrap_err().status(), 431);
        // Even an unterminated head trips the cap.
        assert_eq!(
            parse_request(&[b'a'; 64], &tiny).unwrap_err(),
            HttpError::HeadTooLarge
        );

        let chunked = b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
        assert_eq!(parse_request(chunked, &limits()).unwrap_err().status(), 501);

        for bad in [
            &b"GARBAGE\r\n\r\n"[..],
            &b"GET / HTTP/2.0\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\ncontent-length: many\r\n\r\n"[..],
        ] {
            assert_eq!(parse_request(bad, &limits()).unwrap_err().status(), 400);
        }
    }

    #[test]
    fn smuggling_shaped_content_lengths_are_rejected() {
        // Conflicting duplicates: two parsers could disagree on the
        // message boundary.
        let conflicting =
            b"POST / HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 11\r\n\r\nbodybodybod";
        assert_eq!(
            parse_request(conflicting, &limits()).unwrap_err().status(),
            400
        );
        // Agreeing duplicates are rejected too — no legitimate client
        // sends them.
        let agreeing = b"POST / HTTP/1.1\r\nContent-Length: 4\r\ncontent-length: 4\r\n\r\nbody";
        assert_eq!(
            parse_request(agreeing, &limits()).unwrap_err(),
            HttpError::Bad("duplicate content-length".into())
        );
        // Folded value lists, signs, inner whitespace, empty: not
        // digits. (Leading/trailing OWS is trimmed before the check —
        // that much is legal HTTP.)
        for bad in ["4, 4", "+4", "4 4", "0x4", "4.0", ""] {
            let raw = format!("POST / HTTP/1.1\r\ncontent-length: {bad}\r\n\r\nbody");
            assert_eq!(
                parse_request(raw.as_bytes(), &limits())
                    .unwrap_err()
                    .status(),
                400,
                "content-length {bad:?} must be rejected"
            );
        }
        // usize overflow is a 400, not a huge allocation.
        let huge = format!("POST / HTTP/1.1\r\ncontent-length: {}0\r\n\r\n", usize::MAX);
        assert_eq!(
            parse_request(huge.as_bytes(), &limits())
                .unwrap_err()
                .status(),
            400
        );
        // A single well-formed Content-Length still parses.
        let ok = b"POST / HTTP/1.1\r\ncontent-length: 4\r\n\r\nbody";
        let (req, _) = parse_request(ok, &limits()).unwrap().unwrap();
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn responses_and_chunks_are_well_framed() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            404,
            "application/json",
            b"{\"error\":\"x\"}",
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("content-length: 13\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"error\":\"x\"}"));

        let mut out = Vec::new();
        write_stream_head(&mut out, "application/x-ndjson").unwrap();
        write_chunk(&mut out, b"{\"event\":\"iteration\"}\n").unwrap();
        write_chunk(&mut out, b"").unwrap();
        write_chunk_end(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("transfer-encoding: chunked\r\n"));
        assert!(text.contains("16\r\n{\"event\":\"iteration\"}\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }
}
