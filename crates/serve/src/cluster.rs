//! Coordinator-side cluster state: leases, reaping, and the wire
//! protocol handlers behind `/cluster/v1/*`.
//!
//! The cluster is pull-based (work stealing): workers poll
//! `POST /cluster/v1/lease` and the coordinator hands out the next
//! fair-queued job under a *lease* — a claim that expires unless the
//! worker heartbeats. There is no reaper thread; expiry is checked on
//! every lease and heartbeat call, which the fleet makes continuously.
//! A reaped lease requeues its job (bypassing admission), and the next
//! worker to claim it resumes from the shared-state-dir checkpoint —
//! the same recovery path a daemon restart uses.
//!
//! Completion travels as a `unico.cluster_complete.v1` document whose
//! report fields are escaped JSON *strings*, so the coordinator
//! persists the worker's exact bytes and the byte-identical oracles
//! hold across process boundaries.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use unico_search::TelemetrySnapshot;

use crate::job::JobOutcome;
use crate::json::{self, Json};
use crate::scheduler::Scheduler;

/// Monotonic cluster counters exported via `/metrics`.
#[derive(Debug, Default)]
pub struct ClusterCounters {
    /// Leases handed to pulling workers.
    pub leases_granted: AtomicU64,
    /// Leases reaped after their worker went silent.
    pub leases_expired: AtomicU64,
    /// Jobs completed by remote workers.
    pub remote_completions: AtomicU64,
    /// Jobs failed by remote workers.
    pub remote_failures: AtomicU64,
    /// Heartbeats received.
    pub heartbeats: AtomicU64,
}

/// A worker's self-reported cache totals (memory + disk tier), summed
/// across the fleet for `/metrics`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct WorkerCacheReport {
    /// In-memory cache hits.
    pub hits: u64,
    /// In-memory cache misses.
    pub misses: u64,
    /// In-memory entries resident.
    pub entries: u64,
    /// Disk-tier hits (in-memory misses served from segments).
    pub disk_hits: u64,
    /// Disk-tier entries indexed.
    pub disk_entries: u64,
}

#[derive(Debug, Clone)]
struct Lease {
    job_id: String,
    worker: String,
    deadline: Instant,
}

/// Shared coordinator state for cluster mode.
pub struct ClusterState {
    sched: Arc<Scheduler>,
    lease_timeout: Duration,
    leases: Mutex<BTreeMap<String, Lease>>,
    next_lease: AtomicU64,
    worker_caches: Mutex<BTreeMap<String, WorkerCacheReport>>,
    /// Cluster lifecycle counters.
    pub counters: ClusterCounters,
}

impl ClusterState {
    /// Creates cluster state over a scheduler (typically one with zero
    /// local workers, so remote workers do all the running).
    pub fn new(sched: Arc<Scheduler>, lease_timeout: Duration) -> Self {
        ClusterState {
            sched,
            lease_timeout,
            leases: Mutex::new(BTreeMap::new()),
            next_lease: AtomicU64::new(1),
            worker_caches: Mutex::new(BTreeMap::new()),
            counters: ClusterCounters::default(),
        }
    }

    /// The scheduler this cluster shards for.
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.sched
    }

    /// Leases currently outstanding.
    pub fn active_leases(&self) -> usize {
        self.leases.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Sum of every worker's latest cache report.
    pub fn fleet_cache(&self) -> WorkerCacheReport {
        let caches = self.worker_caches.lock().unwrap_or_else(|e| e.into_inner());
        let mut total = WorkerCacheReport::default();
        for c in caches.values() {
            total.hits += c.hits;
            total.misses += c.misses;
            total.entries += c.entries;
            total.disk_hits += c.disk_hits;
            total.disk_entries += c.disk_entries;
        }
        total
    }

    /// Workers that have reported in.
    pub fn workers_seen(&self) -> usize {
        self.worker_caches
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Reaps leases whose worker went silent past the timeout,
    /// requeueing their jobs. Called from every lease and heartbeat.
    fn reap(&self) {
        let now = Instant::now();
        let expired: Vec<Lease> = {
            let mut leases = self.leases.lock().unwrap_or_else(|e| e.into_inner());
            let dead: Vec<String> = leases
                .iter()
                .filter(|(_, l)| l.deadline <= now)
                .map(|(id, _)| id.clone())
                .collect();
            dead.iter().filter_map(|id| leases.remove(id)).collect()
        };
        for lease in expired {
            self.counters.leases_expired.fetch_add(1, Ordering::Relaxed);
            if let Some(job) = self.sched.get(&lease.job_id) {
                job.events.push(format!(
                    "{{\"event\":\"lease-reaped\",\"worker\":{}}}",
                    json::escape(&lease.worker)
                ));
                self.sched.requeue(&job);
            }
        }
    }

    /// `POST /cluster/v1/lease` — hand the next queued job to `worker`.
    /// 200 with `{lease, job, spec}` or 204 when the queue is idle.
    pub fn handle_lease(&self, body: &Json) -> (u16, String) {
        let worker = match body.get("worker").map(|w| w.as_str("worker")) {
            Some(Ok(w)) => w.to_string(),
            _ => return (422, "{\"error\":\"worker: required field missing\"}".into()),
        };
        self.reap();
        while let Some(id) = self.sched.try_pop() {
            let Some(job) = self.sched.get(&id) else {
                continue;
            };
            // Finishes a pending cancellation instead of leasing it.
            if !self.sched.begin_running(&job) {
                continue;
            }
            let lease_id = format!(
                "lease-{:06}",
                self.next_lease.fetch_add(1, Ordering::SeqCst)
            );
            self.leases
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(
                    lease_id.clone(),
                    Lease {
                        job_id: id.clone(),
                        worker: worker.clone(),
                        deadline: Instant::now() + self.lease_timeout,
                    },
                );
            self.counters.leases_granted.fetch_add(1, Ordering::Relaxed);
            job.events.push(format!(
                "{{\"event\":\"leased\",\"worker\":{},\"lease\":{}}}",
                json::escape(&worker),
                json::escape(&lease_id)
            ));
            let doc = format!(
                "{{\"lease\":{},\"job\":{},\"spec\":{}}}",
                json::escape(&lease_id),
                json::escape(&id),
                job.spec.to_json()
            );
            return (200, doc);
        }
        (204, String::new())
    }

    /// `POST /cluster/v1/heartbeat` — extend a lease, relay the
    /// worker's new events, and record its cache report. 410 when the
    /// lease is gone (reaped or never existed): the worker must stop.
    pub fn handle_heartbeat(&self, body: &Json) -> (u16, String) {
        self.counters.heartbeats.fetch_add(1, Ordering::Relaxed);
        self.reap();
        let lease_id = match body.get("lease").map(|l| l.as_str("lease")) {
            Some(Ok(l)) => l.to_string(),
            _ => return (422, "{\"error\":\"lease: required field missing\"}".into()),
        };
        let job_id = {
            let mut leases = self.leases.lock().unwrap_or_else(|e| e.into_inner());
            match leases.get_mut(&lease_id) {
                Some(lease) => {
                    lease.deadline = Instant::now() + self.lease_timeout;
                    lease.job_id.clone()
                }
                None => return (410, "{\"error\":\"lease expired\"}".into()),
            }
        };
        if let (Some(Ok(worker)), Some(report)) = (
            body.get("worker").map(|w| w.as_str("worker")),
            body.get("cache")
                .and_then(|c| cache_report_from_wire(c).ok()),
        ) {
            self.worker_caches
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(worker.to_string(), report);
        }
        let Some(job) = self.sched.get(&job_id) else {
            return (410, "{\"error\":\"job unknown\"}".into());
        };
        relay_events(body, &job);
        let cancel = job.cancel.load(Ordering::SeqCst) || job.state().is_terminal();
        (200, format!("{{\"ok\":true,\"cancel\":{cancel}}}"))
    }

    /// `POST /cluster/v1/complete` — accept a finished job. An expired
    /// lease does *not* reject the result: if the job is still
    /// non-terminal the work is good (first completion wins; 409 for
    /// late duplicates).
    pub fn handle_complete(&self, body: &Json) -> (u16, String) {
        let schema = body.get("schema").and_then(|s| s.as_str("schema").ok());
        if schema != Some("unico.cluster_complete.v1") {
            return (
                422,
                "{\"error\":\"schema: expected unico.cluster_complete.v1\"}".into(),
            );
        }
        let job_id = match body.get("job").map(|j| j.as_str("job")) {
            Some(Ok(j)) => j.to_string(),
            _ => return (422, "{\"error\":\"job: required field missing\"}".into()),
        };
        let outcome = match body
            .get("outcome")
            .ok_or("outcome: required field missing".to_string())
            .and_then(JobOutcome::from_wire)
        {
            Ok(o) => o,
            Err(e) => return (422, format!("{{\"error\":{}}}", json::escape(&e))),
        };
        let telemetry = body
            .get("telemetry")
            .and_then(|t| telemetry_from_wire(t).ok())
            .unwrap_or_default();
        let resumed = body
            .get("resumed")
            .and_then(|r| r.as_bool("resumed").ok())
            .unwrap_or(false);
        self.drop_lease(body);
        self.record_cache_report(body);
        let Some(job) = self.sched.get(&job_id) else {
            return (404, "{\"error\":\"job unknown\"}".into());
        };
        relay_events(body, &job);
        if self.sched.complete(&job, outcome, telemetry, resumed) {
            self.counters
                .remote_completions
                .fetch_add(1, Ordering::Relaxed);
            (200, "{\"ok\":true}".into())
        } else {
            (409, "{\"error\":\"job already terminal\"}".into())
        }
    }

    /// `POST /cluster/v1/fail` — a worker's run panicked (other than
    /// the kill hook, which emulates worker death instead).
    pub fn handle_fail(&self, body: &Json) -> (u16, String) {
        let job_id = match body.get("job").map(|j| j.as_str("job")) {
            Some(Ok(j)) => j.to_string(),
            _ => return (422, "{\"error\":\"job: required field missing\"}".into()),
        };
        let msg = body
            .get("error")
            .and_then(|e| e.as_str("error").ok())
            .unwrap_or("remote worker failure")
            .to_string();
        self.drop_lease(body);
        let Some(job) = self.sched.get(&job_id) else {
            return (404, "{\"error\":\"job unknown\"}".into());
        };
        relay_events(body, &job);
        if self.sched.fail(&job, msg) {
            self.counters
                .remote_failures
                .fetch_add(1, Ordering::Relaxed);
            (200, "{\"ok\":true}".into())
        } else {
            (409, "{\"error\":\"job already terminal\"}".into())
        }
    }

    /// `GET /cluster/v1/status` — the coordinator's cluster summary.
    pub fn status_json(&self) -> String {
        let fleet = self.fleet_cache();
        format!(
            "{{\"active_leases\":{},\"workers_seen\":{},\"leases_granted\":{},\"leases_expired\":{},\"remote_completions\":{},\"remote_failures\":{},\"heartbeats\":{},\"fleet_cache\":{}}}",
            self.active_leases(),
            self.workers_seen(),
            self.counters.leases_granted.load(Ordering::Relaxed),
            self.counters.leases_expired.load(Ordering::Relaxed),
            self.counters.remote_completions.load(Ordering::Relaxed),
            self.counters.remote_failures.load(Ordering::Relaxed),
            self.counters.heartbeats.load(Ordering::Relaxed),
            cache_report_to_wire(&fleet),
        )
    }

    fn drop_lease(&self, body: &Json) {
        if let Some(Ok(lease)) = body.get("lease").map(|l| l.as_str("lease")) {
            self.leases
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(lease);
        }
    }

    fn record_cache_report(&self, body: &Json) {
        if let (Some(Ok(worker)), Some(report)) = (
            body.get("worker").map(|w| w.as_str("worker")),
            body.get("cache")
                .and_then(|c| cache_report_from_wire(c).ok()),
        ) {
            self.worker_caches
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(worker.to_string(), report);
        }
    }
}

/// Pushes the `events` array of a wire document (complete JSON lines
/// the worker's run emitted) into the coordinator's job event log.
fn relay_events(body: &Json, job: &crate::job::Job) {
    if let Some(Ok(events)) = body.get("events").map(|e| e.as_arr("events")) {
        for ev in events {
            if let Ok(line) = ev.as_str("events[]") {
                job.events.push(line.to_string());
            }
        }
    }
}

/// Renders a cache report for the wire (u64 counters as quoted decimal
/// strings — same convention as the front bit patterns).
pub(crate) fn cache_report_to_wire(c: &WorkerCacheReport) -> String {
    format!(
        "{{\"hits\":\"{}\",\"misses\":\"{}\",\"entries\":\"{}\",\"disk_hits\":\"{}\",\"disk_entries\":\"{}\"}}",
        c.hits, c.misses, c.entries, c.disk_hits, c.disk_entries
    )
}

pub(crate) fn cache_report_from_wire(v: &Json) -> Result<WorkerCacheReport, String> {
    let field = |name: &str| -> Result<u64, String> {
        match v.get(name) {
            None => Ok(0),
            Some(j) => {
                let s = j.as_str(name)?;
                s.parse::<u64>()
                    .map_err(|_| format!("{name}: bad counter {s:?}"))
            }
        }
    };
    Ok(WorkerCacheReport {
        hits: field("hits")?,
        misses: field("misses")?,
        entries: field("entries")?,
        disk_hits: field("disk_hits")?,
        disk_entries: field("disk_entries")?,
    })
}

/// Renders a telemetry snapshot for the wire. Counters and phase
/// seconds are quoted — counters as decimals, phases as IEEE-754 bit
/// patterns — so the document round-trips bit-exactly.
pub(crate) fn telemetry_to_wire(t: &TelemetrySnapshot) -> String {
    let counters: Vec<String> = t
        .counters
        .iter()
        .map(|(k, v)| format!("{}:\"{v}\"", json::escape(k)))
        .collect();
    let phases: Vec<String> = t
        .phases_s
        .iter()
        .map(|(k, v)| format!("{}:\"{}\"", json::escape(k), v.to_bits()))
        .collect();
    format!(
        "{{\"counters\":{{{}}},\"phases\":{{{}}}}}",
        counters.join(","),
        phases.join(",")
    )
}

pub(crate) fn telemetry_from_wire(v: &Json) -> Result<TelemetrySnapshot, String> {
    let mut out = TelemetrySnapshot::default();
    if let Some(counters) = v.get("counters") {
        for (k, j) in counters.as_obj("counters")? {
            let s = j.as_str("counters[]")?;
            out.counters.insert(
                k.clone(),
                s.parse::<u64>()
                    .map_err(|_| format!("counters.{k}: bad value {s:?}"))?,
            );
        }
    }
    if let Some(phases) = v.get("phases") {
        for (k, j) in phases.as_obj("phases")? {
            let s = j.as_str("phases[]")?;
            let bits = s
                .parse::<u64>()
                .map_err(|_| format!("phases.{k}: bad bit pattern {s:?}"))?;
            out.phases_s.insert(k.clone(), f64::from_bits(bits));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{parse_submission, ServeConfig};
    use std::path::PathBuf;
    use unico_model::EvalCache;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("unico-serve-cluster-tests")
            .join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn coordinator(name: &str, lease_timeout: Duration) -> (Arc<Scheduler>, ClusterState) {
        let cfg = ServeConfig {
            state_dir: scratch(name),
            workers: 0, // remote workers do all the running
            ..ServeConfig::default()
        };
        let sched = Scheduler::start(&cfg, Arc::new(EvalCache::new())).expect("boot");
        let cluster = ClusterState::new(Arc::clone(&sched), lease_timeout);
        (sched, cluster)
    }

    fn spec_json() -> Json {
        let spec = parse_submission(
            br#"{"platform": "spatial-edge", "workloads": ["mobilenet"], "seed": 9}"#,
        )
        .expect("valid");
        spec.to_json()
    }

    fn parse(doc: &str) -> Json {
        json::parse(doc).expect("valid JSON")
    }

    #[test]
    fn lease_heartbeat_complete_lifecycle() {
        let (sched, cluster) = coordinator("lifecycle", Duration::from_secs(10));
        let spec = crate::spec::JobSpec::from_json(&spec_json()).expect("spec");
        let job = sched.submit(spec).expect("submit");

        // Idle worker gets 204 after the only job is taken.
        let (status, body) = cluster.handle_lease(&parse(r#"{"worker":"w1"}"#));
        assert_eq!(status, 200, "{body}");
        let lease = parse(&body);
        let lease_id = lease.get("lease").unwrap().as_str("lease").unwrap();
        assert_eq!(lease.get("job").unwrap().as_str("job").unwrap(), job.id);
        let (status, _) = cluster.handle_lease(&parse(r#"{"worker":"w2"}"#));
        assert_eq!(status, 204);
        assert_eq!(cluster.active_leases(), 1);
        assert_eq!(job.state(), crate::job::JobState::Running);

        // Heartbeat extends, relays events, records the cache report.
        let hb = format!(
            r#"{{"worker":"w1","lease":"{lease_id}","events":["{{\"event\":\"iteration\",\"iteration\":1}}"],"cache":{{"hits":"5","misses":"7","entries":"7","disk_hits":"2","disk_entries":"9"}}}}"#
        );
        let (status, body) = cluster.handle_heartbeat(&parse(&hb));
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"cancel\":false"));
        assert!(job
            .events
            .snapshot()
            .0
            .iter()
            .any(|l| l.contains("iteration")));
        assert_eq!(cluster.fleet_cache().disk_hits, 2);

        // Complete with a wire outcome; the job goes terminal.
        let outcome = JobOutcome {
            front_bits: vec![vec![1, 2]],
            report_json: "{\"v\":3}".into(),
            deterministic_report_json: "{\"v\":3}".into(),
            iterations_done: 2,
            hw_evals: 4,
            cancelled: false,
        };
        let complete = format!(
            r#"{{"schema":"unico.cluster_complete.v1","lease":"{lease_id}","job":"{}","worker":"w1","resumed":false,"outcome":{},"telemetry":{},"events":[]}}"#,
            job.id,
            outcome.to_wire_json(),
            telemetry_to_wire(&TelemetrySnapshot::default()),
        );
        let (status, body) = cluster.handle_complete(&parse(&complete));
        assert_eq!(status, 200, "{body}");
        assert_eq!(job.state(), crate::job::JobState::Completed);
        assert_eq!(job.outcome().expect("outcome").report_json, "{\"v\":3}");
        assert_eq!(cluster.active_leases(), 0);

        // A late duplicate is a 409, not a double count.
        let (status, _) = cluster.handle_complete(&parse(&complete));
        assert_eq!(status, 409);
        assert_eq!(
            cluster.counters.remote_completions.load(Ordering::Relaxed),
            1
        );
        sched.shutdown();
    }

    #[test]
    fn silent_worker_lease_is_reaped_and_job_requeued() {
        let (sched, cluster) = coordinator("reap", Duration::from_millis(20));
        let spec = crate::spec::JobSpec::from_json(&spec_json()).expect("spec");
        let job = sched.submit(spec).expect("submit");
        let (status, body) = cluster.handle_lease(&parse(r#"{"worker":"w1"}"#));
        assert_eq!(status, 200, "{body}");
        let lease_id = parse(&body)
            .get("lease")
            .unwrap()
            .as_str("lease")
            .unwrap()
            .to_string();

        std::thread::sleep(Duration::from_millis(40));
        // The next lease call reaps w1 and hands the same job to w2.
        let (status, body) = cluster.handle_lease(&parse(r#"{"worker":"w2"}"#));
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            parse(&body).get("job").unwrap().as_str("job").unwrap(),
            job.id
        );
        assert_eq!(cluster.counters.leases_expired.load(Ordering::Relaxed), 1);

        // w1's zombie heartbeat gets 410: it must abandon the run.
        let hb = format!(r#"{{"worker":"w1","lease":"{lease_id}"}}"#);
        let (status, _) = cluster.handle_heartbeat(&parse(&hb));
        assert_eq!(status, 410);
        sched.shutdown();
    }

    #[test]
    fn telemetry_wire_round_trips_bit_exactly() {
        let mut t = TelemetrySnapshot::default();
        t.counters.insert("hw_evals".into(), u64::MAX);
        t.phases_s.insert("fit".into(), 0.1 + 0.2); // not exactly 0.3
        t.phases_s.insert("nan".into(), f64::NAN);
        let wire = telemetry_to_wire(&t);
        let back = telemetry_from_wire(&parse(&wire)).expect("round-trip");
        assert_eq!(back.counters, t.counters);
        assert_eq!(back.phases_s["fit"].to_bits(), t.phases_s["fit"].to_bits());
        assert_eq!(back.phases_s["nan"].to_bits(), t.phases_s["nan"].to_bits());
    }
}
