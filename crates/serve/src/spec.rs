//! Job specifications and daemon configuration.
//!
//! A [`JobSpec`] is the client's description of one co-optimization
//! run: which platform, which workloads, which budgets, which seed.
//! It round-trips through JSON (the submit body and the persisted job
//! manifest share the same encoding) and validates eagerly so a typo
//! is a 422 at submit time, not a worker panic an hour later.
//!
//! [`ServeConfig`] is the daemon's own configuration, read from
//! `UNICO_SERVE_*` environment variables with the repo's loud-failure
//! convention: a malformed value crashes the daemon at boot naming the
//! variable, it never silently falls back to a default.

use std::path::PathBuf;
use std::time::Duration;

use unico_core::UnicoConfig;
use unico_search::EnvConfig;
use unico_workloads::zoo;

use crate::json::{self, Json};

/// Which hardware platform model a job targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformKind {
    /// `SpatialPlatform::edge()` — the paper's open-source edge setting.
    SpatialEdge,
    /// `SpatialPlatform::cloud()` — the open-source cloud setting.
    SpatialCloud,
    /// `AscendPlatform::new()` — the cycle-accurate Ascend-like model.
    Ascend,
}

impl PlatformKind {
    /// The wire name, identical to `Platform::name()` of the model it
    /// selects (so checkpoints and manifests agree on the string).
    pub fn name(self) -> &'static str {
        match self {
            PlatformKind::SpatialEdge => "spatial-edge",
            PlatformKind::SpatialCloud => "spatial-cloud",
            PlatformKind::Ascend => "ascend-like",
        }
    }

    /// Parses a wire name.
    pub fn from_name(name: &str) -> Result<Self, String> {
        match name {
            "spatial-edge" => Ok(PlatformKind::SpatialEdge),
            "spatial-cloud" => Ok(PlatformKind::SpatialCloud),
            "ascend-like" => Ok(PlatformKind::Ascend),
            other => Err(format!(
                "platform: unknown {other:?} (expected spatial-edge, spatial-cloud or ascend-like)"
            )),
        }
    }
}

/// A validated job submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Target platform model.
    pub platform: PlatformKind,
    /// Workload names from the model zoo (validated at parse time).
    pub workloads: Vec<String>,
    /// MOBO iterations (`MaxIter`).
    pub max_iter: usize,
    /// Hardware batch size per iteration (`N`).
    pub batch: usize,
    /// Maximum per-job mapping-search budget (`b_max`).
    pub b_max: u64,
    /// Acquisition candidate-pool size.
    pub candidate_pool: usize,
    /// RNG seed; fixed seed + fixed spec ⇒ deterministic result.
    pub seed: u64,
    /// Keep only the `n` highest-MAC layers per network.
    pub max_layers_per_network: usize,
    /// Optional power cap in milliwatts.
    pub power_cap_mw: Option<f64>,
    /// Optional area cap in square millimeters.
    pub area_cap_mm2: Option<f64>,
    /// Checkpoint cadence in iterations.
    pub checkpoint_every: usize,
    /// Test hook: panic at this checkpoint boundary, emulating a hard
    /// daemon kill mid-run (exercised by the durability oracle).
    pub kill_after: Option<usize>,
    /// Tenant label for fair round-robin admission; jobs with the same
    /// tenant share one queue lane, empty string is the default lane.
    pub tenant: String,
    /// Override for the engine's internal cost-accounting worker count
    /// (`UnicoConfig::workers`). Part of the deterministic fingerprint:
    /// the same spec must select the same simulated clock everywhere.
    pub engine_workers: Option<u32>,
    /// Inline graph in the frontend's JSON form, imported through
    /// `unico_workloads::frontend` and co-optimized (with inter-layer
    /// fusion) alongside any zoo `workloads`. Validated at submit time.
    pub graph: Option<String>,
    /// Path of a committed model file (`.json` graph or ONNX-subset
    /// `.onnx`), relative to the daemon's state dir. Must stay inside
    /// the state dir (no absolute paths, no `..`).
    pub graph_file: Option<String>,
}

impl JobSpec {
    /// Parses and validates a submission body.
    ///
    /// # Errors
    ///
    /// A message naming the offending field: unknown platform or
    /// workload, zero budgets, or wrong JSON types.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        v.as_obj("job spec")?;
        let platform = PlatformKind::from_name(
            v.get("platform")
                .ok_or("platform: required field missing")?
                .as_str("platform")?,
        )?;
        let workloads: Vec<String> = match v.get("workloads") {
            Some(arr) => arr
                .as_arr("workloads")?
                .iter()
                .map(|w| w.as_str("workloads[]").map(str::to_string))
                .collect::<Result<_, _>>()?,
            None => Vec::new(),
        };
        let graph = v
            .get("graph")
            .map(|j| j.as_str("graph").map(str::to_string))
            .transpose()?;
        if let Some(text) = &graph {
            // Import eagerly so a malformed graph is a 422 at submit
            // time, not a worker panic later.
            unico_workloads::frontend::import_json(text).map_err(|e| format!("graph: {e}"))?;
        }
        let graph_file = v
            .get("graph_file")
            .map(|j| j.as_str("graph_file").map(str::to_string))
            .transpose()?;
        if let Some(rel) = &graph_file {
            let p = std::path::Path::new(rel);
            let escapes = rel.is_empty()
                || p.is_absolute()
                || p.components()
                    .any(|c| !matches!(c, std::path::Component::Normal(_)));
            if escapes {
                return Err(format!(
                    "graph_file: {rel:?} must be a relative path inside the state dir"
                ));
            }
        }
        if workloads.is_empty() && graph.is_none() && graph_file.is_none() {
            return Err(
                "workloads: must name at least one network (or provide graph/graph_file)".into(),
            );
        }
        for name in &workloads {
            if zoo::by_name(name).is_none() {
                let nets = zoo::all();
                let known: Vec<&str> = nets.iter().map(|n| n.name()).collect();
                return Err(format!(
                    "workloads: unknown network {name:?} (known: {})",
                    known.join(", ")
                ));
            }
        }

        let get_usize = |key: &str, default: usize| -> Result<usize, String> {
            v.get(key).map_or(Ok(default), |j| j.as_usize(key))
        };
        let spec = JobSpec {
            platform,
            workloads,
            max_iter: get_usize("max_iter", 3)?,
            batch: get_usize("batch", 6)?,
            b_max: v.get("b_max").map_or(Ok(32), |j| j.as_u64("b_max"))?,
            candidate_pool: get_usize("candidate_pool", 32)?,
            seed: v.get("seed").map_or(Ok(0), |j| j.as_u64("seed"))?,
            max_layers_per_network: get_usize("max_layers_per_network", 1)?,
            power_cap_mw: v
                .get("power_cap_mw")
                .map(|j| j.as_f64("power_cap_mw"))
                .transpose()?,
            area_cap_mm2: v
                .get("area_cap_mm2")
                .map(|j| j.as_f64("area_cap_mm2"))
                .transpose()?,
            checkpoint_every: get_usize("checkpoint_every", 1)?,
            kill_after: v
                .get("kill_after")
                .map(|j| j.as_usize("kill_after"))
                .transpose()?,
            tenant: v
                .get("tenant")
                .map(|j| j.as_str("tenant").map(str::to_string))
                .transpose()?
                .unwrap_or_default(),
            engine_workers: v
                .get("engine_workers")
                .map(|j| j.as_usize("engine_workers"))
                .transpose()?
                .map(|w| w as u32),
            graph,
            graph_file,
        };
        if spec.engine_workers == Some(0) {
            return Err("engine_workers: must be positive".into());
        }
        for (field, value) in [
            ("max_iter", spec.max_iter),
            ("batch", spec.batch),
            ("candidate_pool", spec.candidate_pool),
            ("checkpoint_every", spec.checkpoint_every),
        ] {
            if value == 0 {
                return Err(format!("{field}: must be positive"));
            }
        }
        if spec.b_max == 0 {
            return Err("b_max: must be positive".into());
        }
        Ok(spec)
    }

    /// Renders the spec back to JSON (manifest persistence; parses
    /// back via [`JobSpec::from_json`] to the identical value).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            (
                "platform".to_string(),
                Json::Str(self.platform.name().to_string()),
            ),
            (
                "workloads".to_string(),
                Json::Arr(self.workloads.iter().cloned().map(Json::Str).collect()),
            ),
            ("max_iter".to_string(), Json::Num(self.max_iter as f64)),
            ("batch".to_string(), Json::Num(self.batch as f64)),
            ("b_max".to_string(), Json::Num(self.b_max as f64)),
            (
                "candidate_pool".to_string(),
                Json::Num(self.candidate_pool as f64),
            ),
            ("seed".to_string(), Json::Num(self.seed as f64)),
            (
                "max_layers_per_network".to_string(),
                Json::Num(self.max_layers_per_network as f64),
            ),
            (
                "checkpoint_every".to_string(),
                Json::Num(self.checkpoint_every as f64),
            ),
        ];
        if let Some(p) = self.power_cap_mw {
            fields.push(("power_cap_mw".to_string(), Json::Num(p)));
        }
        if let Some(a) = self.area_cap_mm2 {
            fields.push(("area_cap_mm2".to_string(), Json::Num(a)));
        }
        if let Some(k) = self.kill_after {
            fields.push(("kill_after".to_string(), Json::Num(k as f64)));
        }
        if !self.tenant.is_empty() {
            fields.push(("tenant".to_string(), Json::Str(self.tenant.clone())));
        }
        if let Some(w) = self.engine_workers {
            fields.push(("engine_workers".to_string(), Json::Num(w as f64)));
        }
        if let Some(g) = &self.graph {
            fields.push(("graph".to_string(), Json::Str(g.clone())));
        }
        if let Some(g) = &self.graph_file {
            fields.push(("graph_file".to_string(), Json::Str(g.clone())));
        }
        Json::Obj(fields)
    }

    /// The optimizer configuration this spec selects.
    pub fn unico_config(&self) -> UnicoConfig {
        let mut cfg = UnicoConfig {
            max_iter: self.max_iter,
            batch: self.batch,
            b_max: self.b_max,
            candidate_pool: self.candidate_pool,
            seed: self.seed,
            ..UnicoConfig::default()
        };
        if let Some(w) = self.engine_workers {
            cfg.workers = w;
        }
        cfg
    }

    /// The evaluation-environment configuration this spec selects.
    pub fn env_config(&self) -> EnvConfig {
        EnvConfig {
            max_layers_per_network: self.max_layers_per_network,
            power_cap_mw: self.power_cap_mw,
            area_cap_mm2: self.area_cap_mm2,
        }
    }

    /// A stable fingerprint of the evaluation-relevant parts of the
    /// spec (used to recognize "same workload" across jobs in metrics).
    pub fn workload_key(&self) -> String {
        let mut parts = self.workloads.clone();
        if self.graph.is_some() {
            parts.push("inline-graph".to_string());
        }
        if let Some(f) = &self.graph_file {
            parts.push(f.clone());
        }
        format!("{}:{}", self.platform.name(), parts.join("+"))
    }
}

/// Loads the spec's imported graphs: the inline `graph` JSON and/or
/// the `graph_file` resolved against `state_dir` (`.json` parses as a
/// JSON graph, anything else as ONNX-subset wire bytes).
///
/// # Errors
///
/// A message naming the offending field — unreadable file, non-UTF-8
/// JSON, or a frontend import error — suitable for a 422 at submit
/// time and a loud job failure at execute time.
pub fn load_graphs(
    spec: &JobSpec,
    state_dir: &std::path::Path,
) -> Result<Vec<unico_workloads::ImportedGraph>, String> {
    use unico_workloads::frontend;
    let mut graphs = Vec::new();
    if let Some(text) = &spec.graph {
        graphs.push(frontend::import_json(text).map_err(|e| format!("graph: {e}"))?);
    }
    if let Some(rel) = &spec.graph_file {
        let path = state_dir.join(rel);
        let bytes = std::fs::read(&path)
            .map_err(|e| format!("graph_file: reading {}: {e}", path.display()))?;
        let imported = if rel.ends_with(".json") {
            let text = std::str::from_utf8(&bytes)
                .map_err(|_| format!("graph_file: {} is not utf-8", path.display()))?;
            frontend::import_json(text)
        } else {
            frontend::import_onnx(&bytes)
        };
        graphs.push(imported.map_err(|e| format!("graph_file: {e}"))?);
    }
    Ok(graphs)
}

/// Daemon configuration, from `UNICO_SERVE_*` environment variables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`UNICO_SERVE_ADDR`, default `127.0.0.1:8787`;
    /// use port 0 to let the OS pick).
    pub addr: String,
    /// Worker threads running jobs (`UNICO_SERVE_WORKERS`, default 2).
    pub workers: usize,
    /// Directory for job manifests, checkpoints and results
    /// (`UNICO_SERVE_STATE_DIR`, default `unico-serve-state`).
    pub state_dir: PathBuf,
    /// Maximum request-body bytes (`UNICO_SERVE_MAX_BODY`, default 1 MiB).
    pub max_body: usize,
    /// Total time a client gets to deliver one complete request head +
    /// body once its first byte arrived — the slowloris guard
    /// (`UNICO_SERVE_HEAD_TIMEOUT_MS`, default 10 s). Also bounds the
    /// final drain of a closing connection.
    pub head_timeout: Duration,
    /// How long an idle keep-alive connection is retained between
    /// requests (`UNICO_SERVE_IDLE_TIMEOUT_MS`, default 60 s).
    pub idle_timeout: Duration,
    /// Maximum bytes queued towards one `/events` subscriber before it
    /// is disconnected as too slow (`UNICO_SERVE_SUBSCRIBER_QUEUE`,
    /// default 256 KiB).
    pub subscriber_queue_max: usize,
    /// Maximum queued (not yet running) jobs before submissions are
    /// rejected with 429 (`UNICO_CLUSTER_MAX_QUEUE`, default 256).
    pub max_queue: usize,
    /// How long a cluster worker may go silent before its lease is
    /// reaped and the job requeued (`UNICO_CLUSTER_LEASE_TIMEOUT_MS`,
    /// default 10 s).
    pub lease_timeout: Duration,
    /// Directory for the shared on-disk eval-cache tier
    /// (`UNICO_CLUSTER_DISK_CACHE`; unset means memory-only).
    pub disk_cache: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8787".to_string(),
            workers: 2,
            state_dir: PathBuf::from("unico-serve-state"),
            max_body: 1024 * 1024,
            head_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(60),
            subscriber_queue_max: 256 * 1024,
            max_queue: 256,
            lease_timeout: Duration::from_secs(10),
            disk_cache: None,
        }
    }
}

impl ServeConfig {
    /// Reads the configuration from the environment.
    ///
    /// # Errors
    ///
    /// A message naming the variable on any malformed value — the
    /// daemon must not boot with a silently different configuration
    /// than the operator asked for.
    pub fn try_from_env() -> Result<Self, String> {
        let d = ServeConfig::default();
        let positive = |name: &str| parse_positive(name, env_raw(name).as_deref());
        let millis = |name: &str, default: Duration| -> Result<Duration, String> {
            Ok(positive(name)?
                .map(|ms| Duration::from_millis(ms as u64))
                .unwrap_or(default))
        };
        Ok(ServeConfig {
            addr: std::env::var("UNICO_SERVE_ADDR").unwrap_or(d.addr),
            workers: positive("UNICO_SERVE_WORKERS")?.unwrap_or(d.workers),
            state_dir: std::env::var_os("UNICO_SERVE_STATE_DIR")
                .map(PathBuf::from)
                .unwrap_or(d.state_dir),
            max_body: positive("UNICO_SERVE_MAX_BODY")?.unwrap_or(d.max_body),
            head_timeout: millis("UNICO_SERVE_HEAD_TIMEOUT_MS", d.head_timeout)?,
            idle_timeout: millis("UNICO_SERVE_IDLE_TIMEOUT_MS", d.idle_timeout)?,
            subscriber_queue_max: positive("UNICO_SERVE_SUBSCRIBER_QUEUE")?
                .unwrap_or(d.subscriber_queue_max),
            max_queue: positive("UNICO_CLUSTER_MAX_QUEUE")?.unwrap_or(d.max_queue),
            lease_timeout: millis("UNICO_CLUSTER_LEASE_TIMEOUT_MS", d.lease_timeout)?,
            disk_cache: std::env::var_os("UNICO_CLUSTER_DISK_CACHE").map(PathBuf::from),
        })
    }

    /// [`ServeConfig::try_from_env`], panicking on malformed values
    /// (kept for tests and embedders; the daemon binary reports the
    /// error and exits nonzero instead).
    ///
    /// # Panics
    ///
    /// On any malformed `UNICO_SERVE_*` value.
    pub fn from_env() -> Self {
        Self::try_from_env().unwrap_or_else(|e| panic!("{e}"))
    }
}

fn env_raw(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

/// Strict positive-integer parser for the `UNICO_SERVE_*` variables:
/// `None` (unset) means "use the default", anything else must be a
/// positive integer or the daemon refuses to boot.
pub fn parse_positive(name: &str, raw: Option<&str>) -> Result<Option<usize>, String> {
    match raw {
        None => Ok(None),
        Some(s) => s
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|v| *v > 0)
            .map(Some)
            .ok_or_else(|| format!("{name} must be a positive integer, got {s:?}")),
    }
}

/// Parses the body of a submit request into a spec.
///
/// # Errors
///
/// Syntax errors from the JSON layer or validation errors from
/// [`JobSpec::from_json`], both suitable for a 400/422 response body.
pub fn parse_submission(body: &[u8]) -> Result<JobSpec, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    let v = json::parse(text)?;
    JobSpec::from_json(&v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn minimal() -> String {
        r#"{"platform": "spatial-edge", "workloads": ["mobilenet"]}"#.to_string()
    }

    #[test]
    fn minimal_submission_gets_defaults() {
        let spec = parse_submission(minimal().as_bytes()).expect("valid");
        assert_eq!(spec.platform, PlatformKind::SpatialEdge);
        assert_eq!(spec.max_iter, 3);
        assert_eq!(spec.batch, 6);
        assert_eq!(spec.checkpoint_every, 1);
        assert_eq!(spec.kill_after, None);
        let cfg = spec.unico_config();
        assert_eq!((cfg.max_iter, cfg.batch, cfg.b_max), (3, 6, 32));
    }

    #[test]
    fn spec_round_trips_through_json() {
        let body = r#"{
            "platform": "ascend-like",
            "workloads": ["resnet50", "bert-base"],
            "max_iter": 5, "batch": 8, "b_max": 64, "candidate_pool": 48,
            "seed": 42, "max_layers_per_network": 2,
            "power_cap_mw": 2000.5, "area_cap_mm2": 200,
            "checkpoint_every": 2, "kill_after": 1
        }"#;
        let spec = match parse_submission(body.as_bytes()) {
            Ok(s) => s,
            // Zoo names differ per suite; fall back to whatever exists.
            Err(e) => panic!("{e}"),
        };
        let back = JobSpec::from_json(&spec.to_json()).expect("round-trip");
        assert_eq!(back, spec);
        assert_eq!(spec.workload_key(), "ascend-like:resnet50+bert-base");
    }

    #[test]
    fn bad_submissions_name_the_field() {
        for (body, needle) in [
            (r#"{"workloads": ["mobilenet"]}"#, "platform"),
            (
                r#"{"platform": "tpu", "workloads": ["mobilenet"]}"#,
                "platform",
            ),
            (r#"{"platform": "spatial-edge"}"#, "workloads"),
            (
                r#"{"platform": "spatial-edge", "workloads": []}"#,
                "workloads",
            ),
            (
                r#"{"platform": "spatial-edge", "workloads": ["not-a-net"]}"#,
                "unknown network",
            ),
            (
                r#"{"platform": "spatial-edge", "workloads": ["mobilenet"], "max_iter": 0}"#,
                "max_iter",
            ),
            (
                r#"{"platform": "spatial-edge", "workloads": ["mobilenet"], "seed": -1}"#,
                "seed",
            ),
            ("not json", "byte"),
        ] {
            let err = parse_submission(body.as_bytes()).expect_err(body);
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    const GRAPH: &str = r#"{\"name\": \"g\", \"inputs\": [{\"name\": \"x\", \"dims\": [8, 8]}], \"initializers\": [{\"name\": \"w\", \"dims\": [8, 8]}], \"nodes\": [{\"op\": \"MatMul\", \"inputs\": [\"x\", \"w\"], \"outputs\": [\"y\"]}], \"outputs\": [\"y\"]}"#;

    #[test]
    fn inline_graph_replaces_workloads() {
        let body = format!(r#"{{"platform": "spatial-edge", "graph": "{GRAPH}"}}"#);
        let spec = parse_submission(body.as_bytes()).expect("graph-only spec parses");
        assert!(spec.workloads.is_empty());
        assert!(spec.graph.is_some());
        let back = JobSpec::from_json(&spec.to_json()).expect("round-trip");
        assert_eq!(back, spec);
        assert_eq!(spec.workload_key(), "spatial-edge:inline-graph");
        let graphs = load_graphs(&spec, Path::new("/nonexistent")).expect("inline load");
        assert_eq!(graphs.len(), 1);
        assert_eq!(graphs[0].ops_lowered(), 1);
    }

    #[test]
    fn graph_file_round_trips_and_keys() {
        let body = r#"{"platform": "spatial-edge", "graph_file": "models/net.onnx"}"#;
        let spec = parse_submission(body.as_bytes()).expect("graph_file spec parses");
        let back = JobSpec::from_json(&spec.to_json()).expect("round-trip");
        assert_eq!(back, spec);
        assert_eq!(spec.workload_key(), "spatial-edge:models/net.onnx");
    }

    #[test]
    fn bad_graph_submissions_name_the_field() {
        for (body, needle) in [
            // Malformed inline graph: a 422 at submit, not a worker panic.
            (
                r#"{"platform": "spatial-edge", "graph": "{\"name\": 3}"}"#.to_string(),
                "graph",
            ),
            // Traversal and absolute paths must not escape the state dir.
            (
                r#"{"platform": "spatial-edge", "graph_file": "../../etc/passwd"}"#.to_string(),
                "graph_file",
            ),
            (
                r#"{"platform": "spatial-edge", "graph_file": "/etc/passwd"}"#.to_string(),
                "graph_file",
            ),
            (
                r#"{"platform": "spatial-edge", "graph_file": ""}"#.to_string(),
                "graph_file",
            ),
        ] {
            let err = parse_submission(body.as_bytes()).expect_err(&body);
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn graph_file_loads_from_state_dir() {
        let dir = std::env::temp_dir().join("unico-spec-graph-file");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let json = GRAPH.replace("\\\"", "\"");
        std::fs::write(dir.join("net.graph.json"), &json).expect("write model");
        let body = r#"{"platform": "spatial-edge", "graph_file": "net.graph.json"}"#;
        let spec = parse_submission(body.as_bytes()).expect("spec parses");
        let graphs = load_graphs(&spec, &dir).expect("file load");
        assert_eq!(graphs.len(), 1);
        assert_eq!(graphs[0].network().layers().len(), 1);
        let missing = JobSpec {
            graph_file: Some("absent.json".to_string()),
            ..spec
        };
        let err = load_graphs(&missing, &dir).expect_err("missing file errors");
        assert!(err.contains("graph_file"), "{err}");
    }

    #[test]
    fn serve_env_parser_is_strict() {
        assert_eq!(parse_positive("UNICO_SERVE_WORKERS", None), Ok(None));
        assert_eq!(
            parse_positive("UNICO_SERVE_WORKERS", Some("4")),
            Ok(Some(4))
        );
        assert_eq!(
            parse_positive("UNICO_SERVE_WORKERS", Some(" 8 ")),
            Ok(Some(8))
        );
        for bad in ["0", "-2", "two", "1.5", ""] {
            let err = parse_positive("UNICO_SERVE_WORKERS", Some(bad)).expect_err(bad);
            assert!(err.contains("UNICO_SERVE_WORKERS"), "{err}");
        }
    }

    #[test]
    fn serve_config_defaults_cover_the_connection_lifecycle() {
        let d = ServeConfig::default();
        assert_eq!(d.head_timeout, Duration::from_secs(10));
        assert_eq!(d.idle_timeout, Duration::from_secs(60));
        assert_eq!(d.subscriber_queue_max, 256 * 1024);
    }
}
