//! Per-connection state for the event-driven server core.
//!
//! Under the readiness poller every connection is a small state
//! object, not a thread: it accumulates request bytes, owns an
//! outbound byte queue, and (for `/events` subscribers) tails a job's
//! [`EventLog`] through a *bounded* per-connection queue. The poller
//! thread drives all of them; nothing here blocks.
//!
//! Lifecycle: `Reading` (accumulating the next request, slowloris
//! deadline armed while a partial message is pending, idle deadline
//! while the buffer is empty) → `Streaming` (NDJSON subscriber; no
//! deadline while healthy, tailing the log as the run produces events)
//! → `Closing` (drain the outbound queue under a flush deadline, then
//! drop). Plain request/response exchanges bounce between `Reading`
//! and a non-empty outbound queue without ever leaving `Reading`.
//!
//! Backpressure: a subscriber that stops reading fills its kernel
//! send buffer, writes start returning `WouldBlock`, and the queued
//! backlog grows. Once the backlog exceeds the configured bound the
//! subscriber is disconnected — pending events are dropped, a terminal
//! NDJSON `error` line plus the chunked-encoding terminator are queued
//! while the socket may still drain, and the drop is counted in
//! [`NetStats`]. The job's iteration callback never waits on any of
//! this: `EventLog::push` is a mutex'd vector append.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Instant;

use crate::http;
use crate::job::Job;
use crate::poll::{Interest, Token};

/// Poller-thread network counters and gauges, exported via `/metrics`.
///
/// Gauges (`open_connections`, `event_subscribers`,
/// `subscriber_queue_bytes`) are maintained by the poller thread;
/// counters are monotonic.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Connections currently registered with the poller.
    pub open_connections: AtomicU64,
    /// Connections accepted since boot.
    pub accepted_total: AtomicU64,
    /// Requests parsed and routed since boot.
    pub requests_total: AtomicU64,
    /// Connections currently streaming `/events`.
    pub event_subscribers: AtomicU64,
    /// Bytes queued towards subscribers, summed over connections.
    pub subscriber_queue_bytes: AtomicU64,
    /// Subscribers disconnected for not keeping up with their queue.
    pub slow_subscribers_dropped_total: AtomicU64,
    /// Event lines dropped on slow-subscriber disconnects.
    pub subscriber_events_dropped_total: AtomicU64,
    /// Connections reaped by the idle or header-read deadline.
    pub connection_timeouts_total: AtomicU64,
}

/// Outbound byte queue with a send cursor.
///
/// Handlers append complete HTTP frames; the poller drains it into the
/// socket as writability allows. `io::Write` is implemented (append
/// semantics) so the `http` serializers work on it unchanged.
#[derive(Debug, Default)]
pub struct OutBuf {
    buf: Vec<u8>,
    sent: usize,
}

/// Compact the buffer once the dead prefix crosses this threshold.
const COMPACT_AT: usize = 8 * 1024;

impl OutBuf {
    /// Bytes queued but not yet written to the socket.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.sent
    }

    /// Writes as much queued data as the socket accepts right now.
    /// Returns whether the queue fully drained (`false` = the socket
    /// would block and write interest should be armed).
    ///
    /// # Errors
    ///
    /// Socket errors other than `WouldBlock`; the connection is dead.
    pub fn flush_into(&mut self, sock: &mut TcpStream) -> io::Result<bool> {
        while self.sent < self.buf.len() {
            match sock.write(&self.buf[self.sent..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.sent += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.compact();
                    return Ok(false);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.sent = 0;
        Ok(true)
    }

    fn compact(&mut self) {
        if self.sent >= COMPACT_AT {
            self.buf.drain(..self.sent);
            self.sent = 0;
        }
    }
}

impl Write for OutBuf {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// NDJSON subscriber state: which job, how far into its log, and
/// whether the terminal chunk has been queued.
#[derive(Debug)]
pub struct Stream {
    /// The job whose [`EventLog`](crate::job::EventLog) is tailed.
    pub job: Arc<Job>,
    /// Log lines already queued.
    pub cursor: usize,
    /// A `done` event passed through (no synthetic one needed).
    pub saw_done: bool,
    /// Terminal chunk queued; drain the queue, then close.
    pub finished: bool,
}

/// Where a connection is in its lifecycle.
#[derive(Debug)]
pub enum ConnState {
    /// Waiting for (more of) the next request.
    Reading,
    /// Streaming a job's event log as chunked NDJSON.
    Streaming(Stream),
    /// Drain the outbound queue, then drop the connection.
    Closing,
}

/// One poller-owned connection.
#[derive(Debug)]
pub struct Connection {
    /// The nonblocking socket.
    pub sock: TcpStream,
    /// Poller registration token.
    pub token: Token,
    /// Accumulated inbound bytes (the incremental parser's buffer).
    pub buf: Vec<u8>,
    /// Outbound byte queue.
    pub out: OutBuf,
    /// Lifecycle state.
    pub state: ConnState,
    /// When the current phase times out: header-read deadline while a
    /// partial request is buffered, idle deadline between requests,
    /// flush deadline while closing. `None` for healthy streams.
    pub deadline: Option<Instant>,
    /// Interest currently registered with the poller.
    pub interest: Interest,
    /// The last write attempt would have blocked; wait for a
    /// writability event instead of retrying every tick.
    pub write_blocked: bool,
}

/// Cap on bytes pulled off one socket per readiness event, so a
/// flooding client cannot monopolize the poller thread.
const READ_QUANTUM: usize = 256 * 1024;

/// What one read pass observed.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Bytes were appended (or the socket simply had none left).
    Progress,
    /// Orderly EOF from the peer.
    Eof,
    /// The socket errored; drop the connection.
    Broken,
}

impl Connection {
    /// Wraps an accepted socket (already set nonblocking).
    pub fn new(sock: TcpStream, token: Token, idle_deadline: Instant) -> Connection {
        Connection {
            sock,
            token,
            buf: Vec::new(),
            out: OutBuf::default(),
            state: ConnState::Reading,
            deadline: Some(idle_deadline),
            interest: Interest::READABLE,
            write_blocked: false,
        }
    }

    /// Whether this connection is an `/events` subscriber.
    pub fn is_subscriber(&self) -> bool {
        matches!(self.state, ConnState::Streaming(_))
    }

    /// Reads whatever the socket has ready (up to the per-event
    /// quantum) into the inbound buffer.
    pub fn fill_read_buf(&mut self) -> ReadOutcome {
        let mut tmp = [0u8; 8 * 1024];
        let mut total = 0;
        loop {
            match self.sock.read(&mut tmp) {
                Ok(0) => return ReadOutcome::Eof,
                Ok(n) => {
                    // Only a Reading connection accumulates input.
                    // Streams and closing connections discard it — the
                    // read serves EOF/error detection, and buffering
                    // would let a flooding client grow memory on a
                    // connection that will never parse again.
                    if matches!(self.state, ConnState::Reading) {
                        self.buf.extend_from_slice(&tmp[..n]);
                    }
                    total += n;
                    if total >= READ_QUANTUM {
                        return ReadOutcome::Progress;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadOutcome::Progress,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Broken,
            }
        }
    }

    /// Flushes the outbound queue; on `WouldBlock` marks the
    /// connection write-blocked so the poller arms write interest.
    ///
    /// # Errors
    ///
    /// Socket errors; the connection should be dropped.
    pub fn flush(&mut self) -> io::Result<()> {
        let drained = self.out.flush_into(&mut self.sock)?;
        self.write_blocked = !drained;
        Ok(())
    }

    /// Appends new event-log lines to a streaming connection's queue,
    /// enforcing the backlog bound. Returns `true` when the stream
    /// state changed in a way that needs a flush attempt.
    ///
    /// On overflow the pending events are dropped and a terminal
    /// NDJSON `error` line plus the chunk terminator are queued (the
    /// socket may still be writable even though the reader is slow);
    /// the connection then drains and closes under `flush_deadline`.
    pub fn pump_stream(
        &mut self,
        queue_max: usize,
        stats: &NetStats,
        flush_deadline: Instant,
    ) -> bool {
        let ConnState::Streaming(st) = &mut self.state else {
            return false;
        };
        if st.finished {
            return false;
        }
        let (lines, closed) = st.job.events.read_past(st.cursor);
        let mut queued_any = false;
        let mut dropped = 0u64;
        for (i, line) in lines.iter().enumerate() {
            if self.out.pending() > queue_max {
                dropped = (lines.len() - i) as u64;
                break;
            }
            st.cursor += 1;
            st.saw_done = st.saw_done || line.starts_with("{\"event\":\"done\"");
            let _ = http::write_chunk(&mut self.out, format!("{line}\n").as_bytes());
            queued_any = true;
        }
        if dropped > 0 {
            stats
                .slow_subscribers_dropped_total
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            stats
                .subscriber_events_dropped_total
                .fetch_add(dropped, std::sync::atomic::Ordering::Relaxed);
            let notice = format!(
                "{{\"event\":\"error\",\"reason\":\"subscriber too slow\",\"dropped\":{dropped}}}\n"
            );
            let _ = http::write_chunk(&mut self.out, notice.as_bytes());
            let _ = http::write_chunk_end(&mut self.out);
            st.finished = true;
            self.deadline = Some(flush_deadline);
            return true;
        }
        if closed {
            if !st.saw_done {
                let line = format!(
                    "{{\"event\":\"done\",\"state\":{}}}\n",
                    crate::json::escape(st.job.state().name())
                );
                let _ = http::write_chunk(&mut self.out, line.as_bytes());
            }
            let _ = http::write_chunk_end(&mut self.out);
            st.finished = true;
            self.deadline = Some(flush_deadline);
            return true;
        }
        queued_any
    }

    /// The poller interest this connection wants right now.
    pub fn desired_interest(&self) -> Interest {
        let writable = self.out.pending() > 0;
        match self.state {
            // Keep reading while closing too: draining the peer's
            // final bytes avoids RST-on-close eating our response.
            ConnState::Reading | ConnState::Streaming(_) | ConnState::Closing => Interest {
                readable: true,
                writable,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::EventLog;
    use crate::spec::parse_submission;
    use std::net::TcpListener;
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let a = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    fn test_job() -> Arc<Job> {
        let spec = parse_submission(
            br#"{"platform": "spatial-edge", "workloads": ["mobilenet"], "seed": 1}"#,
        )
        .expect("spec");
        Arc::new(Job::new("job-000001".into(), spec))
    }

    fn streaming_conn(job: Arc<Job>) -> (Connection, TcpStream) {
        let (client, server) = socket_pair();
        let now = Instant::now();
        let mut conn = Connection::new(server, Token(1), now + Duration::from_secs(60));
        conn.state = ConnState::Streaming(Stream {
            job,
            cursor: 0,
            saw_done: false,
            finished: false,
        });
        (conn, client)
    }

    #[test]
    fn outbuf_tracks_pending_and_drains() {
        let (mut client, mut server) = socket_pair();
        let mut out = OutBuf::default();
        out.write_all(b"hello ").unwrap();
        out.write_all(b"world").unwrap();
        assert_eq!(out.pending(), 11);
        assert!(out.flush_into(&mut server).expect("flush"));
        assert_eq!(out.pending(), 0);
        std::thread::sleep(Duration::from_millis(20));
        let mut got = [0u8; 16];
        let n = client.read(&mut got).expect("read");
        assert_eq!(&got[..n], b"hello world");
    }

    #[test]
    fn pump_tails_the_log_and_synthesizes_done_on_close() {
        let job = test_job();
        let (mut conn, client) = streaming_conn(Arc::clone(&job));
        let stats = NetStats::default();
        let deadline = Instant::now() + Duration::from_secs(5);

        job.events
            .push("{\"event\":\"iteration\",\"iteration\":1}".into());
        assert!(conn.pump_stream(64 * 1024, &stats, deadline));
        assert!(conn.out.pending() > 0);
        assert!(!matches!(
            &conn.state,
            ConnState::Streaming(st) if st.finished
        ));

        job.events.close();
        conn.pump_stream(64 * 1024, &stats, deadline);
        let ConnState::Streaming(st) = &conn.state else {
            panic!("still streaming")
        };
        assert!(st.finished);
        // Queued bytes decode to: iteration line, synthesized done,
        // chunk terminator.
        conn.flush().expect("flush");
        drop(conn);
        let mut text = String::new();
        let mut client = client;
        client.set_nonblocking(false).unwrap();
        client.read_to_string(&mut text).expect("read");
        assert!(text.contains("\"event\":\"iteration\""), "{text}");
        assert!(text.contains("\"event\":\"done\""), "{text}");
        assert!(text.ends_with("0\r\n\r\n"), "{text}");
        assert_eq!(
            stats.slow_subscribers_dropped_total.load(Ordering::Relaxed),
            0
        );
    }

    #[test]
    fn pump_does_not_synthesize_done_when_the_log_ends_with_one() {
        let job = test_job();
        let (mut conn, client) = streaming_conn(Arc::clone(&job));
        let stats = NetStats::default();
        let deadline = Instant::now() + Duration::from_secs(5);
        job.events
            .push("{\"event\":\"done\",\"state\":\"completed\"}".into());
        job.events.close();
        conn.pump_stream(64 * 1024, &stats, deadline);
        conn.flush().expect("flush");
        drop(conn);
        let mut text = String::new();
        let mut client = client;
        client.set_nonblocking(false).unwrap();
        client.read_to_string(&mut text).expect("read");
        assert_eq!(
            text.matches("\"event\":\"done\"").count(),
            1,
            "no duplicate done: {text}"
        );
    }

    #[test]
    fn overflowing_subscriber_queue_drops_the_stream_with_an_error_line() {
        let job = test_job();
        let (mut conn, _client) = streaming_conn(Arc::clone(&job));
        let stats = NetStats::default();
        let deadline = Instant::now() + Duration::from_secs(5);

        // Fill past a tiny bound without ever flushing (the "reader
        // never drains" shape).
        for i in 0..64 {
            job.events
                .push(format!("{{\"event\":\"iteration\",\"iteration\":{i}}}"));
        }
        assert!(conn.pump_stream(256, &stats, deadline));
        assert_eq!(
            stats.slow_subscribers_dropped_total.load(Ordering::Relaxed),
            1
        );
        assert!(
            stats
                .subscriber_events_dropped_total
                .load(Ordering::Relaxed)
                > 0
        );
        let ConnState::Streaming(st) = &conn.state else {
            panic!("still streaming")
        };
        assert!(st.finished, "overflow must finish the stream");
        assert!(conn.deadline.is_some(), "flush deadline armed");

        // The queued tail is a valid terminal: error line + terminator.
        let queued = String::from_utf8_lossy(&conn.out.buf).to_string();
        assert!(queued.contains("\"event\":\"error\""), "{queued}");
        assert!(queued.ends_with("0\r\n\r\n"), "{queued}");

        // Pumping again is a no-op: the stream is finished.
        let before = conn.out.pending();
        assert!(!conn.pump_stream(256, &stats, deadline));
        assert_eq!(conn.out.pending(), before);
    }

    #[test]
    fn subscriber_inbound_bytes_are_discarded_but_eof_is_seen() {
        let job = test_job();
        let (mut conn, mut client) = streaming_conn(job);
        client.set_nonblocking(false).unwrap();
        client.write_all(b"GET /sneaky HTTP/1.1\r\n\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(conn.fill_read_buf(), ReadOutcome::Progress);
        assert!(conn.buf.is_empty(), "subscriber input must be discarded");
        drop(client);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(conn.fill_read_buf(), ReadOutcome::Eof);
    }

    #[test]
    fn event_log_read_past_is_non_blocking() {
        let log = EventLog::default();
        let start = Instant::now();
        let (lines, closed) = log.read_past(0);
        assert!(lines.is_empty());
        assert!(!closed);
        assert!(start.elapsed() < Duration::from_millis(50));
        log.push("{\"event\":\"iteration\"}".into());
        log.close();
        let (lines, closed) = log.read_past(0);
        assert_eq!(lines.len(), 1);
        assert!(closed);
        let (lines, closed) = log.read_past(1);
        assert!(lines.is_empty());
        assert!(closed);
    }
}
