//! Prometheus text-format exposition for `GET /metrics`.
//!
//! The daemon exports scheduler gauges (queue depth, running jobs),
//! lifecycle counters, shared-cache statistics, and the per-phase
//! wall-clock totals aggregated over finished runs. Everything is
//! rendered in the text exposition format (`# HELP` / `# TYPE` /
//! sample lines) and [`validate_exposition`] re-parses the output so
//! both the unit tests and the CI smoke test can assert the format is
//! well-formed rather than eyeballing it.

use std::sync::atomic::Ordering;

use crate::cluster::ClusterState;
use crate::conn::NetStats;
use crate::scheduler::Scheduler;

/// Renders the daemon's metrics in Prometheus text format: scheduler
/// state plus the poller thread's connection-layer gauges/counters.
/// With cluster state attached (coordinator mode), the fleet's lease
/// counters and worker-reported cache totals are included.
pub fn render(sched: &Scheduler, net: &NetStats, cluster: Option<&ClusterState>) -> String {
    let mut out = String::new();
    let mut gauge = |name: &str, help: &str, value: f64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
        ));
    };
    gauge(
        "unico_serve_queue_depth",
        "Jobs waiting for a worker.",
        sched.queue_depth() as f64,
    );
    gauge(
        "unico_serve_jobs_running",
        "Jobs currently executing.",
        sched.running_count() as f64,
    );
    gauge(
        "unico_serve_open_connections",
        "Connections registered with the poller.",
        net.open_connections.load(Ordering::Relaxed) as f64,
    );
    gauge(
        "unico_serve_event_subscribers",
        "Connections currently streaming /events.",
        net.event_subscribers.load(Ordering::Relaxed) as f64,
    );
    gauge(
        "unico_serve_subscriber_queue_bytes",
        "Bytes queued towards /events subscribers, summed over connections.",
        net.subscriber_queue_bytes.load(Ordering::Relaxed) as f64,
    );

    let c = &sched.counters;
    for (name, help, value) in [
        (
            "unico_serve_connections_accepted_total",
            "Connections accepted since boot.",
            net.accepted_total.load(Ordering::Relaxed),
        ),
        (
            "unico_serve_requests_total",
            "Requests parsed and routed since boot.",
            net.requests_total.load(Ordering::Relaxed),
        ),
        (
            "unico_serve_slow_subscribers_dropped_total",
            "Subscribers disconnected for not draining their event queue.",
            net.slow_subscribers_dropped_total.load(Ordering::Relaxed),
        ),
        (
            "unico_serve_subscriber_events_dropped_total",
            "Event lines dropped on slow-subscriber disconnects.",
            net.subscriber_events_dropped_total.load(Ordering::Relaxed),
        ),
        (
            "unico_serve_connection_timeouts_total",
            "Connections reaped by the idle or header-read deadline.",
            net.connection_timeouts_total.load(Ordering::Relaxed),
        ),
        (
            "unico_serve_jobs_submitted_total",
            "Jobs accepted via the API or recovered from disk.",
            c.submitted.load(Ordering::Relaxed),
        ),
        (
            "unico_serve_jobs_completed_total",
            "Jobs finished with a result.",
            c.completed.load(Ordering::Relaxed),
        ),
        (
            "unico_serve_jobs_failed_total",
            "Jobs that panicked.",
            c.failed.load(Ordering::Relaxed),
        ),
        (
            "unico_serve_jobs_cancelled_total",
            "Jobs cancelled before finishing.",
            c.cancelled.load(Ordering::Relaxed),
        ),
        (
            "unico_serve_jobs_resumed_total",
            "Jobs resumed from a checkpoint after a restart.",
            c.resumed.load(Ordering::Relaxed),
        ),
        (
            "unico_serve_jobs_recovered_total",
            "Jobs requeued by the boot-time recovery scan.",
            c.recovered.load(Ordering::Relaxed),
        ),
        (
            "unico_serve_kills_simulated_total",
            "kill_after test-hook firings.",
            c.kills_simulated.load(Ordering::Relaxed),
        ),
        (
            "unico_serve_jobs_rejected_total",
            "Submissions rejected by the admission bound (429).",
            c.rejected.load(Ordering::Relaxed),
        ),
    ] {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
        ));
    }

    let stats = sched.cache().stats();
    out.push_str(&format!(
        "# HELP unico_serve_cache_hits_total Shared eval-cache lookups answered from the cache.\n# TYPE unico_serve_cache_hits_total counter\nunico_serve_cache_hits_total {}\n",
        stats.hits
    ));
    out.push_str(&format!(
        "# HELP unico_serve_cache_misses_total Shared eval-cache lookups that had to compute.\n# TYPE unico_serve_cache_misses_total counter\nunico_serve_cache_misses_total {}\n",
        stats.misses
    ));
    out.push_str(&format!(
        "# HELP unico_serve_cache_entries Shared eval-cache resident entries.\n# TYPE unico_serve_cache_entries gauge\nunico_serve_cache_entries {}\n",
        stats.entries
    ));
    out.push_str(&format!(
        "# HELP unico_serve_cache_hit_rate Shared eval-cache hit rate over all lookups.\n# TYPE unico_serve_cache_hit_rate gauge\nunico_serve_cache_hit_rate {}\n",
        stats.hit_rate()
    ));

    if let Some(disk) = sched.cache().disk_stats() {
        for (name, help, kind, value) in [
            (
                "unico_serve_disk_cache_hits_total",
                "Disk-tier lookups that served an in-memory miss.",
                "counter",
                disk.hits,
            ),
            (
                "unico_serve_disk_cache_misses_total",
                "Disk-tier lookups that fell through to compute.",
                "counter",
                disk.misses,
            ),
            (
                "unico_serve_disk_cache_entries",
                "Disk-tier entries indexed in memory.",
                "gauge",
                disk.entries,
            ),
            (
                "unico_serve_disk_cache_segments_loaded_total",
                "Disk-tier segment files absorbed from peers.",
                "counter",
                disk.segments_loaded,
            ),
            (
                "unico_serve_disk_cache_segments_skipped_total",
                "Torn or unreadable segment files skipped, never trusted.",
                "counter",
                disk.segments_skipped,
            ),
            (
                "unico_serve_disk_cache_entries_written_total",
                "Entries flushed into new segment files.",
                "counter",
                disk.entries_written,
            ),
        ] {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
            ));
        }
    }

    if let Some(cs) = cluster {
        let cc = &cs.counters;
        out.push_str(&format!(
            "# HELP unico_cluster_active_leases Jobs currently leased to workers.\n# TYPE unico_cluster_active_leases gauge\nunico_cluster_active_leases {}\n",
            cs.active_leases()
        ));
        out.push_str(&format!(
            "# HELP unico_cluster_workers_seen Distinct workers that have reported in.\n# TYPE unico_cluster_workers_seen gauge\nunico_cluster_workers_seen {}\n",
            cs.workers_seen()
        ));
        for (name, help, value) in [
            (
                "unico_cluster_leases_granted_total",
                "Leases handed to pulling workers.",
                cc.leases_granted.load(Ordering::Relaxed),
            ),
            (
                "unico_cluster_leases_expired_total",
                "Leases reaped after their worker went silent.",
                cc.leases_expired.load(Ordering::Relaxed),
            ),
            (
                "unico_cluster_remote_completions_total",
                "Jobs completed by remote workers.",
                cc.remote_completions.load(Ordering::Relaxed),
            ),
            (
                "unico_cluster_remote_failures_total",
                "Jobs failed by remote workers.",
                cc.remote_failures.load(Ordering::Relaxed),
            ),
            (
                "unico_cluster_heartbeats_total",
                "Heartbeats received from workers.",
                cc.heartbeats.load(Ordering::Relaxed),
            ),
        ] {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        }
        let fleet = cs.fleet_cache();
        for (name, help, value) in [
            (
                "unico_cluster_cache_hits_total",
                "Fleet-wide in-memory cache hits (workers' latest reports).",
                fleet.hits,
            ),
            (
                "unico_cluster_cache_misses_total",
                "Fleet-wide in-memory cache misses.",
                fleet.misses,
            ),
            (
                "unico_cluster_disk_cache_hits_total",
                "Fleet-wide disk-tier hits.",
                fleet.disk_hits,
            ),
            (
                "unico_cluster_disk_cache_entries",
                "Fleet-wide disk-tier entries indexed.",
                fleet.disk_entries,
            ),
        ] {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        }
    }

    let totals = sched.telemetry_totals();
    out.push_str(
        "# HELP unico_serve_phase_seconds_total Wall-clock seconds per optimizer phase, summed over finished runs.\n# TYPE unico_serve_phase_seconds_total counter\n",
    );
    for (phase, secs) in &totals.phases_s {
        out.push_str(&format!(
            "unico_serve_phase_seconds_total{{phase=\"{phase}\"}} {secs}\n"
        ));
    }
    out.push_str(
        "# HELP unico_serve_search_counter_total Optimizer telemetry counters, summed over finished runs.\n# TYPE unico_serve_search_counter_total counter\n",
    );
    for (counter, value) in &totals.counters {
        if *value > 0 {
            out.push_str(&format!(
                "unico_serve_search_counter_total{{counter=\"{counter}\"}} {value}\n"
            ));
        }
    }
    out
}

/// Checks that `text` is well-formed Prometheus text exposition:
/// every non-comment line is `name[{labels}] value`, every sample's
/// metric family was declared by a preceding `# TYPE` line, and every
/// value parses as a finite float.
///
/// # Errors
///
/// A message quoting the first offending line.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut declared: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let kind = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            if name.is_empty() || parts.next().is_none() {
                return Err(format!("malformed comment line {line:?}"));
            }
            if kind == "TYPE" {
                declared.push(name.to_string());
            } else if kind != "HELP" {
                return Err(format!("unknown comment kind in {line:?}"));
            }
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("sample without value: {line:?}"))?;
        let name = series.split('{').next().unwrap_or("");
        if !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.is_empty()
        {
            return Err(format!("bad metric name in {line:?}"));
        }
        if series.contains('{') && !series.ends_with('}') {
            return Err(format!("unterminated label set in {line:?}"));
        }
        if !declared.iter().any(|d| d == name) {
            return Err(format!("sample {name:?} missing a # TYPE declaration"));
        }
        let v: f64 = value
            .parse()
            .map_err(|_| format!("bad sample value in {line:?}"))?;
        if !v.is_finite() {
            return Err(format!("non-finite sample value in {line:?}"));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in exposition".to_string());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ServeConfig;
    use std::path::PathBuf;
    use std::sync::Arc;
    use unico_model::EvalCache;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("unico-serve-metrics-tests")
            .join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn exposition_of_an_idle_scheduler_validates() {
        let cfg = ServeConfig {
            state_dir: scratch("idle"),
            workers: 1,
            ..ServeConfig::default()
        };
        let sched = Scheduler::start(&cfg, Arc::new(EvalCache::new())).expect("boot");
        let text = render(&sched, &NetStats::default(), None);
        let samples = validate_exposition(&text).expect("valid exposition");
        assert!(samples >= 15, "expected the full catalog, got {samples}");
        assert!(text.contains("unico_serve_queue_depth 0\n"));
        assert!(text.contains("unico_serve_cache_hit_rate"));
        for conn_metric in [
            "unico_serve_open_connections 0\n",
            "unico_serve_event_subscribers 0\n",
            "unico_serve_subscriber_queue_bytes 0\n",
            "unico_serve_connections_accepted_total 0\n",
            "unico_serve_requests_total 0\n",
            "unico_serve_slow_subscribers_dropped_total 0\n",
            "unico_serve_subscriber_events_dropped_total 0\n",
            "unico_serve_connection_timeouts_total 0\n",
        ] {
            assert!(text.contains(conn_metric), "missing {conn_metric:?}");
        }
        sched.shutdown();
    }

    #[test]
    fn coordinator_exposition_includes_cluster_and_disk_metrics() {
        let dir = scratch("coordinator");
        let cfg = ServeConfig {
            state_dir: dir.clone(),
            workers: 0,
            ..ServeConfig::default()
        };
        let tier = unico_model::DiskTier::open(dir.join("disk-cache")).expect("tier");
        let cache = Arc::new(EvalCache::new().with_disk(Arc::new(tier)));
        let sched = Scheduler::start(&cfg, cache).expect("boot");
        let cluster = ClusterState::new(Arc::clone(&sched), std::time::Duration::from_secs(10));
        let text = render(&sched, &NetStats::default(), Some(&cluster));
        validate_exposition(&text).expect("valid exposition");
        for metric in [
            "unico_serve_disk_cache_hits_total 0\n",
            "unico_serve_disk_cache_segments_skipped_total 0\n",
            "unico_cluster_active_leases 0\n",
            "unico_cluster_leases_expired_total 0\n",
            "unico_cluster_disk_cache_hits_total 0\n",
        ] {
            assert!(text.contains(metric), "missing {metric:?} in:\n{text}");
        }
        sched.shutdown();
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        for (bad, needle) in [
            ("metric_without_type 1\n", "TYPE"),
            ("# TYPE m gauge\nm\n", "without value"),
            ("# TYPE m gauge\nm one\n", "bad sample value"),
            ("# TYPE m gauge\nm{unterminated 1\n", "unterminated"),
            ("# TYPE m gauge\n9bad~name 2\n", "bad metric name"),
            ("", "no samples"),
        ] {
            let err = validate_exposition(bad).expect_err(bad);
            assert!(err.contains(needle), "{bad:?}: {err}");
        }
    }
}
