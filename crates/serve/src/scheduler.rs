//! The bounded worker-pool scheduler behind the HTTP API.
//!
//! Jobs queue FIFO and run on a fixed number of worker threads. All
//! jobs share one process-wide [`EvalCache`], so two jobs over the
//! same workload warm each other's PPA evaluations — the cross-job
//! hit counters surface in `/metrics`.
//!
//! Durability: every job checkpoints to its own file at the cadence
//! its spec asks for, and every lifecycle transition is persisted to
//! the job manifest *before* it becomes observable. On boot the
//! scheduler scans the state directory; manifests still in `queued`
//! or `running` are requeued, and a job whose checkpoint file survived
//! resumes from it (`Unico::resume`) instead of starting over.
//!
//! The `kill_after` spec field is the durability test hook: the run
//! panics at that checkpoint boundary and the worker deliberately
//! leaves the manifest saying `running` — exactly the on-disk state a
//! SIGKILLed daemon leaves behind — so a restarted scheduler exercises
//! the genuine recovery path.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use unico_camodel::AscendPlatform;
use unico_core::checkpoint::{self, CheckpointPolicy};
use unico_core::{IterationUpdate, RunObserver, RunOptions, Unico, UnicoResult};
use unico_model::{EvalCache, Platform, SpatialPlatform};
use unico_search::{CoSearchEnv, TelemetrySnapshot};
use unico_workloads::{zoo, ImportedGraph};

use crate::job::{self, Job, JobOutcome, JobPaths, JobState, Manifest};
use crate::spec::{JobSpec, PlatformKind, ServeConfig};

/// Monotonic scheduler-level counters exported via `/metrics`.
#[derive(Debug, Default)]
pub struct SchedulerCounters {
    /// Jobs accepted through the API or recovered from disk.
    pub submitted: AtomicU64,
    /// Jobs that finished with a result.
    pub completed: AtomicU64,
    /// Jobs that panicked.
    pub failed: AtomicU64,
    /// Jobs cancelled before finishing.
    pub cancelled: AtomicU64,
    /// Jobs resumed from a checkpoint after a restart.
    pub resumed: AtomicU64,
    /// Jobs requeued by the boot-time recovery scan.
    pub recovered: AtomicU64,
    /// Simulated hard kills (`kill_after` hook firings).
    pub kills_simulated: AtomicU64,
    /// Submissions rejected because the admission queue was full.
    pub rejected: AtomicU64,
}

/// Why a submission was not accepted.
#[derive(Debug)]
pub enum SubmitError {
    /// The admission queue is at capacity; the client should back off
    /// and retry (the HTTP layer turns this into 429 + `Retry-After`).
    QueueFull {
        /// Queue depth observed at rejection time.
        depth: usize,
    },
    /// Persisting the manifest failed; the job was not accepted.
    Io(std::io::Error),
    /// The spec references a graph that cannot be loaded from this
    /// daemon's state dir (missing file, malformed model); a 422.
    InvalidGraph(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { depth } => {
                write!(f, "admission queue full ({depth} jobs waiting)")
            }
            SubmitError::Io(e) => write!(f, "persisting manifest failed: {e}"),
            SubmitError::InvalidGraph(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Per-tenant round-robin admission queue: each tenant gets one FIFO
/// lane, and pops rotate through the lanes so one tenant flooding the
/// daemon cannot starve another's jobs.
#[derive(Debug, Default)]
struct FairQueue {
    lanes: BTreeMap<String, VecDeque<String>>,
    /// Tenants in first-seen order; the rotation order.
    order: Vec<String>,
    cursor: usize,
    len: usize,
}

impl FairQueue {
    fn push(&mut self, tenant: &str, id: String) {
        if !self.lanes.contains_key(tenant) {
            self.order.push(tenant.to_string());
        }
        self.lanes
            .entry(tenant.to_string())
            .or_default()
            .push_back(id);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<String> {
        if self.len == 0 || self.order.is_empty() {
            return None;
        }
        for _ in 0..self.order.len() {
            let lane = &self.order[self.cursor % self.order.len()];
            self.cursor = (self.cursor + 1) % self.order.len();
            if let Some(id) = self
                .lanes
                .get_mut(lane.as_str())
                .and_then(VecDeque::pop_front)
            {
                self.len -= 1;
                return Some(id);
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// The job scheduler. Create with [`Scheduler::start`]; drop after
/// [`Scheduler::shutdown`].
pub struct Scheduler {
    state_dir: PathBuf,
    cache: Arc<EvalCache>,
    jobs: Mutex<BTreeMap<String, Arc<Job>>>,
    queue: Mutex<FairQueue>,
    queue_cond: Condvar,
    max_queue: usize,
    next_id: AtomicU64,
    stopping: AtomicBool,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Scheduler lifecycle counters.
    pub counters: SchedulerCounters,
    /// Sum of every finished job's final telemetry snapshot (counters
    /// and phase timers), for the `/metrics` exposition.
    telemetry_totals: Mutex<TelemetrySnapshot>,
}

impl Scheduler {
    /// Boots a scheduler: creates the state directory, runs the crash
    /// recovery scan, and starts `cfg.workers` worker threads.
    ///
    /// # Errors
    ///
    /// I/O errors creating or scanning the state directory.
    pub fn start(cfg: &ServeConfig, cache: Arc<EvalCache>) -> std::io::Result<Arc<Self>> {
        std::fs::create_dir_all(&cfg.state_dir)?;
        let sched = Arc::new(Scheduler {
            state_dir: cfg.state_dir.clone(),
            cache,
            jobs: Mutex::new(BTreeMap::new()),
            queue: Mutex::new(FairQueue::default()),
            queue_cond: Condvar::new(),
            max_queue: cfg.max_queue,
            next_id: AtomicU64::new(1),
            stopping: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
            counters: SchedulerCounters::default(),
            telemetry_totals: Mutex::new(TelemetrySnapshot::default()),
        });
        sched.recover()?;
        let mut workers = sched.workers.lock().unwrap_or_else(|e| e.into_inner());
        // Honor the config exactly: env-sourced configs reject zero
        // loudly in `try_from_env`, and a zero-worker scheduler (jobs
        // queue but never run) is a legitimate test harness.
        for i in 0..cfg.workers {
            let me = Arc::clone(&sched);
            match std::thread::Builder::new()
                .name(format!("unico-serve-worker-{i}"))
                .spawn(move || me.worker_loop())
            {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Boot must be all-or-nothing: join the workers
                    // already spawned and report the failure instead
                    // of limping along with a smaller pool.
                    drop(workers);
                    sched.shutdown();
                    return Err(e);
                }
            }
        }
        drop(workers);
        Ok(sched)
    }

    /// The shared evaluation cache.
    pub fn cache(&self) -> &Arc<EvalCache> {
        &self.cache
    }

    /// Scans the state directory and re-registers every job found.
    /// Non-terminal jobs are requeued in manifest order.
    fn recover(&self) -> std::io::Result<()> {
        let (manifests, corrupt) = job::scan_manifests(&self.state_dir)?;
        for (path, err) in &corrupt {
            eprintln!(
                "unico-served: ignoring corrupt manifest {}: {err}",
                path.display()
            );
        }
        // The checkpoint scan is advisory here (manifests drive the
        // requeue), but it rejects checkpoints that would fail later.
        let scan = checkpoint::scan_dir(&self.state_dir)?;
        for (path, err) in &scan.corrupt {
            eprintln!("unico-served: corrupt checkpoint {}: {err}", path.display());
        }
        let mut max_id = 0u64;
        for m in manifests {
            if let Some(n) =
                m.id.strip_prefix("job-")
                    .and_then(|s| s.parse::<u64>().ok())
            {
                max_id = max_id.max(n);
            }
            self.register_recovered(m);
        }
        self.next_id.store(max_id + 1, Ordering::SeqCst);
        Ok(())
    }

    fn register_recovered(&self, m: Manifest) {
        let job = Arc::new(Job::new(m.id.clone(), m.spec));
        match m.state {
            JobState::Queued | JobState::Running => {
                self.counters.submitted.fetch_add(1, Ordering::Relaxed);
                self.counters.recovered.fetch_add(1, Ordering::Relaxed);
                self.jobs
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(m.id.clone(), Arc::clone(&job));
                self.enqueue(m.id);
            }
            terminal => {
                // Terminal jobs stay visible (state + spec); their
                // result file, if any, remains on disk.
                job.set_state(terminal);
                if terminal == JobState::Completed {
                    // Keep the terminal event stream well-formed for
                    // late subscribers.
                    job.events
                        .push("{\"event\":\"recovered\",\"state\":\"completed\"}".to_string());
                }
                job.events.close();
                self.jobs
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(m.id, job);
            }
        }
    }

    /// Accepts a validated spec: assigns an id, persists the manifest,
    /// and queues the job. Admission is bounded: beyond `max_queue`
    /// waiting jobs, submissions are rejected (recovery requeues and
    /// lease reassignments bypass the bound — accepted work is never
    /// dropped).
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] at capacity, or the I/O error
    /// persisting the manifest (the job is then *not* queued — no
    /// unrecoverable work is ever accepted).
    pub fn submit(&self, spec: JobSpec) -> Result<Arc<Job>, SubmitError> {
        let depth = self.queue_depth();
        if depth >= self.max_queue {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QueueFull { depth });
        }
        // Resolve and import any referenced graph now: a missing or
        // malformed model file is a 422 at submit, not a worker panic.
        if let Err(e) = crate::spec::load_graphs(&spec, &self.state_dir) {
            return Err(SubmitError::InvalidGraph(e));
        }
        let id = format!("job-{:06}", self.next_id.fetch_add(1, Ordering::SeqCst));
        let job = Arc::new(Job::new(id.clone(), spec));
        job::write_manifest(&self.paths(&id), &job).map_err(SubmitError::Io)?;
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id.clone(), Arc::clone(&job));
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.enqueue(id);
        Ok(job)
    }

    /// Looks a job up by id.
    pub fn get(&self, id: &str) -> Option<Arc<Job>> {
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(id)
            .cloned()
    }

    /// All jobs in id order.
    pub fn jobs(&self) -> Vec<Arc<Job>> {
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .cloned()
            .collect()
    }

    /// Requests cancellation; queued jobs die immediately, running
    /// jobs stop cooperatively at the next iteration boundary.
    /// Returns the state observed at the time of the request.
    pub fn cancel(&self, id: &str) -> Option<JobState> {
        let job = self.get(id)?;
        let before = job.state();
        job.cancel.store(true, Ordering::SeqCst);
        if before == JobState::Queued && job.set_state(JobState::Cancelled) {
            self.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            let _ = job::write_manifest(&self.paths(&job.id), &job);
            job.events
                .push("{\"event\":\"done\",\"state\":\"cancelled\"}".to_string());
            job.events.close();
        }
        Some(before)
    }

    /// Jobs currently waiting for a worker.
    pub fn queue_depth(&self) -> usize {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Jobs currently in `Running`.
    pub fn running_count(&self) -> usize {
        self.jobs()
            .iter()
            .filter(|j| j.state() == JobState::Running)
            .count()
    }

    /// Aggregate of finished jobs' telemetry (counters + phase timers).
    pub fn telemetry_totals(&self) -> TelemetrySnapshot {
        self.telemetry_totals
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Stops accepting queue pops and joins all workers. Running jobs
    /// are cancelled cooperatively first.
    pub fn shutdown(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        for job in self.jobs() {
            job.cancel.store(true, Ordering::SeqCst);
        }
        self.queue_cond.notify_all();
        let handles: Vec<_> = self
            .workers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }

    fn paths(&self, id: &str) -> JobPaths {
        JobPaths::new(&self.state_dir, id)
    }

    fn enqueue(&self, id: String) {
        let tenant = self
            .get(&id)
            .map(|j| j.spec.tenant.clone())
            .unwrap_or_default();
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(&tenant, id);
        self.queue_cond.notify_one();
    }

    fn pop_job(&self) -> Option<String> {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.stopping.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(id) = queue.pop() {
                return Some(id);
            }
            queue = self
                .queue_cond
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking pop for the cluster lease path: hands the next
    /// fair-queued job id to a pulling worker, or `None` when idle.
    pub(crate) fn try_pop(&self) -> Option<String> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).pop()
    }

    fn worker_loop(&self) {
        while let Some(id) = self.pop_job() {
            let Some(job) = self.get(&id) else { continue };
            self.drive(&job);
        }
    }

    /// Runs one job to a terminal state (or leaves it `running` on a
    /// simulated kill).
    fn drive(&self, job: &Arc<Job>) {
        let paths = self.paths(&job.id);
        if job.cancel.load(Ordering::SeqCst) {
            self.finish_cancelled(job);
            return;
        }
        if !self.begin_running(job) {
            return;
        }

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            execute(&job.spec, &paths, Arc::clone(&self.cache), job)
        }));
        match outcome {
            Ok((outcome, final_telemetry)) => {
                let resumed = job.resumed.load(Ordering::SeqCst);
                self.complete(job, outcome, final_telemetry, resumed);
            }
            Err(panic) => {
                let msg = panic_message(panic.as_ref());
                if msg.contains("kill_after") {
                    // Simulated hard kill: leave the manifest saying
                    // `running` and the checkpoint on disk, exactly as
                    // a SIGKILL would. Only the in-process event stream
                    // is terminated.
                    self.counters
                        .kills_simulated
                        .fetch_add(1, Ordering::Relaxed);
                    job.events
                        .push("{\"event\":\"kill-simulated\"}".to_string());
                    job.events.close();
                } else {
                    self.fail(job, msg);
                }
            }
        }
    }

    /// Flips a job to `Running` and persists the transition. Returns
    /// `false` (after finishing a pending cancellation) when the job
    /// must not run. Shared by the local worker pool and the cluster
    /// lease path.
    pub(crate) fn begin_running(&self, job: &Arc<Job>) -> bool {
        if job.cancel.load(Ordering::SeqCst) {
            self.finish_cancelled(job);
            return false;
        }
        if !job.set_state(JobState::Running) {
            return false;
        }
        if job::write_manifest(&self.paths(&job.id), job).is_err() {
            // A state dir that stopped being writable will fail the run
            // too; let the failure path report it.
        }
        true
    }

    /// Terminates a cancelled job: state, counter, manifest, events.
    pub(crate) fn finish_cancelled(&self, job: &Arc<Job>) {
        if job.set_state(JobState::Cancelled) {
            self.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            let _ = job::write_manifest(&self.paths(&job.id), job);
            job.events
                .push("{\"event\":\"done\",\"state\":\"cancelled\"}".to_string());
            job.events.close();
        }
    }

    /// Records a finished run: result file, outcome, terminal state,
    /// counters, telemetry aggregation, and the closing `done` event.
    /// Returns `false` when the job was already terminal (a late
    /// duplicate completion, e.g. from a reassigned-then-revived
    /// worker — the first completion wins).
    pub(crate) fn complete(
        &self,
        job: &Arc<Job>,
        outcome: JobOutcome,
        final_telemetry: TelemetrySnapshot,
        resumed: bool,
    ) -> bool {
        if job.state().is_terminal() {
            return false;
        }
        let paths = self.paths(&job.id);
        let state = if outcome.cancelled {
            JobState::Cancelled
        } else {
            JobState::Completed
        };
        // Result file before the state flip, same as the local path:
        // anyone observing `completed` finds the file.
        let _ = job::atomic_write(&paths.result, &outcome.to_json(&job.id));
        job.set_outcome(outcome);
        if resumed {
            job.resumed.store(true, Ordering::SeqCst);
        }
        if !job.set_state(state) {
            return false;
        }
        {
            let mut totals = self
                .telemetry_totals
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            *totals = merge_snapshots(&totals, &final_telemetry);
        }
        match state {
            JobState::Cancelled => &self.counters.cancelled,
            _ => &self.counters.completed,
        }
        .fetch_add(1, Ordering::Relaxed);
        if job.resumed.load(Ordering::SeqCst) {
            self.counters.resumed.fetch_add(1, Ordering::Relaxed);
        }
        let _ = job::write_manifest(&paths, job);
        job.events.push(format!(
            "{{\"event\":\"done\",\"state\":\"{}\"}}",
            state.name()
        ));
        job.events.close();
        true
    }

    /// Records a failed run. Returns `false` if the job was already
    /// terminal.
    pub(crate) fn fail(&self, job: &Arc<Job>, msg: String) -> bool {
        if job.state().is_terminal() {
            return false;
        }
        job.set_error(msg);
        if job.set_state(JobState::Failed) {
            self.counters.failed.fetch_add(1, Ordering::Relaxed);
            let _ = job::write_manifest(&self.paths(&job.id), job);
            job.events
                .push("{\"event\":\"done\",\"state\":\"failed\"}".to_string());
            job.events.close();
            true
        } else {
            job.events.close();
            false
        }
    }

    /// Puts a leased-but-lost job back on the queue (lease reaping).
    /// Bypasses admission — the job was already accepted.
    pub(crate) fn requeue(&self, job: &Arc<Job>) {
        if job.state().is_terminal() {
            return;
        }
        job.set_state(JobState::Queued);
        let _ = job::write_manifest(&self.paths(&job.id), job);
        self.enqueue(job.id.clone());
    }
}

/// Per-job run observer: streams iteration deltas into the event log
/// and carries the cancellation flag into the optimizer loop.
struct JobObserver<'a> {
    job: &'a Job,
    last: Mutex<TelemetrySnapshot>,
}

impl RunObserver for JobObserver<'_> {
    fn on_iteration(&self, u: &IterationUpdate<'_>) {
        let snap = u.telemetry.snapshot();
        let delta = {
            let mut last = self.last.lock().unwrap_or_else(|e| e.into_inner());
            let delta = snap.delta_since(&last);
            *last = snap;
            delta
        };
        self.job.events.push(format!(
            "{{\"event\":\"iteration\",\"iteration\":{},\"max_iter\":{},\"front_size\":{},\"evaluations\":{},\"delta\":{}}}",
            u.iteration,
            u.max_iter,
            u.front_size,
            u.evaluations,
            delta.to_json()
        ));
    }

    fn cancelled(&self) -> bool {
        self.job.cancel.load(Ordering::SeqCst)
    }
}

/// Builds the platform + environment a spec asks for and runs (or
/// resumes) the job. Returns the outcome plus the run's final
/// telemetry snapshot for scheduler-level aggregation.
///
/// When the cache carries a disk tier, peers' segments are absorbed
/// before the run and this run's new entries are flushed after it — a
/// kill mid-run loses the pending buffer exactly like a killed
/// process would, which the chaos oracles rely on.
pub(crate) fn execute(
    spec: &JobSpec,
    paths: &JobPaths,
    cache: Arc<EvalCache>,
    job: &Job,
) -> (JobOutcome, TelemetrySnapshot) {
    cache.refresh_disk();
    let out = execute_inner(spec, paths, Arc::clone(&cache), job);
    cache.flush_disk();
    out
}

fn execute_inner(
    spec: &JobSpec,
    paths: &JobPaths,
    cache: Arc<EvalCache>,
    job: &Job,
) -> (JobOutcome, TelemetrySnapshot) {
    let mut graphs: Vec<ImportedGraph> = spec
        .workloads
        .iter()
        .map(|n| {
            ImportedGraph::from_network(zoo::by_name(n).expect("spec validated at submit time"))
        })
        .collect();
    // The manifest lives directly under the state dir, which anchors
    // relative graph_file paths.
    let state_dir = paths
        .manifest
        .parent()
        .unwrap_or_else(|| std::path::Path::new("."));
    let imported = crate::spec::load_graphs(spec, state_dir)
        .unwrap_or_else(|e| panic!("loading graphs for {}: {e}", paths.manifest.display()));
    let frontend_ops: u64 = imported.iter().map(ImportedGraph::ops_lowered).sum();
    graphs.extend(imported);
    match spec.platform {
        PlatformKind::SpatialEdge => run_on(
            SpatialPlatform::edge().with_eval_cache(cache),
            spec,
            &graphs,
            frontend_ops,
            paths,
            job,
        ),
        PlatformKind::SpatialCloud => run_on(
            SpatialPlatform::cloud().with_eval_cache(cache),
            spec,
            &graphs,
            frontend_ops,
            paths,
            job,
        ),
        PlatformKind::Ascend => run_on(
            AscendPlatform::new().with_eval_cache(cache),
            spec,
            &graphs,
            frontend_ops,
            paths,
            job,
        ),
    }
}

fn run_on<P: Platform>(
    platform: P,
    spec: &JobSpec,
    graphs: &[ImportedGraph],
    frontend_ops: u64,
    paths: &JobPaths,
    job: &Job,
) -> (JobOutcome, TelemetrySnapshot)
where
    P::Hw: Send,
{
    let env = CoSearchEnv::with_graphs(&platform, graphs, spec.env_config());
    let observer = JobObserver {
        job,
        last: Mutex::new(TelemetrySnapshot::default()),
    };
    let opts = RunOptions {
        checkpoint: Some(
            CheckpointPolicy::new(paths.checkpoint.clone()).with_every(spec.checkpoint_every),
        ),
        kill_after: spec.kill_after,
        observer: Some(&observer),
        ..RunOptions::default()
    };
    let result = if paths.checkpoint.exists() {
        job.resumed.store(true, Ordering::SeqCst);
        job.events.push(format!(
            "{{\"event\":\"resume\",\"checkpoint\":{}}}",
            crate::json::escape(&paths.checkpoint.display().to_string())
        ));
        match Unico::resume_with_options(&env, &paths.checkpoint, &opts) {
            Ok(r) => r,
            Err(e) => panic!("resume from {} failed: {e}", paths.checkpoint.display()),
        }
    } else {
        Unico::new(spec.unico_config()).run_with_options(&env, &opts)
    };
    let mut final_telemetry = observer
        .last
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    if frontend_ops > 0 {
        *final_telemetry
            .counters
            .entry("frontend_ops_lowered".to_string())
            .or_insert(0) += frontend_ops;
    }
    (outcome_from(result), final_telemetry)
}

fn outcome_from<H>(result: UnicoResult<H>) -> JobOutcome {
    JobOutcome {
        front_bits: result
            .front
            .objectives()
            .iter()
            .map(|row| row.iter().map(|v| v.to_bits()).collect())
            .collect(),
        report_json: result.report.to_json(),
        deterministic_report_json: result.report.deterministic_json(),
        iterations_done: result.iterations_done,
        hw_evals: result.hw_evals,
        cancelled: result.cancelled,
    }
}

fn merge_snapshots(a: &TelemetrySnapshot, b: &TelemetrySnapshot) -> TelemetrySnapshot {
    let mut out = a.clone();
    for (k, v) in &b.counters {
        *out.counters.entry(k.clone()).or_insert(0) += v;
    }
    for (k, v) in &b.phases_s {
        *out.phases_s.entry(k.clone()).or_insert(0.0) += v;
    }
    out
}

pub(crate) fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    panic
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "unknown panic".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse_submission;
    use std::time::Duration;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("unico-serve-sched-tests")
            .join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn cfg(dir: PathBuf) -> ServeConfig {
        ServeConfig {
            state_dir: dir,
            workers: 2,
            ..ServeConfig::default()
        }
    }

    fn tiny_spec(seed: u64) -> JobSpec {
        parse_submission(
            format!(
                r#"{{"platform": "spatial-edge", "workloads": ["mobilenet"],
                     "max_iter": 2, "batch": 3, "b_max": 16, "candidate_pool": 16,
                     "power_cap_mw": 2000, "seed": {seed}}}"#
            )
            .as_bytes(),
        )
        .expect("valid spec")
    }

    fn wait_terminal(job: &Arc<Job>) -> JobState {
        for _ in 0..600 {
            let st = job.state();
            if st.is_terminal() {
                return st;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        panic!("job {} never reached a terminal state", job.id);
    }

    #[test]
    fn fair_queue_round_robins_tenants() {
        let mut q = FairQueue::default();
        for (tenant, id) in [
            ("a", "job-1"),
            ("a", "job-2"),
            ("a", "job-3"),
            ("b", "job-4"),
            ("", "job-5"),
        ] {
            q.push(tenant, id.to_string());
        }
        assert_eq!(q.len(), 5);
        let order: Vec<String> = std::iter::from_fn(|| q.pop()).collect();
        // One pop per tenant per round: a, b, "" then a's backlog.
        assert_eq!(order, ["job-1", "job-4", "job-5", "job-2", "job-3"]);
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn admission_bound_rejects_with_queue_full() {
        let dir = scratch("admission");
        let mut c = cfg(dir);
        c.workers = 0; // nothing drains the queue
        c.max_queue = 2;
        let sched = Scheduler::start(&c, Arc::new(EvalCache::new())).expect("boot");
        sched.submit(tiny_spec(1)).expect("first fits");
        sched.submit(tiny_spec(2)).expect("second fits");
        match sched.submit(tiny_spec(3)) {
            Err(SubmitError::QueueFull { depth }) => assert_eq!(depth, 2),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(sched.counters.rejected.load(Ordering::Relaxed), 1);
        // A lease reassignment still requeues past the bound: pop one
        // (as the lease path does), fill the freed slot, then requeue.
        let id = sched.try_pop().expect("queued job");
        let job = sched.get(&id).expect("job");
        sched.submit(tiny_spec(4)).expect("freed slot fits");
        sched.requeue(&job);
        assert_eq!(sched.queue_depth(), 3, "requeue bypasses admission");
        assert_eq!(job.state(), JobState::Queued);
        sched.shutdown();
    }

    #[test]
    fn runs_a_job_to_completion_with_events_and_result_file() {
        let dir = scratch("complete");
        let sched = Scheduler::start(&cfg(dir.clone()), Arc::new(EvalCache::new())).expect("boot");
        let job = sched.submit(tiny_spec(3)).expect("submit");
        assert_eq!(wait_terminal(&job), JobState::Completed);

        let (events, closed) = job.events.snapshot();
        assert!(closed);
        assert!(events.iter().all(|l| crate::json::parse(l).is_ok()));
        assert_eq!(
            events.last().map(String::as_str),
            Some("{\"event\":\"done\",\"state\":\"completed\"}")
        );
        let iterations: Vec<&String> = events
            .iter()
            .filter(|l| l.contains("\"event\":\"iteration\""))
            .collect();
        assert_eq!(iterations.len(), 2, "one event per iteration: {events:?}");

        let paths = JobPaths::new(&dir, &job.id);
        assert!(paths.result.exists());
        assert!(paths.checkpoint.exists());
        let outcome = job.outcome().expect("outcome stored");
        assert_eq!(outcome.iterations_done, 2);
        assert!(!sched.telemetry_totals().is_empty());
        sched.shutdown();
    }

    #[test]
    fn cancelling_a_queued_job_never_runs_it() {
        let dir = scratch("cancel-queued");
        // Zero-worker pool: nothing ever pops the queue.
        let mut c = cfg(dir);
        c.workers = 1;
        let sched = Scheduler::start(&c, Arc::new(EvalCache::new())).expect("boot");
        // Block the only worker with a long job, then cancel a queued one.
        let blocker = sched.submit(tiny_spec(1)).expect("submit blocker");
        let victim = sched.submit(tiny_spec(2)).expect("submit victim");
        let observed = sched.cancel(&victim.id).expect("cancel");
        assert!(
            matches!(observed, JobState::Queued | JobState::Running),
            "victim was {observed:?}"
        );
        assert_eq!(wait_terminal(&victim), JobState::Cancelled);
        let _ = wait_terminal(&blocker);
        sched.shutdown();
        assert!(victim.outcome().is_none());
    }

    #[test]
    fn kill_hook_leaves_running_manifest_and_restart_resumes() {
        let dir = scratch("kill-restart");
        // Daemon 1: the job dies at checkpoint boundary 1.
        let mut spec = tiny_spec(7);
        spec.kill_after = Some(1);
        let sched = Scheduler::start(&cfg(dir.clone()), Arc::new(EvalCache::new())).expect("boot");
        let job = sched.submit(spec).expect("submit");
        // Terminal never comes; wait for the event stream to close.
        for _ in 0..600 {
            if job.events.snapshot().1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        assert!(job.events.snapshot().1, "kill must close the stream");
        assert_eq!(job.state(), JobState::Running, "no terminal transition");
        assert_eq!(sched.counters.kills_simulated.load(Ordering::Relaxed), 1);
        sched.shutdown();

        // The manifest on disk still says running — the SIGKILL shape.
        let (manifests, _) = job::scan_manifests(&dir).expect("scan");
        assert_eq!(manifests.len(), 1);
        assert_eq!(manifests[0].state, JobState::Running);

        // Daemon 2: recovery requeues and resumes the job. kill_after
        // still sits in the persisted spec, but the boundary is already
        // past the restored iteration count, so it cannot re-fire.
        let sched2 = Scheduler::start(&cfg(dir.clone()), Arc::new(EvalCache::new())).expect("boot");
        let recovered = sched2.get(&job.id).expect("job recovered");
        assert_eq!(wait_terminal(&recovered), JobState::Completed);
        assert!(recovered.resumed.load(Ordering::SeqCst));
        assert_eq!(sched2.counters.recovered.load(Ordering::Relaxed), 1);
        assert_eq!(sched2.counters.resumed.load(Ordering::Relaxed), 1);
        let outcome = recovered.outcome().expect("outcome");
        assert_eq!(outcome.iterations_done, 2);
        sched2.shutdown();
    }

    #[test]
    fn two_jobs_sharing_a_workload_hit_the_shared_cache() {
        let dir = scratch("shared-cache");
        let cache = Arc::new(EvalCache::new());
        let mut c = cfg(dir);
        c.workers = 1; // serialize so the second job sees the first's entries
        let sched = Scheduler::start(&c, Arc::clone(&cache)).expect("boot");
        let a = sched.submit(tiny_spec(5)).expect("submit a");
        let b = sched.submit(tiny_spec(5)).expect("submit b");
        assert_eq!(wait_terminal(&a), JobState::Completed);
        assert_eq!(wait_terminal(&b), JobState::Completed);
        sched.shutdown();
        let stats = cache.stats();
        assert!(
            stats.hits > 0,
            "identical seeds must replay cached evaluations: {stats:?}"
        );
    }
}
