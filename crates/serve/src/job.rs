//! Job state, event streaming, and on-disk persistence.
//!
//! Every job owns three files under the daemon's state directory, all
//! written atomically (tmp + rename, the checkpoint convention):
//!
//! * `<id>.job.json` — the manifest: spec + lifecycle state. This is
//!   what crash recovery reads; a manifest still saying `running`
//!   after a daemon death means the job must be requeued.
//! * `<id>.checkpoint` — the optimizer's own `unico.checkpoint.v1`
//!   file, written by the run itself at the job's cadence.
//! * `<id>.result.json` — the outcome, written exactly once on
//!   completion.
//!
//! Pareto-front objective values are serialized as decimal IEEE-754
//! bit patterns in JSON *strings* (u64 exceeds the double-exact range,
//! so bare numbers would not survive generic JSON clients).

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::json;
use crate::spec::JobSpec;

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a worker.
    Queued,
    /// A worker is driving the run.
    Running,
    /// Finished; a result file exists.
    Completed,
    /// The run panicked (other than the kill-hook emulation).
    Failed,
    /// Cancelled via the API before completing.
    Cancelled,
}

impl JobState {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parses a wire name.
    pub fn from_name(s: &str) -> Result<Self, String> {
        match s {
            "queued" => Ok(JobState::Queued),
            "running" => Ok(JobState::Running),
            "completed" => Ok(JobState::Completed),
            "failed" => Ok(JobState::Failed),
            "cancelled" => Ok(JobState::Cancelled),
            other => Err(format!("unknown job state {other:?}")),
        }
    }

    /// Whether the job can still change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::Cancelled
        )
    }
}

/// What a finished run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Pareto-front objective vectors as IEEE-754 bit patterns.
    pub front_bits: Vec<Vec<u64>>,
    /// Full v3 run report (includes wall-clock phases).
    pub report_json: String,
    /// Deterministic run report (phases excluded) — byte-identical
    /// across a killed-and-resumed run and an uninterrupted one.
    pub deterministic_report_json: String,
    /// Iterations the run completed.
    pub iterations_done: usize,
    /// Hardware evaluations recorded.
    pub hw_evals: usize,
    /// Whether the run stopped on a cancellation request.
    pub cancelled: bool,
}

impl JobOutcome {
    /// The seed-determined portion of the outcome: compare this across
    /// runs to assert resume equivalence.
    pub fn deterministic_json(&self) -> String {
        format!(
            "{{\"front_bits\":{},\"report\":{}}}",
            render_bits(&self.front_bits),
            self.deterministic_report_json
        )
    }

    /// Renders the outcome as the embedded object of the cluster
    /// completion document. The two report documents travel as
    /// *escaped JSON strings* so the coordinator recovers their exact
    /// bytes — the byte-identical oracles compare them verbatim.
    pub fn to_wire_json(&self) -> String {
        format!(
            "{{\"iterations_done\":{},\"hw_evals\":{},\"cancelled\":{},\"front_bits\":{},\"report\":{},\"deterministic_report\":{}}}",
            self.iterations_done,
            self.hw_evals,
            self.cancelled,
            render_bits(&self.front_bits),
            json::escape(&self.report_json),
            json::escape(&self.deterministic_report_json),
        )
    }

    /// Parses a [`JobOutcome::to_wire_json`] document back, byte-exactly.
    ///
    /// # Errors
    ///
    /// A message naming the missing or mistyped field.
    pub fn from_wire(v: &json::Json) -> Result<Self, String> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| format!("outcome: {name} missing"))
        };
        let mut front_bits = Vec::new();
        for row in field("front_bits")?.as_arr("front_bits")? {
            let mut bits = Vec::new();
            for cell in row.as_arr("front_bits[]")? {
                let s = cell.as_str("front_bits[][]")?;
                bits.push(
                    s.parse::<u64>()
                        .map_err(|_| format!("outcome: bad bit pattern {s:?}"))?,
                );
            }
            front_bits.push(bits);
        }
        Ok(JobOutcome {
            front_bits,
            report_json: field("report")?.as_str("report")?.to_string(),
            deterministic_report_json: field("deterministic_report")?
                .as_str("deterministic_report")?
                .to_string(),
            iterations_done: field("iterations_done")?.as_usize("iterations_done")?,
            hw_evals: field("hw_evals")?.as_usize("hw_evals")?,
            cancelled: field("cancelled")?.as_bool("cancelled")?,
        })
    }

    /// The full result document persisted as `<id>.result.json`.
    pub fn to_json(&self, id: &str) -> String {
        format!(
            "{{\"schema\":\"unico.job_result.v1\",\"id\":{},\"iterations_done\":{},\"hw_evals\":{},\"cancelled\":{},\"front_bits\":{},\"report\":{}}}",
            json::escape(id),
            self.iterations_done,
            self.hw_evals,
            self.cancelled,
            render_bits(&self.front_bits),
            self.report_json
        )
    }
}

fn render_bits(front: &[Vec<u64>]) -> String {
    let rows: Vec<String> = front
        .iter()
        .map(|row| {
            let cells: Vec<String> = row.iter().map(|b| format!("\"{b}\"")).collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    format!("[{}]", rows.join(","))
}

/// An append-only NDJSON event log with blocking tail support.
///
/// Producers push complete JSON lines; consumers wait for lines past a
/// cursor. Closing the log wakes all waiters and marks the stream
/// finished (the HTTP layer then emits the terminating `done` event's
/// chunk and ends the response).
#[derive(Debug, Default)]
pub struct EventLog {
    inner: Mutex<EventLogInner>,
    cond: Condvar,
}

#[derive(Debug, Default)]
struct EventLogInner {
    lines: Vec<String>,
    closed: bool,
}

impl EventLog {
    /// Appends one event (a complete JSON document, no newline).
    pub fn push(&self, line: String) {
        debug_assert!(json::parse(&line).is_ok(), "event must be valid JSON");
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if !inner.closed {
            inner.lines.push(line);
            self.cond.notify_all();
        }
    }

    /// Closes the log; no further events will be appended.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        self.cond.notify_all();
    }

    /// Returns events past `cursor` plus whether the log is closed,
    /// blocking up to `timeout` when nothing new is available yet.
    pub fn wait_past(&self, cursor: usize, timeout: Duration) -> (Vec<String>, bool) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.lines.len() <= cursor && !inner.closed {
            let (guard, _) = self
                .cond
                .wait_timeout(inner, timeout)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
        (
            inner.lines.get(cursor..).unwrap_or_default().to_vec(),
            inner.closed,
        )
    }

    /// All events so far (non-blocking), plus whether the log is closed.
    pub fn snapshot(&self) -> (Vec<String>, bool) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (inner.lines.clone(), inner.closed)
    }

    /// Events past `cursor` plus whether the log is closed, without
    /// ever blocking — the poller thread's tail primitive. Returns an
    /// empty vector (no allocation of line clones) when nothing new
    /// has arrived.
    pub fn read_past(&self, cursor: usize) -> (Vec<String>, bool) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.lines.len() <= cursor {
            return (Vec::new(), inner.closed);
        }
        (
            inner.lines.get(cursor..).unwrap_or_default().to_vec(),
            inner.closed,
        )
    }
}

/// One job tracked by the scheduler.
#[derive(Debug)]
pub struct Job {
    /// Stable identifier (`job-NNNNNN`), also the file-name stem.
    pub id: String,
    /// The validated submission.
    pub spec: JobSpec,
    state: Mutex<JobState>,
    /// Error message for failed jobs.
    error: Mutex<Option<String>>,
    /// Outcome for completed jobs.
    outcome: Mutex<Option<JobOutcome>>,
    /// Per-iteration NDJSON telemetry stream.
    pub events: EventLog,
    /// Cooperative cancellation flag, polled by the run observer.
    pub cancel: AtomicBool,
    /// Whether this job was recovered from a checkpoint after a
    /// daemon restart (surfaced in status responses and metrics).
    pub resumed: AtomicBool,
}

impl Job {
    /// Creates a queued job.
    pub fn new(id: String, spec: JobSpec) -> Self {
        Job {
            id,
            spec,
            state: Mutex::new(JobState::Queued),
            error: Mutex::new(None),
            outcome: Mutex::new(None),
            events: EventLog::default(),
            cancel: AtomicBool::new(false),
            resumed: AtomicBool::new(false),
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> JobState {
        *self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Moves to `next` unless already terminal; returns whether the
    /// transition happened.
    pub fn set_state(&self, next: JobState) -> bool {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.is_terminal() {
            return false;
        }
        *st = next;
        true
    }

    /// Records the failure message.
    pub fn set_error(&self, msg: String) {
        *self.error.lock().unwrap_or_else(|e| e.into_inner()) = Some(msg);
    }

    /// The failure message, if any.
    pub fn error(&self) -> Option<String> {
        self.error.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Stores the outcome of a completed run.
    pub fn set_outcome(&self, outcome: JobOutcome) {
        *self.outcome.lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
    }

    /// The outcome, if the job completed.
    pub fn outcome(&self) -> Option<JobOutcome> {
        self.outcome
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The status document served by `GET /v1/jobs/{id}`.
    pub fn status_json(&self) -> String {
        let state = self.state();
        let mut out = format!(
            "{{\"id\":{},\"state\":{},\"resumed\":{},\"spec\":{}",
            json::escape(&self.id),
            json::escape(state.name()),
            self.resumed.load(Ordering::Relaxed),
            self.spec.to_json()
        );
        if let Some(err) = self.error() {
            out.push_str(&format!(",\"error\":{}", json::escape(&err)));
        }
        if let Some(outcome) = self.outcome() {
            out.push_str(&format!(
                ",\"iterations_done\":{},\"hw_evals\":{},\"cancelled\":{},\"front_bits\":{},\"report\":{}",
                outcome.iterations_done,
                outcome.hw_evals,
                outcome.cancelled,
                render_bits(&outcome.front_bits),
                outcome.report_json
            ));
        }
        out.push('}');
        out
    }
}

/// Paths a job's files live at.
#[derive(Debug, Clone)]
pub struct JobPaths {
    /// `<id>.job.json`.
    pub manifest: PathBuf,
    /// `<id>.checkpoint`.
    pub checkpoint: PathBuf,
    /// `<id>.result.json`.
    pub result: PathBuf,
}

impl JobPaths {
    /// The canonical file layout for `id` under `state_dir`.
    pub fn new(state_dir: &Path, id: &str) -> Self {
        JobPaths {
            manifest: state_dir.join(format!("{id}.job.json")),
            checkpoint: state_dir.join(format!("{id}.checkpoint")),
            result: state_dir.join(format!("{id}.result.json")),
        }
    }
}

/// Writes `contents` to `path` atomically (tmp + rename), fsyncing the
/// data like the checkpoint writer does. The staging name embeds the
/// process id and a sequence number so concurrent writers (cluster
/// workers sharing a state dir) never collide on the tmp file.
pub fn atomic_write(path: &Path, contents: &str) -> std::io::Result<()> {
    use std::sync::atomic::AtomicU64;
    static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = WRITE_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".{}-{}.tmp", std::process::id(), seq));
    let tmp = path.with_file_name(name);
    let write = || -> std::io::Result<()> {
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(contents.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)
    };
    write().inspect_err(|_| {
        fs::remove_file(&tmp).ok();
    })
}

/// Persists the job manifest (spec + state) for crash recovery.
pub fn write_manifest(paths: &JobPaths, job: &Job) -> std::io::Result<()> {
    let state = job.state();
    let mut doc = format!(
        "{{\"schema\":\"unico.job_manifest.v1\",\"id\":{},\"state\":{},\"spec\":{}",
        json::escape(&job.id),
        json::escape(state.name()),
        job.spec.to_json()
    );
    if let Some(err) = job.error() {
        doc.push_str(&format!(",\"error\":{}", json::escape(&err)));
    }
    doc.push('}');
    atomic_write(&paths.manifest, &doc)
}

/// A manifest read back during crash recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Job identifier.
    pub id: String,
    /// State at the last persisted transition.
    pub state: JobState,
    /// The original submission.
    pub spec: JobSpec,
}

/// Parses a manifest document.
///
/// # Errors
///
/// A message describing the syntax or schema violation.
pub fn parse_manifest(text: &str) -> Result<Manifest, String> {
    let v = json::parse(text)?;
    let schema = v
        .get("schema")
        .ok_or("manifest: schema field missing")?
        .as_str("schema")?;
    if schema != "unico.job_manifest.v1" {
        return Err(format!("manifest: unsupported schema {schema:?}"));
    }
    Ok(Manifest {
        id: v
            .get("id")
            .ok_or("manifest: id field missing")?
            .as_str("id")?
            .to_string(),
        state: JobState::from_name(
            v.get("state")
                .ok_or("manifest: state field missing")?
                .as_str("state")?,
        )?,
        spec: JobSpec::from_json(v.get("spec").ok_or("manifest: spec field missing")?)?,
    })
}

/// Scans `state_dir` for job manifests, sorted by id for deterministic
/// recovery order. Unreadable manifests are reported, not dropped.
pub fn scan_manifests(
    state_dir: &Path,
) -> std::io::Result<(Vec<Manifest>, BTreeMap<PathBuf, String>)> {
    let mut manifests = Vec::new();
    let mut corrupt = BTreeMap::new();
    let mut entries: Vec<PathBuf> = fs::read_dir(state_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".job.json"))
        })
        .collect();
    entries.sort();
    for path in entries {
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            // A concurrent writer's rename can make a listed file
            // vanish between readdir and open; that is churn from a
            // shared state dir, not corruption.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => {
                corrupt.insert(path, e.to_string());
                continue;
            }
        };
        match parse_manifest(&text) {
            Ok(m) => manifests.push(m),
            Err(e) => {
                corrupt.insert(path, e);
            }
        }
    }
    Ok((manifests, corrupt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::spec::parse_submission;

    fn spec() -> JobSpec {
        parse_submission(br#"{"platform": "spatial-edge", "workloads": ["mobilenet"], "seed": 7}"#)
            .expect("valid spec")
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("unico-serve-job-tests")
            .join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn state_machine_respects_terminal_states() {
        let job = Job::new("job-000001".into(), spec());
        assert_eq!(job.state(), JobState::Queued);
        assert!(job.set_state(JobState::Running));
        assert!(job.set_state(JobState::Completed));
        assert!(!job.set_state(JobState::Cancelled), "terminal is sticky");
        assert_eq!(job.state(), JobState::Completed);
    }

    #[test]
    fn manifest_round_trips_and_recovery_scan_sorts() {
        let dir = scratch("manifests");
        for id in ["job-000002", "job-000001"] {
            let job = Job::new(id.into(), spec());
            job.set_state(JobState::Running);
            write_manifest(&JobPaths::new(&dir, id), &job).expect("write");
        }
        std::fs::write(dir.join("job-000003.job.json"), "{broken").expect("corrupt file");
        std::fs::write(dir.join("README.txt"), "ignored").expect("other file");

        let (manifests, corrupt) = scan_manifests(&dir).expect("scan");
        let ids: Vec<&str> = manifests.iter().map(|m| m.id.as_str()).collect();
        assert_eq!(ids, ["job-000001", "job-000002"]);
        assert!(manifests.iter().all(|m| m.state == JobState::Running));
        assert_eq!(manifests[0].spec, spec());
        assert_eq!(corrupt.len(), 1);
    }

    #[test]
    fn event_log_tail_wakes_on_push_and_close() {
        let log = std::sync::Arc::new(EventLog::default());
        log.push("{\"event\":\"iteration\",\"iteration\":1}".into());
        let (lines, closed) = log.wait_past(0, Duration::from_millis(10));
        assert_eq!(lines.len(), 1);
        assert!(!closed);

        let tail = {
            let log = std::sync::Arc::clone(&log);
            std::thread::spawn(move || log.wait_past(1, Duration::from_secs(5)))
        };
        log.push("{\"event\":\"iteration\",\"iteration\":2}".into());
        log.close();
        let (lines, closed) = tail.join().expect("tail thread");
        assert!(!lines.is_empty());
        assert!(closed || lines.len() == 1);

        // Closed log drops further pushes.
        log.push("{\"event\":\"late\"}".into());
        let (all, closed) = log.snapshot();
        assert_eq!(all.len(), 2);
        assert!(closed);
    }

    #[test]
    fn manifest_scan_tolerates_concurrent_writers() {
        let dir = scratch("concurrent-manifests");
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let started = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let writers: Vec<_> = (0..3)
            .map(|w| {
                let dir = dir.clone();
                let stop = std::sync::Arc::clone(&stop);
                let started = std::sync::Arc::clone(&started);
                std::thread::spawn(move || {
                    let id = format!("job-{:06}", w + 1);
                    let job = Job::new(id.clone(), spec());
                    job.set_state(JobState::Running);
                    let paths = JobPaths::new(&dir, &id);
                    // First write before the started handshake, so every
                    // writer has a manifest on disk no matter how quickly
                    // the scanning side stores `stop`.
                    write_manifest(&paths, &job).expect("write");
                    started.fetch_add(1, Ordering::SeqCst);
                    while !stop.load(Ordering::Relaxed) {
                        write_manifest(&paths, &job).expect("write");
                    }
                })
            })
            .collect();
        // Scan only once all writers are live: the interesting scans are
        // the ones racing in-flight rewrites.
        while started.load(Ordering::SeqCst) < 3 {
            std::thread::yield_now();
        }
        for _ in 0..50 {
            let (_, corrupt) = scan_manifests(&dir).expect("scan");
            assert!(
                corrupt.is_empty(),
                "a scan observed torn state: {corrupt:?}"
            );
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().expect("writer");
        }
        let (manifests, corrupt) = scan_manifests(&dir).expect("final scan");
        assert_eq!(manifests.len(), 3);
        assert!(corrupt.is_empty());
        let litter: Vec<_> = fs::read_dir(&dir)
            .expect("readdir")
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(litter.is_empty(), "tmp litter left behind: {litter:?}");
    }

    #[test]
    fn outcome_wire_round_trips_byte_exactly() {
        let outcome = JobOutcome {
            front_bits: vec![vec![u64::MAX, 1], vec![4607182418800017408]],
            report_json: "{\"v\":3,\"phases_s\":{\"fit\":0.25}}".into(),
            deterministic_report_json: "{\"v\":3,\"note\":\"quoted \\\"x\\\"\"}".into(),
            iterations_done: 3,
            hw_evals: 18,
            cancelled: true,
        };
        let wire = outcome.to_wire_json();
        let v = json::parse(&wire).expect("wire doc parses");
        let back = JobOutcome::from_wire(&v).expect("wire doc round-trips");
        assert_eq!(back, outcome);
        assert_eq!(back.to_wire_json(), wire);
    }

    #[test]
    fn outcome_json_quotes_bit_patterns() {
        let outcome = JobOutcome {
            front_bits: vec![vec![u64::MAX, 1], vec![4607182418800017408]],
            report_json: "{\"v\":3}".into(),
            deterministic_report_json: "{\"v\":3}".into(),
            iterations_done: 3,
            hw_evals: 18,
            cancelled: false,
        };
        let doc = outcome.to_json("job-000009");
        let v = json::parse(&doc).expect("result parses as JSON");
        let rows = v.get("front_bits").unwrap().as_arr("front_bits").unwrap();
        assert_eq!(
            rows[0].as_arr("row").unwrap()[0],
            Json::Str(u64::MAX.to_string()),
            "bits beyond 2^53 must be strings"
        );
        assert!(outcome.deterministic_json().contains("\"front_bits\""));
    }
}
