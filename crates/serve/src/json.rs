//! Minimal general-purpose JSON reader/writer for the job API.
//!
//! The checkpoint module in `unico-core` deliberately parses only the
//! bit-pattern dialect it writes; the HTTP API instead accepts JSON
//! authored by humans and generic clients (`curl -d '{...}'`), so this
//! parser covers the full grammar: objects, arrays, strings with
//! escapes, `true`/`false`/`null`, and signed decimal numbers with
//! fractions and exponents (held as `f64`, with an exactness check for
//! integer extraction). No external dependencies, consistent with the
//! air-gapped build.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (held as a double, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value's JSON type name (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Looks up a field of an object; `None` for absent fields **and**
    /// explicit `null`s (the API treats them identically).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .filter(|v| **v != Json::Null),
            _ => None,
        }
    }

    /// The object's fields, or an error naming `what`.
    pub fn as_obj(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(fields) => Ok(fields),
            v => Err(format!("{what}: expected object, found {}", v.type_name())),
        }
    }

    /// The array's items, or an error naming `what`.
    pub fn as_arr(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            v => Err(format!("{what}: expected array, found {}", v.type_name())),
        }
    }

    /// The string's contents, or an error naming `what`.
    pub fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            v => Err(format!("{what}: expected string, found {}", v.type_name())),
        }
    }

    /// The boolean, or an error naming `what`.
    pub fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            v => Err(format!("{what}: expected bool, found {}", v.type_name())),
        }
    }

    /// The number as a double, or an error naming `what`.
    pub fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            v => Err(format!("{what}: expected number, found {}", v.type_name())),
        }
    }

    /// The number as an exact unsigned integer; fractions, negatives
    /// and doubles beyond 2^53 are rejected (they would silently lose
    /// precision).
    pub fn as_u64(&self, what: &str) -> Result<u64, String> {
        let n = self.as_f64(what)?;
        if n < 0.0 || n.fract() != 0.0 || n > 9_007_199_254_740_992.0 {
            return Err(format!("{what}: expected a non-negative integer, got {n}"));
        }
        Ok(n as u64)
    }

    /// [`Json::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self, what: &str) -> Result<usize, String> {
        usize::try_from(self.as_u64(what)?).map_err(|_| format!("{what}: overflows usize"))
    }
}

impl fmt::Display for Json {
    /// Renders the value back to compact JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) if n.is_finite() => write!(f, "{n}"),
            Json::Num(_) => write!(f, "null"),
            Json::Str(s) => write!(f, "{}", escape(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Renders a string as a JSON string literal with escaping.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// A message with the byte offset of the first syntax error; trailing
/// non-whitespace after the document is rejected.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// Nesting depth bound: a parser recursing on attacker-supplied bodies
/// must not be stack-overflowable.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) if self.eat_literal("null") => Ok(Json::Null),
            Some(_) if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(_) if self.eat_literal("false") => Ok(Json::Bool(false)),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        s.parse::<f64>()
            .ok()
            .filter(|v| v.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogates are replaced rather than paired;
                            // the job API never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control character at byte {}", self.pos))
                }
                Some(_) => {
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let v = parse(
            r#"{"a": [1, -2.5, 1e3, true, false, null], "s": "x\n\"y\"", "o": {"k": 0.125}}"#,
        )
        .expect("parses");
        assert_eq!(v.get("a").unwrap().as_arr("a").unwrap().len(), 6);
        assert_eq!(v.get("a").unwrap().as_arr("a").unwrap()[2], Json::Num(1e3));
        assert_eq!(v.get("s").unwrap().as_str("s").unwrap(), "x\n\"y\"");
        assert_eq!(
            v.get("o").unwrap().get("k").unwrap().as_f64("k").unwrap(),
            0.125
        );
        // Explicit null reads as absent.
        assert!(v.get("missing").is_none());
        let n = parse(r#"{"x": null}"#).unwrap();
        assert!(n.get("x").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":1} x",
            "\"unterminated",
            "01e",
            "nul",
            "{\"a\":1e999}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must fail");
        }
        // Nesting bomb is rejected, not a stack overflow.
        let bomb = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&bomb).unwrap_err().contains("nesting"));
    }

    #[test]
    fn integer_extraction_is_exact() {
        assert_eq!(parse("42").unwrap().as_u64("n"), Ok(42));
        assert!(parse("-1").unwrap().as_u64("n").is_err());
        assert!(parse("2.5").unwrap().as_u64("n").is_err());
        assert!(parse("1e300").unwrap().as_u64("n").is_err());
        assert_eq!(parse("123456").unwrap().as_usize("n"), Ok(123456));
    }

    #[test]
    fn display_round_trips() {
        let src = r#"{"a":[1,-2.5,true,null],"s":"x\ny \u0001","n":1000}"#;
        let v = parse(src).expect("parses");
        let rendered = v.to_string();
        let back = parse(&rendered).expect("re-parses");
        assert_eq!(back, v);
    }

    #[test]
    fn type_errors_name_the_field() {
        let v = parse(r#"{"a": "text"}"#).unwrap();
        let err = v.get("a").unwrap().as_u64("field a").unwrap_err();
        assert!(err.contains("field a") && err.contains("string"), "{err}");
    }
}
