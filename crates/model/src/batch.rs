//! Structure-of-arrays candidate batches for the PPA engines.
//!
//! The mapping searchers assess candidates in phases (a random chunk, a
//! genetic generation, an SH round), and every per-candidate evaluation
//! re-derives the same handful of quantities from the pointer-heavy
//! [`Mapping`] struct: tile extents, trip counts, footprints, tile
//! counts, the temporal order and its canonical form. [`MappingBatch`]
//! derives all of them **once per candidate** into flat, contiguous
//! arrays; both spatial engines then evaluate rows straight out of the
//! batch, and the cache-key builder hashes rows without materializing a
//! [`CanonicalMapping`](unico_mapping::CanonicalMapping) on the heap.
//!
//! Scalar evaluation reuses the exact same row path (a batch of one), so
//! batched and scalar results are bitwise identical by construction —
//! the differential test layer in `tests/batch_differential.rs` pins
//! this.

use unico_mapping::{CanonicalMapping, Footprint, Mapping, StableHasher};
use unico_workloads::{Dim, LoopNest, DIM_COUNT};

/// A batch of mapping candidates for one `(nest, technology)` pair,
/// flattened into per-field arrays indexed by candidate row.
#[derive(Debug, Clone)]
pub struct MappingBatch {
    nest: LoopNest,
    bytes_per_elem: u64,
    spatial: Vec<(Dim, Dim)>,
    l2_tile: Vec<[u64; DIM_COUNT]>,
    l1_tile: Vec<[u64; DIM_COUNT]>,
    order: Vec<[Dim; DIM_COUNT]>,
    l1_trips: Vec<[u64; DIM_COUNT]>,
    l2_trips: Vec<[u64; DIM_COUNT]>,
    num_l2_tiles: Vec<u64>,
    num_l1_tiles_per_l2: Vec<u64>,
    fp1: Vec<Footprint>,
    fp2: Vec<Footprint>,
    canon_order: Vec<[Dim; DIM_COUNT]>,
    canon_len: Vec<u8>,
}

impl MappingBatch {
    /// Derives the batch arrays from `mappings` against `nest`, with
    /// footprints in bytes at `bytes_per_elem` per tensor element.
    pub fn build<'m>(
        mappings: impl IntoIterator<Item = &'m Mapping>,
        nest: &LoopNest,
        bytes_per_elem: u64,
    ) -> Self {
        let mut b = MappingBatch {
            nest: *nest,
            bytes_per_elem,
            spatial: Vec::new(),
            l2_tile: Vec::new(),
            l1_tile: Vec::new(),
            order: Vec::new(),
            l1_trips: Vec::new(),
            l2_trips: Vec::new(),
            num_l2_tiles: Vec::new(),
            num_l1_tiles_per_l2: Vec::new(),
            fp1: Vec::new(),
            fp2: Vec::new(),
            canon_order: Vec::new(),
            canon_len: Vec::new(),
        };
        for m in mappings {
            let order = m.order();
            let l1_trips = m.l1_trip_counts();
            let l2_trips = m.l2_trip_counts(nest);
            let mut canon = [Dim::N; DIM_COUNT];
            let canon_len = CanonicalMapping::order_into(
                &order,
                &l1_trips,
                &l2_trips,
                nest.is_depthwise(),
                &mut canon,
            );
            b.spatial.push(m.spatial());
            b.l2_tile.push(m.l2_tile());
            b.l1_tile.push(m.l1_tile());
            b.order.push(order);
            b.l1_trips.push(l1_trips);
            b.l2_trips.push(l2_trips);
            b.num_l2_tiles.push(m.num_l2_tiles(nest));
            b.num_l1_tiles_per_l2.push(m.num_l1_tiles_per_l2());
            b.fp1.push(m.l1_footprint(nest, bytes_per_elem));
            b.fp2.push(m.l2_footprint(nest, bytes_per_elem));
            b.canon_order.push(canon);
            b.canon_len.push(canon_len as u8);
        }
        b
    }

    /// Number of candidate rows.
    pub fn len(&self) -> usize {
        self.spatial.len()
    }

    /// `true` when the batch holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.spatial.is_empty()
    }

    /// The loop nest the batch was derived against.
    pub fn nest(&self) -> &LoopNest {
        &self.nest
    }

    /// Bytes per tensor element the footprints were derived with.
    pub fn bytes_per_elem(&self) -> u64 {
        self.bytes_per_elem
    }

    /// Spatially unrolled dims of row `i`.
    pub fn spatial(&self, i: usize) -> (Dim, Dim) {
        self.spatial[i]
    }

    /// L1 tile extents of row `i`.
    pub fn l1_tile(&self, i: usize) -> &[u64; DIM_COUNT] {
        &self.l1_tile[i]
    }

    /// Temporal loop order of row `i` (verbatim, not canonicalized).
    pub fn order(&self, i: usize) -> &[Dim; DIM_COUNT] {
        &self.order[i]
    }

    /// L1-level trip counts of row `i`.
    pub fn l1_trips(&self, i: usize) -> &[u64; DIM_COUNT] {
        &self.l1_trips[i]
    }

    /// L2-level trip counts of row `i`.
    pub fn l2_trips(&self, i: usize) -> &[u64; DIM_COUNT] {
        &self.l2_trips[i]
    }

    /// Number of L2 tiles of row `i`.
    pub fn num_l2_tiles(&self, i: usize) -> u64 {
        self.num_l2_tiles[i]
    }

    /// Number of L1 tiles per L2 tile of row `i`.
    pub fn num_l1_tiles_per_l2(&self, i: usize) -> u64 {
        self.num_l1_tiles_per_l2[i]
    }

    /// L1 working-set footprint of row `i`, in bytes.
    pub fn l1_footprint(&self, i: usize) -> Footprint {
        self.fp1[i]
    }

    /// L2 working-set footprint of row `i`, in bytes.
    pub fn l2_footprint(&self, i: usize) -> Footprint {
        self.fp2[i]
    }

    /// Feeds row `i`'s full canonical mapping (tiles, canonical order,
    /// spatial dims) into a [`StableHasher`] — byte-identical to
    /// [`CanonicalMapping::hash_into`](unico_mapping::CanonicalMapping::hash_into)
    /// on the same mapping, without materializing the canonical form.
    pub fn hash_full_into(&self, i: usize, h: &mut StableHasher) {
        self.hash_tiles_into(i, h);
        let len = usize::from(self.canon_len[i]);
        h.write_u64(len as u64);
        for d in &self.canon_order[i][..len] {
            h.write_u8(d.index() as u8);
        }
        h.write_u8(self.spatial[i].0.index() as u8);
        h.write_u8(self.spatial[i].1.index() as u8);
    }

    /// Feeds only row `i`'s tile extents into a [`StableHasher`] —
    /// byte-identical to
    /// [`CanonicalMapping::hash_tiles_into`](unico_mapping::CanonicalMapping::hash_tiles_into).
    pub fn hash_tiles_into(&self, i: usize, h: &mut StableHasher) {
        for t in self.l2_tile[i] {
            h.write_u64(t);
        }
        for t in self.l1_tile[i] {
            h.write_u64(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unico_workloads::TensorOp;

    fn nest() -> LoopNest {
        TensorOp::Conv2d {
            n: 1,
            k: 16,
            c: 8,
            y: 8,
            x: 8,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest()
    }

    fn mappings(n: &LoopNest) -> Vec<Mapping> {
        let mut l1 = [1u64; DIM_COUNT];
        l1[Dim::K.index()] = 4;
        l1[Dim::Y.index()] = 2;
        let m1 = Mapping::new(n, n.extents(), l1, Dim::ALL, (Dim::K, Dim::Y));
        // A second candidate with a scrambled order exercising run
        // sorting in the canonical hash.
        let order = [Dim::K, Dim::S, Dim::R, Dim::Y, Dim::C, Dim::X, Dim::N];
        let m2 = Mapping::new(n, n.extents(), l1, order, (Dim::K, Dim::Y));
        vec![m1, m2, Mapping::identity(n)]
    }

    #[test]
    fn rows_mirror_per_mapping_derivations() {
        let n = nest();
        let ms = mappings(&n);
        let b = MappingBatch::build(&ms, &n, 2);
        assert_eq!(b.len(), ms.len());
        for (i, m) in ms.iter().enumerate() {
            assert_eq!(b.spatial(i), m.spatial());
            assert_eq!(b.l1_tile(i), &m.l1_tile());
            assert_eq!(b.order(i), &m.order());
            assert_eq!(b.l1_trips(i), &m.l1_trip_counts());
            assert_eq!(b.l2_trips(i), &m.l2_trip_counts(&n));
            assert_eq!(b.num_l2_tiles(i), m.num_l2_tiles(&n));
            assert_eq!(b.num_l1_tiles_per_l2(i), m.num_l1_tiles_per_l2());
            assert_eq!(b.l1_footprint(i), m.l1_footprint(&n, 2));
            assert_eq!(b.l2_footprint(i), m.l2_footprint(&n, 2));
        }
    }

    #[test]
    fn row_hash_matches_canonical_mapping_hash() {
        let n = nest();
        let ms = mappings(&n);
        let b = MappingBatch::build(&ms, &n, 2);
        for (i, m) in ms.iter().enumerate() {
            let canon = CanonicalMapping::of(m, &n);
            let mut expect = StableHasher::new();
            canon.hash_into(&mut expect);
            let mut got = StableHasher::new();
            b.hash_full_into(i, &mut got);
            assert_eq!(got.finish128(), expect.finish128(), "row {i} full hash");
            let mut expect = StableHasher::new();
            canon.hash_tiles_into(&mut expect);
            let mut got = StableHasher::new();
            b.hash_tiles_into(i, &mut got);
            assert_eq!(got.finish128(), expect.finish128(), "row {i} tiles hash");
        }
    }
}
