//! Differentiable relaxation of the analytical model.
//!
//! [`relaxed_eval`] evaluates a **smooth surrogate** of the analytical
//! cost at a continuous tiling point and returns its value plus exact
//! reverse-mode gradients with respect to every L2/L1 tile size. The
//! surrogate reuses the *identical* continuous arithmetic as the exact
//! engine — [`cost_core`](crate::analytical) instantiated at
//! [`Var`] instead of `f64` — and replaces only the discrete halves:
//!
//! * trip counts use smooth division (`l2/l1`, `extent/l2`) instead of
//!   `div_ceil`;
//! * per-PE work uses `(e/pe).max(1)` instead of `div_ceil`, and active
//!   PEs use `min(e, pe)` instead of integer `min`;
//! * buffer feasibility becomes a multiplicative soft penalty
//!   `objective · (1 + 32·(relu(l1_usage − 1) + relu(l2_usage − 1)))`
//!   instead of a hard error, so infeasible space is traversable but
//!   steeply uphill (the slope must dominate the base-cost gain of
//!   oversized tiles, or descent converges past the capacity wall);
//! * the reuse structure (which loops re-fetch which tensor) is
//!   **frozen** from the forward trip values per evaluation: the
//!   `trip > 1` predicates and the innermost-dependent-loop position
//!   are computed once from values and then the selected trips are
//!   multiplied as differentiable terms.
//!
//! The frozen predicates, `min`/`max` selections and the penalty hinge
//! make the surrogate piecewise smooth. [`RelaxedDiag::kink_margin`]
//! reports the smallest relative distance from the evaluation point to
//! any such switching surface; the finite-difference gradient-check
//! tests exclude points whose margin is below the FD step (the
//! documented non-smooth-point exclusion rule). Trip counts *exactly*
//! 1.0 (dimensions pinned at their extent) are ignored by the margin:
//! the associated loops contribute no factor on either side of the
//! surface, so the surrogate is locally constant in them.

use unico_autodiff::{Tape, Var};
use unico_mapping::{Mapping, RelaxedGrad, RelaxedPoint};
use unico_workloads::{Dim, LoopNest, DIM_COUNT};

use crate::analytical::cost_core;
use crate::analytical::{AnalyticalModel, CoreInputs, MappingObjective, TensorTraffic};
use crate::hw::{Dataflow, HwConfig};
use crate::traffic::TensorKind;

/// Rounding mode for the relaxation's discrete quantities (trip counts
/// and per-PE folding).
///
/// `Smooth` replaces every `div_ceil` with plain division — the surface
/// is piecewise smooth and finite-difference checkable, but its value
/// systematically underestimates quantized costs: on a 12-wide PE array
/// a spatial tile of 37 folds to `ceil(37/12) = 4` passes in the exact
/// model while the smooth surrogate charges `3.08`, so descent cannot
/// see the cliffs that make PE-multiple tiles win. `Ste` rounds those
/// quantities with a straight-through estimator
/// ([`Var::ceil_ste`]: forward true `ceil`, backward identity) — the
/// surrogate *value* reproduces the exact model's staircase while
/// gradients still flow through the smooth quotient underneath. Search
/// descends `Ste`; the finite-difference gradient checks pin `Smooth`
/// (an STE forward map is piecewise constant, so FD would measure the
/// staircase and never match the pass-through gradient).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rounding {
    /// Plain division everywhere; fully FD-checkable.
    Smooth,
    /// Straight-through `ceil` on trip counts and PE folding.
    Ste,
}

/// Smoothness diagnostics of one relaxed evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelaxedDiag {
    /// Smallest relative distance from the evaluation point to a
    /// non-smooth switching surface of the surrogate (a `trip > 1`
    /// predicate, a `min`/`max` selection, the `max` over latency
    /// bottlenecks, or a feasibility hinge). `INFINITY` when no switch
    /// is nearby. Gradient-check tests skip points with a margin below
    /// the finite-difference step.
    pub kink_margin: f64,
}

/// Per-tensor relaxed footprints in [`TensorKind::ALL`] order.
fn footprints<'t>(nest: &LoopNest, tile: &[Var<'t>; DIM_COUNT], bpe: Var<'t>) -> [Var<'t>; 3] {
    let d = |dim: Dim| tile[dim.index()];
    let (n, k, c) = (d(Dim::N), d(Dim::K), d(Dim::C));
    let (y, x, r, s) = (d(Dim::Y), d(Dim::X), d(Dim::R), d(Dim::S));
    let tape = n.tape();
    let sy = tape.var(nest.stride_y() as f64);
    let sx = tape.var(nest.stride_x() as f64);
    let one = tape.var(1.0);
    let in_rows = (y - one) * sy + r;
    let in_cols = (x - one) * sx + s;
    let in_ch = if nest.is_depthwise() { k } else { c };
    [
        n * in_ch * in_rows * in_cols * bpe,
        k * c * r * s * bpe,
        n * k * y * x * bpe,
    ]
}

/// Relaxed [`crate::traffic::tensor_loads`]: same loop-order reuse rule,
/// with the `trip > 1` predicate and the innermost dependent position
/// frozen from forward values.
fn loads<'t>(
    tensor: TensorKind,
    nest: &LoopNest,
    trips: &[Var<'t>; DIM_COUNT],
    order: &[Dim; DIM_COUNT],
    one: Var<'t>,
) -> Var<'t> {
    let mask = tensor.dependent_mask(nest);
    let is_dep = |d: Dim| mask & (1 << d.index()) != 0;
    let innermost_dep = order
        .iter()
        .enumerate()
        .filter(|(_, d)| is_dep(**d) && trips[d.index()].value() > 1.0)
        .map(|(pos, _)| pos)
        .max();
    let mut acc = one;
    for (pos, d) in order.iter().enumerate() {
        let t = trips[d.index()];
        if t.value() <= 1.0 {
            continue;
        }
        if is_dep(*d) {
            acc = acc * t;
        } else if let Some(inner) = innermost_dep {
            if pos < inner {
                acc = acc * t;
            }
        }
    }
    acc
}

/// Relaxed [`crate::traffic::tensor_min_loads`]: product of dependent
/// trips, with the implicit `.max(1)` frozen from forward values.
fn min_loads<'t>(
    tensor: TensorKind,
    nest: &LoopNest,
    trips: &[Var<'t>; DIM_COUNT],
    one: Var<'t>,
) -> Var<'t> {
    let mut acc = one;
    for d in tensor.dependent_dims(nest) {
        let t = trips[d.index()];
        if t.value() > 1.0 {
            acc = acc * t;
        }
    }
    acc
}

/// Evaluates the smooth surrogate of the analytical cost at `point`
/// (loop order and spatial dims frozen to `template`'s) and returns its
/// value, its gradient in linear tile space, and smoothness diagnostics.
///
/// Returns `None` only for malformed points (non-finite or sub-unit
/// tiles); every well-formed point has a surrogate value, including
/// buffer-infeasible ones (which are penalized, not rejected, so the
/// descent can escape them).
pub fn relaxed_eval(
    model: &AnalyticalModel,
    hw: &HwConfig,
    nest: &LoopNest,
    template: &Mapping,
    point: &RelaxedPoint,
    objective: MappingObjective,
) -> Option<(RelaxedGrad, RelaxedDiag)> {
    relaxed_eval_with(
        model,
        hw,
        nest,
        template,
        point,
        objective,
        Rounding::Smooth,
    )
}

/// [`relaxed_eval`] with an explicit [`Rounding`] mode. Search uses
/// [`Rounding::Ste`] so the descent's surrogate values reproduce the
/// exact model's quantization cliffs; the gradient-check tests pin
/// [`Rounding::Smooth`].
#[allow(clippy::too_many_arguments)]
pub fn relaxed_eval_with(
    model: &AnalyticalModel,
    hw: &HwConfig,
    nest: &LoopNest,
    template: &Mapping,
    point: &RelaxedPoint,
    objective: MappingObjective,
    rounding: Rounding,
) -> Option<(RelaxedGrad, RelaxedDiag)> {
    for i in 0..DIM_COUNT {
        let (a, b) = (point.l2[i], point.l1[i]);
        if !a.is_finite() || !b.is_finite() || a < 1.0 - 1e-9 || b < 1.0 - 1e-9 {
            return None;
        }
    }
    let t = model.tech();
    let ext = nest.extents();
    let order = template.order();
    let (sd1, sd2) = template.spatial();

    let mut margin = f64::INFINITY;

    let tape = Tape::new();
    let l2v: [Var; DIM_COUNT] = std::array::from_fn(|i| tape.var(point.l2[i].max(1.0)));
    let l1v: [Var; DIM_COUNT] = std::array::from_fn(|i| tape.var(point.l1[i].max(1.0)));
    let one = tape.var(1.0);

    // Trip counts and their predicate margins; trips exactly 1.0 sit on
    // a surface the surrogate never crosses for pinned dims, so they
    // don't shrink the margin. STE mode rounds the quotient up like the
    // exact model's `div_ceil` (gradient passes through).
    fn round<'t>(v: Var<'t>, rounding: Rounding) -> Var<'t> {
        match rounding {
            Rounding::Smooth => v,
            Rounding::Ste => v.ceil_ste(),
        }
    }
    let round = |v| round(v, rounding);
    let l1_trips: [Var; DIM_COUNT] = std::array::from_fn(|i| round(l2v[i] / l1v[i]));
    let l2_trips: [Var; DIM_COUNT] =
        std::array::from_fn(|i| round(tape.var(ext[i] as f64) / l2v[i]));
    for trip in l1_trips.iter().chain(l2_trips.iter()) {
        let v = trip.value();
        if v != 1.0 {
            margin = margin.min((v - 1.0).abs());
        }
    }

    let mut t1 = one;
    let mut t2 = one;
    for i in 0..DIM_COUNT {
        t1 = t1 * l1_trips[i];
        t2 = t2 * l2_trips[i];
    }

    // Compute time: smooth per-PE folding and serial work.
    let e1 = l1v[sd1.index()];
    let e2 = l1v[sd2.index()];
    let px = f64::from(hw.pe_x());
    let py = f64::from(hw.pe_y());
    margin = margin.min((e1.value() / px - 1.0).abs());
    margin = margin.min((e2.value() / py - 1.0).abs());
    let mut serial = one;
    for d in Dim::ALL {
        if d != sd1 && d != sd2 {
            serial = serial * l1v[d.index()];
        }
    }
    let rows = round(e1 / tape.var(px)).vmax(one);
    let cols = round(e2 / tape.var(py)).vmax(one);
    let cycles_per_l1_tile = rows * cols * serial;
    let active_pes = e1.vmin(tape.var(px)) * e2.vmin(tape.var(py));

    // Footprints and traffic.
    let bpe = tape.var(t.bytes_per_elem as f64);
    let fp1 = footprints(nest, &l1v, bpe);
    let fp2 = footprints(nest, &l2v, bpe);
    let stationary = match hw.dataflow() {
        Dataflow::WeightStationary => TensorKind::Weight,
        Dataflow::OutputStationary => TensorKind::Output,
    };
    let noc: [TensorTraffic<Var>; 3] = std::array::from_fn(|j| {
        let tensor = TensorKind::ALL[j];
        let min = min_loads(tensor, nest, &l1_trips, one);
        let ld = if tensor == stationary {
            min
        } else {
            loads(tensor, nest, &l1_trips, &order, one)
        };
        TensorTraffic {
            fp: fp1[j],
            loads: ld,
            min_loads: min,
        }
    });
    let dram: [TensorTraffic<Var>; 3] = std::array::from_fn(|j| {
        let tensor = TensorKind::ALL[j];
        TensorTraffic {
            fp: fp2[j],
            loads: loads(tensor, nest, &l2_trips, &order, one),
            min_loads: min_loads(tensor, nest, &l2_trips, one),
        }
    });

    let core = cost_core(
        t,
        &CoreInputs {
            t2,
            t1,
            cycles_per_l1_tile,
            noc,
            dram,
            stationary,
            macs: tape.var(nest.macs() as f64),
            area_mm2: tape.var(model.area_mm2(hw)),
            num_pes: hw.num_pes() as f64,
            noc_bytes_per_cycle: f64::from(hw.noc_bytes_per_cycle()),
        },
    );

    // The latency max over {compute, noc, dram} switches where the top
    // two bottlenecks cross.
    let mut cyc = [
        core.compute_cycles.value(),
        core.noc_cycles.value(),
        core.dram_cycles.value(),
    ];
    cyc.sort_by(|a, b| b.partial_cmp(a).expect("finite cycles"));
    if cyc[0] > 0.0 {
        margin = margin.min((cyc[0] - cyc[1]) / cyc[0]);
    }

    // Soft buffer feasibility (double buffered, as the exact model).
    let fp1_total = fp1[0] + fp1[1] + fp1[2];
    let fp2_total = fp2[0] + fp2[1] + fp2[2];
    let two = tape.var(2.0);
    let l1_usage = fp1_total / active_pes * two / tape.var(hw.l1_bytes() as f64);
    let l2_usage = fp2_total * two / tape.var(hw.l2_bytes() as f64);
    margin = margin.min((l1_usage.value() - 1.0).abs());
    margin = margin.min((l2_usage.value() - 1.0).abs());
    // The hinge slope must dominate the base-cost gain of oversized
    // tiles: with a shallow penalty the surrogate's minimum sits past
    // the capacity wall (bigger tiles keep cutting traffic faster than
    // the hinge adds), and every legalized descent point lands on the
    // exact model's hard infeasibility. A steep wall keeps descent
    // inside the region the exact model will accept.
    let zero = tape.var(0.0);
    let wall = tape.var(32.0);
    let overflow = (l1_usage - one).vmax(zero) + (l2_usage - one).vmax(zero);
    let penalty = one + wall * overflow;

    let obj = match objective {
        MappingObjective::Latency => core.latency_s,
        MappingObjective::Edp => core.energy_pj * core.latency_s,
    };
    let value = obj * penalty;
    if !value.value().is_finite() {
        return None;
    }

    let grads = value.backward();
    Some((
        RelaxedGrad {
            value: value.value(),
            d_l2: std::array::from_fn(|i| grads.wrt(l2v[i])),
            d_l1: std::array::from_fn(|i| grads.wrt(l1v[i])),
        },
        RelaxedDiag {
            kink_margin: margin,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::TechParams;
    use unico_workloads::TensorOp;

    fn setup() -> (AnalyticalModel, HwConfig, LoopNest) {
        let model = AnalyticalModel::new(TechParams::default());
        let hw = HwConfig::new(8, 8, 4096, 512 * 1024, 128, Dataflow::WeightStationary);
        let nest = TensorOp::Conv2d {
            n: 1,
            k: 64,
            c: 64,
            y: 28,
            x: 28,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest();
        (model, hw, nest)
    }

    fn midpoint(nest: &LoopNest) -> (Mapping, RelaxedPoint) {
        let ext = nest.extents();
        let l2 = std::array::from_fn(|i| {
            if ext[i] >= 8 {
                ext[i] as f64 * 0.5
            } else {
                ext[i] as f64
            }
        });
        let l1 = std::array::from_fn(|i: usize| 1.0 + 0.4 * (l2[i] - 1.0));
        let m = Mapping::new(
            nest,
            ext,
            std::array::from_fn(|i| (ext[i] / 2).max(1)),
            Dim::ALL,
            (Dim::K, Dim::Y),
        );
        (m, RelaxedPoint { l2, l1 })
    }

    #[test]
    fn surrogate_value_positive_and_gradients_finite() {
        let (model, hw, nest) = setup();
        let (m, p) = midpoint(&nest);
        let (g, diag) = relaxed_eval(&model, &hw, &nest, &m, &p, MappingObjective::Latency)
            .expect("well-formed point");
        assert!(g.value > 0.0);
        assert!(diag.kink_margin > 0.0);
        for i in 0..DIM_COUNT {
            assert!(g.d_l2[i].is_finite(), "d_l2[{i}]");
            assert!(g.d_l1[i].is_finite(), "d_l1[{i}]");
        }
    }

    #[test]
    fn malformed_points_rejected() {
        let (model, hw, nest) = setup();
        let (m, mut p) = midpoint(&nest);
        p.l1[0] = f64::NAN;
        assert!(relaxed_eval(&model, &hw, &nest, &m, &p, MappingObjective::Latency).is_none());
        let (_, mut p) = midpoint(&nest);
        p.l2[2] = 0.0;
        assert!(relaxed_eval(&model, &hw, &nest, &m, &p, MappingObjective::Latency).is_none());
    }

    #[test]
    fn infeasible_points_penalized_not_rejected() {
        let (model, hw, nest) = setup();
        let (m, p) = midpoint(&nest);
        // Whole nest as one L1 tile: far past the L1 capacity hinge.
        let ext = nest.extents();
        let big = RelaxedPoint {
            l2: std::array::from_fn(|i| ext[i] as f64),
            l1: std::array::from_fn(|i| ext[i] as f64),
        };
        let (g_ok, _) =
            relaxed_eval(&model, &hw, &nest, &m, &p, MappingObjective::Latency).unwrap();
        let (g_big, _) =
            relaxed_eval(&model, &hw, &nest, &m, &big, MappingObjective::Latency).unwrap();
        assert!(
            g_big.value > g_ok.value,
            "{} vs {}",
            g_big.value,
            g_ok.value
        );
    }

    #[test]
    fn edp_objective_differs_from_latency() {
        let (model, hw, nest) = setup();
        let (m, p) = midpoint(&nest);
        let (lat, _) = relaxed_eval(&model, &hw, &nest, &m, &p, MappingObjective::Latency).unwrap();
        let (edp, _) = relaxed_eval(&model, &hw, &nest, &m, &p, MappingObjective::Edp).unwrap();
        assert!(edp.value != lat.value);
    }
}
