//! Analytical PPA model and hardware design space for the 2-D spatial
//! accelerator template (the paper's open-source platform, Fig. 1).
//!
//! This crate plays the role MAESTRO plays in the paper: a fast
//! (sub-second) power / performance / area oracle for a hardware
//! configuration ([`HwConfig`]) executing a tensor loop nest under a
//! software [`Mapping`](unico_mapping::Mapping). It models:
//!
//! * **compute** — a `PE_x × PE_y` array doing one MAC per PE per cycle,
//!   with two loop dimensions unrolled spatially;
//! * **memory** — two-level tiling with order-dependent reuse: each
//!   tensor is re-fetched once per iteration of every loop it depends on,
//!   and once more for every independent loop wrapped *outside* its
//!   innermost dependent loop (the classic loop-centric traffic model);
//! * **dataflow** — weight- or output-stationary PE register files that
//!   remove the stationary tensor's L1-level re-fetch and downgrade its
//!   per-MAC access energy to register energy;
//! * **power** — event energies (MAC, register, L1, NoC, L2, DRAM)
//!   divided by latency;
//! * **area** — PE, SRAM and NoC area as a function of the configuration.
//!
//! The crate also defines the [`Platform`] abstraction the co-optimizer
//! is generic over, so the cycle-accurate Ascend-like simulator
//! (`unico-camodel`) plugs into the identical search machinery.
//!
//! # Example
//!
//! ```
//! use unico_model::{AnalyticalModel, HwConfig, Dataflow, TechParams};
//! use unico_workloads::TensorOp;
//! use unico_mapping::Mapping;
//!
//! let model = AnalyticalModel::new(TechParams::default());
//! let hw = HwConfig::new(8, 8, 2048, 256 * 1024, 128, Dataflow::WeightStationary);
//! let nest = TensorOp::Gemm { m: 256, n: 256, k: 256 }.to_loop_nest();
//! let mapping = Mapping::identity(&nest);
//! match model.evaluate(&hw, &mapping, &nest) {
//!     Ok(ppa) => println!("latency {} s, power {} mW", ppa.latency_s, ppa.power_mw),
//!     Err(e) => println!("infeasible: {e}"),
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analytical;
mod batch;
mod disktier;
mod evalcache;
mod fused;
mod hw;
mod loopcentric;
mod platform;
mod ppa;
mod relaxed;
mod tech;
mod traffic;

pub use analytical::{AnalyticalModel, BoundSpatialCost, EvalBreakdown, MappingObjective};
pub use batch::MappingBatch;
pub use disktier::{DiskTier, DiskTierStats};
pub use evalcache::{
    spatial_eval_key, spatial_key_prefix, BatchStats, CacheStats, EngineTag, EvalCache, EvalKey,
    EvalKeyBuilder, EvalResult, TraceError, SHARD_COUNT, TRACE_HEADER,
};
pub use fused::{
    fused_member_key, FusedCostOracle, FusedGroupEval, FusedMember, FusedMemberCost, FusionPricer,
};
pub use hw::{Dataflow, HwConfig, HwSpace};
pub use loopcentric::{BoundLoopCentricCost, LevelBreakdown, LevelStats, LoopCentricModel};
pub use platform::{batch_eval_from_env, MappingTool, Platform, PpaEngine, SpatialPlatform};
pub use ppa::{EvalError, Ppa};
pub use relaxed::{relaxed_eval, relaxed_eval_with, RelaxedDiag, Rounding};
pub use tech::TechParams;
pub use traffic::{tensor_loads, TensorKind};
