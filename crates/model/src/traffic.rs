//! Loop-order-dependent tile re-fetch counts (the reuse model).

use unico_workloads::{Dim, LoopNest, DIM_COUNT};

/// Which operand tensor of the convolution nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TensorKind {
    /// Input activations.
    Input,
    /// Weights.
    Weight,
    /// Output activations / partial sums.
    Output,
}

impl TensorKind {
    /// All three tensors.
    pub const ALL: [TensorKind; 3] = [TensorKind::Input, TensorKind::Weight, TensorKind::Output];

    /// The loop dimensions this tensor's tile depends on.
    pub fn dependent_dims(self, nest: &LoopNest) -> &'static [Dim] {
        match self {
            TensorKind::Input => {
                if nest.is_depthwise() {
                    // Channels ride on K for depthwise nests.
                    &[Dim::N, Dim::K, Dim::Y, Dim::X, Dim::R, Dim::S]
                } else {
                    &[Dim::N, Dim::C, Dim::Y, Dim::X, Dim::R, Dim::S]
                }
            }
            TensorKind::Weight => &[Dim::K, Dim::C, Dim::R, Dim::S],
            TensorKind::Output => &[Dim::N, Dim::K, Dim::Y, Dim::X],
        }
    }

    /// [`TensorKind::dependent_dims`] as a bitmask over `Dim::index()`
    /// — the dependence test runs ~12 times per evaluated candidate, and
    /// a bit probe replaces a linear scan of the dim slice. Purely a
    /// representation change: the load-counting arithmetic is untouched,
    /// so every count stays bit-identical.
    pub fn dependent_mask(self, nest: &LoopNest) -> u8 {
        self.dependent_dims(nest)
            .iter()
            .fold(0u8, |m, d| m | 1 << d.index())
    }
}

/// How many times the tensor's tile is fetched into the inner memory
/// level, given per-dimension trip counts and the temporal loop `order`
/// (outermost first).
///
/// The classic loop-centric rule: the tile is re-fetched once per
/// iteration of every loop the tensor depends on, **and** once per
/// iteration of every independent loop positioned *outside* the
/// tensor's innermost dependent loop (those wrap a dependent loop, so
/// the same tiles are swept repeatedly). Independent loops nested inside
/// all dependent loops permit full reuse.
///
/// Trip counts of 1 never contribute.
pub fn tensor_loads(
    tensor: TensorKind,
    nest: &LoopNest,
    trips: &[u64; DIM_COUNT],
    order: &[Dim; DIM_COUNT],
) -> u64 {
    let mask = tensor.dependent_mask(nest);
    let is_dep = |d: Dim| mask & (1 << d.index()) != 0;
    // Position of the innermost dependent loop with trips > 1.
    let innermost_dep = order
        .iter()
        .enumerate()
        .filter(|(_, d)| is_dep(**d) && trips[d.index()] > 1)
        .map(|(pos, _)| pos)
        .max();
    let mut loads: u64 = 1;
    for (pos, d) in order.iter().enumerate() {
        let t = trips[d.index()];
        if t <= 1 {
            continue;
        }
        if is_dep(*d) {
            loads = loads.saturating_mul(t);
        } else if let Some(inner) = innermost_dep {
            if pos < inner {
                loads = loads.saturating_mul(t);
            }
        }
    }
    loads
}

/// Minimal possible number of fetches of a tensor: the number of its
/// distinct tiles (product of dependent trip counts).
pub fn tensor_min_loads(tensor: TensorKind, nest: &LoopNest, trips: &[u64; DIM_COUNT]) -> u64 {
    tensor
        .dependent_dims(nest)
        .iter()
        .map(|d| trips[d.index()].max(1))
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use unico_workloads::TensorOp;

    fn conv_nest() -> LoopNest {
        TensorOp::Conv2d {
            n: 1,
            k: 8,
            c: 8,
            y: 8,
            x: 8,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest()
    }

    #[test]
    fn all_trips_one_means_single_load() {
        let n = conv_nest();
        for t in TensorKind::ALL {
            assert_eq!(tensor_loads(t, &n, &[1; 7], &Dim::ALL), 1);
        }
    }

    #[test]
    fn weight_reuse_under_inner_independent_loop() {
        let n = conv_nest();
        // Order ... with Y innermost; weight does not depend on Y, so Y
        // trips don't multiply weight loads.
        let order = [Dim::N, Dim::K, Dim::C, Dim::R, Dim::S, Dim::X, Dim::Y];
        let mut trips = [1u64; 7];
        trips[Dim::K.index()] = 4;
        trips[Dim::Y.index()] = 8;
        assert_eq!(tensor_loads(TensorKind::Weight, &n, &trips, &order), 4);
        // Flip: Y outermost wraps the dependent K loop -> x8 penalty.
        let order2 = [Dim::Y, Dim::K, Dim::C, Dim::R, Dim::S, Dim::X, Dim::N];
        assert_eq!(tensor_loads(TensorKind::Weight, &n, &trips, &order2), 32);
    }

    #[test]
    fn output_spill_when_reduction_outside() {
        let n = conv_nest();
        let mut trips = [1u64; 7];
        trips[Dim::C.index()] = 4;
        trips[Dim::Y.index()] = 2;
        // C outside Y: output tiles revisited for each C iteration.
        let order = [Dim::C, Dim::Y, Dim::N, Dim::K, Dim::X, Dim::R, Dim::S];
        assert_eq!(tensor_loads(TensorKind::Output, &n, &trips, &order), 8);
        // C inside Y: each output tile accumulated before moving on.
        let order2 = [Dim::Y, Dim::C, Dim::N, Dim::K, Dim::X, Dim::R, Dim::S];
        assert_eq!(tensor_loads(TensorKind::Output, &n, &trips, &order2), 2);
        assert_eq!(tensor_min_loads(TensorKind::Output, &n, &trips), 2);
    }

    #[test]
    fn loads_never_below_min() {
        let n = conv_nest();
        let orders = [
            Dim::ALL,
            [Dim::S, Dim::R, Dim::X, Dim::Y, Dim::C, Dim::K, Dim::N],
            [Dim::C, Dim::K, Dim::Y, Dim::N, Dim::S, Dim::X, Dim::R],
        ];
        let trips = [1, 2, 3, 4, 2, 3, 1];
        for order in orders {
            for t in TensorKind::ALL {
                assert!(
                    tensor_loads(t, &n, &trips, &order) >= tensor_min_loads(t, &n, &trips),
                    "{t:?} under {order:?}"
                );
            }
        }
    }

    #[test]
    fn depthwise_input_depends_on_k() {
        let n = TensorOp::DepthwiseConv2d {
            n: 1,
            c: 8,
            y: 4,
            x: 4,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest();
        let mut trips = [1u64; 7];
        trips[Dim::K.index()] = 8;
        let order = Dim::ALL;
        assert_eq!(tensor_loads(TensorKind::Input, &n, &trips, &order), 8);
    }
}
