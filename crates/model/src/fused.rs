//! Fused-group cost accounting for the analytical model.
//!
//! A fusion group executes a chain of layers with the intermediate
//! activation tensors pinned in the L2 global buffer: the producer's
//! DRAM write-back and the consumer's DRAM read of that tensor are both
//! skipped. Everything else — compute, NoC traffic, L1/L2 energy, the
//! per-tile overheads — is the standalone per-layer model, term for
//! term. A member with no fused edges therefore prices **bitwise
//! identical** to [`AnalyticalModel::evaluate_detailed`]; a member with
//! any fused edge strictly reduces DRAM bytes (every skipped term is a
//! positive `footprint × loads` product).
//!
//! Legality: each member must fit the buffers on its own (the standalone
//! feasibility rules) *and* with the group's resident intermediates
//! charged against L2: `2·fp2 + resident_bytes ≤ l2_bytes`.
//!
//! [`FusedCostOracle`] adapts this pricing to the
//! [`FusionOracle`](unico_mapping::FusionOracle) trait the greedy fusion
//! planner consults.

use unico_mapping::{FusionGain, FusionOracle, Mapping};
use unico_workloads::{FusionEdge, LoopNest};

use crate::analytical::AnalyticalModel;
use crate::batch::MappingBatch;
use crate::evalcache::{spatial_key_prefix, EngineTag, EvalKey};
use crate::hw::HwConfig;
use crate::ppa::{EvalError, Ppa};
use crate::traffic::{tensor_loads, tensor_min_loads, TensorKind};

/// One layer of a candidate fusion chain, with the mapping to price it
/// under (normally the best mapping its own search found).
#[derive(Debug, Clone, Copy)]
pub struct FusedMember<'a> {
    /// Layer index in the network's (possibly reduced) layer table —
    /// the id space of the chain and its edges.
    pub layer: usize,
    /// The layer's loop nest.
    pub nest: &'a LoopNest,
    /// The mapping to execute the layer under.
    pub mapping: &'a Mapping,
    /// Layer repeat count (weights the group's traffic totals).
    pub repeat: u32,
}

/// Fused pricing of one chain member.
#[derive(Debug, Clone, Copy)]
pub struct FusedMemberCost {
    /// Layer index (mirrors [`FusedMember::layer`]).
    pub layer: usize,
    /// PPA with fused DRAM accounting (one execution, not
    /// repeat-weighted).
    pub ppa: Ppa,
    /// Modeled DRAM bytes executed standalone (one execution).
    pub dram_bytes_unfused: f64,
    /// Modeled DRAM bytes inside the group (one execution).
    pub dram_bytes_fused: f64,
}

/// Fused pricing of a whole chain.
#[derive(Debug, Clone)]
pub struct FusedGroupEval {
    /// Per-member fused costs, in chain order.
    pub members: Vec<FusedMemberCost>,
    /// Repeat-weighted DRAM bytes of the members executed standalone.
    pub dram_bytes_unfused: f64,
    /// Repeat-weighted DRAM bytes of the fused chain.
    pub dram_bytes_fused: f64,
}

/// Cache key for one fused member evaluation. The fused result depends
/// only on `(hw, nest, mapping)` plus the member's fusion context —
/// which sides skip DRAM and how many intermediate elements stay
/// resident — so members shared between candidate chains hit.
pub fn fused_member_key(
    hw: &HwConfig,
    nest: &LoopNest,
    mapping: &Mapping,
    skip_input: bool,
    skip_output: bool,
    resident_elems: u64,
) -> EvalKey {
    let mut b = spatial_key_prefix(EngineTag::FusedGroup, hw, nest);
    b.mapping_full(mapping, nest)
        .word(u64::from(skip_input))
        .word(u64::from(skip_output))
        .word(resident_elems);
    b.finish()
}

impl AnalyticalModel {
    /// Prices one layer as a fusion-group member: `skip_input` /
    /// `skip_output` drop the corresponding DRAM terms (the tensor stays
    /// in L2), `resident_elems` intermediate elements are charged
    /// against L2 capacity while the member runs.
    ///
    /// With both skips off and no residents this is exactly
    /// [`AnalyticalModel::evaluate_detailed`] — same arithmetic, same
    /// bits.
    ///
    /// # Errors
    ///
    /// The standalone feasibility rules, plus [`EvalError::L2Overflow`]
    /// when the double-buffered L2 working set no longer fits next to
    /// the resident intermediates.
    pub fn evaluate_fused_member(
        &self,
        hw: &HwConfig,
        nest: &LoopNest,
        mapping: &Mapping,
        skip_input: bool,
        skip_output: bool,
        resident_elems: u64,
    ) -> Result<FusedMemberCost, EvalError> {
        let t = self.tech();
        let batch = MappingBatch::build(std::iter::once(mapping), nest, t.bytes_per_elem);
        let area = self.area_mm2(hw);
        let (ppa, bd) = self.evaluate_row(hw, &batch, 0, area, nest.macs() as f64)?;

        let fp2 = batch.l2_footprint(0);
        let resident_bytes = resident_elems * t.bytes_per_elem;
        let required = fp2.total() * 2 + resident_bytes;
        if required > hw.l2_bytes() {
            return Err(EvalError::L2Overflow {
                required,
                available: hw.l2_bytes(),
            });
        }

        if !skip_input && !skip_output {
            // No fused edges: the standalone evaluation IS the answer —
            // returning it directly keeps singleton members bitwise
            // identical to the per-layer path.
            return Ok(FusedMemberCost {
                layer: 0,
                ppa,
                dram_bytes_unfused: bd.dram_bytes,
                dram_bytes_fused: bd.dram_bytes,
            });
        }

        // Rebuild the DRAM byte count with the same fold `cost_core`
        // uses (Input, Weight, Output; output pays read-modify-write
        // revisits), dropping the fused tensors' terms.
        let l2_trips = batch.l2_trips(0);
        let order = batch.order(0);
        let term = |tensor: TensorKind| {
            let fp = match tensor {
                TensorKind::Input => fp2.input,
                TensorKind::Weight => fp2.weight,
                TensorKind::Output => fp2.output,
            } as f64;
            let loads = tensor_loads(tensor, nest, l2_trips, order) as f64;
            match tensor {
                TensorKind::Output => {
                    let min_loads = tensor_min_loads(tensor, nest, l2_trips) as f64;
                    fp * (2.0 * loads - min_loads)
                }
                _ => fp * loads,
            }
        };
        let mut dram_unfused = 0.0;
        let mut dram_fused = 0.0;
        for tensor in TensorKind::ALL {
            let b = term(tensor);
            dram_unfused += b;
            let skipped = (tensor == TensorKind::Input && skip_input)
                || (tensor == TensorKind::Output && skip_output);
            if !skipped {
                dram_fused += b;
            }
        }

        // Latency: only the DRAM leg of the roofline changes; the
        // per-tile and launch overheads ride along unchanged.
        let base_max = bd.compute_cycles.max(bd.noc_cycles).max(bd.dram_cycles);
        let overhead = bd.total_cycles - base_max;
        let dram_cycles_fused = dram_fused / t.dram_bytes_per_cycle;
        let total_cycles = bd.compute_cycles.max(bd.noc_cycles).max(dram_cycles_fused) + overhead;
        let latency_s = total_cycles / t.clock_hz;

        // Energy: the saved bytes stop paying the DRAM event energy
        // (they still transit L2, so `e_l2` stands), and leakage
        // integrates over the shorter runtime.
        let saved_bytes = dram_unfused - dram_fused;
        let energy_pj = ppa.energy_pj
            - saved_bytes * t.e_dram_pj_per_byte
            - t.leakage_mw_per_mm2 * area * (ppa.latency_s - latency_s) * 1e9;
        let power_mw = energy_pj / (latency_s * 1e9);

        Ok(FusedMemberCost {
            layer: 0, // caller stamps the chain id
            ppa: Ppa {
                latency_s,
                power_mw,
                area_mm2: area,
                energy_pj,
            },
            dram_bytes_unfused: dram_unfused,
            dram_bytes_fused: dram_fused,
        })
    }

    /// Prices a whole fusion chain: members in execution order, `edges`
    /// the chain-internal intermediates. Each member skips the DRAM
    /// legs its fused edges cover and is charged for all the chain's
    /// intermediates as L2 residents (they stay pinned for the group's
    /// lifetime).
    ///
    /// # Errors
    ///
    /// The first member that fails its feasibility rules fails the
    /// chain.
    pub fn evaluate_fused_group(
        &self,
        hw: &HwConfig,
        members: &[FusedMember<'_>],
        edges: &[FusionEdge],
    ) -> Result<FusedGroupEval, EvalError> {
        let in_chain = |layer: usize| members.iter().any(|m| m.layer == layer);
        let internal: Vec<FusionEdge> = edges
            .iter()
            .copied()
            .filter(|e| in_chain(e.producer) && in_chain(e.consumer))
            .collect();
        let resident_elems: u64 = internal.iter().map(|e| e.elems).sum();

        let mut out = FusedGroupEval {
            members: Vec::with_capacity(members.len()),
            dram_bytes_unfused: 0.0,
            dram_bytes_fused: 0.0,
        };
        for m in members {
            let skip_input = internal.iter().any(|e| e.consumer == m.layer);
            let skip_output = internal.iter().any(|e| e.producer == m.layer);
            let mut cost = self.evaluate_fused_member(
                hw,
                m.nest,
                m.mapping,
                skip_input,
                skip_output,
                resident_elems,
            )?;
            cost.layer = m.layer;
            let r = f64::from(m.repeat);
            out.dram_bytes_unfused += cost.dram_bytes_unfused * r;
            out.dram_bytes_fused += cost.dram_bytes_fused * r;
            out.members.push(cost);
        }
        Ok(out)
    }
}

/// [`FusionOracle`] over the analytical model: prices candidate chains
/// with each layer's own best mapping, rejecting chains that mix repeat
/// counts (the groupwise traffic comparison is only meaningful when all
/// members execute the same number of times) or contain a layer with no
/// priced mapping yet.
pub struct FusedCostOracle<'a> {
    model: &'a AnalyticalModel,
    hw: HwConfig,
    /// Per layer index: `(nest, best mapping, repeat)`; `None` when the
    /// layer's search found nothing feasible.
    layers: Vec<Option<(LoopNest, Mapping, u32)>>,
}

impl<'a> FusedCostOracle<'a> {
    /// Builds an oracle over `layers`, indexed by the id space the
    /// fusion edges use.
    pub fn new(
        model: &'a AnalyticalModel,
        hw: HwConfig,
        layers: Vec<Option<(LoopNest, Mapping, u32)>>,
    ) -> Self {
        FusedCostOracle { model, hw, layers }
    }

    /// Prices a chain fully (per-member PPA included), `None` under the
    /// same conditions as the trait method.
    pub fn price_group(&self, chain: &[usize], edges: &[FusionEdge]) -> Option<FusedGroupEval> {
        let mut members = Vec::with_capacity(chain.len());
        let mut repeat = None;
        for &layer in chain {
            let (nest, mapping, r) = self.layers.get(layer)?.as_ref()?;
            if *repeat.get_or_insert(*r) != *r {
                return None;
            }
            members.push(FusedMember {
                layer,
                nest,
                mapping,
                repeat: *r,
            });
        }
        self.model
            .evaluate_fused_group(&self.hw, &members, edges)
            .ok()
    }
}

impl FusionOracle for FusedCostOracle<'_> {
    fn assess_group(&self, chain: &[usize], edges: &[FusionEdge]) -> Option<FusionGain> {
        let eval = self.price_group(chain, edges)?;
        Some(FusionGain {
            dram_bytes_unfused: eval.dram_bytes_unfused,
            dram_bytes_fused: eval.dram_bytes_fused,
        })
    }
}

/// Object-safe fused pricing the co-search environment consumes: the
/// planner side ([`FusionOracle`]) plus full per-member PPA for the
/// accepted groups. Platforms without a fused cost model simply don't
/// hand one out (see `Platform::fusion_pricer`).
pub trait FusionPricer: FusionOracle + Sync {
    /// Prices a chain fully, `None` under the same conditions as
    /// [`FusionOracle::assess_group`].
    fn price_group(&self, chain: &[usize], edges: &[FusionEdge]) -> Option<FusedGroupEval>;
}

impl FusionPricer for FusedCostOracle<'_> {
    fn price_group(&self, chain: &[usize], edges: &[FusionEdge]) -> Option<FusedGroupEval> {
        FusedCostOracle::price_group(self, chain, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::Dataflow;
    use crate::tech::TechParams;
    use unico_mapping::{search_fusion, FusionPlan};
    use unico_workloads::{Dim, TensorOp};

    fn model() -> AnalyticalModel {
        AnalyticalModel::new(TechParams::default())
    }

    fn hw(l2_kb: u64) -> HwConfig {
        HwConfig::new(8, 8, 4096, l2_kb * 1024, 128, Dataflow::WeightStationary)
    }

    fn conv(k: u64, c: u64) -> LoopNest {
        TensorOp::Conv2d {
            n: 1,
            k,
            c,
            y: 16,
            x: 16,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest()
    }

    fn small_mapping(n: &LoopNest) -> Mapping {
        let mut l2 = n.extents();
        l2[Dim::C.index()] = l2[Dim::C.index()].min(16);
        let mut l1 = [1u64; 7];
        l1[Dim::K.index()] = 8;
        l1[Dim::Y.index()] = 8;
        l1[Dim::X.index()] = 4;
        l1[Dim::C.index()] = 4;
        Mapping::new(n, l2, l1, Dim::ALL, (Dim::K, Dim::Y))
    }

    #[test]
    fn no_fusion_context_is_bitwise_identical_to_standalone() {
        let n = conv(16, 16);
        let m = small_mapping(&n);
        let mdl = model();
        let (ppa, bd) = mdl.evaluate_detailed(&hw(512), &m, &n).unwrap();
        let fused = mdl
            .evaluate_fused_member(&hw(512), &n, &m, false, false, 0)
            .unwrap();
        assert_eq!(fused.ppa.latency_s.to_bits(), ppa.latency_s.to_bits());
        assert_eq!(fused.ppa.energy_pj.to_bits(), ppa.energy_pj.to_bits());
        assert_eq!(fused.ppa.power_mw.to_bits(), ppa.power_mw.to_bits());
        assert_eq!(fused.dram_bytes_unfused.to_bits(), bd.dram_bytes.to_bits());
        assert_eq!(fused.dram_bytes_fused.to_bits(), bd.dram_bytes.to_bits());
    }

    #[test]
    fn skipping_a_side_strictly_reduces_dram_and_energy() {
        let n = conv(16, 16);
        let m = small_mapping(&n);
        let mdl = model();
        let base = mdl
            .evaluate_fused_member(&hw(512), &n, &m, false, false, 0)
            .unwrap();
        for (si, so) in [(true, false), (false, true), (true, true)] {
            let f = mdl
                .evaluate_fused_member(&hw(512), &n, &m, si, so, 0)
                .unwrap();
            assert!(f.dram_bytes_fused < f.dram_bytes_unfused);
            assert!(f.ppa.energy_pj < base.ppa.energy_pj);
            assert!(f.ppa.latency_s <= base.ppa.latency_s);
        }
    }

    #[test]
    fn resident_intermediates_enforce_l2_capacity() {
        let n = conv(16, 16);
        let m = small_mapping(&n);
        let err = model()
            .evaluate_fused_member(&hw(512), &n, &m, true, false, u64::MAX / 4)
            .unwrap_err();
        assert!(matches!(err, EvalError::L2Overflow { .. }));
    }

    #[test]
    fn group_pricing_and_planner_accept_a_real_chain() {
        let mdl = model();
        let n0 = conv(16, 16);
        let n1 = conv(16, 16);
        let edges = [FusionEdge {
            producer: 0,
            consumer: 1,
            elems: 16 * 16 * 16,
        }];
        let oracle = FusedCostOracle::new(
            &mdl,
            hw(512),
            vec![
                Some((n0, small_mapping(&n0), 1)),
                Some((n1, small_mapping(&n1), 1)),
            ],
        );
        let (plan, stats) = search_fusion(2, &edges, &oracle);
        assert_eq!(plan.groups(), &[vec![0, 1]]);
        assert_eq!(stats.groups_tried, 1);
        assert_eq!(stats.groups_accepted, 1);
        let eval = oracle.price_group(&[0, 1], &edges).unwrap();
        assert!(eval.dram_bytes_fused < eval.dram_bytes_unfused);
        // Producer skips the output leg, consumer the input leg.
        assert!(eval.members[0].dram_bytes_fused < eval.members[0].dram_bytes_unfused);
        assert!(eval.members[1].dram_bytes_fused < eval.members[1].dram_bytes_unfused);
    }

    #[test]
    fn mixed_repeats_and_missing_mappings_reject_fusion() {
        let mdl = model();
        let n = conv(16, 16);
        let edges = [FusionEdge {
            producer: 0,
            consumer: 1,
            elems: 16 * 16 * 16,
        }];
        let mixed = FusedCostOracle::new(
            &mdl,
            hw(512),
            vec![
                Some((n, small_mapping(&n), 1)),
                Some((n, small_mapping(&n), 2)),
            ],
        );
        assert!(mixed.assess_group(&[0, 1], &edges).is_none());
        let missing =
            FusedCostOracle::new(&mdl, hw(512), vec![Some((n, small_mapping(&n), 1)), None]);
        assert!(missing.assess_group(&[0, 1], &edges).is_none());
        let (plan, _) = search_fusion(2, &edges, &missing);
        assert!(plan.is_all_singletons());
    }

    #[test]
    fn tight_l2_rejects_the_chain_planner_side() {
        let mdl = model();
        let n = conv(16, 16);
        // L2 just big enough for the standalone working set but not the
        // resident intermediate: fusion must fall back to singletons.
        let m = small_mapping(&n);
        let batch = MappingBatch::build(std::iter::once(&m), &n, 2);
        let need = batch.l2_footprint(0).total() * 2;
        let l2_kb = need.div_ceil(1024) + 1; // < need + intermediate
        let edges = [FusionEdge {
            producer: 0,
            consumer: 1,
            elems: 16 * 16 * 16,
        }];
        let oracle = FusedCostOracle::new(
            &mdl,
            hw(l2_kb),
            vec![Some((n, m.clone(), 1)), Some((n, m.clone(), 1))],
        );
        let (plan, stats) = search_fusion(2, &edges, &oracle);
        assert!(plan.is_all_singletons());
        assert_eq!(stats.groups_tried, 1);
        assert_eq!(stats.groups_accepted, 0);
        let _ = FusionPlan::singleton(2);
    }

    #[test]
    fn fused_member_keys_differ_by_context() {
        let n = conv(16, 16);
        let m = small_mapping(&n);
        let h = hw(512);
        let k0 = fused_member_key(&h, &n, &m, false, false, 0);
        let k1 = fused_member_key(&h, &n, &m, true, false, 0);
        let k2 = fused_member_key(&h, &n, &m, false, true, 0);
        let k3 = fused_member_key(&h, &n, &m, false, false, 4096);
        assert!(k0 != k1 && k0 != k2 && k0 != k3 && k1 != k2);
    }
}
