//! Sharded on-disk second tier for the [`EvalCache`](crate::EvalCache).
//!
//! PR 5's service mode showed the warm-cache effect (hundreds of
//! cross-job hits) but the warmth died with the process. The disk tier
//! makes it durable and shareable: evaluations are appended to
//! **segment files** under a shared directory, one subdirectory per
//! cache shard, and every worker process pointed at the directory can
//! consult entries any other worker computed — across daemon restarts.
//!
//! # Layout
//!
//! ```text
//! <dir>/shard-00/seg-<pid>-<instance>-<seq>.trace
//! <dir>/shard-01/...
//! ```
//!
//! Each segment is a complete golden trace in the existing
//! `unico.evaltrace.v1` format (header with entry count, one
//! `<key-hex> <value>` line per entry, floats as IEEE-754 bit
//! patterns), so segment contents are byte-for-byte reproducible and
//! round-trip bit-exactly. Segments are staged as a uniquely named
//! `.tmp` file and atomically renamed into place; readers only ever see
//! complete segments from a well-behaved writer. A torn or truncated
//! segment (crash leftover, manual tampering) fails the header-count or
//! line parse and is **skipped and counted**, never trusted.
//!
//! # Determinism
//!
//! A disk hit returns the exact bits a compute would have produced (the
//! trace encoding is bit-exact), and the in-memory cache counts the
//! lookup as a miss either way — so run reports, traces and Pareto
//! fronts are byte-identical whether the tier is cold, warm or absent.
//! Only the [`DiskTierStats`] counters differ.

use std::collections::{HashMap, HashSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::evalcache::{
    parse_trace_entries, EvalKey, EvalResult, PassThroughState, SHARD_COUNT, TRACE_HEADER,
};

/// Entries buffered per shard before an automatic segment flush.
const DEFAULT_FLUSH_THRESHOLD: usize = 256;

/// Aggregated disk-tier counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskTierStats {
    /// Lookups answered from the on-disk index.
    pub hits: u64,
    /// Lookups the disk tier could not answer.
    pub misses: u64,
    /// Entries currently resident in the index.
    pub entries: u64,
    /// Segment files parsed and merged.
    pub segments_loaded: u64,
    /// Torn / truncated / foreign files skipped (never trusted).
    pub segments_skipped: u64,
    /// Segment files written by this instance.
    pub segments_written: u64,
    /// Entries written into segments by this instance.
    pub entries_written: u64,
    /// Segment writes that failed with an I/O error (entries retained
    /// in memory and retried at the next flush).
    pub write_errors: u64,
}

impl DiskTierStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

#[derive(Debug, Default)]
struct DiskShard {
    index: HashMap<EvalKey, EvalResult, PassThroughState>,
    pending: Vec<(EvalKey, EvalResult)>,
    /// Segment file names already merged (or skipped) — refresh() only
    /// parses files it has not seen.
    seen: HashSet<String>,
}

/// A sharded, append-only on-disk store of PPA evaluations shared by
/// every worker pointed at the same directory. See the module docs.
#[derive(Debug)]
pub struct DiskTier {
    dir: PathBuf,
    flush_threshold: usize,
    /// Distinguishes segment names when several instances share one
    /// process (in-process worker fleets in tests and examples).
    instance: u64,
    seq: AtomicU64,
    shards: Vec<Mutex<DiskShard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    segments_loaded: AtomicU64,
    segments_skipped: AtomicU64,
    segments_written: AtomicU64,
    entries_written: AtomicU64,
    write_errors: AtomicU64,
}

fn shard_dir(dir: &Path, s: usize) -> PathBuf {
    dir.join(format!("shard-{s:02}"))
}

impl DiskTier {
    /// Opens (creating if absent) a disk tier rooted at `dir` and loads
    /// every readable segment into the in-memory index.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and directory-listing failures.
    /// Unreadable or torn *segment files* are skipped and counted, not
    /// errors.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<DiskTier> {
        static INSTANCE: AtomicU64 = AtomicU64::new(0);
        let dir = dir.into();
        for s in 0..SHARD_COUNT {
            fs::create_dir_all(shard_dir(&dir, s))?;
        }
        let tier = DiskTier {
            dir,
            flush_threshold: DEFAULT_FLUSH_THRESHOLD,
            instance: INSTANCE.fetch_add(1, Ordering::Relaxed),
            seq: AtomicU64::new(0),
            shards: (0..SHARD_COUNT).map(|_| Mutex::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            segments_loaded: AtomicU64::new(0),
            segments_skipped: AtomicU64::new(0),
            segments_written: AtomicU64::new(0),
            entries_written: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
        };
        tier.refresh()?;
        Ok(tier)
    }

    /// Sets the per-shard pending-entry count that triggers an
    /// automatic segment flush (callers can still [`DiskTier::flush`]
    /// explicitly at job boundaries).
    #[must_use]
    pub fn with_flush_threshold(mut self, n: usize) -> Self {
        self.flush_threshold = n.max(1);
        self
    }

    /// The root directory of the tier.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Scans every shard directory for segment files not yet merged and
    /// folds their entries into the index. Returns the number of new
    /// entries. Workers call this at job boundaries to pick up segments
    /// their peers flushed.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing failures only; torn segments and
    /// files that vanish mid-scan (a peer's staging `.tmp` getting
    /// renamed) are tolerated.
    pub fn refresh(&self) -> io::Result<usize> {
        let mut merged = 0usize;
        for s in 0..SHARD_COUNT {
            let dir = shard_dir(&self.dir, s);
            let mut fresh: Vec<(String, PathBuf)> = Vec::new();
            {
                let shard = self.shards[s].lock().unwrap_or_else(|e| e.into_inner());
                for entry in fs::read_dir(&dir)? {
                    let entry = entry?;
                    let name = entry.file_name().to_string_lossy().into_owned();
                    if !name.ends_with(".trace") || shard.seen.contains(&name) {
                        continue;
                    }
                    fresh.push((name, entry.path()));
                }
            }
            // Deterministic merge order (writers never rewrite a
            // segment, so order only affects first-writer-wins on
            // duplicate keys — and duplicates hold identical bits).
            fresh.sort();
            for (name, path) in fresh {
                let text = match fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                    Err(_) => {
                        self.segments_skipped.fetch_add(1, Ordering::Relaxed);
                        let mut shard = self.shards[s].lock().unwrap_or_else(|e| e.into_inner());
                        shard.seen.insert(name);
                        continue;
                    }
                };
                let mut shard = self.shards[s].lock().unwrap_or_else(|e| e.into_inner());
                shard.seen.insert(name);
                match parse_trace_entries(&text) {
                    Ok(entries) => {
                        self.segments_loaded.fetch_add(1, Ordering::Relaxed);
                        for (k, v) in entries {
                            if shard.index.contains_key(&k) {
                                continue;
                            }
                            shard.index.insert(k, v);
                            merged += 1;
                        }
                    }
                    Err(_) => {
                        self.segments_skipped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        Ok(merged)
    }

    /// Looks `key` up in the on-disk index.
    pub fn lookup(&self, key: EvalKey) -> Option<EvalResult> {
        let shard = self.shards[key.shard()]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let v = shard.index.get(&key).copied();
        if v.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        v
    }

    /// Records a freshly computed entry for the next segment flush.
    /// Entries already in the index are skipped, so re-recording a
    /// loaded trace (checkpoint resume) writes nothing twice.
    pub fn record(&self, key: EvalKey, value: EvalResult) {
        let s = key.shard();
        let flush_now = {
            let mut shard = self.shards[s].lock().unwrap_or_else(|e| e.into_inner());
            if shard.index.contains_key(&key) {
                return;
            }
            shard.index.insert(key, value);
            shard.pending.push((key, value));
            shard.pending.len() >= self.flush_threshold
        };
        if flush_now {
            self.flush_shard(s);
        }
    }

    /// Writes every shard's pending entries out as new segment files.
    /// Returns the number of entries flushed. I/O failures are counted
    /// in [`DiskTierStats::write_errors`] and the entries are retained
    /// for the next flush — the tier degrades to memory-only rather
    /// than failing the run.
    pub fn flush(&self) -> usize {
        (0..SHARD_COUNT).map(|s| self.flush_shard(s)).sum()
    }

    fn flush_shard(&self, s: usize) -> usize {
        let mut shard = self.shards[s].lock().unwrap_or_else(|e| e.into_inner());
        if shard.pending.is_empty() {
            return 0;
        }
        let mut entries = std::mem::take(&mut shard.pending);
        entries.sort_by_key(|(k, _)| *k);
        let mut text = String::with_capacity(16 + entries.len() * 120);
        text.push_str(TRACE_HEADER);
        text.push(' ');
        text.push_str(&entries.len().to_string());
        text.push('\n');
        for (k, v) in &entries {
            text.push_str(&k.to_hex());
            text.push(' ');
            crate::evalcache::encode_result(v, &mut text);
            text.push('\n');
        }
        let name = format!(
            "seg-{}-{}-{:06}.trace",
            std::process::id(),
            self.instance,
            self.seq.fetch_add(1, Ordering::Relaxed)
        );
        let dir = shard_dir(&self.dir, s);
        let path = dir.join(&name);
        let tmp = dir.join(format!("{name}.tmp"));
        let res = (|| -> io::Result<()> {
            fs::write(&tmp, text.as_bytes())?;
            let f = fs::File::open(&tmp)?;
            f.sync_all()?;
            fs::rename(&tmp, &path)
        })();
        match res {
            Ok(()) => {
                shard.seen.insert(name);
                self.segments_written.fetch_add(1, Ordering::Relaxed);
                self.entries_written
                    .fetch_add(entries.len() as u64, Ordering::Relaxed);
                entries.len()
            }
            Err(_) => {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                let _ = fs::remove_file(&tmp);
                shard.pending = entries;
                0
            }
        }
    }

    /// Entries resident in the index.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).index.len())
            .sum()
    }

    /// `true` when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated counters.
    pub fn stats(&self) -> DiskTierStats {
        DiskTierStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len() as u64,
            segments_loaded: self.segments_loaded.load(Ordering::Relaxed),
            segments_skipped: self.segments_skipped.load(Ordering::Relaxed),
            segments_written: self.segments_written.load(Ordering::Relaxed),
            entries_written: self.entries_written.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppa::Ppa;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "unico-disktier-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn key(n: u128) -> EvalKey {
        EvalKey::from_hex(&format!("{n:032x}")).expect("key")
    }

    fn ppa(lat: f64) -> EvalResult {
        Ok(Ppa {
            latency_s: lat,
            power_mw: 2.0 * lat,
            area_mm2: 1.5,
            energy_pj: 10.0 * lat,
        })
    }

    #[test]
    fn record_flush_reopen_roundtrips() {
        let dir = tmpdir("roundtrip");
        let tier = DiskTier::open(&dir).expect("open");
        for i in 0..40u128 {
            tier.record(key(i << 64 | i), ppa(i as f64 + 0.5));
        }
        assert_eq!(tier.flush(), 40);
        let reopened = DiskTier::open(&dir).expect("reopen");
        assert_eq!(reopened.len(), 40);
        for i in 0..40u128 {
            assert_eq!(reopened.lookup(key(i << 64 | i)), Some(ppa(i as f64 + 0.5)));
        }
        let s = reopened.stats();
        assert_eq!(s.hits, 40);
        assert!(s.segments_loaded > 0);
        assert_eq!(s.segments_skipped, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn refresh_picks_up_peer_segments() {
        let dir = tmpdir("peers");
        let a = DiskTier::open(&dir).expect("open a");
        let b = DiskTier::open(&dir).expect("open b");
        a.record(key(7), ppa(1.0));
        a.flush();
        assert_eq!(b.lookup(key(7)), None);
        let merged = b.refresh().expect("refresh");
        assert_eq!(merged, 1);
        assert_eq!(b.lookup(key(7)), Some(ppa(1.0)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_segments_are_skipped_not_trusted() {
        let dir = tmpdir("torn");
        let tier = DiskTier::open(&dir).expect("open");
        tier.record(key(1), ppa(1.0));
        tier.flush();
        // Truncate the only segment of key(1)'s shard mid-line, and
        // drop a garbage file plus a staging .tmp in another shard.
        let sd = shard_dir(&dir, key(1).shard());
        let seg = fs::read_dir(&sd)
            .expect("list")
            .map(|e| e.expect("entry").path())
            .find(|p| p.extension().is_some_and(|e| e == "trace"))
            .expect("segment");
        let text = fs::read_to_string(&seg).expect("read");
        fs::write(&seg, &text[..text.len() - 5]).expect("truncate");
        fs::write(shard_dir(&dir, 3).join("seg-zzz.trace"), "not a trace").expect("garbage");
        fs::write(shard_dir(&dir, 4).join("seg-x.trace.tmp"), "partial").expect("tmp");
        let reopened = DiskTier::open(&dir).expect("reopen");
        assert_eq!(reopened.lookup(key(1)), None, "torn entry must not serve");
        let s = reopened.stats();
        assert_eq!(
            s.segments_skipped, 2,
            "torn + garbage skipped, .tmp ignored"
        );
        assert_eq!(s.entries, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_records_write_once() {
        let dir = tmpdir("dup");
        let tier = DiskTier::open(&dir).expect("open");
        tier.record(key(9), ppa(2.0));
        tier.record(key(9), ppa(2.0));
        assert_eq!(tier.flush(), 1);
        assert_eq!(tier.flush(), 0);
        assert_eq!(tier.stats().entries_written, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
