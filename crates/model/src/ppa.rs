//! PPA result and evaluation error types.

use std::fmt;

/// Power / performance / area estimate for one `(hardware, mapping,
//  workload)` triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ppa {
    /// End-to-end latency in seconds.
    pub latency_s: f64,
    /// Average power in milliwatts.
    pub power_mw: f64,
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Total energy in picojoules.
    pub energy_pj: f64,
}

impl Ppa {
    /// Energy-delay product in `pJ·s`.
    pub fn edp(&self) -> f64 {
        self.energy_pj * self.latency_s
    }

    /// Component-wise sum, used when aggregating per-layer results
    /// (latency and energy add; power is recomputed by the caller; area
    /// is configuration-wide so the max is kept).
    pub fn accumulate(&mut self, other: &Ppa, repeat: u32) {
        let r = f64::from(repeat);
        self.latency_s += other.latency_s * r;
        self.energy_pj += other.energy_pj * r;
        self.area_mm2 = self.area_mm2.max(other.area_mm2);
        self.power_mw = if self.latency_s > 0.0 {
            self.energy_pj / (self.latency_s * 1e9) // pJ/ns = mW
        } else {
            0.0
        };
    }

    /// A zero PPA accumulator.
    pub fn zero() -> Ppa {
        Ppa {
            latency_s: 0.0,
            power_mw: 0.0,
            area_mm2: 0.0,
            energy_pj: 0.0,
        }
    }
}

impl fmt::Display for Ppa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4e} s, {:.1} mW, {:.2} mm²",
            self.latency_s, self.power_mw, self.area_mm2
        )
    }
}

/// Why a `(hardware, mapping)` pair could not be evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalError {
    /// The per-PE L1 working set exceeds the L1 scratchpad.
    L1Overflow {
        /// Required bytes per PE (double-buffered).
        required: u64,
        /// Available bytes.
        available: u64,
    },
    /// The L2 working set exceeds global memory.
    L2Overflow {
        /// Required bytes (double-buffered).
        required: u64,
        /// Available bytes.
        available: u64,
    },
    /// A spatially unrolled dimension has extent 1 on an axis with more
    /// than one PE, wasting the array (rejected to prune degenerate
    /// mappings).
    DegenerateSpatial,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::L1Overflow {
                required,
                available,
            } => write!(f, "l1 overflow: need {required} B/PE, have {available} B"),
            EvalError::L2Overflow {
                required,
                available,
            } => write!(f, "l2 overflow: need {required} B, have {available} B"),
            EvalError::DegenerateSpatial => write!(f, "degenerate spatial unrolling"),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_adds_latency_and_energy() {
        let mut acc = Ppa::zero();
        let layer = Ppa {
            latency_s: 1e-3,
            power_mw: 100.0,
            area_mm2: 3.0,
            energy_pj: 1e5,
        };
        acc.accumulate(&layer, 2);
        assert!((acc.latency_s - 2e-3).abs() < 1e-15);
        assert!((acc.energy_pj - 2e5).abs() < 1e-6);
        assert_eq!(acc.area_mm2, 3.0);
        // power = 2e5 pJ / 2e6 ns = 0.1 mW
        assert!((acc.power_mw - 0.1).abs() < 1e-9);
    }

    #[test]
    fn edp_math() {
        let p = Ppa {
            latency_s: 2.0,
            power_mw: 1.0,
            area_mm2: 1.0,
            energy_pj: 5.0,
        };
        assert_eq!(p.edp(), 10.0);
    }

    #[test]
    fn errors_display() {
        let e = EvalError::L1Overflow {
            required: 10,
            available: 5,
        };
        assert!(e.to_string().contains("l1 overflow"));
        assert!(EvalError::DegenerateSpatial
            .to_string()
            .contains("degenerate"));
    }
}
