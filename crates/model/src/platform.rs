//! The `Platform` abstraction: everything the co-optimizer needs to know
//! about a target accelerator family.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use unico_mapping::{
    AnnealingSearch, GeneticConfig, GeneticSearch, GradientSearcher, Mapping, MappingCost,
    MappingOutcome, MappingSearcher, MappingSpace, QLearningSearch,
};
use unico_workloads::LoopNest;

use crate::analytical::{AnalyticalModel, BoundSpatialCost, MappingObjective};
use crate::evalcache::EvalCache;
use crate::hw::{Dataflow, HwConfig, HwSpace};
use crate::loopcentric::{BoundLoopCentricCost, LoopCentricModel};
use crate::tech::TechParams;

/// A co-design target: a hardware design space plus the machinery to
/// evaluate mappings on any of its configurations.
///
/// The UNICO algorithm, HASCO-like baseline, NSGA-II and MOBOHB are all
/// generic over this trait, so swapping the open-source spatial template
/// for the Ascend-like cycle-accurate platform changes nothing in the
/// search code.
pub trait Platform: Sync {
    /// A hardware configuration of this platform.
    type Hw: Clone + Send + Sync + PartialEq + std::fmt::Debug;

    /// Human-readable platform name.
    fn name(&self) -> &str;

    /// Dimensionality of the surrogate feature encoding.
    fn feature_dim(&self) -> usize;

    /// Encodes a configuration as features in `[0, 1]^d` for the GP.
    fn encode(&self, hw: &Self::Hw) -> Vec<f64>;

    /// Samples a uniformly random configuration.
    fn sample_hw(&self, rng: &mut StdRng) -> Self::Hw;

    /// A local perturbation of `hw` (GA mutation / pattern search move).
    fn perturb_hw(&self, rng: &mut StdRng, hw: &Self::Hw) -> Self::Hw;

    /// Recombines two configurations (GA crossover).
    fn crossover_hw(&self, rng: &mut StdRng, a: &Self::Hw, b: &Self::Hw) -> Self::Hw;

    /// Silicon area of a configuration, mm².
    fn area_mm2(&self, hw: &Self::Hw) -> f64;

    /// Cardinality of the hardware design space.
    fn hw_space_size(&self) -> u64;

    /// Binds a PPA cost oracle to `(hw, nest)` for mapping search.
    fn bind<'a>(
        &'a self,
        hw: &Self::Hw,
        nest: &LoopNest,
    ) -> Box<dyn MappingCost + Send + Sync + 'a>;

    /// Scores a whole batch of mappings on one `(hw, nest)` pair,
    /// element `i` corresponding to `mappings[i]`.
    ///
    /// The default binds a cost oracle and delegates to
    /// [`MappingCost::assess_batch`], which PPA-backed adapters override
    /// with a structure-of-arrays path (shared per-batch invariants, one
    /// cache-lock acquisition per shard). Results are bitwise identical
    /// to per-candidate `evaluate`/`assess` calls in slice order.
    fn evaluate_batch(
        &self,
        hw: &Self::Hw,
        nest: &LoopNest,
        mappings: &[Mapping],
    ) -> Vec<Option<MappingOutcome>> {
        self.bind(hw, nest).assess_batch(mappings)
    }

    /// Creates this platform's software-mapping search tool for
    /// `(hw, nest)` (e.g. FlexTensor-style annealing for the spatial
    /// template, depth-first fusion search for the Ascend-like core).
    fn make_searcher(
        &self,
        hw: &Self::Hw,
        nest: &LoopNest,
        seed: u64,
    ) -> Box<dyn MappingSearcher + Send>;

    /// Simulated wall-clock seconds one PPA evaluation costs.
    fn eval_cost_seconds(&self) -> f64;

    /// One-line description of a configuration.
    fn describe(&self, hw: &Self::Hw) -> String;

    /// The evaluation cache the platform threads into every bound cost,
    /// if one is attached. Drivers snapshot its [`EvalCache::stats`]
    /// around a run to report hit rates.
    fn eval_cache(&self) -> Option<&EvalCache> {
        None
    }

    /// Losslessly serializes a configuration as integer words for
    /// checkpointing, or `None` if the platform does not support it.
    /// Must round-trip exactly through [`Platform::hw_from_words`].
    fn hw_words(&self, _hw: &Self::Hw) -> Option<Vec<u64>> {
        None
    }

    /// Rebuilds a configuration from [`Platform::hw_words`] output.
    /// Returns `None` for malformed words or on platforms without
    /// checkpoint support.
    fn hw_from_words(&self, _words: &[u64]) -> Option<Self::Hw> {
        None
    }

    /// Builds a fused-group pricing oracle for `hw` over per-layer
    /// `(nest, best mapping, repeat)` entries — indexed by the id space
    /// the network's fusion edges use, `None` entries marking layers
    /// with no priced mapping yet. Returns `None` when this platform
    /// has no fused cost model; callers then keep the per-layer path.
    fn fusion_pricer<'a>(
        &'a self,
        _hw: &Self::Hw,
        _layers: Vec<Option<(LoopNest, Mapping, u32)>>,
    ) -> Option<Box<dyn crate::fused::FusionPricer + 'a>> {
        None
    }
}

/// Reads the `UNICO_BATCH_EVAL` toggle: `"1"` (or unset) enables the
/// structure-of-arrays batch evaluation path, `"0"` forces the scalar
/// per-candidate path (for bisecting batch-vs-scalar divergence — the
/// two are bitwise identical by construction, so this is a debugging
/// lever, not a semantics switch).
///
/// # Panics
///
/// Panics on any other value: a typo silently flipping the evaluation
/// path would defeat the point of the toggle.
pub fn batch_eval_from_env() -> bool {
    match std::env::var("UNICO_BATCH_EVAL") {
        Ok(v) if v == "1" => true,
        Ok(v) if v == "0" => false,
        Ok(v) => panic!("UNICO_BATCH_EVAL must be \"0\" or \"1\", got {v:?}"),
        Err(_) => true,
    }
}

/// Which analytical PPA engine backs the platform (the paper names both
/// MAESTRO and TimeLoop as interchangeable prototyping engines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PpaEngine {
    /// MAESTRO-flavoured data-centric model (default).
    #[default]
    DataCentric,
    /// TimeLoop-flavoured loop-centric model with an explicit L2 port.
    LoopCentric,
}

/// Which software-mapping search tool the platform hands to the
/// co-optimizer (the paper evaluates FlexTensor and mentions GAMMA as an
/// alternative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MappingTool {
    /// FlexTensor-style simulated annealing (default).
    #[default]
    Annealing,
    /// GAMMA-style genetic search.
    Genetic,
    /// FlexTensor's Q-learning policy variant.
    QLearning,
    /// DOSA-style gradient descent over the differentiable relaxation
    /// of the analytical cost (falls back to random sampling on costs
    /// without a surrogate, e.g. the loop-centric engine).
    Gradient,
}

/// The open-source 2-D spatial accelerator platform: analytical model +
/// enumerated [`HwSpace`] + a configurable mapping search tool.
#[derive(Debug, Clone)]
pub struct SpatialPlatform {
    name: String,
    model: AnalyticalModel,
    space: HwSpace,
    eval_cost_s: f64,
    tool: MappingTool,
    objective: MappingObjective,
    engine: PpaEngine,
    loop_centric: LoopCentricModel,
    cache: Option<Arc<EvalCache>>,
    batch_eval: bool,
}

impl SpatialPlatform {
    /// The edge scenario (power-constrained small configurations).
    pub fn edge() -> Self {
        SpatialPlatform {
            name: "spatial-edge".to_string(),
            model: AnalyticalModel::new(TechParams::default()),
            space: HwSpace::edge(),
            eval_cost_s: 1.0,
            tool: MappingTool::Annealing,
            objective: MappingObjective::Latency,
            engine: PpaEngine::DataCentric,
            loop_centric: LoopCentricModel::new(TechParams::default()),
            cache: None,
            batch_eval: batch_eval_from_env(),
        }
    }

    /// The cloud scenario.
    pub fn cloud() -> Self {
        SpatialPlatform {
            name: "spatial-cloud".to_string(),
            model: AnalyticalModel::new(TechParams::cloud()),
            space: HwSpace::cloud(),
            eval_cost_s: 1.0,
            tool: MappingTool::Annealing,
            objective: MappingObjective::Latency,
            engine: PpaEngine::DataCentric,
            loop_centric: LoopCentricModel::new(TechParams::cloud()),
            cache: None,
            batch_eval: batch_eval_from_env(),
        }
    }

    /// Overrides the simulated per-evaluation cost.
    pub fn with_eval_cost(mut self, seconds: f64) -> Self {
        self.eval_cost_s = seconds;
        self
    }

    /// Selects the software-mapping search tool.
    pub fn with_mapping_tool(mut self, tool: MappingTool) -> Self {
        self.tool = tool;
        self
    }

    /// Selects the software-mapping search objective (latency or EDP).
    pub fn with_objective(mut self, objective: MappingObjective) -> Self {
        self.objective = objective;
        self
    }

    /// Selects the analytical PPA engine.
    pub fn with_engine(mut self, engine: PpaEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Attaches an evaluation cache (or a replay-mode cache loaded from
    /// a golden trace); every bound cost memoizes through it.
    pub fn with_eval_cache(mut self, cache: Arc<EvalCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Overrides the batch-evaluation toggle (the constructors read
    /// [`batch_eval_from_env`]). `false` forces every bound cost onto
    /// the scalar per-candidate path.
    pub fn with_batch_eval(mut self, enabled: bool) -> Self {
        self.batch_eval = enabled;
        self
    }

    /// Whether bound costs use the structure-of-arrays batch path.
    pub fn batch_eval(&self) -> bool {
        self.batch_eval
    }

    /// The configured PPA engine.
    pub fn engine(&self) -> PpaEngine {
        self.engine
    }

    /// The configured mapping tool.
    pub fn mapping_tool(&self) -> MappingTool {
        self.tool
    }

    /// The underlying analytical model.
    pub fn model(&self) -> &AnalyticalModel {
        &self.model
    }

    /// The hardware design space.
    pub fn space(&self) -> &HwSpace {
        &self.space
    }
}

impl Platform for SpatialPlatform {
    type Hw = HwConfig;

    fn name(&self) -> &str {
        &self.name
    }

    fn feature_dim(&self) -> usize {
        6
    }

    fn encode(&self, hw: &HwConfig) -> Vec<f64> {
        self.space.features(hw)
    }

    fn sample_hw(&self, rng: &mut StdRng) -> HwConfig {
        self.space.sample(rng)
    }

    fn perturb_hw(&self, rng: &mut StdRng, hw: &HwConfig) -> HwConfig {
        self.space.perturb(rng, hw)
    }

    fn crossover_hw(&self, rng: &mut StdRng, a: &HwConfig, b: &HwConfig) -> HwConfig {
        self.space.crossover(rng, a, b)
    }

    fn area_mm2(&self, hw: &HwConfig) -> f64 {
        self.model.area_mm2(hw)
    }

    fn hw_space_size(&self) -> u64 {
        self.space.size()
    }

    fn bind<'a>(
        &'a self,
        hw: &HwConfig,
        nest: &LoopNest,
    ) -> Box<dyn MappingCost + Send + Sync + 'a> {
        let cache = self.cache.as_deref();
        match self.engine {
            PpaEngine::DataCentric => Box::new(
                BoundSpatialCost::new(&self.model, *hw, *nest, self.eval_cost_s)
                    .with_objective(self.objective)
                    .with_cache(cache)
                    .with_batch_eval(self.batch_eval),
            ),
            PpaEngine::LoopCentric => Box::new(
                BoundLoopCentricCost::new(&self.loop_centric, *hw, *nest, self.eval_cost_s)
                    .with_objective(self.objective)
                    .with_cache(cache)
                    .with_batch_eval(self.batch_eval),
            ),
        }
    }

    fn make_searcher(
        &self,
        _hw: &HwConfig,
        nest: &LoopNest,
        seed: u64,
    ) -> Box<dyn MappingSearcher + Send> {
        let space = MappingSpace::new(nest);
        let rng = StdRng::seed_from_u64(seed);
        match self.tool {
            MappingTool::Annealing => Box::new(AnnealingSearch::new(space, rng)),
            MappingTool::Genetic => {
                Box::new(GeneticSearch::new(space, rng, GeneticConfig::default()))
            }
            MappingTool::QLearning => Box::new(QLearningSearch::new(space, rng)),
            MappingTool::Gradient => Box::new(GradientSearcher::new(space, rng)),
        }
    }

    fn eval_cost_seconds(&self) -> f64 {
        self.eval_cost_s
    }

    fn describe(&self, hw: &HwConfig) -> String {
        hw.to_string()
    }

    fn eval_cache(&self) -> Option<&EvalCache> {
        self.cache.as_deref()
    }

    fn hw_words(&self, hw: &HwConfig) -> Option<Vec<u64>> {
        Some(vec![
            hw.pe_x() as u64,
            hw.pe_y() as u64,
            hw.l1_bytes(),
            hw.l2_bytes(),
            hw.noc_bytes_per_cycle() as u64,
            match hw.dataflow() {
                Dataflow::WeightStationary => 0,
                Dataflow::OutputStationary => 1,
            },
        ])
    }

    fn fusion_pricer<'a>(
        &'a self,
        hw: &HwConfig,
        layers: Vec<Option<(LoopNest, Mapping, u32)>>,
    ) -> Option<Box<dyn crate::fused::FusionPricer + 'a>> {
        // Fused accounting mirrors the data-centric arithmetic; the
        // loop-centric engine keeps the per-layer path.
        match self.engine {
            PpaEngine::DataCentric => Some(Box::new(crate::fused::FusedCostOracle::new(
                &self.model,
                *hw,
                layers,
            ))),
            PpaEngine::LoopCentric => None,
        }
    }

    fn hw_from_words(&self, words: &[u64]) -> Option<HwConfig> {
        let &[pe_x, pe_y, l1, l2, noc, df] = words else {
            return None;
        };
        let dataflow = match df {
            0 => Dataflow::WeightStationary,
            1 => Dataflow::OutputStationary,
            _ => return None,
        };
        if pe_x == 0 || pe_y == 0 || l1 == 0 || l2 == 0 || noc == 0 {
            return None;
        }
        Some(HwConfig::new(
            u32::try_from(pe_x).ok()?,
            u32::try_from(pe_y).ok()?,
            l1,
            l2,
            u32::try_from(noc).ok()?,
            dataflow,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unico_workloads::TensorOp;

    #[test]
    fn platform_end_to_end_mapping_search() {
        let p = SpatialPlatform::edge();
        let mut rng = StdRng::seed_from_u64(11);
        let nest = TensorOp::Conv2d {
            n: 1,
            k: 32,
            c: 16,
            y: 14,
            x: 14,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest();
        // Find a config for which at least some mappings are feasible.
        let mut done = false;
        for _ in 0..50 {
            let hw = p.sample_hw(&mut rng);
            let cost = p.bind(&hw, &nest);
            let mut s = p.make_searcher(&hw, &nest, 7);
            s.run_until(cost.as_ref(), 60);
            if s.best().is_some() {
                assert!(s.history().terminal_value().is_finite());
                done = true;
                break;
            }
        }
        assert!(done, "no feasible mapping found on any sampled config");
    }

    #[test]
    fn encode_matches_feature_dim() {
        let p = SpatialPlatform::cloud();
        let mut rng = StdRng::seed_from_u64(1);
        let hw = p.sample_hw(&mut rng);
        assert_eq!(p.encode(&hw).len(), p.feature_dim());
        assert!(p.hw_space_size() > 1_000_000);
        assert!(!p.describe(&hw).is_empty());
        assert_eq!(p.name(), "spatial-cloud");
    }

    #[test]
    fn all_mapping_tools_search_successfully() {
        let nest = TensorOp::Conv2d {
            n: 1,
            k: 32,
            c: 16,
            y: 14,
            x: 14,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest();
        for tool in [
            MappingTool::Annealing,
            MappingTool::Genetic,
            MappingTool::QLearning,
            MappingTool::Gradient,
        ] {
            let p = SpatialPlatform::edge().with_mapping_tool(tool);
            assert_eq!(p.mapping_tool(), tool);
            let mut rng = StdRng::seed_from_u64(21);
            let mut found = false;
            for _ in 0..30 {
                let hw = p.sample_hw(&mut rng);
                let cost = p.bind(&hw, &nest);
                let mut s = p.make_searcher(&hw, &nest, 9);
                s.run_until(cost.as_ref(), 80);
                assert_eq!(s.history().spent(), 80);
                if s.best().is_some() {
                    found = true;
                    break;
                }
            }
            assert!(found, "{tool:?} found no feasible mapping");
        }
    }

    #[test]
    fn loop_centric_engine_prices_mappings() {
        let p = SpatialPlatform::edge().with_engine(PpaEngine::LoopCentric);
        assert_eq!(p.engine(), PpaEngine::LoopCentric);
        let nest = TensorOp::Conv2d {
            n: 1,
            k: 32,
            c: 16,
            y: 14,
            x: 14,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest();
        let mut rng = StdRng::seed_from_u64(31);
        let mut found = false;
        for _ in 0..30 {
            let hw = p.sample_hw(&mut rng);
            let cost = p.bind(&hw, &nest);
            let mut s = p.make_searcher(&hw, &nest, 13);
            s.run_until(cost.as_ref(), 60);
            if s.best().is_some() {
                found = true;
                break;
            }
        }
        assert!(found, "loop-centric engine found no feasible mapping");
    }

    #[test]
    fn hw_words_round_trip_exactly() {
        let p = SpatialPlatform::edge();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..32 {
            let hw = p.sample_hw(&mut rng);
            let words = p.hw_words(&hw).expect("spatial supports checkpointing");
            let back = p.hw_from_words(&words).expect("words round-trip");
            assert_eq!(back, hw);
        }
        assert!(p.hw_from_words(&[1, 2, 3]).is_none());
        assert!(p.hw_from_words(&[4, 8, 1024, 65536, 64, 7]).is_none());
        assert!(p.hw_from_words(&[0, 8, 1024, 65536, 64, 0]).is_none());
    }

    #[test]
    fn evaluate_batch_matches_scalar_assess_bitwise() {
        let nest = TensorOp::Conv2d {
            n: 1,
            k: 32,
            c: 16,
            y: 14,
            x: 14,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest();
        for engine in [PpaEngine::DataCentric, PpaEngine::LoopCentric] {
            for batch_on in [true, false] {
                let p = SpatialPlatform::edge()
                    .with_engine(engine)
                    .with_batch_eval(batch_on);
                assert_eq!(p.batch_eval(), batch_on);
                let mut rng = StdRng::seed_from_u64(41);
                let hw = p.sample_hw(&mut rng);
                let space = MappingSpace::new(&nest);
                let mappings: Vec<_> = (0..24).map(|_| space.sample(&mut rng)).collect();
                let batched = p.evaluate_batch(&hw, &nest, &mappings);
                let cost = p.bind(&hw, &nest);
                for (m, b) in mappings.iter().zip(&batched) {
                    let s = cost.assess(m);
                    match (s, b) {
                        (None, None) => {}
                        (Some(s), Some(b)) => {
                            assert_eq!(s.loss.to_bits(), b.loss.to_bits());
                            assert_eq!(s.latency_s.to_bits(), b.latency_s.to_bits());
                            assert_eq!(s.power_mw.to_bits(), b.power_mw.to_bits());
                        }
                        (s, b) => panic!("feasibility diverged: scalar {s:?} batch {b:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn eval_cost_override() {
        let p = SpatialPlatform::edge().with_eval_cost(3.5);
        assert_eq!(p.eval_cost_seconds(), 3.5);
        let nest = TensorOp::Gemm { m: 8, n: 8, k: 8 }.to_loop_nest();
        let mut rng = StdRng::seed_from_u64(2);
        let hw = p.sample_hw(&mut rng);
        assert_eq!(p.bind(&hw, &nest).eval_cost_seconds(), 3.5);
    }
}
