//! Sharded, lock-striped memoization cache for PPA evaluations, with
//! deterministic record/replay.
//!
//! UNICO's outer loop prices the same `(hardware, mapping, nest)` points
//! thousands of times across successive-halving rounds, MOBO iterations
//! and the robustness sweep. [`EvalCache`] sits in front of the PPA
//! engines (`AnalyticalModel`, `LoopCentricModel` and the Ascend-like
//! cycle model) and memoizes `Result<Ppa, EvalError>` values under a
//! canonical 128-bit key ([`EvalKey`]) derived with the stable hasher
//! from `unico-mapping`, so keys survive process restarts and can name
//! entries in on-disk golden traces.
//!
//! Keys canonicalize the mapping via
//! [`CanonicalMapping`](unico_mapping::CanonicalMapping): unit loops are
//! dropped and reduction runs sorted, so semantically identical mappings
//! share one entry — which is where most of the hit rate comes from.
//!
//! The cache is striped over [`SHARD_COUNT`] shards, each an independent
//! `Mutex<HashMap>` with its own hit/miss/eviction counters, so
//! concurrent mapping-search workers rarely contend. A miss computes
//! **while holding the shard lock**: the same key is never evaluated
//! twice, which keeps miss counts (and therefore run reports) exactly
//! reproducible regardless of thread interleaving.
//!
//! # Record / replay
//!
//! [`EvalCache::to_trace`] serializes every entry to a compact,
//! line-oriented golden trace (keys in hex, floats as IEEE-754 bit
//! patterns, entries sorted by key — byte-for-byte reproducible).
//! [`EvalCache::from_trace`] reconstructs a cache in *replay* mode: every
//! lookup must hit, and a miss panics with the offending key. Driving a
//! seeded run against a replayed trace therefore proves bit-for-bit
//! determinism of the whole search stack.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use unico_mapping::{CanonicalMapping, Mapping, StableHasher};
use unico_workloads::LoopNest;

use crate::analytical::MappingObjective;
use crate::disktier::{DiskTier, DiskTierStats};
use crate::hw::{Dataflow, HwConfig};
use crate::ppa::{EvalError, Ppa};

/// A memoized evaluation outcome: infeasibilities are cached too, so
/// repeated probing of an overflowing tile is as cheap as a hit.
pub type EvalResult = Result<Ppa, EvalError>;

/// Number of lock stripes. Power of two; sized for the default 16-worker
/// mapping engine.
pub const SHARD_COUNT: usize = 16;

/// Header line of the golden-trace format.
pub const TRACE_HEADER: &str = "unico.evaltrace.v1";

/// A canonical, platform-stable 128-bit cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EvalKey(u128);

impl EvalKey {
    /// Renders the key as 32 lowercase hex digits (the trace format).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses a key from its hex form.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(EvalKey)
    }

    pub(crate) fn shard(self) -> usize {
        // High bits come out of the avalanche finisher: uniformly mixed.
        ((self.0 >> 64) as usize) % SHARD_COUNT
    }
}

/// Which PPA engine produced the value. Part of the key: the engines
/// disagree on purpose, and their entries must never alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineTag {
    /// `AnalyticalModel` (data-centric traffic accounting).
    DataCentric,
    /// `LoopCentricModel` (per-level loop-centric accounting).
    LoopCentric,
    /// The Ascend-like cycle model in `unico-camodel`.
    Ascend,
    /// Fused-group re-pricing of a member layer (intermediates held
    /// on-chip). Distinct tag: a fused member's PPA differs from its
    /// standalone `DataCentric` value under the same `(hw, mapping,
    /// nest)`, so the entries must never alias.
    FusedGroup,
}

impl EngineTag {
    fn code(self) -> u8 {
        match self {
            EngineTag::DataCentric => 0,
            EngineTag::LoopCentric => 1,
            EngineTag::Ascend => 2,
            EngineTag::FusedGroup => 3,
        }
    }
}

/// Incremental builder for [`EvalKey`]s.
///
/// The spatial platforms use [`spatial_eval_key`]; the Ascend platform
/// assembles its key manually because its hardware type lives in a
/// downstream crate — it feeds `AscendConfig` fields through
/// [`EvalKeyBuilder::word`] and hashes only tile extents
/// ([`EvalKeyBuilder::mapping_tiles`]) since the cycle model is blind to
/// temporal order and spatial placement.
///
/// The builder is `Clone` (the underlying hasher state is two words), so
/// batched key building hashes the shared `(engine, hardware, nest)`
/// prefix once and forks a copy per candidate — the byte stream, and
/// therefore the key, is identical to building each key from scratch.
#[derive(Debug, Clone)]
pub struct EvalKeyBuilder {
    h: StableHasher,
}

impl EvalKeyBuilder {
    /// Starts a key for the given engine.
    pub fn new(tag: EngineTag) -> Self {
        let mut h = StableHasher::new();
        h.write_u8(tag.code());
        EvalKeyBuilder { h }
    }

    /// Feeds one raw machine word (hardware parameters, strides, …).
    pub fn word(&mut self, w: u64) -> &mut Self {
        self.h.write_u64(w);
        self
    }

    /// Feeds the loop nest: the seven extents, strides and the depthwise
    /// flag.
    pub fn nest(&mut self, nest: &LoopNest) -> &mut Self {
        for e in nest.extents() {
            self.h.write_u64(e);
        }
        self.h.write_u64(nest.stride_y());
        self.h.write_u64(nest.stride_x());
        self.h.write_bool(nest.is_depthwise());
        self
    }

    /// Feeds the full canonical mapping (tiles, canonical order,
    /// spatial dims) — for order-sensitive engines. Materializes the
    /// canonical form; the batched key builders stream the identical
    /// bytes allocation-free via
    /// [`CanonicalMapping::hash_mapping_into`] instead.
    pub fn mapping_full(&mut self, mapping: &Mapping, nest: &LoopNest) -> &mut Self {
        CanonicalMapping::of(mapping, nest).hash_into(&mut self.h);
        self
    }

    /// Feeds only the tile extents — for engines blind to order and
    /// spatial placement.
    pub fn mapping_tiles(&mut self, mapping: &Mapping, nest: &LoopNest) -> &mut Self {
        CanonicalMapping::of(mapping, nest).hash_tiles_into(&mut self.h);
        self
    }

    /// Feeds arbitrary bytes through a caller-provided closure over the
    /// raw hasher — the batched structure-of-arrays path hashes mapping
    /// rows directly (see `MappingBatch::hash_full_into`) without
    /// materializing a `CanonicalMapping`.
    pub fn write_with(&mut self, f: impl FnOnce(&mut StableHasher)) -> &mut Self {
        f(&mut self.h);
        self
    }

    /// Feeds the optimization objective.
    pub fn objective(&mut self, objective: MappingObjective) -> &mut Self {
        self.h.write_u8(match objective {
            MappingObjective::Latency => 0,
            MappingObjective::Edp => 1,
        });
        self
    }

    /// Finishes into the 128-bit key.
    pub fn finish(&self) -> EvalKey {
        EvalKey(self.h.finish128())
    }
}

/// The shared `(engine, hardware, nest)` key prefix of
/// [`spatial_eval_key`]. Batched lookups build this once per batch and
/// clone it per candidate; the scalar path goes through it too, so the
/// two paths hash one byte stream by construction.
pub fn spatial_key_prefix(tag: EngineTag, hw: &HwConfig, nest: &LoopNest) -> EvalKeyBuilder {
    let mut b = EvalKeyBuilder::new(tag);
    b.word(u64::from(hw.pe_x()))
        .word(u64::from(hw.pe_y()))
        .word(hw.l1_bytes())
        .word(hw.l2_bytes())
        .word(u64::from(hw.noc_bytes_per_cycle()))
        .word(match hw.dataflow() {
            Dataflow::WeightStationary => 0,
            Dataflow::OutputStationary => 1,
        })
        .nest(nest);
    b
}

/// The canonical key for the 2-D spatial platform engines.
pub fn spatial_eval_key(
    tag: EngineTag,
    hw: &HwConfig,
    mapping: &Mapping,
    nest: &LoopNest,
    objective: MappingObjective,
) -> EvalKey {
    let mut b = spatial_key_prefix(tag, hw, nest);
    b.mapping_full(mapping, nest).objective(objective);
    b.finish()
}

/// Aggregated cache counters (summed over shards).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries dropped by per-shard FIFO eviction.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; `0` when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }

    /// Counter deltas since an `earlier` snapshot (entries reported
    /// as-is: it is a level, not a counter).
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            entries: self.entries,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Compute on miss (the normal memoization mode; also records).
    Record,
    /// Resolve from pre-loaded entries only; a miss panics.
    Replay,
}

/// Pass-through hasher for the shard maps. An [`EvalKey`] is already a
/// 128-bit avalanched hash (two decorrelated fmix64 lanes), so pushing
/// it through SipHash again is pure per-lookup overhead on both the
/// scalar and batched paths. The map hash is the key's low 64 bits;
/// shard selection uses the high 64, so bucket and shard indices stay
/// decorrelated.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PassThroughHasher(u64);

impl std::hash::Hasher for PassThroughHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("EvalKey hashes itself via write_u128 only");
    }
    fn write_u128(&mut self, n: u128) {
        self.0 = n as u64;
    }
}

#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PassThroughState;

impl std::hash::BuildHasher for PassThroughState {
    type Hasher = PassThroughHasher;
    fn build_hasher(&self) -> PassThroughHasher {
        PassThroughHasher(0)
    }
}

#[derive(Debug, Default)]
struct ShardMap {
    entries: HashMap<EvalKey, EvalResult, PassThroughState>,
    fifo: VecDeque<EvalKey>,
}

#[derive(Debug, Default)]
struct Shard {
    map: Mutex<ShardMap>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Counters of the batched lookup path (separate from [`CacheStats`],
/// whose hit/miss/eviction accounting is identical across the scalar
/// and batch paths by design).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Non-empty [`EvalCache::get_or_compute_batch`] calls served.
    pub lookups: u64,
    /// Keys resolved through those calls (summed batch sizes).
    pub keys: u64,
}

impl BatchStats {
    /// Counter increments since `earlier`.
    #[must_use]
    pub fn delta_since(&self, earlier: &BatchStats) -> BatchStats {
        BatchStats {
            lookups: self.lookups - earlier.lookups,
            keys: self.keys - earlier.keys,
        }
    }
}

/// Sharded concurrent memoization cache for PPA evaluations. See the
/// module docs for design and determinism guarantees.
#[derive(Debug)]
pub struct EvalCache {
    shards: Vec<Shard>,
    capacity_per_shard: Option<usize>,
    mode: Mode,
    batch_lookups: AtomicU64,
    batch_keys: AtomicU64,
    /// Optional second tier: consulted on an in-memory miss before
    /// computing, fed with every fresh compute. A disk hit still counts
    /// as an in-memory **miss**, so [`CacheStats`] — and therefore run
    /// reports and traces — are byte-identical with the tier cold, warm
    /// or absent; only [`DiskTier::stats`] differs.
    disk: Option<std::sync::Arc<DiskTier>>,
}

impl Default for EvalCache {
    fn default() -> Self {
        EvalCache::new()
    }
}

impl EvalCache {
    /// An unbounded cache (the default for search runs: the working set
    /// is a few thousand entries of ~50 bytes).
    pub fn new() -> Self {
        EvalCache {
            shards: (0..SHARD_COUNT).map(|_| Shard::default()).collect(),
            capacity_per_shard: None,
            mode: Mode::Record,
            batch_lookups: AtomicU64::new(0),
            batch_keys: AtomicU64::new(0),
            disk: None,
        }
    }

    /// Attaches an on-disk second tier (see [`DiskTier`]): in-memory
    /// misses consult the tier before computing, and fresh computes are
    /// recorded for its next segment flush. Replay-mode caches never
    /// have a tier — replay resolves from the golden trace only.
    #[must_use]
    pub fn with_disk(mut self, tier: std::sync::Arc<DiskTier>) -> Self {
        self.disk = Some(tier);
        self
    }

    /// The attached disk tier, if any.
    pub fn disk(&self) -> Option<&std::sync::Arc<DiskTier>> {
        self.disk.as_ref()
    }

    /// Flushes the disk tier's pending entries (no-op without a tier).
    /// Returns the number of entries written.
    pub fn flush_disk(&self) -> usize {
        self.disk.as_ref().map_or(0, |d| d.flush())
    }

    /// Re-scans the disk tier for segments flushed by peer workers
    /// (no-op without a tier). Returns the number of entries merged.
    pub fn refresh_disk(&self) -> usize {
        self.disk
            .as_ref()
            .and_then(|d| d.refresh().ok())
            .unwrap_or(0)
    }

    /// Disk-tier counters, when a tier is attached.
    pub fn disk_stats(&self) -> Option<DiskTierStats> {
        self.disk.as_ref().map(|d| d.stats())
    }

    /// The process-wide shared cache, created on first use.
    ///
    /// Keys are engine-tagged and platform-stable, so one cache safely
    /// serves evaluations from every platform in the process — the
    /// spatial analytical engines and the Ascend-like cycle model never
    /// alias. `unico-served` attaches this (or its own instance) to
    /// every job's platform so identical `(hw, mapping)` points
    /// submitted by different users are priced once.
    pub fn process_shared() -> std::sync::Arc<EvalCache> {
        static SHARED: std::sync::OnceLock<std::sync::Arc<EvalCache>> = std::sync::OnceLock::new();
        std::sync::Arc::clone(SHARED.get_or_init(|| std::sync::Arc::new(EvalCache::new())))
    }

    /// Bounds every shard to `cap` entries with FIFO eviction.
    pub fn with_capacity_per_shard(cap: usize) -> Self {
        EvalCache {
            capacity_per_shard: Some(cap.max(1)),
            ..EvalCache::new()
        }
    }

    /// `true` when the cache was loaded with [`EvalCache::from_trace`]
    /// and resolves lookups from the trace only.
    pub fn is_replay(&self) -> bool {
        self.mode == Mode::Replay
    }

    /// Looks `key` up, computing and memoizing on a miss.
    ///
    /// The compute runs under the shard lock, so each key is evaluated
    /// at most once per cache lifetime and the miss counter equals the
    /// number of distinct keys seen — independent of thread timing. In
    /// replay mode a miss panics: the golden trace does not cover the
    /// requested evaluation.
    pub fn get_or_compute(&self, key: EvalKey, compute: impl FnOnce() -> EvalResult) -> EvalResult {
        let shard = &self.shards[key.shard()];
        let mut map = shard.map.lock().expect("evalcache shard poisoned");
        if let Some(v) = map.entries.get(&key) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            return *v;
        }
        assert!(
            self.mode != Mode::Replay,
            "evalcache replay miss: key {} is not in the golden trace \
             (the run diverged from the recorded one)",
            key.to_hex()
        );
        shard.misses.fetch_add(1, Ordering::Relaxed);
        let v = match self.disk.as_ref().and_then(|d| d.lookup(key)) {
            Some(v) => v,
            None => {
                let v = compute();
                if let Some(d) = &self.disk {
                    d.record(key, v);
                }
                v
            }
        };
        map.entries.insert(key, v);
        map.fifo.push_back(key);
        if let Some(cap) = self.capacity_per_shard {
            while map.entries.len() > cap {
                if let Some(old) = map.fifo.pop_front() {
                    map.entries.remove(&old);
                    shard.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        v
    }

    /// Resolves a whole batch of keys in **one sharded pass**: keys are
    /// grouped by shard, each shard's lock is acquired exactly once, and
    /// the shard's keys are processed in ascending batch order with
    /// evict-as-you-go — so hits, misses, evictions and the resident
    /// entry set are identical to per-key [`EvalCache::get_or_compute`]
    /// calls in batch order (including a key recomputing after a
    /// mid-batch eviction under capacity pressure). Counter updates are
    /// accumulated locally and flushed with a single atomic add per
    /// counter per shard, instead of one lock acquisition and up to two
    /// atomic increments per candidate.
    ///
    /// `compute(i)` prices candidate `i`; it runs under the shard lock,
    /// preserving the compute-once-per-key guarantee. In replay mode a
    /// miss panics exactly as in the scalar path.
    pub fn get_or_compute_batch(
        &self,
        keys: &[EvalKey],
        mut compute: impl FnMut(usize) -> EvalResult,
    ) -> Vec<EvalResult> {
        if !keys.is_empty() {
            self.batch_lookups.fetch_add(1, Ordering::Relaxed);
            self.batch_keys
                .fetch_add(keys.len() as u64, Ordering::Relaxed);
        }
        let mut out: Vec<Option<EvalResult>> = vec![None; keys.len()];
        let mut by_shard: [Vec<usize>; SHARD_COUNT] = std::array::from_fn(|_| Vec::new());
        for (i, k) in keys.iter().enumerate() {
            by_shard[k.shard()].push(i);
        }
        for (s, idxs) in by_shard.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let shard = &self.shards[s];
            let (mut hits, mut misses, mut evictions) = (0u64, 0u64, 0u64);
            let mut map = shard.map.lock().expect("evalcache shard poisoned");
            for &i in idxs {
                let key = keys[i];
                if let Some(v) = map.entries.get(&key) {
                    hits += 1;
                    out[i] = Some(*v);
                    continue;
                }
                assert!(
                    self.mode != Mode::Replay,
                    "evalcache replay miss: key {} is not in the golden trace \
                     (the run diverged from the recorded one)",
                    key.to_hex()
                );
                misses += 1;
                let v = match self.disk.as_ref().and_then(|d| d.lookup(key)) {
                    Some(v) => v,
                    None => {
                        let v = compute(i);
                        if let Some(d) = &self.disk {
                            d.record(key, v);
                        }
                        v
                    }
                };
                map.entries.insert(key, v);
                map.fifo.push_back(key);
                if let Some(cap) = self.capacity_per_shard {
                    while map.entries.len() > cap {
                        if let Some(old) = map.fifo.pop_front() {
                            map.entries.remove(&old);
                            evictions += 1;
                        }
                    }
                }
                out[i] = Some(v);
            }
            drop(map);
            if hits > 0 {
                shard.hits.fetch_add(hits, Ordering::Relaxed);
            }
            if misses > 0 {
                shard.misses.fetch_add(misses, Ordering::Relaxed);
            }
            if evictions > 0 {
                shard.evictions.fetch_add(evictions, Ordering::Relaxed);
            }
        }
        out.into_iter()
            .map(|v| v.expect("every batch key resolved"))
            .collect()
    }

    /// Peeks without computing or counting a miss (hits still count).
    pub fn get(&self, key: EvalKey) -> Option<EvalResult> {
        let shard = &self.shards[key.shard()];
        let map = shard.map.lock().expect("evalcache shard poisoned");
        let v = map.entries.get(&key).copied();
        if v.is_some() {
            shard.hits.fetch_add(1, Ordering::Relaxed);
        }
        v
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.map
                    .lock()
                    .expect("evalcache shard poisoned")
                    .entries
                    .len()
            })
            .sum()
    }

    /// `true` when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated counters across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for shard in &self.shards {
            s.hits += shard.hits.load(Ordering::Relaxed);
            s.misses += shard.misses.load(Ordering::Relaxed);
            s.evictions += shard.evictions.load(Ordering::Relaxed);
            s.entries += shard
                .map
                .lock()
                .expect("evalcache shard poisoned")
                .entries
                .len() as u64;
        }
        s
    }

    /// Counters of the batched lookup path (see [`BatchStats`]).
    pub fn batch_stats(&self) -> BatchStats {
        BatchStats {
            lookups: self.batch_lookups.load(Ordering::Relaxed),
            keys: self.batch_keys.load(Ordering::Relaxed),
        }
    }

    /// Serializes every entry to the golden-trace format: a header line
    /// `unico.evaltrace.v1 <count>`, then one `<key-hex> <value>` line
    /// per entry, sorted by key. Floats are IEEE-754 bit patterns in
    /// hex, so the output is byte-for-byte reproducible.
    pub fn to_trace(&self) -> String {
        let mut entries: Vec<(EvalKey, EvalResult)> = Vec::new();
        for shard in &self.shards {
            let map = shard.map.lock().expect("evalcache shard poisoned");
            entries.extend(map.entries.iter().map(|(k, v)| (*k, *v)));
        }
        entries.sort_by_key(|(k, _)| *k);
        let mut out = String::with_capacity(16 + entries.len() * 120);
        out.push_str(TRACE_HEADER);
        out.push(' ');
        out.push_str(&entries.len().to_string());
        out.push('\n');
        for (k, v) in &entries {
            out.push_str(&k.to_hex());
            out.push(' ');
            encode_result(v, &mut out);
            out.push('\n');
        }
        out
    }

    /// Reconstructs a **replay-mode** cache from a golden trace produced
    /// by [`EvalCache::to_trace`]. Lookups resolve from the trace only;
    /// a miss panics.
    pub fn from_trace(text: &str) -> Result<Self, TraceError> {
        let entries = parse_trace_entries(text)?;
        let mut cache = EvalCache::new();
        cache.mode = Mode::Replay;
        for (key, value) in entries {
            let shard = &cache.shards[key.shard()];
            let mut map = shard.map.lock().expect("evalcache shard poisoned");
            map.entries.insert(key, value);
            map.fifo.push_back(key);
        }
        Ok(cache)
    }

    /// Pre-populates this cache with every entry of a golden trace,
    /// leaving the mode and all hit/miss/eviction counters untouched
    /// (entries the cache already holds are kept as-is). Checkpoint
    /// resume uses this to rebuild a *record-mode* cache through an
    /// existing `Arc`: the resumed run re-hits exactly the entries the
    /// interrupted run had computed, so its hit/miss deltas line up with
    /// the uninterrupted run's.
    ///
    /// Returns the number of entries inserted.
    pub fn load_trace(&self, text: &str) -> Result<usize, TraceError> {
        let loaded = EvalCache::from_trace(text)?;
        let mut inserted = 0usize;
        for shard in &loaded.shards {
            let map = shard.map.lock().expect("evalcache shard poisoned");
            for (k, v) in map.entries.iter() {
                let dst = &self.shards[k.shard()];
                let mut dst_map = dst.map.lock().expect("evalcache shard poisoned");
                if dst_map.entries.contains_key(k) {
                    continue;
                }
                dst_map.entries.insert(*k, *v);
                dst_map.fifo.push_back(*k);
                drop(dst_map);
                // Resume repopulates the disk tier too: entries the
                // interrupted run computed but never flushed become
                // durable after the resumed run's next flush.
                if let Some(d) = &self.disk {
                    d.record(*k, *v);
                }
                inserted += 1;
            }
        }
        Ok(inserted)
    }
}

/// Parses a full golden trace into `(key, value)` pairs, enforcing the
/// header count. Shared by [`EvalCache::from_trace`] and the disk
/// tier's segment loader — a truncated segment fails the count check
/// here and is skipped by the tier.
pub(crate) fn parse_trace_entries(text: &str) -> Result<Vec<(EvalKey, EvalResult)>, TraceError> {
    if !text.is_empty() && !text.ends_with('\n') {
        // Every writer terminates the last line; a missing newline is a
        // mid-line truncation that per-field parsing cannot always
        // catch (a shortened trailing hex field still parses).
        return Err(TraceError::Truncated);
    }
    let mut lines = text.lines();
    let header = lines.next().ok_or(TraceError::MissingHeader)?;
    let mut parts = header.split(' ');
    if parts.next() != Some(TRACE_HEADER) {
        return Err(TraceError::BadHeader);
    }
    let count: usize = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or(TraceError::BadHeader)?;
    let mut entries = Vec::with_capacity(count);
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let (key_hex, rest) = line.split_once(' ').ok_or(TraceError::BadLine(i + 2))?;
        let key = EvalKey::from_hex(key_hex).ok_or(TraceError::BadLine(i + 2))?;
        let value = decode_result(rest).ok_or(TraceError::BadLine(i + 2))?;
        entries.push((key, value));
    }
    if entries.len() != count {
        return Err(TraceError::CountMismatch {
            declared: count,
            found: entries.len(),
        });
    }
    Ok(entries)
}

pub(crate) fn encode_result(v: &EvalResult, out: &mut String) {
    use std::fmt::Write;
    match v {
        Ok(p) => {
            let _ = write!(
                out,
                "P {:016x} {:016x} {:016x} {:016x}",
                p.latency_s.to_bits(),
                p.power_mw.to_bits(),
                p.area_mm2.to_bits(),
                p.energy_pj.to_bits()
            );
        }
        Err(EvalError::L1Overflow {
            required,
            available,
        }) => {
            let _ = write!(out, "E1 {required} {available}");
        }
        Err(EvalError::L2Overflow {
            required,
            available,
        }) => {
            let _ = write!(out, "E2 {required} {available}");
        }
        Err(EvalError::DegenerateSpatial) => out.push_str("ES"),
    }
}

fn decode_result(s: &str) -> Option<EvalResult> {
    let mut parts = s.split(' ');
    match parts.next()? {
        "P" => {
            let mut next_f64 = || -> Option<f64> {
                let field = parts.next()?;
                // Writers emit exactly 16 hex digits; anything shorter
                // is a torn field.
                if field.len() != 16 {
                    return None;
                }
                u64::from_str_radix(field, 16).ok().map(f64::from_bits)
            };
            let latency_s = next_f64()?;
            let power_mw = next_f64()?;
            let area_mm2 = next_f64()?;
            let energy_pj = next_f64()?;
            Some(Ok(Ppa {
                latency_s,
                power_mw,
                area_mm2,
                energy_pj,
            }))
        }
        "E1" => Some(Err(EvalError::L1Overflow {
            required: parts.next()?.parse().ok()?,
            available: parts.next()?.parse().ok()?,
        })),
        "E2" => Some(Err(EvalError::L2Overflow {
            required: parts.next()?.parse().ok()?,
            available: parts.next()?.parse().ok()?,
        })),
        "ES" => Some(Err(EvalError::DegenerateSpatial)),
        _ => None,
    }
}

/// Golden-trace parse failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// The trace is empty.
    MissingHeader,
    /// The header line is not `unico.evaltrace.v1 <count>`.
    BadHeader,
    /// An entry line (1-based) failed to parse.
    BadLine(usize),
    /// The text does not end in a newline: the final line was cut
    /// mid-write (only complete, writer-terminated traces are trusted).
    Truncated,
    /// The header count disagrees with the number of entry lines.
    CountMismatch {
        /// Count declared in the header.
        declared: usize,
        /// Entry lines actually parsed.
        found: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::MissingHeader => write!(f, "golden trace is empty"),
            TraceError::BadHeader => {
                write!(f, "golden trace header is not `{TRACE_HEADER} <count>`")
            }
            TraceError::BadLine(n) => write!(f, "golden trace line {n} failed to parse"),
            TraceError::Truncated => {
                write!(f, "golden trace is truncated (no terminating newline)")
            }
            TraceError::CountMismatch { declared, found } => write!(
                f,
                "golden trace declares {declared} entries but contains {found}"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn key(n: u128) -> EvalKey {
        EvalKey(n)
    }

    fn ppa(lat: f64) -> EvalResult {
        Ok(Ppa {
            latency_s: lat,
            power_mw: 2.0 * lat,
            area_mm2: 1.5,
            energy_pj: 10.0 * lat,
        })
    }

    #[test]
    fn process_shared_returns_one_instance() {
        let a = EvalCache::process_shared();
        let b = EvalCache::process_shared();
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        // Entries inserted through one handle are visible through the
        // other (same underlying cache).
        let probe = key(0x5eed_cafe);
        a.get_or_compute(probe, || ppa(0.25)).unwrap();
        assert_eq!(b.get(probe), Some(ppa(0.25)));
    }

    #[test]
    fn computes_once_per_key_and_counts() {
        let cache = EvalCache::new();
        let calls = AtomicUsize::new(0);
        for _ in 0..5 {
            let v = cache.get_or_compute(key(42), || {
                calls.fetch_add(1, Ordering::Relaxed);
                ppa(0.5)
            });
            assert_eq!(v, ppa(0.5));
        }
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (4, 1, 1));
        assert!((s.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn errors_are_memoized_too() {
        let cache = EvalCache::new();
        let err = Err(EvalError::L1Overflow {
            required: 100,
            available: 64,
        });
        assert_eq!(cache.get_or_compute(key(7), || err), err);
        assert_eq!(cache.get_or_compute(key(7), || panic!("recompute")), err);
    }

    #[test]
    fn fifo_eviction_is_counted() {
        let cache = EvalCache::with_capacity_per_shard(2);
        // Same shard: keys differ only in low 64 bits.
        let base = 5u128 << 64;
        for i in 0..4u128 {
            let _ = cache.get_or_compute(key(base | i), || ppa(i as f64 + 1.0));
        }
        let s = cache.stats();
        assert_eq!(s.evictions, 2);
        assert_eq!(s.entries, 2);
        // Oldest two were evicted; newest two still resident.
        assert!(cache.get(key(base)).is_none());
        assert!(cache.get(key(base | 3)).is_some());
    }

    #[test]
    fn batch_lookup_matches_scalar_counters_and_contents() {
        // Keys spread over several shards, with duplicates inside the
        // batch: the batched pass must produce exactly the scalar
        // counters and resident set.
        let keys: Vec<EvalKey> = [0u128, 1, 2, 33, 1, 0, 7, 2]
            .iter()
            .map(|&i| key((i << 64) | i))
            .collect();
        let scalar = EvalCache::new();
        let scalar_out: Vec<EvalResult> = keys
            .iter()
            .map(|k| scalar.get_or_compute(*k, || ppa(1.0)))
            .collect();
        let batched = EvalCache::new();
        let calls = AtomicUsize::new(0);
        let batch_out = batched.get_or_compute_batch(&keys, |_| {
            calls.fetch_add(1, Ordering::Relaxed);
            ppa(1.0)
        });
        assert_eq!(scalar_out, batch_out);
        assert_eq!(scalar.stats(), batched.stats());
        assert_eq!(scalar.to_trace(), batched.to_trace());
        // Compute ran once per distinct key only.
        assert_eq!(calls.load(Ordering::Relaxed), 5);
        assert_eq!(batched.stats().hits, 3);
    }

    /// The satellite fix: a FIFO-capped shard absorbing a whole batch
    /// must account evictions exactly as the scalar path does — one per
    /// evicted entry, not one per candidate — including a key that is
    /// re-requested after being evicted mid-batch.
    #[test]
    fn batch_eviction_accounting_under_capacity_pressure_matches_scalar() {
        let base = 5u128 << 64; // all on one shard
                                // 6 inserts through a cap-2 shard, then re-request key 0 (which
                                // was evicted mid-batch) and key 5 (still resident).
        let seq: Vec<EvalKey> = [0u128, 1, 2, 3, 4, 5, 0, 5]
            .iter()
            .map(|&i| key(base | i))
            .collect();

        let scalar = EvalCache::with_capacity_per_shard(2);
        let scalar_out: Vec<EvalResult> = seq
            .iter()
            .map(|k| scalar.get_or_compute(*k, || ppa(2.0)))
            .collect();

        let batched = EvalCache::with_capacity_per_shard(2);
        let batch_out = batched.get_or_compute_batch(&seq, |_| ppa(2.0));

        assert_eq!(scalar_out, batch_out);
        let (s, b) = (scalar.stats(), batched.stats());
        assert_eq!(s, b, "scalar {s:?} vs batched {b:?}");
        // Pin the absolute numbers so the accounting rule itself is
        // locked: 7 distinct computes (key 0 twice: evicted mid-batch),
        // 1 hit (key 5), 5 evictions — NOT one per candidate.
        assert_eq!((b.hits, b.misses, b.evictions, b.entries), (1, 7, 5, 2));
        assert_eq!(scalar.to_trace(), batched.to_trace());
    }

    #[test]
    #[should_panic(expected = "replay miss")]
    fn batch_replay_miss_panics() {
        let replay = EvalCache::from_trace("unico.evaltrace.v1 0\n").expect("parse");
        let _ = replay.get_or_compute_batch(&[key(4)], |_| ppa(1.0));
    }

    #[test]
    fn trace_roundtrip_is_exact_and_sorted() {
        let cache = EvalCache::new();
        let _ = cache.get_or_compute(key(3), || ppa(0.25));
        let _ = cache.get_or_compute(key(1), || {
            Err(EvalError::L2Overflow {
                required: 9,
                available: 4,
            })
        });
        let _ = cache.get_or_compute(key(2), || Err(EvalError::DegenerateSpatial));
        let trace = cache.to_trace();
        assert!(trace.starts_with("unico.evaltrace.v1 3\n"));
        // Deterministic output regardless of insertion order.
        assert_eq!(trace, {
            let c2 = EvalCache::new();
            let _ = c2.get_or_compute(key(2), || Err(EvalError::DegenerateSpatial));
            let _ = c2.get_or_compute(key(3), || ppa(0.25));
            let _ = c2.get_or_compute(key(1), || {
                Err(EvalError::L2Overflow {
                    required: 9,
                    available: 4,
                })
            });
            c2.to_trace()
        });
        let replay = EvalCache::from_trace(&trace).expect("parse");
        assert!(replay.is_replay());
        assert_eq!(replay.len(), 3);
        assert_eq!(replay.get_or_compute(key(3), || panic!("miss")), ppa(0.25));
        assert_eq!(
            replay.get_or_compute(key(2), || panic!("miss")),
            Err(EvalError::DegenerateSpatial)
        );
        assert_eq!(replay.to_trace(), trace);
    }

    #[test]
    #[should_panic(expected = "replay miss")]
    fn replay_miss_panics() {
        let replay = EvalCache::from_trace("unico.evaltrace.v1 0\n").expect("parse");
        let _ = replay.get_or_compute(key(99), || ppa(1.0));
    }

    #[test]
    fn trace_errors_are_reported() {
        assert!(matches!(
            EvalCache::from_trace(""),
            Err(TraceError::MissingHeader)
        ));
        assert!(matches!(
            EvalCache::from_trace("bogus 0\n"),
            Err(TraceError::BadHeader)
        ));
        assert!(matches!(
            EvalCache::from_trace("unico.evaltrace.v1 1\nzz bad\n"),
            Err(TraceError::BadLine(2))
        ));
        assert!(matches!(
            EvalCache::from_trace("unico.evaltrace.v1 2\n"),
            Err(TraceError::CountMismatch {
                declared: 2,
                found: 0
            })
        ));
    }

    #[test]
    fn nan_latency_roundtrips_bitwise() {
        let cache = EvalCache::new();
        let _ = cache.get_or_compute(key(1), || ppa(f64::NAN));
        let replay = EvalCache::from_trace(&cache.to_trace()).expect("parse");
        let v = replay
            .get_or_compute(key(1), || panic!("miss"))
            .expect("ok");
        assert!(v.latency_s.is_nan());
        assert_eq!(v.latency_s.to_bits(), f64::NAN.to_bits());
    }
}
