//! The 2-D spatial accelerator hardware template and its design space.

use std::fmt;

use rand::rngs::StdRng;
use rand::Rng;

/// PE-level dataflow: which tensor stays resident in PE register files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataflow {
    /// Weights pinned in PE registers; inputs/outputs stream.
    WeightStationary,
    /// Output partial sums pinned in PE registers; inputs/weights stream.
    OutputStationary,
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dataflow::WeightStationary => write!(f, "ws"),
            Dataflow::OutputStationary => write!(f, "os"),
        }
    }
}

/// One point of the spatial-accelerator design space (Fig. 1): PE array
/// shape, per-PE L1 scratchpad, global L2 memory, NoC bandwidth and
/// dataflow style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HwConfig {
    pe_x: u32,
    pe_y: u32,
    l1_bytes: u64,
    l2_bytes: u64,
    noc_bytes_per_cycle: u32,
    dataflow: Dataflow,
}

impl HwConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if any numeric parameter is zero.
    pub fn new(
        pe_x: u32,
        pe_y: u32,
        l1_bytes: u64,
        l2_bytes: u64,
        noc_bytes_per_cycle: u32,
        dataflow: Dataflow,
    ) -> Self {
        assert!(pe_x > 0 && pe_y > 0, "PE array dims must be positive");
        assert!(
            l1_bytes > 0 && l2_bytes > 0,
            "buffer sizes must be positive"
        );
        assert!(noc_bytes_per_cycle > 0, "NoC bandwidth must be positive");
        HwConfig {
            pe_x,
            pe_y,
            l1_bytes,
            l2_bytes,
            noc_bytes_per_cycle,
            dataflow,
        }
    }

    /// PEs along the x axis.
    pub fn pe_x(&self) -> u32 {
        self.pe_x
    }

    /// PEs along the y axis.
    pub fn pe_y(&self) -> u32 {
        self.pe_y
    }

    /// Total PE count.
    pub fn num_pes(&self) -> u64 {
        u64::from(self.pe_x) * u64::from(self.pe_y)
    }

    /// Per-PE L1 scratchpad bytes.
    pub fn l1_bytes(&self) -> u64 {
        self.l1_bytes
    }

    /// Global L2 memory bytes.
    pub fn l2_bytes(&self) -> u64 {
        self.l2_bytes
    }

    /// NoC bandwidth in bytes/cycle.
    pub fn noc_bytes_per_cycle(&self) -> u32 {
        self.noc_bytes_per_cycle
    }

    /// Dataflow style.
    pub fn dataflow(&self) -> Dataflow {
        self.dataflow
    }
}

impl fmt::Display for HwConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} PEs, L1 {} B, L2 {} KB, NoC {} B/cy, {}",
            self.pe_x,
            self.pe_y,
            self.l1_bytes,
            self.l2_bytes / 1024,
            self.noc_bytes_per_cycle,
            self.dataflow
        )
    }
}

/// Generates `{2^i · 3^j}` values within `[lo, hi]`, sorted and deduped.
fn pow23_values(lo: u64, hi: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut p2 = 1u64;
    while p2 <= hi {
        let mut val = p2;
        while val <= hi {
            if val >= lo {
                v.push(val);
            }
            val *= 3;
        }
        p2 *= 2;
    }
    v.sort_unstable();
    v.dedup();
    v
}

/// The enumerated hardware design space: per-parameter option lists.
///
/// Two presets mirror the paper's scenarios: [`HwSpace::edge`]
/// (≈ `1e5` points) and [`HwSpace::cloud`] (≈ `1e7`+ points — the paper
/// quotes `1e9` counting finer-grained buffer steps; the relative sizes
/// and all qualitative behaviour are preserved).
#[derive(Debug, Clone)]
pub struct HwSpace {
    pe_opts: Vec<u32>,
    l1_opts: Vec<u64>,
    l2_opts: Vec<u64>,
    noc_opts: Vec<u32>,
    dataflows: Vec<Dataflow>,
}

impl HwSpace {
    /// The edge scenario: up to a 16×16 PE array, L1 up to 12 KiB, L2 up
    /// to 1.5 MiB.
    pub fn edge() -> Self {
        HwSpace {
            pe_opts: vec![1, 2, 3, 4, 6, 8, 10, 12, 14, 16],
            l1_opts: pow23_values(64, 12 * 1024),
            l2_opts: pow23_values(16 * 1024, 1536 * 1024),
            noc_opts: vec![64, 128],
            dataflows: vec![Dataflow::WeightStationary, Dataflow::OutputStationary],
        }
    }

    /// The cloud scenario: up to a 24×24 PE array, L1 up to 96 KiB, L2 up
    /// to 24 MiB.
    pub fn cloud() -> Self {
        HwSpace {
            pe_opts: (1..=24).collect(),
            l1_opts: pow23_values(32, 96 * 1024),
            l2_opts: pow23_values(16 * 1024, 48 * 1024 * 1024),
            noc_opts: vec![64, 128],
            dataflows: vec![Dataflow::WeightStationary, Dataflow::OutputStationary],
        }
    }

    /// Number of configurations in the space.
    pub fn size(&self) -> u64 {
        (self.pe_opts.len() as u64).pow(2)
            * self.l1_opts.len() as u64
            * self.l2_opts.len() as u64
            * self.noc_opts.len() as u64
            * self.dataflows.len() as u64
    }

    /// Number of integer genes in the genome encoding.
    pub const GENOME_LEN: usize = 6;

    /// Option-list lengths per gene, in genome order
    /// `[pe_x, pe_y, l1, l2, noc, dataflow]`.
    pub fn gene_cardinalities(&self) -> [usize; Self::GENOME_LEN] {
        [
            self.pe_opts.len(),
            self.pe_opts.len(),
            self.l1_opts.len(),
            self.l2_opts.len(),
            self.noc_opts.len(),
            self.dataflows.len(),
        ]
    }

    /// Decodes a genome (per-gene option indices) into a configuration;
    /// indices are clamped into range.
    pub fn decode(&self, genome: &[usize; Self::GENOME_LEN]) -> HwConfig {
        let pick = |opts_len: usize, g: usize| g.min(opts_len - 1);
        HwConfig::new(
            self.pe_opts[pick(self.pe_opts.len(), genome[0])],
            self.pe_opts[pick(self.pe_opts.len(), genome[1])],
            self.l1_opts[pick(self.l1_opts.len(), genome[2])],
            self.l2_opts[pick(self.l2_opts.len(), genome[3])],
            self.noc_opts[pick(self.noc_opts.len(), genome[4])],
            self.dataflows[pick(self.dataflows.len(), genome[5])],
        )
    }

    /// Encodes a configuration back into a genome. Values not in the
    /// option lists map to the nearest option.
    pub fn encode_genome(&self, hw: &HwConfig) -> [usize; Self::GENOME_LEN] {
        fn nearest<T: Copy + Into<f64>>(opts: &[T], v: f64) -> usize {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (i, o) in opts.iter().enumerate() {
                let d = ((*o).into() - v).abs();
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            best
        }
        let l1: Vec<f64> = self.l1_opts.iter().map(|&v| v as f64).collect();
        let l2: Vec<f64> = self.l2_opts.iter().map(|&v| v as f64).collect();
        [
            nearest(&self.pe_opts, f64::from(hw.pe_x)),
            nearest(&self.pe_opts, f64::from(hw.pe_y)),
            nearest(&l1, hw.l1_bytes as f64),
            nearest(&l2, hw.l2_bytes as f64),
            nearest(&self.noc_opts, f64::from(hw.noc_bytes_per_cycle)),
            self.dataflows
                .iter()
                .position(|d| *d == hw.dataflow)
                .unwrap_or(0),
        ]
    }

    /// Samples a uniformly random configuration.
    pub fn sample(&self, rng: &mut StdRng) -> HwConfig {
        let genome = std::array::from_fn(|g| {
            let card = self.gene_cardinalities()[g];
            rng.gen_range(0..card)
        });
        self.decode(&genome)
    }

    /// Perturbs one gene by ±1..3 option steps (local move for GA /
    /// pattern search).
    pub fn perturb(&self, rng: &mut StdRng, hw: &HwConfig) -> HwConfig {
        let mut genome = self.encode_genome(hw);
        let g = rng.gen_range(0..Self::GENOME_LEN);
        let card = self.gene_cardinalities()[g] as i64;
        let step = rng.gen_range(1..=3i64) * if rng.gen_bool(0.5) { 1 } else { -1 };
        genome[g] = (genome[g] as i64 + step).clamp(0, card - 1) as usize;
        self.decode(&genome)
    }

    /// Uniform crossover of two configurations at the genome level.
    pub fn crossover(&self, rng: &mut StdRng, a: &HwConfig, b: &HwConfig) -> HwConfig {
        let ga = self.encode_genome(a);
        let gb = self.encode_genome(b);
        let genome = std::array::from_fn(|i| if rng.gen_bool(0.5) { ga[i] } else { gb[i] });
        self.decode(&genome)
    }

    /// Encodes a configuration as normalized features in `[0, 1]^6` for
    /// the GP surrogate: PE dims linearly, buffer sizes and NoC
    /// logarithmically, dataflow one-hot-ish as `{0, 1}`.
    pub fn features(&self, hw: &HwConfig) -> Vec<f64> {
        let pe_max = f64::from(*self.pe_opts.last().expect("non-empty pe options"));
        let l1_lo = (*self.l1_opts.first().unwrap() as f64).ln();
        let l1_hi = (*self.l1_opts.last().unwrap() as f64).ln();
        let l2_lo = (*self.l2_opts.first().unwrap() as f64).ln();
        let l2_hi = (*self.l2_opts.last().unwrap() as f64).ln();
        let lerp = |v: f64, lo: f64, hi: f64| {
            if hi > lo {
                ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        vec![
            f64::from(hw.pe_x) / pe_max,
            f64::from(hw.pe_y) / pe_max,
            lerp((hw.l1_bytes as f64).ln(), l1_lo, l1_hi),
            lerp((hw.l2_bytes as f64).ln(), l2_lo, l2_hi),
            if hw.noc_bytes_per_cycle >= 128 {
                1.0
            } else {
                0.0
            },
            match hw.dataflow {
                Dataflow::WeightStationary => 0.0,
                Dataflow::OutputStationary => 1.0,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pow23_structure() {
        let v = pow23_values(1, 24);
        assert_eq!(v, vec![1, 2, 3, 4, 6, 8, 9, 12, 16, 18, 24]);
    }

    #[test]
    fn edge_space_magnitude() {
        let s = HwSpace::edge();
        let size = s.size() as f64;
        assert!(
            (4.0..6.5).contains(&size.log10()),
            "edge space 10^{:.2}",
            size.log10()
        );
    }

    #[test]
    fn cloud_space_larger_than_edge() {
        assert!(HwSpace::cloud().size() > 15 * HwSpace::edge().size());
    }

    #[test]
    fn genome_roundtrip() {
        let s = HwSpace::edge();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let hw = s.sample(&mut rng);
            let g = s.encode_genome(&hw);
            assert_eq!(s.decode(&g), hw);
        }
    }

    #[test]
    fn features_in_unit_box() {
        let s = HwSpace::cloud();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let hw = s.sample(&mut rng);
            let f = s.features(&hw);
            assert_eq!(f.len(), 6);
            assert!(f.iter().all(|&v| (0.0..=1.0).contains(&v)), "{f:?}");
        }
    }

    #[test]
    fn perturb_stays_in_space() {
        let s = HwSpace::edge();
        let mut rng = StdRng::seed_from_u64(3);
        let mut hw = s.sample(&mut rng);
        for _ in 0..200 {
            hw = s.perturb(&mut rng, &hw);
            let g = s.encode_genome(&hw);
            assert_eq!(s.decode(&g), hw, "perturbed config must be in-space");
        }
    }

    #[test]
    fn crossover_mixes_genes() {
        let s = HwSpace::edge();
        let mut rng = StdRng::seed_from_u64(4);
        let a = s.decode(&[0, 0, 0, 0, 0, 0]);
        let b = s.decode(&[9, 9, 20, 20, 1, 1]);
        let mut saw_mix = false;
        for _ in 0..50 {
            let c = s.crossover(&mut rng, &a, &b);
            if c != a && c != b {
                saw_mix = true;
            }
        }
        assert!(saw_mix);
    }

    #[test]
    fn config_accessors() {
        let hw = HwConfig::new(4, 8, 1024, 65536, 64, Dataflow::OutputStationary);
        assert_eq!(hw.num_pes(), 32);
        assert_eq!(hw.dataflow(), Dataflow::OutputStationary);
        assert!(hw.to_string().contains("4x8"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_pe_panics() {
        let _ = HwConfig::new(0, 1, 1, 1, 1, Dataflow::WeightStationary);
    }
}
