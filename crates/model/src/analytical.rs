//! The MAESTRO-like analytical PPA model.

use unico_autodiff::Scalar;
use unico_mapping::{
    CanonicalMapping, Mapping, MappingCost, MappingOutcome, RelaxedGrad, RelaxedPoint,
};
use unico_workloads::{Dim, LoopNest};

use crate::batch::MappingBatch;
use crate::evalcache::{
    spatial_eval_key, spatial_key_prefix, EngineTag, EvalCache, EvalKey, EvalResult,
};
use crate::hw::{Dataflow, HwConfig};
use crate::ppa::{EvalError, Ppa};
use crate::tech::TechParams;
use crate::traffic::{tensor_loads, tensor_min_loads, TensorKind};

/// Diagnostic breakdown of one evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalBreakdown {
    /// Pure compute cycles (PE array busy time).
    pub compute_cycles: f64,
    /// Cycles the NoC needs to move all L2→L1 traffic.
    pub noc_cycles: f64,
    /// Cycles the DRAM interface needs for all off-chip traffic.
    pub dram_cycles: f64,
    /// Final modeled latency in cycles (max of the above + overheads).
    pub total_cycles: f64,
    /// MAC utilization of the PE array in `[0, 1]`.
    pub utilization: f64,
    /// Total L2→L1 bytes moved over the NoC.
    pub noc_bytes: f64,
    /// Total DRAM bytes moved.
    pub dram_bytes: f64,
    /// PEs actually active given the spatial unrolling.
    pub active_pes: u64,
}

/// Per-tensor traffic terms feeding one memory level of [`cost_core`]:
/// the tile footprint and the (possibly stationary-substituted) fetch
/// counts, all already converted to the working scalar.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TensorTraffic<S> {
    /// Tile footprint in bytes at this level.
    pub(crate) fp: S,
    /// Fetch count (for the stationary tensor at the NoC level the
    /// caller substitutes the minimal count, exactly as the discrete
    /// model does).
    pub(crate) loads: S,
    /// Minimal possible fetch count (number of distinct tiles).
    pub(crate) min_loads: S,
}

/// Inputs to [`cost_core`], the generic continuous-arithmetic half of
/// the analytical model. The discrete half (feasibility, trip counts,
/// reuse structure) stays integer-exact in the caller; everything here
/// is plain scalar arithmetic shared verbatim between the `f64` engine
/// and the autodiff [`unico_autodiff::Var`] relaxation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CoreInputs<S> {
    /// Number of L2 tiles.
    pub(crate) t2: S,
    /// L1 tiles per L2 tile.
    pub(crate) t1: S,
    /// PE-array cycles for one L1 tile.
    pub(crate) cycles_per_l1_tile: S,
    /// NoC-level (L2→L1) traffic terms in [`TensorKind::ALL`] order.
    pub(crate) noc: [TensorTraffic<S>; 3],
    /// DRAM-level traffic terms in [`TensorKind::ALL`] order.
    pub(crate) dram: [TensorTraffic<S>; 3],
    /// The register-pinned tensor of the dataflow.
    pub(crate) stationary: TensorKind,
    /// Total MAC count of the nest.
    pub(crate) macs: S,
    /// Silicon area of the configuration.
    pub(crate) area_mm2: S,
    /// PE count as `f64` (a constant with respect to the mapping).
    pub(crate) num_pes: f64,
    /// NoC bandwidth in bytes per cycle.
    pub(crate) noc_bytes_per_cycle: f64,
}

/// Outputs of [`cost_core`]: the full latency/energy/power breakdown.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CoreOutputs<S> {
    pub(crate) compute_cycles: S,
    pub(crate) noc_cycles: S,
    pub(crate) dram_cycles: S,
    pub(crate) total_cycles: S,
    pub(crate) utilization: S,
    pub(crate) noc_bytes: S,
    pub(crate) dram_bytes: S,
    pub(crate) latency_s: S,
    pub(crate) energy_pj: S,
    pub(crate) power_mw: S,
}

/// The continuous arithmetic of the analytical model, generic over the
/// scalar type.
///
/// At `S = f64` this performs the **identical sequence of `f64`
/// operations** the pre-refactor `evaluate_row` body performed (additions
/// fold in the same order, every product keeps its original association),
/// so the scalar engine's results are bit-identical — asserted by the
/// `core_f64_and_var_forward_bitwise_identical` test below and by the
/// pre-refactor reference in `tests/batch_differential.rs`. At
/// `S = Var` the same code path records the operations on an autodiff
/// tape for the relaxed differentiable model.
pub(crate) fn cost_core<S: Scalar>(t: &TechParams, inp: &CoreInputs<S>) -> CoreOutputs<S> {
    let compute_cycles = inp.t2.mul(inp.t1).mul(inp.cycles_per_l1_tile);
    let utilization = inp.macs.div(
        compute_cycles
            .mul(compute_cycles.lit(inp.num_pes))
            .vmax(compute_cycles.lit(1.0)),
    );

    // NoC traffic: L2 -> L1 per L2 tile, summed over L2 tiles.
    let mut noc_bytes_per_l2 = inp.t2.lit(0.0);
    for (j, tt) in inp.noc.iter().enumerate() {
        let effective = if TensorKind::ALL[j] == TensorKind::Output {
            // Read-modify-write round trips for revisits, one final
            // write per distinct tile.
            tt.loads.lit(2.0).mul(tt.loads).sub(tt.min_loads)
        } else {
            tt.loads
        };
        noc_bytes_per_l2 = noc_bytes_per_l2.add(tt.fp.mul(effective));
    }
    let noc_bytes = noc_bytes_per_l2.mul(inp.t2);
    let noc_cycles = noc_bytes.div(noc_bytes.lit(inp.noc_bytes_per_cycle));

    // DRAM traffic: DRAM -> L2 across L2 tiles.
    let mut dram_bytes = inp.t2.lit(0.0);
    for (j, tt) in inp.dram.iter().enumerate() {
        let effective = if TensorKind::ALL[j] == TensorKind::Output {
            tt.loads.lit(2.0).mul(tt.loads).sub(tt.min_loads)
        } else {
            tt.loads
        };
        dram_bytes = dram_bytes.add(tt.fp.mul(effective));
    }
    let dram_cycles = dram_bytes.div(dram_bytes.lit(t.dram_bytes_per_cycle));

    // Latency.
    let total_cycles = compute_cycles
        .vmax(noc_cycles)
        .vmax(dram_cycles)
        .add(inp.t2.mul(inp.t2.lit(t.tile_overhead_cycles)))
        .add(inp.t2.lit(t.launch_overhead_cycles));
    let latency_s = total_cycles.div(total_cycles.lit(t.clock_hz));

    // Energy.
    let bf = t.bytes_per_elem as f64;
    let mut e_local = inp.t2.lit(0.0);
    for tensor in TensorKind::ALL {
        let e_per_byte = if tensor == inp.stationary {
            t.e_reg_pj_per_byte
        } else {
            t.e_l1_pj_per_byte
        };
        let per_mac_bytes = match tensor {
            TensorKind::Input | TensorKind::Weight => bf,
            TensorKind::Output => 2.0 * bf, // accumulate: read + write
        };
        e_local = e_local.add(
            inp.macs
                .mul(inp.macs.lit(per_mac_bytes))
                .mul(inp.macs.lit(e_per_byte)),
        );
    }
    let e_mac = inp.macs.mul(inp.macs.lit(t.e_mac_pj));
    let e_noc = noc_bytes.mul(noc_bytes.lit(t.e_noc_pj_per_byte));
    let e_l2 = noc_bytes
        .add(dram_bytes)
        .mul(noc_bytes.lit(t.e_l2_pj_per_byte));
    let e_dram = dram_bytes.mul(dram_bytes.lit(t.e_dram_pj_per_byte));
    let e_leak = inp
        .area_mm2
        .lit(t.leakage_mw_per_mm2)
        .mul(inp.area_mm2)
        .mul(latency_s)
        .mul(latency_s.lit(1e9));
    let energy_pj = e_mac
        .add(e_local)
        .add(e_noc)
        .add(e_l2)
        .add(e_dram)
        .add(e_leak);
    let power_mw = energy_pj.div(latency_s.mul(latency_s.lit(1e9)));

    CoreOutputs {
        compute_cycles,
        noc_cycles,
        dram_cycles,
        total_cycles,
        utilization,
        noc_bytes,
        dram_bytes,
        latency_s,
        energy_pj,
        power_mw,
    }
}

/// The analytical cost model: latency / power / area for one
/// `(hardware, mapping, loop nest)` triple, in the spirit of MAESTRO.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticalModel {
    tech: TechParams,
}

impl AnalyticalModel {
    /// Creates a model with the given technology parameters.
    pub fn new(tech: TechParams) -> Self {
        AnalyticalModel { tech }
    }

    /// The technology parameters in use.
    pub fn tech(&self) -> &TechParams {
        &self.tech
    }

    /// Silicon area of a configuration, independent of workload.
    pub fn area_mm2(&self, hw: &HwConfig) -> f64 {
        let t = &self.tech;
        let pes = hw.num_pes() as f64;
        let l1_total_kb = (hw.l1_bytes() as f64 * pes) / 1024.0;
        let l2_kb = hw.l2_bytes() as f64 / 1024.0;
        t.area_base_mm2
            + pes * t.area_pe_mm2
            + l1_total_kb * t.area_l1_mm2_per_kb
            + l2_kb * t.area_l2_mm2_per_kb
            + pes * (f64::from(hw.noc_bytes_per_cycle()) / 64.0) * t.area_noc_mm2_per_pe_64b
    }

    /// Evaluates PPA, returning the detailed breakdown too.
    ///
    /// Internally a batch of one: the evaluation body runs over a
    /// [`MappingBatch`] row, so scalar and batched results are bitwise
    /// identical by construction.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] when the mapping's working sets do not fit
    /// the configuration's buffers (double-buffered) or the spatial
    /// unrolling is fully degenerate.
    pub fn evaluate_detailed(
        &self,
        hw: &HwConfig,
        mapping: &Mapping,
        nest: &LoopNest,
    ) -> Result<(Ppa, EvalBreakdown), EvalError> {
        let batch = MappingBatch::build(std::iter::once(mapping), nest, self.tech.bytes_per_elem);
        self.evaluate_row(hw, &batch, 0, self.area_mm2(hw), nest.macs() as f64)
    }

    /// Evaluates every row of a candidate batch, hoisting the
    /// per-`(hw, nest)` invariants (silicon area, MAC count) out of the
    /// per-candidate loop.
    pub fn evaluate_batch(&self, hw: &HwConfig, batch: &MappingBatch) -> Vec<EvalResult> {
        let area = self.area_mm2(hw);
        let macs = batch.nest().macs() as f64;
        (0..batch.len())
            .map(|i| self.evaluate_row(hw, batch, i, area, macs).map(|(p, _)| p))
            .collect()
    }

    /// Evaluates batch row `i` given the hoisted invariants: `area_mm2`
    /// must be `self.area_mm2(hw)` and `macs` the nest's MAC count as
    /// `f64` — both depend only on `(hw, nest)`, so passing them in
    /// changes no bits relative to computing them per candidate.
    ///
    /// # Errors
    ///
    /// Same feasibility rules as [`AnalyticalModel::evaluate_detailed`].
    ///
    /// # Panics
    ///
    /// Panics if the batch was built with a different element width than
    /// this model's technology parameters.
    pub fn evaluate_row(
        &self,
        hw: &HwConfig,
        batch: &MappingBatch,
        i: usize,
        area_mm2: f64,
        macs: f64,
    ) -> Result<(Ppa, EvalBreakdown), EvalError> {
        let t = &self.tech;
        assert_eq!(
            batch.bytes_per_elem(),
            t.bytes_per_elem,
            "batch built for a different element width"
        );
        let nest = batch.nest();

        let (sd1, sd2) = batch.spatial(i);
        let l1_tile = batch.l1_tile(i);
        let e1 = l1_tile[sd1.index()];
        let e2 = l1_tile[sd2.index()];
        if e1 == 1 && e2 == 1 && hw.num_pes() > 1 {
            return Err(EvalError::DegenerateSpatial);
        }
        let active_pes = e1.min(u64::from(hw.pe_x())) * e2.min(u64::from(hw.pe_y()));

        // --- Buffer feasibility (double buffered). ---
        let fp1 = batch.l1_footprint(i);
        let per_pe = fp1.total().div_ceil(active_pes) * 2;
        if per_pe > hw.l1_bytes() {
            return Err(EvalError::L1Overflow {
                required: per_pe,
                available: hw.l1_bytes(),
            });
        }
        let fp2 = batch.l2_footprint(i);
        let l2_need = fp2.total() * 2;
        if l2_need > hw.l2_bytes() {
            return Err(EvalError::L2Overflow {
                required: l2_need,
                available: hw.l2_bytes(),
            });
        }

        // --- Compute time. ---
        let t2 = batch.num_l2_tiles(i) as f64;
        let t1 = batch.num_l1_tiles_per_l2(i) as f64;
        let mut serial: u64 = 1;
        for d in Dim::ALL {
            if d != sd1 && d != sd2 {
                serial *= l1_tile[d.index()];
            }
        }
        let cycles_per_l1_tile = e1.div_ceil(u64::from(hw.pe_x())) as f64
            * e2.div_ceil(u64::from(hw.pe_y())) as f64
            * serial as f64;

        // --- Reuse structure (integer-exact), then the shared core. ---
        let l1_trips = batch.l1_trips(i);
        let l2_trips = batch.l2_trips(i);
        let order = batch.order(i);
        let stationary = match hw.dataflow() {
            Dataflow::WeightStationary => TensorKind::Weight,
            Dataflow::OutputStationary => TensorKind::Output,
        };
        let noc = std::array::from_fn(|j| {
            let tensor = TensorKind::ALL[j];
            let loads = if tensor == stationary {
                tensor_min_loads(tensor, nest, l1_trips)
            } else {
                tensor_loads(tensor, nest, l1_trips, order)
            } as f64;
            let min_loads = tensor_min_loads(tensor, nest, l1_trips) as f64;
            let fp = match tensor {
                TensorKind::Input => fp1.input,
                TensorKind::Weight => fp1.weight,
                TensorKind::Output => fp1.output,
            } as f64;
            TensorTraffic {
                fp,
                loads,
                min_loads,
            }
        });
        let dram = std::array::from_fn(|j| {
            let tensor = TensorKind::ALL[j];
            TensorTraffic {
                fp: match tensor {
                    TensorKind::Input => fp2.input,
                    TensorKind::Weight => fp2.weight,
                    TensorKind::Output => fp2.output,
                } as f64,
                loads: tensor_loads(tensor, nest, l2_trips, order) as f64,
                min_loads: tensor_min_loads(tensor, nest, l2_trips) as f64,
            }
        });
        let core = cost_core(
            t,
            &CoreInputs {
                t2,
                t1,
                cycles_per_l1_tile,
                noc,
                dram,
                stationary,
                macs,
                area_mm2,
                num_pes: hw.num_pes() as f64,
                noc_bytes_per_cycle: f64::from(hw.noc_bytes_per_cycle()),
            },
        );

        Ok((
            Ppa {
                latency_s: core.latency_s,
                power_mw: core.power_mw,
                area_mm2,
                energy_pj: core.energy_pj,
            },
            EvalBreakdown {
                compute_cycles: core.compute_cycles,
                noc_cycles: core.noc_cycles,
                dram_cycles: core.dram_cycles,
                total_cycles: core.total_cycles,
                utilization: core.utilization,
                noc_bytes: core.noc_bytes,
                dram_bytes: core.dram_bytes,
                active_pes,
            },
        ))
    }

    /// Evaluates PPA for one `(hardware, mapping, loop nest)` triple.
    ///
    /// # Errors
    ///
    /// See [`AnalyticalModel::evaluate_detailed`].
    pub fn evaluate(
        &self,
        hw: &HwConfig,
        mapping: &Mapping,
        nest: &LoopNest,
    ) -> Result<Ppa, EvalError> {
        self.evaluate_detailed(hw, mapping, nest).map(|(p, _)| p)
    }
}

/// Which scalar the software-mapping search minimizes (the paper's
/// §2.1: "minimizing an objective (e.g. latency and/or
/// energy-delay-product)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MappingObjective {
    /// End-to-end latency (default).
    #[default]
    Latency,
    /// Energy-delay product.
    Edp,
}

/// Turns a cached/raw evaluation into a searcher outcome under the
/// chosen objective. Shared by the scalar and batched adapter paths of
/// both spatial engines.
pub(crate) fn outcome_of(
    r: Result<Ppa, EvalError>,
    objective: MappingObjective,
) -> Option<MappingOutcome> {
    match r {
        Ok(ppa) => Some(MappingOutcome {
            loss: match objective {
                MappingObjective::Latency => ppa.latency_s,
                MappingObjective::Edp => ppa.edp(),
            },
            latency_s: ppa.latency_s,
            power_mw: ppa.power_mw,
        }),
        Err(_) => None,
    }
}

/// A [`MappingCost`] adapter binding the analytical model to a fixed
/// hardware configuration and loop nest.
#[derive(Debug, Clone, Copy)]
pub struct BoundSpatialCost<'a> {
    model: &'a AnalyticalModel,
    hw: HwConfig,
    nest: LoopNest,
    eval_cost_s: f64,
    objective: MappingObjective,
    cache: Option<&'a EvalCache>,
    batch_eval: bool,
}

impl<'a> BoundSpatialCost<'a> {
    /// Binds `model` to `(hw, nest)` with the latency objective;
    /// `eval_cost_s` is the simulated wall-clock cost charged per
    /// evaluation.
    pub fn new(model: &'a AnalyticalModel, hw: HwConfig, nest: LoopNest, eval_cost_s: f64) -> Self {
        BoundSpatialCost {
            model,
            hw,
            nest,
            eval_cost_s,
            objective: MappingObjective::Latency,
            cache: None,
            batch_eval: true,
        }
    }

    /// Selects the search objective.
    pub fn with_objective(mut self, objective: MappingObjective) -> Self {
        self.objective = objective;
        self
    }

    /// Memoizes evaluations in `cache` (keys canonicalize the mapping,
    /// so semantically equivalent candidates share entries).
    pub fn with_cache(mut self, cache: Option<&'a EvalCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Enables or disables the structure-of-arrays batch path (the
    /// `UNICO_BATCH_EVAL` bisection toggle); when disabled,
    /// `assess_batch` loops the scalar path.
    pub fn with_batch_eval(mut self, enabled: bool) -> Self {
        self.batch_eval = enabled;
        self
    }

    fn evaluate_cached(&self, mapping: &Mapping) -> Result<Ppa, EvalError> {
        match self.cache {
            Some(cache) => cache.get_or_compute(
                spatial_eval_key(
                    EngineTag::DataCentric,
                    &self.hw,
                    mapping,
                    &self.nest,
                    self.objective,
                ),
                || self.model.evaluate(&self.hw, mapping, &self.nest),
            ),
            None => self.model.evaluate(&self.hw, mapping, &self.nest),
        }
    }
}

impl MappingCost for BoundSpatialCost<'_> {
    fn assess(&self, mapping: &Mapping) -> Option<MappingOutcome> {
        outcome_of(self.evaluate_cached(mapping), self.objective)
    }

    fn assess_batch(&self, mappings: &[Mapping]) -> Vec<Option<MappingOutcome>> {
        if !self.batch_eval || mappings.is_empty() {
            return mappings.iter().map(|m| self.assess(m)).collect();
        }
        let area = self.model.area_mm2(&self.hw);
        let macs = self.nest.macs() as f64;
        let results: Vec<EvalResult> = match self.cache {
            Some(cache) => {
                // Keys hash straight off the mappings (same bytes as
                // the scalar `spatial_eval_key`, with the hw+nest
                // prefix amortized across the batch); the SoA batch is
                // only built if some key actually misses, so a warm
                // cache pays for lookups alone.
                let prefix = spatial_key_prefix(EngineTag::DataCentric, &self.hw, &self.nest);
                let keys: Vec<EvalKey> = mappings
                    .iter()
                    .map(|m| {
                        let mut kb = prefix.clone();
                        kb.write_with(|h| CanonicalMapping::hash_mapping_into(m, &self.nest, h))
                            .objective(self.objective);
                        kb.finish()
                    })
                    .collect();
                let batch = std::cell::OnceCell::new();
                cache.get_or_compute_batch(&keys, |i| {
                    let batch = batch.get_or_init(|| {
                        MappingBatch::build(mappings, &self.nest, self.model.tech.bytes_per_elem)
                    });
                    self.model
                        .evaluate_row(&self.hw, batch, i, area, macs)
                        .map(|(p, _)| p)
                })
            }
            None => {
                let batch =
                    MappingBatch::build(mappings, &self.nest, self.model.tech.bytes_per_elem);
                (0..batch.len())
                    .map(|i| {
                        self.model
                            .evaluate_row(&self.hw, &batch, i, area, macs)
                            .map(|(p, _)| p)
                    })
                    .collect()
            }
        };
        results
            .into_iter()
            .map(|r| outcome_of(r, self.objective))
            .collect()
    }

    fn eval_cost_seconds(&self) -> f64 {
        self.eval_cost_s
    }

    fn assess_relaxed(&self, template: &Mapping, point: &RelaxedPoint) -> Option<RelaxedGrad> {
        // STE rounding: descent sees the exact model's quantization
        // cliffs in the surrogate value (gradients pass through), so
        // free screening ranks candidates the way the paid evaluation
        // will judge them.
        crate::relaxed::relaxed_eval_with(
            self.model,
            &self.hw,
            &self.nest,
            template,
            point,
            self.objective,
            crate::relaxed::Rounding::Ste,
        )
        .map(|(g, _)| g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unico_workloads::TensorOp;

    fn model() -> AnalyticalModel {
        AnalyticalModel::new(TechParams::default())
    }

    fn nest() -> LoopNest {
        TensorOp::Conv2d {
            n: 1,
            k: 64,
            c: 64,
            y: 28,
            x: 28,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest()
    }

    /// A mapping with modest tiles that fits small configurations.
    fn small_mapping(n: &LoopNest) -> Mapping {
        let mut l2 = n.extents();
        l2[Dim::C.index()] = 16;
        let mut l1 = [1u64; 7];
        l1[Dim::K.index()] = 8;
        l1[Dim::Y.index()] = 8;
        l1[Dim::X.index()] = 4;
        l1[Dim::C.index()] = 4;
        Mapping::new(n, l2, l1, Dim::ALL, (Dim::K, Dim::Y))
    }

    fn hw(pe: u32, l1: u64, l2_kb: u64) -> HwConfig {
        HwConfig::new(pe, pe, l1, l2_kb * 1024, 128, Dataflow::WeightStationary)
    }

    #[test]
    fn evaluates_feasible_mapping() {
        let n = nest();
        let m = small_mapping(&n);
        let (ppa, bd) = model()
            .evaluate_detailed(&hw(8, 4096, 512), &m, &n)
            .unwrap();
        assert!(ppa.latency_s > 0.0);
        assert!(ppa.power_mw > 0.0);
        assert!(ppa.area_mm2 > 0.0);
        assert!(bd.utilization > 0.0 && bd.utilization <= 1.0);
        assert!(bd.total_cycles >= bd.compute_cycles);
    }

    #[test]
    fn l1_overflow_detected() {
        let n = nest();
        let m = Mapping::identity(&n); // whole nest in one L1 tile
        let err = model().evaluate(&hw(2, 256, 4096), &m, &n).unwrap_err();
        assert!(matches!(err, EvalError::L1Overflow { .. }));
    }

    #[test]
    fn l2_overflow_detected() {
        let n = nest();
        let m = small_mapping(&n); // L2 tile ~ full feature maps
        let err = model().evaluate(&hw(8, 4096, 16), &m, &n).unwrap_err();
        assert!(matches!(err, EvalError::L2Overflow { .. }));
    }

    #[test]
    fn more_pes_never_slow_compute_bound_layer() {
        let n = nest();
        let m = small_mapping(&n);
        let lat = |pe: u32| {
            model()
                .evaluate(&hw(pe, 8192, 1024), &m, &n)
                .unwrap()
                .latency_s
        };
        assert!(lat(8) <= lat(4));
        assert!(lat(4) <= lat(2));
    }

    #[test]
    fn wider_noc_never_hurts() {
        let n = nest();
        let m = small_mapping(&n);
        let mdl = model();
        let narrow = HwConfig::new(8, 8, 4096, 512 * 1024, 64, Dataflow::WeightStationary);
        let wide = HwConfig::new(8, 8, 4096, 512 * 1024, 128, Dataflow::WeightStationary);
        let l_narrow = mdl.evaluate(&narrow, &m, &n).unwrap().latency_s;
        let l_wide = mdl.evaluate(&wide, &m, &n).unwrap().latency_s;
        assert!(l_wide <= l_narrow);
    }

    #[test]
    fn dataflow_changes_energy() {
        let n = nest();
        let m = small_mapping(&n);
        let mdl = model();
        let ws = HwConfig::new(8, 8, 4096, 512 * 1024, 128, Dataflow::WeightStationary);
        let os = HwConfig::new(8, 8, 4096, 512 * 1024, 128, Dataflow::OutputStationary);
        let e_ws = mdl.evaluate(&ws, &m, &n).unwrap().energy_pj;
        let e_os = mdl.evaluate(&os, &m, &n).unwrap().energy_pj;
        assert_ne!(e_ws, e_os);
        // For this conv the output is accessed 2 bytes x 2 (rmw) per MAC,
        // so pinning outputs in registers saves more local energy.
        assert!(e_os < e_ws);
    }

    #[test]
    fn area_grows_with_resources() {
        let mdl = model();
        let small = mdl.area_mm2(&hw(4, 1024, 128));
        let big = mdl.area_mm2(&hw(16, 8192, 1024));
        assert!(big > small);
        // Edge-class designs should land in the paper's few-mm² regime.
        assert!((0.1..30.0).contains(&small), "area {small}");
    }

    #[test]
    fn degenerate_spatial_rejected() {
        let n = nest();
        let mut l1 = [1u64; 7];
        l1[Dim::C.index()] = 4; // spatial dims K,Y stay at 1
        let m = Mapping::new(&n, n.extents(), l1, Dim::ALL, (Dim::K, Dim::Y));
        let err = model().evaluate(&hw(8, 4096, 4096), &m, &n).unwrap_err();
        assert_eq!(err, EvalError::DegenerateSpatial);
    }

    #[test]
    fn edp_objective_changes_ranking_pressure() {
        let n = nest();
        let mdl = model();
        let cost_lat = BoundSpatialCost::new(&mdl, hw(8, 4096, 512), n, 1.0);
        let cost_edp = cost_lat.with_objective(MappingObjective::Edp);
        let m = small_mapping(&n);
        let o_lat = cost_lat.assess(&m).unwrap();
        let o_edp = cost_edp.assess(&m).unwrap();
        // Same PPA, different scalar loss.
        assert_eq!(o_lat.latency_s, o_edp.latency_s);
        assert_eq!(o_lat.loss, o_lat.latency_s);
        let ppa = mdl.evaluate(&hw(8, 4096, 512), &m, &n).unwrap();
        assert!((o_edp.loss - ppa.edp()).abs() < 1e-9);
        assert!(o_edp.loss != o_lat.loss);
    }

    #[test]
    fn bound_cost_adapter_filters_infeasible() {
        let n = nest();
        let mdl = model();
        let cost = BoundSpatialCost::new(&mdl, hw(8, 4096, 512), n, 1.0);
        assert!(cost.assess(&small_mapping(&n)).is_some());
        assert!(cost.assess(&Mapping::identity(&n)).is_none());
        assert_eq!(cost.eval_cost_seconds(), 1.0);
    }

    #[test]
    fn core_f64_and_var_forward_bitwise_identical() {
        use unico_autodiff::{Tape, Var};
        // Arbitrary but representative inputs; the point is that the
        // generic core executes the same f64 op sequence under both
        // scalar types, so every output field matches bit for bit.
        let t = TechParams::default();
        let traffic_f = |fp: f64, loads: f64, min_loads: f64| TensorTraffic {
            fp,
            loads,
            min_loads,
        };
        let inp_f = CoreInputs {
            t2: 36.0,
            t1: 128.0,
            cycles_per_l1_tile: 72.0,
            noc: [
                traffic_f(1800.0, 96.0, 24.0),
                traffic_f(1152.0, 24.0, 24.0),
                traffic_f(512.0, 48.0, 16.0),
            ],
            dram: [
                traffic_f(51200.0, 6.0, 3.0),
                traffic_f(73728.0, 12.0, 12.0),
                traffic_f(25088.0, 9.0, 3.0),
            ],
            stationary: TensorKind::Weight,
            macs: 231.2e6,
            area_mm2: 7.5,
            num_pes: 64.0,
            noc_bytes_per_cycle: 128.0,
        };
        let out_f = cost_core(&t, &inp_f);

        let tape = Tape::new();
        let v = |x: f64| tape.var(x);
        let traffic_v = |tt: &TensorTraffic<f64>| TensorTraffic {
            fp: v(tt.fp),
            loads: v(tt.loads),
            min_loads: v(tt.min_loads),
        };
        let inp_v = CoreInputs {
            t2: v(inp_f.t2),
            t1: v(inp_f.t1),
            cycles_per_l1_tile: v(inp_f.cycles_per_l1_tile),
            noc: std::array::from_fn(|j| traffic_v(&inp_f.noc[j])),
            dram: std::array::from_fn(|j| traffic_v(&inp_f.dram[j])),
            stationary: inp_f.stationary,
            macs: v(inp_f.macs),
            area_mm2: v(inp_f.area_mm2),
            num_pes: inp_f.num_pes,
            noc_bytes_per_cycle: inp_f.noc_bytes_per_cycle,
        };
        let out_v = cost_core(&t, &inp_v);

        let pairs: [(f64, Var); 10] = [
            (out_f.compute_cycles, out_v.compute_cycles),
            (out_f.noc_cycles, out_v.noc_cycles),
            (out_f.dram_cycles, out_v.dram_cycles),
            (out_f.total_cycles, out_v.total_cycles),
            (out_f.utilization, out_v.utilization),
            (out_f.noc_bytes, out_v.noc_bytes),
            (out_f.dram_bytes, out_v.dram_bytes),
            (out_f.latency_s, out_v.latency_s),
            (out_f.energy_pj, out_v.energy_pj),
            (out_f.power_mw, out_v.power_mw),
        ];
        for (i, (f, var)) in pairs.iter().enumerate() {
            assert_eq!(f.to_bits(), var.value().to_bits(), "field {i}");
        }
    }

    #[test]
    fn latency_reasonable_for_resnet_like_layer() {
        // 231M MACs on 64 PEs at 1 GHz: at least 3.6 ms even at full
        // utilization; model must respect the compute bound.
        let n = nest();
        let m = small_mapping(&n);
        let ppa = model().evaluate(&hw(8, 4096, 512), &m, &n).unwrap();
        let compute_floor = n.macs() as f64 / (64.0 * 1e9);
        assert!(ppa.latency_s >= compute_floor);
        assert!(ppa.latency_s < 1.0, "latency {} s", ppa.latency_s);
    }
}
