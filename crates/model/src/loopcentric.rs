//! A TimeLoop-flavoured, loop-centric PPA estimator.
//!
//! The paper lists two interchangeable analytical engines — MAESTRO
//! (data-centric, [`crate::AnalyticalModel`]) and TimeLoop
//! (loop-centric). This module implements the loop-centric view: the
//! memory system is an explicit hierarchy `DRAM → L2 → L1 → RF` and every
//! level is analyzed independently — access counts from the tiling and
//! loop order, a bandwidth ceiling per level, and a per-byte energy per
//! level. Latency is the slowest level (or the PE array), energy the sum
//! over levels.
//!
//! It deliberately differs from the data-centric model in two ways that
//! TimeLoop also differs from MAESTRO:
//!
//! * **L2 has its own bandwidth ceiling** (reads to the NoC plus fills
//!   from DRAM share it), so heavily re-fetching mappings can become
//!   L2-bound even when the NoC and DRAM are not saturated;
//! * **register-file traffic is modeled as a level** rather than folded
//!   into per-MAC constants.
//!
//! Both engines price the same mappings; a cross-model property test
//! keeps them within a small factor of each other on feasible points, so
//! either can back [`crate::SpatialPlatform`] prototyping.

use unico_mapping::{CanonicalMapping, Mapping, MappingCost, MappingOutcome};
use unico_workloads::{Dim, LoopNest};

use crate::analytical::{outcome_of, MappingObjective};
use crate::batch::MappingBatch;
use crate::evalcache::{
    spatial_eval_key, spatial_key_prefix, EngineTag, EvalCache, EvalKey, EvalResult,
};
use crate::hw::{Dataflow, HwConfig};
use crate::ppa::{EvalError, Ppa};
use crate::tech::TechParams;
use crate::traffic::{tensor_loads, tensor_min_loads, TensorKind};

/// Per-level traffic and occupancy of one evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelStats {
    /// Bytes read from this level by the level below (or the PEs).
    pub read_bytes: f64,
    /// Bytes written into this level from above (fills) and below
    /// (write-backs).
    pub write_bytes: f64,
    /// Cycles this level's bandwidth needs for its traffic.
    pub cycles: f64,
}

/// Loop-centric breakdown: one entry per memory level, outermost first
/// (`[DRAM, L2, L1, RF]`), plus the compute bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelBreakdown {
    /// Per-level stats `[DRAM, L2, L1, RF]`.
    pub levels: [LevelStats; 4],
    /// PE-array compute cycles.
    pub compute_cycles: f64,
    /// Index of the binding level (0–3) or 4 when compute-bound.
    pub bottleneck: usize,
}

/// The loop-centric analytical model.
#[derive(Debug, Clone, Copy)]
pub struct LoopCentricModel {
    tech: TechParams,
    /// L2 bandwidth in bytes/cycle (shared by NoC reads and DRAM fills).
    l2_bytes_per_cycle: f64,
    /// Aggregate register-file bandwidth in bytes/cycle per PE.
    rf_bytes_per_cycle_per_pe: f64,
}

impl LoopCentricModel {
    /// Creates the model; the L2 port defaults to 2× the widest NoC and
    /// the register file to 8 B/cycle/PE.
    pub fn new(tech: TechParams) -> Self {
        LoopCentricModel {
            tech,
            l2_bytes_per_cycle: 256.0,
            rf_bytes_per_cycle_per_pe: 8.0,
        }
    }

    /// Overrides the L2 port width.
    pub fn with_l2_bandwidth(mut self, bytes_per_cycle: f64) -> Self {
        self.l2_bytes_per_cycle = bytes_per_cycle;
        self
    }

    /// The technology parameters in use.
    pub fn tech(&self) -> &TechParams {
        &self.tech
    }

    /// Silicon area — identical to the data-centric model (area depends
    /// only on the configuration).
    pub fn area_mm2(&self, hw: &HwConfig) -> f64 {
        crate::analytical::AnalyticalModel::new(self.tech).area_mm2(hw)
    }

    /// Evaluates PPA with the per-level breakdown.
    ///
    /// Internally a batch of one: the evaluation body runs over a
    /// [`MappingBatch`] row, so scalar and batched results are bitwise
    /// identical by construction.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] under the same feasibility rules as the
    /// data-centric model (double-buffered working sets must fit).
    pub fn evaluate_detailed(
        &self,
        hw: &HwConfig,
        mapping: &Mapping,
        nest: &LoopNest,
    ) -> Result<(Ppa, LevelBreakdown), EvalError> {
        let batch = MappingBatch::build(std::iter::once(mapping), nest, self.tech.bytes_per_elem);
        self.evaluate_row(hw, &batch, 0, self.area_mm2(hw), nest.macs() as f64)
    }

    /// Evaluates every row of a candidate batch, hoisting the
    /// per-`(hw, nest)` invariants (silicon area, MAC count) out of the
    /// per-candidate loop.
    pub fn evaluate_batch(&self, hw: &HwConfig, batch: &MappingBatch) -> Vec<EvalResult> {
        let area = self.area_mm2(hw);
        let macs = batch.nest().macs() as f64;
        (0..batch.len())
            .map(|i| self.evaluate_row(hw, batch, i, area, macs).map(|(p, _)| p))
            .collect()
    }

    /// Evaluates batch row `i` given the hoisted invariants: `area_mm2`
    /// must be `self.area_mm2(hw)` and `macs` the nest's MAC count as
    /// `f64` — both depend only on `(hw, nest)`, so passing them in
    /// changes no bits relative to computing them per candidate.
    ///
    /// # Errors
    ///
    /// See [`LoopCentricModel::evaluate_detailed`].
    ///
    /// # Panics
    ///
    /// Panics if the batch was built with a different element width than
    /// this model's technology parameters.
    pub fn evaluate_row(
        &self,
        hw: &HwConfig,
        batch: &MappingBatch,
        i: usize,
        area_mm2: f64,
        macs: f64,
    ) -> Result<(Ppa, LevelBreakdown), EvalError> {
        let t = &self.tech;
        assert_eq!(
            batch.bytes_per_elem(),
            t.bytes_per_elem,
            "batch built for a different element width"
        );
        let nest = batch.nest();

        let (sd1, sd2) = batch.spatial(i);
        let l1_tile = batch.l1_tile(i);
        let e1 = l1_tile[sd1.index()];
        let e2 = l1_tile[sd2.index()];
        if e1 == 1 && e2 == 1 && hw.num_pes() > 1 {
            return Err(EvalError::DegenerateSpatial);
        }
        let active_pes = e1.min(u64::from(hw.pe_x())) * e2.min(u64::from(hw.pe_y()));

        // Feasibility identical to the data-centric engine.
        let fp1 = batch.l1_footprint(i);
        let per_pe = fp1.total().div_ceil(active_pes) * 2;
        if per_pe > hw.l1_bytes() {
            return Err(EvalError::L1Overflow {
                required: per_pe,
                available: hw.l1_bytes(),
            });
        }
        let fp2 = batch.l2_footprint(i);
        if fp2.total() * 2 > hw.l2_bytes() {
            return Err(EvalError::L2Overflow {
                required: fp2.total() * 2,
                available: hw.l2_bytes(),
            });
        }

        // ---- Per-level traffic from the shared reuse analysis. ----
        let order = batch.order(i);
        let l2_trips = batch.l2_trips(i);
        let l1_trips = batch.l1_trips(i);
        let t2 = batch.num_l2_tiles(i) as f64;
        let t1 = batch.num_l1_tiles_per_l2(i) as f64;
        let stationary = match hw.dataflow() {
            Dataflow::WeightStationary => TensorKind::Weight,
            Dataflow::OutputStationary => TensorKind::Output,
        };

        let tensor_fp = |fp: unico_mapping::Footprint, k: TensorKind| match k {
            TensorKind::Input => fp.input as f64,
            TensorKind::Weight => fp.weight as f64,
            TensorKind::Output => fp.output as f64,
        };

        // DRAM level: reads feed L2, write-backs come from L2.
        let mut dram_read = 0.0;
        let mut dram_write = 0.0;
        for tensor in TensorKind::ALL {
            let loads = tensor_loads(tensor, nest, l2_trips, order) as f64;
            let min = tensor_min_loads(tensor, nest, l2_trips) as f64;
            let fp = tensor_fp(fp2, tensor);
            if tensor == TensorKind::Output {
                dram_write += fp * loads;
                dram_read += fp * (loads - min); // partial-sum refills
            } else {
                dram_read += fp * loads;
            }
        }

        // L2 level: read by the NoC toward L1, written by DRAM fills and
        // L1 write-backs.
        let mut l2_read = 0.0;
        let mut l2_write = dram_read; // fills
        for tensor in TensorKind::ALL {
            let loads = if tensor == stationary {
                tensor_min_loads(tensor, nest, l1_trips)
            } else {
                tensor_loads(tensor, nest, l1_trips, order)
            } as f64;
            let min = tensor_min_loads(tensor, nest, l1_trips) as f64;
            let fp = tensor_fp(fp1, tensor);
            if tensor == TensorKind::Output {
                l2_write += fp * loads * t2; // write-backs per L2 tile
                l2_read += fp * (loads - min) * t2;
            } else {
                l2_read += fp * loads * t2;
            }
        }

        // L1 level: read once per MAC operand that is not register
        // stationary; written by NoC fills.
        let bf = t.bytes_per_elem as f64;
        let mut l1_read = 0.0;
        let mut l1_write = l2_read; // fills from L2
        for tensor in TensorKind::ALL {
            if tensor == stationary {
                continue; // served from the register file
            }
            let per_mac = if tensor == TensorKind::Output {
                2.0
            } else {
                1.0
            };
            l1_read += macs * bf * per_mac;
        }
        l1_write += macs * bf; // output updates land in L1 eventually

        // Register file: the stationary tensor's per-MAC traffic.
        let rf_read = macs
            * bf
            * if stationary == TensorKind::Output {
                2.0
            } else {
                1.0
            };
        let rf_write = macs * bf * 0.25; // periodic refills

        // ---- Per-level cycle bounds. ----
        let noc_bw = f64::from(hw.noc_bytes_per_cycle());
        let rf_bw = self.rf_bytes_per_cycle_per_pe * active_pes as f64;
        let mk = |read: f64, write: f64, bw: f64| LevelStats {
            read_bytes: read,
            write_bytes: write,
            cycles: (read + write) / bw,
        };
        let levels = [
            mk(dram_read, dram_write, t.dram_bytes_per_cycle),
            mk(l2_read, l2_write, self.l2_bytes_per_cycle),
            mk(
                l1_read,
                l1_write,
                noc_bw.max(1.0) * active_pes as f64 / hw.num_pes() as f64 + rf_bw,
            ),
            mk(rf_read, rf_write, rf_bw),
        ];

        // Compute bound (same spatial model as the data-centric engine).
        let mut serial: u64 = 1;
        for d in Dim::ALL {
            if d != sd1 && d != sd2 {
                serial *= l1_tile[d.index()];
            }
        }
        let compute_cycles = t2
            * t1
            * (e1.div_ceil(u64::from(hw.pe_x())) as f64
                * e2.div_ceil(u64::from(hw.pe_y())) as f64
                * serial as f64);

        let mut bottleneck = 4usize;
        let mut worst = compute_cycles;
        for (i, l) in levels.iter().enumerate() {
            if l.cycles > worst {
                worst = l.cycles;
                bottleneck = i;
            }
        }
        let total_cycles = worst + t2 * t.tile_overhead_cycles + t.launch_overhead_cycles;
        let latency_s = total_cycles / t.clock_hz;

        // ---- Energy: per-level per-byte + MACs + leakage. ----
        let area = area_mm2;
        let per_byte = [
            t.e_dram_pj_per_byte,
            t.e_l2_pj_per_byte,
            t.e_l1_pj_per_byte,
            t.e_reg_pj_per_byte,
        ];
        let mut energy_pj = macs * t.e_mac_pj
            + t.leakage_mw_per_mm2 * area * latency_s * 1e9
            + l2_read * t.e_noc_pj_per_byte; // NoC transport of L2 reads
        for (l, e) in levels.iter().zip(per_byte) {
            energy_pj += (l.read_bytes + l.write_bytes) * e;
        }
        let power_mw = energy_pj / (latency_s * 1e9);

        Ok((
            Ppa {
                latency_s,
                power_mw,
                area_mm2: area,
                energy_pj,
            },
            LevelBreakdown {
                levels,
                compute_cycles,
                bottleneck,
            },
        ))
    }

    /// Evaluates PPA only.
    ///
    /// # Errors
    ///
    /// See [`LoopCentricModel::evaluate_detailed`].
    pub fn evaluate(
        &self,
        hw: &HwConfig,
        mapping: &Mapping,
        nest: &LoopNest,
    ) -> Result<Ppa, EvalError> {
        self.evaluate_detailed(hw, mapping, nest).map(|(p, _)| p)
    }
}

/// [`MappingCost`] adapter for the loop-centric engine.
#[derive(Debug, Clone, Copy)]
pub struct BoundLoopCentricCost<'a> {
    model: &'a LoopCentricModel,
    hw: HwConfig,
    nest: LoopNest,
    eval_cost_s: f64,
    objective: MappingObjective,
    cache: Option<&'a EvalCache>,
    batch_eval: bool,
}

impl<'a> BoundLoopCentricCost<'a> {
    /// Binds the model to `(hw, nest)` with the latency objective.
    pub fn new(
        model: &'a LoopCentricModel,
        hw: HwConfig,
        nest: LoopNest,
        eval_cost_s: f64,
    ) -> Self {
        BoundLoopCentricCost {
            model,
            hw,
            nest,
            eval_cost_s,
            objective: MappingObjective::Latency,
            cache: None,
            batch_eval: true,
        }
    }

    /// Selects the search objective.
    pub fn with_objective(mut self, objective: MappingObjective) -> Self {
        self.objective = objective;
        self
    }

    /// Memoizes evaluations in `cache`.
    pub fn with_cache(mut self, cache: Option<&'a EvalCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Enables or disables the structure-of-arrays batch path (the
    /// `UNICO_BATCH_EVAL` bisection toggle).
    pub fn with_batch_eval(mut self, enabled: bool) -> Self {
        self.batch_eval = enabled;
        self
    }

    fn evaluate_cached(&self, mapping: &Mapping) -> Result<Ppa, EvalError> {
        match self.cache {
            Some(cache) => cache.get_or_compute(
                spatial_eval_key(
                    EngineTag::LoopCentric,
                    &self.hw,
                    mapping,
                    &self.nest,
                    self.objective,
                ),
                || self.model.evaluate(&self.hw, mapping, &self.nest),
            ),
            None => self.model.evaluate(&self.hw, mapping, &self.nest),
        }
    }
}

impl MappingCost for BoundLoopCentricCost<'_> {
    fn assess(&self, mapping: &Mapping) -> Option<MappingOutcome> {
        outcome_of(self.evaluate_cached(mapping), self.objective)
    }

    fn assess_batch(&self, mappings: &[Mapping]) -> Vec<Option<MappingOutcome>> {
        if !self.batch_eval || mappings.is_empty() {
            return mappings.iter().map(|m| self.assess(m)).collect();
        }
        let area = self.model.area_mm2(&self.hw);
        let macs = self.nest.macs() as f64;
        let results: Vec<EvalResult> = match self.cache {
            Some(cache) => {
                // Same laziness as the data-centric engine: keys hash
                // off the mappings with the prefix amortized; the SoA
                // batch is built only when a miss needs compute.
                let prefix = spatial_key_prefix(EngineTag::LoopCentric, &self.hw, &self.nest);
                let keys: Vec<EvalKey> = mappings
                    .iter()
                    .map(|m| {
                        let mut kb = prefix.clone();
                        kb.write_with(|h| CanonicalMapping::hash_mapping_into(m, &self.nest, h))
                            .objective(self.objective);
                        kb.finish()
                    })
                    .collect();
                let batch = std::cell::OnceCell::new();
                cache.get_or_compute_batch(&keys, |i| {
                    let batch = batch.get_or_init(|| {
                        MappingBatch::build(mappings, &self.nest, self.model.tech.bytes_per_elem)
                    });
                    self.model
                        .evaluate_row(&self.hw, batch, i, area, macs)
                        .map(|(p, _)| p)
                })
            }
            None => {
                let batch =
                    MappingBatch::build(mappings, &self.nest, self.model.tech.bytes_per_elem);
                (0..batch.len())
                    .map(|i| {
                        self.model
                            .evaluate_row(&self.hw, &batch, i, area, macs)
                            .map(|(p, _)| p)
                    })
                    .collect()
            }
        };
        results
            .into_iter()
            .map(|r| outcome_of(r, self.objective))
            .collect()
    }

    fn eval_cost_seconds(&self) -> f64 {
        self.eval_cost_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytical::AnalyticalModel;
    use unico_workloads::TensorOp;

    fn nest() -> LoopNest {
        TensorOp::Conv2d {
            n: 1,
            k: 64,
            c: 64,
            y: 28,
            x: 28,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest()
    }

    fn small_mapping(n: &LoopNest) -> Mapping {
        let mut l2 = n.extents();
        l2[Dim::C.index()] = 16;
        let mut l1 = [1u64; 7];
        l1[Dim::K.index()] = 8;
        l1[Dim::Y.index()] = 8;
        l1[Dim::X.index()] = 4;
        l1[Dim::C.index()] = 4;
        Mapping::new(n, l2, l1, Dim::ALL, (Dim::K, Dim::Y))
    }

    fn hw() -> HwConfig {
        HwConfig::new(8, 8, 4096, 512 * 1024, 128, Dataflow::WeightStationary)
    }

    #[test]
    fn evaluates_and_diagnoses_bottleneck() {
        let m = LoopCentricModel::new(TechParams::default());
        let n = nest();
        let (ppa, bd) = m.evaluate_detailed(&hw(), &small_mapping(&n), &n).unwrap();
        assert!(ppa.latency_s > 0.0 && ppa.power_mw > 0.0);
        assert!(bd.bottleneck <= 4);
        for l in bd.levels {
            assert!(l.read_bytes >= 0.0 && l.write_bytes >= 0.0 && l.cycles >= 0.0);
        }
        // Compute bound respected.
        let floor = n.macs() as f64 / (64.0 * m.tech().clock_hz);
        assert!(ppa.latency_s >= floor);
    }

    #[test]
    fn feasibility_matches_data_centric_engine() {
        let lc = LoopCentricModel::new(TechParams::default());
        let dc = AnalyticalModel::new(TechParams::default());
        let n = nest();
        // Identity mapping overflows both.
        let whole = Mapping::identity(&n);
        assert_eq!(
            lc.evaluate(&hw(), &whole, &n).is_err(),
            dc.evaluate(&hw(), &whole, &n).is_err()
        );
        // The small mapping fits both.
        let m = small_mapping(&n);
        assert!(lc.evaluate(&hw(), &m, &n).is_ok());
        assert!(dc.evaluate(&hw(), &m, &n).is_ok());
    }

    #[test]
    fn engines_agree_within_small_factor() {
        let lc = LoopCentricModel::new(TechParams::default());
        let dc = AnalyticalModel::new(TechParams::default());
        let n = nest();
        let m = small_mapping(&n);
        let a = lc.evaluate(&hw(), &m, &n).unwrap();
        let b = dc.evaluate(&hw(), &m, &n).unwrap();
        let ratio = a.latency_s / b.latency_s;
        assert!(
            (0.2..5.0).contains(&ratio),
            "latency ratio {ratio} out of band: {a:?} vs {b:?}"
        );
        assert_eq!(a.area_mm2, b.area_mm2, "area must be identical");
    }

    #[test]
    fn narrow_l2_port_creates_l2_bottleneck() {
        let n = nest();
        let m = small_mapping(&n);
        let wide = LoopCentricModel::new(TechParams::default());
        let narrow = wide.with_l2_bandwidth(2.0);
        let (_, bd) = narrow.evaluate_detailed(&hw(), &m, &n).unwrap();
        assert_eq!(bd.bottleneck, 1, "L2 should bind at 2 B/cycle: {bd:?}");
        let lat_wide = wide.evaluate(&hw(), &m, &n).unwrap().latency_s;
        let lat_narrow = narrow.evaluate(&hw(), &m, &n).unwrap().latency_s;
        assert!(lat_narrow > lat_wide);
    }

    #[test]
    fn bound_cost_adapter_works() {
        let lc = LoopCentricModel::new(TechParams::default());
        let n = nest();
        let c = BoundLoopCentricCost::new(&lc, hw(), n, 1.0);
        let o = c.assess(&small_mapping(&n)).unwrap();
        assert_eq!(o.loss, o.latency_s);
        assert!(c.assess(&Mapping::identity(&n)).is_none());
        let edp = c.with_objective(MappingObjective::Edp);
        assert!(edp.assess(&small_mapping(&n)).unwrap().loss != o.loss);
    }
}
