//! Technology parameters: event energies, area coefficients, clock and
//! DRAM bandwidth.
//!
//! Calibrated so that typical edge-scale configurations land in the same
//! PPA ranges the paper's tables report (hundreds of mW, a few mm²) —
//! absolute values are representative of a 16 nm-class process, and only
//! the *relative* structure matters to the search experiments.

/// Process/technology constants of the analytical model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechParams {
    /// Clock frequency, Hz.
    pub clock_hz: f64,
    /// DRAM bandwidth, bytes per cycle.
    pub dram_bytes_per_cycle: f64,
    /// Energy per MAC, pJ.
    pub e_mac_pj: f64,
    /// Energy per byte read from a PE register file, pJ.
    pub e_reg_pj_per_byte: f64,
    /// Energy per byte accessed in an L1 scratchpad, pJ.
    pub e_l1_pj_per_byte: f64,
    /// Energy per byte traversing the NoC, pJ.
    pub e_noc_pj_per_byte: f64,
    /// Energy per byte accessed in L2 global memory, pJ.
    pub e_l2_pj_per_byte: f64,
    /// Energy per byte moved from DRAM, pJ.
    pub e_dram_pj_per_byte: f64,
    /// Static leakage power per mm², mW.
    pub leakage_mw_per_mm2: f64,
    /// Fixed die overhead (I/O ring, host interface, control), mm².
    pub area_base_mm2: f64,
    /// Area per PE (MAC + register file), mm².
    pub area_pe_mm2: f64,
    /// Area per KiB of L1 SRAM, mm².
    pub area_l1_mm2_per_kb: f64,
    /// Area per KiB of L2 SRAM, mm².
    pub area_l2_mm2_per_kb: f64,
    /// NoC area per PE per 64 B/cycle of bandwidth, mm².
    pub area_noc_mm2_per_pe_64b: f64,
    /// Bytes per tensor element (fp16).
    pub bytes_per_elem: u64,
    /// Pipeline ramp-up cycles charged per L2 tile.
    pub tile_overhead_cycles: f64,
    /// Fixed kernel-launch cycles per layer.
    pub launch_overhead_cycles: f64,
}

impl Default for TechParams {
    fn default() -> Self {
        TechParams {
            clock_hz: 1.0e9,
            dram_bytes_per_cycle: 24.0,
            e_mac_pj: 0.6,
            e_reg_pj_per_byte: 0.03,
            e_l1_pj_per_byte: 0.22,
            e_noc_pj_per_byte: 0.12,
            e_l2_pj_per_byte: 0.9,
            e_dram_pj_per_byte: 10.0,
            leakage_mw_per_mm2: 4.0,
            area_base_mm2: 0.8,
            area_pe_mm2: 0.0022,
            area_l1_mm2_per_kb: 0.0045,
            area_l2_mm2_per_kb: 0.0022,
            area_noc_mm2_per_pe_64b: 0.00035,
            bytes_per_elem: 2,
            tile_overhead_cycles: 24.0,
            launch_overhead_cycles: 2000.0,
        }
    }
}

impl TechParams {
    /// Technology parameters for the cloud scenario: wider DRAM interface,
    /// slightly higher clock.
    pub fn cloud() -> Self {
        TechParams {
            clock_hz: 1.2e9,
            dram_bytes_per_cycle: 64.0,
            ..TechParams::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let t = TechParams::default();
        assert!(t.clock_hz > 0.0);
        assert!(t.e_dram_pj_per_byte > t.e_l2_pj_per_byte);
        assert!(t.e_l2_pj_per_byte > t.e_l1_pj_per_byte);
        assert!(t.e_l1_pj_per_byte > t.e_reg_pj_per_byte);
    }

    #[test]
    fn cloud_has_more_dram_bandwidth() {
        assert!(
            TechParams::cloud().dram_bytes_per_cycle > TechParams::default().dram_bytes_per_cycle
        );
    }
}
