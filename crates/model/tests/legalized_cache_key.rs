//! Cache-key identity for legalized gradient-search points: a mapping
//! produced by [`MappingSpace::legalize`] is indistinguishable, at the
//! evaluation-cache layer, from the same mapping built by hand. The
//! gradient searcher's exact re-evaluations therefore flow through the
//! normal cached `f64` path — sharing entries with every other searcher
//! instead of forming a parallel key universe.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use unico_mapping::{Mapping, MappingCost, MappingSpace};
use unico_model::{
    spatial_eval_key, AnalyticalModel, BoundSpatialCost, Dataflow, EngineTag, EvalCache, HwConfig,
    MappingObjective, TechParams,
};
use unico_workloads::{LoopNest, TensorOp, DIM_COUNT};

fn nest() -> LoopNest {
    TensorOp::Conv2d {
        n: 1,
        k: 64,
        c: 32,
        y: 28,
        x: 28,
        r: 3,
        s: 3,
        stride: 1,
    }
    .to_loop_nest()
}

fn hw() -> HwConfig {
    HwConfig::new(8, 8, 4096, 512 * 1024, 128, Dataflow::WeightStationary)
}

/// A continuous point near (but not on) the tile-option lattice, the
/// shape the gradient searcher hands to `legalize` every few steps.
fn continuous_point(
    space: &MappingSpace,
    rng: &mut StdRng,
) -> ([f64; DIM_COUNT], [f64; DIM_COUNT]) {
    let ext = space.nest().extents();
    let l2: [f64; DIM_COUNT] = std::array::from_fn(|i| rng.gen_range(1.0..(ext[i] as f64 + 0.5)));
    let l1: [f64; DIM_COUNT] = std::array::from_fn(|i| rng.gen_range(1.0..(l2[i] + 0.25)));
    (l2, l1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The legalized mapping's cache key is bit-identical to the key of
    /// a hand-constructed `Mapping` with the same tiles, order and
    /// spatial dims — for both objectives.
    #[test]
    fn legalized_key_matches_hand_constructed(seed in 0u64..10_000) {
        let n = nest();
        let space = MappingSpace::new(&n);
        let mut rng = StdRng::seed_from_u64(seed);
        let template = space.sample(&mut rng);
        let (l2, l1) = continuous_point(&space, &mut rng);
        let legal = space.legalize(&l2, &l1, template.order(), template.spatial());
        let by_hand = Mapping::new(
            &n,
            legal.l2_tile(),
            legal.l1_tile(),
            legal.order(),
            legal.spatial(),
        );
        prop_assert_eq!(&legal, &by_hand);
        let h = hw();
        for obj in [MappingObjective::Latency, MappingObjective::Edp] {
            prop_assert_eq!(
                spatial_eval_key(EngineTag::DataCentric, &h, &legal, &n, obj),
                spatial_eval_key(EngineTag::DataCentric, &h, &by_hand, &n, obj),
            );
        }
    }

    /// End to end through the cost adapter: assessing the hand-built
    /// mapping warms the cache, and re-assessing the legalized twin is
    /// answered as a hit — no second model evaluation.
    #[test]
    fn legalized_reassessment_hits_cache(seed in 0u64..10_000) {
        let n = nest();
        let space = MappingSpace::new(&n);
        let mut rng = StdRng::seed_from_u64(seed);
        let template = space.sample(&mut rng);
        let (l2, l1) = continuous_point(&space, &mut rng);
        let legal = space.legalize(&l2, &l1, template.order(), template.spatial());
        let by_hand = Mapping::new(
            &n,
            legal.l2_tile(),
            legal.l1_tile(),
            legal.order(),
            legal.spatial(),
        );

        let model = AnalyticalModel::new(TechParams::default());
        let cache = EvalCache::new();
        let cost = BoundSpatialCost::new(&model, hw(), n, 1e-3).with_cache(Some(&cache));

        let first = cost.assess(&by_hand);
        let after_first = cache.stats();
        prop_assert_eq!(after_first.misses, 1);
        prop_assert_eq!(after_first.hits, 0);

        let second = cost.assess(&legal);
        let after_second = cache.stats();
        prop_assert_eq!(after_second.misses, 1, "legalized twin recomputed");
        prop_assert_eq!(after_second.hits, 1);
        match (first, second) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.loss.to_bits(), b.loss.to_bits());
                prop_assert_eq!(a.latency_s.to_bits(), b.latency_s.to_bits());
                prop_assert_eq!(a.power_mw.to_bits(), b.power_mw.to_bits());
            }
            (None, None) => {}
            _ => prop_assert!(false, "feasibility disagreed between twins"),
        }
    }
}
