//! Validates the analytical tile re-fetch formula against a brute-force
//! simulation of the tile loop nest.
//!
//! The brute-force oracle walks the full temporal loop nest in the given
//! order, tracks which tile of each tensor is resident (capacity-1
//! cache per tensor, which is exactly the single-tile-resident model the
//! formula assumes), and counts actual fetch events. `tensor_loads` must
//! match this count exactly for every loop order and trip-count vector.

use proptest::prelude::*;

use unico_model::{tensor_loads, TensorKind};
use unico_workloads::{Dim, LoopNest, TensorOp, DIM_COUNT};

/// Brute-force fetch count: iterate the nest in `order`, fetch whenever
/// the tensor's dependent index tuple changes from the resident one.
fn brute_force_loads(
    tensor: TensorKind,
    nest: &LoopNest,
    trips: &[u64; DIM_COUNT],
    order: &[Dim; DIM_COUNT],
) -> u64 {
    let deps = tensor.dependent_dims(nest);
    let mut idx = [0u64; DIM_COUNT];
    let mut resident: Option<Vec<u64>> = None;
    let mut loads = 0u64;
    loop {
        let key: Vec<u64> = deps.iter().map(|d| idx[d.index()]).collect();
        if resident.as_ref() != Some(&key) {
            loads += 1;
            resident = Some(key);
        }
        // Advance the multi-index in `order` (innermost = last).
        let mut pos = DIM_COUNT;
        loop {
            if pos == 0 {
                return loads;
            }
            pos -= 1;
            let d = order[pos].index();
            idx[d] += 1;
            if idx[d] < trips[d] {
                break;
            }
            idx[d] = 0;
        }
    }
}

fn small_trips() -> impl Strategy<Value = [u64; DIM_COUNT]> {
    proptest::array::uniform7(1u64..=3)
}

fn arb_order() -> impl Strategy<Value = [Dim; DIM_COUNT]> {
    Just(Dim::ALL).prop_shuffle()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn formula_matches_brute_force_dense(trips in small_trips(), order in arb_order()) {
        let nest = TensorOp::Conv2d {
            n: 4, k: 4, c: 4, y: 4, x: 4, r: 4, s: 4, stride: 1,
        }
        .to_loop_nest();
        for tensor in TensorKind::ALL {
            let expected = brute_force_loads(tensor, &nest, &trips, &order);
            let got = tensor_loads(tensor, &nest, &trips, &order);
            prop_assert_eq!(got, expected, "{:?} trips {:?} order {:?}", tensor, trips, order);
        }
    }

    #[test]
    fn formula_matches_brute_force_depthwise(trips in small_trips(), order in arb_order()) {
        let nest = TensorOp::DepthwiseConv2d {
            n: 4, c: 4, y: 4, x: 4, r: 4, s: 4, stride: 1,
        }
        .to_loop_nest();
        for tensor in TensorKind::ALL {
            let expected = brute_force_loads(tensor, &nest, &trips, &order);
            let got = tensor_loads(tensor, &nest, &trips, &order);
            prop_assert_eq!(got, expected, "{:?} trips {:?} order {:?}", tensor, trips, order);
        }
    }
}

#[test]
fn brute_force_oracle_sanity() {
    let nest = TensorOp::Conv2d {
        n: 2,
        k: 2,
        c: 2,
        y: 2,
        x: 2,
        r: 1,
        s: 1,
        stride: 1,
    }
    .to_loop_nest();
    // Single iteration: exactly one fetch.
    assert_eq!(
        brute_force_loads(TensorKind::Weight, &nest, &[1; 7], &Dim::ALL),
        1
    );
    // Weight depends on K only among these trips; K=2 outermost-ish.
    let mut trips = [1u64; 7];
    trips[Dim::K.index()] = 2;
    trips[Dim::Y.index()] = 3;
    // Y inside K: weight fetched twice.
    let order = [Dim::N, Dim::K, Dim::C, Dim::R, Dim::S, Dim::X, Dim::Y];
    assert_eq!(
        brute_force_loads(TensorKind::Weight, &nest, &trips, &order),
        2
    );
    // Y outside K: weight refetched per (Y, K) pair = 6.
    let order2 = [Dim::Y, Dim::K, Dim::C, Dim::R, Dim::S, Dim::X, Dim::N];
    assert_eq!(
        brute_force_loads(TensorKind::Weight, &nest, &trips, &order2),
        6
    );
}
