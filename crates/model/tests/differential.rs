//! Differential cross-check of the analytical spatial engine against the
//! cycle-level Ascend-like engine.
//!
//! The two engines model very different machines (a 16×16 PE array with
//! explicit NoC vs. a 16×16×16 cube with a multi-level scratchpad
//! hierarchy), so bit-agreement is not the goal. What the suite pins down
//! is that, over a grid of small convolution layers, both engines land in
//! the same physical regime:
//!
//! * latency within an 8× band of each other (measured spread on the
//!   grid: 0.6×–4.0×),
//! * energy per MAC within an 8× band of each other (measured spread:
//!   0.36×–2.1×) and inside an absolute 0.5–50 pJ/MAC sanity window,
//! * compute utilization in `(0, 1]` for both,
//!
//! and that routing either engine through [`EvalCache`] returns results
//! bit-for-bit identical to the uncached path.

use unico_camodel::{ascend_eval_key, AscendConfig, AscendModel, DepthFirstFusionSearch};
use unico_mapping::Mapping;
use unico_model::{
    spatial_eval_key, AnalyticalModel, Dataflow, EngineTag, EvalCache, HwConfig, MappingObjective,
    Ppa, TechParams,
};
use unico_workloads::{Dim, LoopNest, TensorOp};

/// Latency and energy-per-MAC of the two engines must agree within this
/// factor (either direction). Chosen as ~2× headroom over the measured
/// spread on the layer grid below.
const RATIO_TOLERANCE: f64 = 8.0;

/// Absolute sanity window for energy per MAC, in pJ. Both engines charge
/// a few pJ per MAC on these layers; an order-of-magnitude escape in
/// either direction means a unit bug, not a modeling difference.
const ENERGY_PJ_PER_MAC: (f64, f64) = (0.5, 50.0);

/// Small conv layers `(k, c, y=x)`, all with 3×3 kernels and stride 1.
/// Sized so both the 16×16 spatial array and the Ascend cube find a
/// feasible mapping without search.
const GRID: [(u64, u64, u64); 5] = [
    (8, 8, 8),
    (16, 8, 14),
    (16, 16, 14),
    (32, 16, 28),
    (8, 16, 8),
];

fn layer(k: u64, c: u64, yx: u64) -> LoopNest {
    TensorOp::Conv2d {
        n: 1,
        k,
        c,
        y: yx,
        x: yx,
        r: 3,
        s: 3,
        stride: 1,
    }
    .to_loop_nest()
}

/// A conservative hand-rolled mapping for the analytical engine: small L1
/// tiles that fit every layer in the grid on the reference hardware.
fn small_mapping(n: &LoopNest) -> Mapping {
    let mut l2 = n.extents();
    l2[Dim::C.index()] = l2[Dim::C.index()].min(16);
    let mut l1 = [1u64; 7];
    l1[Dim::K.index()] = n.extent(Dim::K).min(8);
    l1[Dim::Y.index()] = n.extent(Dim::Y).min(8);
    l1[Dim::X.index()] = n.extent(Dim::X).min(4);
    l1[Dim::C.index()] = n.extent(Dim::C).min(4);
    Mapping::new(n, l2, l1, Dim::ALL, (Dim::K, Dim::Y))
}

fn assert_same_bits(a: &Ppa, b: &Ppa, what: &str) {
    for (x, y, f) in [
        (a.latency_s, b.latency_s, "latency_s"),
        (a.power_mw, b.power_mw, "power_mw"),
        (a.area_mm2, b.area_mm2, "area_mm2"),
        (a.energy_pj, b.energy_pj, "energy_pj"),
    ] {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: cached {f} differs from uncached ({x} vs {y})"
        );
    }
}

fn within_ratio(a: f64, b: f64) -> bool {
    let r = a / b;
    r.is_finite() && (1.0 / RATIO_TOLERANCE..=RATIO_TOLERANCE).contains(&r)
}

#[test]
fn engines_agree_on_small_layer_grid() {
    let model = AnalyticalModel::new(TechParams::default());
    let hw = HwConfig::new(16, 16, 4096, 512 * 1024, 128, Dataflow::WeightStationary);
    let ca_model = AscendModel::default();
    let ca_hw = AscendConfig::expert_default();

    // Both machines are clocked at 1 GHz; peak MACs/cycle is the PE count
    // for the spatial array and the cube volume for Ascend.
    let peak_spatial = 16.0 * 16.0 * 1.0e9;
    let peak_ascend = 4096.0 * 1.0e9;

    for (k, c, yx) in GRID {
        let nest = layer(k, c, yx);
        let macs = nest.macs() as f64;
        let label = format!("conv k={k} c={c} y=x={yx}");

        let m = small_mapping(&nest);
        let pa = model
            .evaluate(&hw, &m, &nest)
            .unwrap_or_else(|e| panic!("{label}: analytical infeasible: {e:?}"));
        let ca_m = DepthFirstFusionSearch::seed_mapping(&ca_hw, &nest);
        let pb = ca_model
            .evaluate(&ca_hw, &ca_m, &nest)
            .unwrap_or_else(|e| panic!("{label}: ascend infeasible: {e:?}"));

        // Latency band.
        assert!(
            within_ratio(pa.latency_s, pb.latency_s),
            "{label}: latency disagrees beyond {RATIO_TOLERANCE}x: \
             analytical {:.3e}s vs ascend {:.3e}s",
            pa.latency_s,
            pb.latency_s,
        );

        // Energy-per-MAC band, relative and absolute.
        let (ea, eb) = (pa.energy_pj / macs, pb.energy_pj / macs);
        assert!(
            within_ratio(ea, eb),
            "{label}: energy/MAC disagrees beyond {RATIO_TOLERANCE}x: \
             analytical {ea:.3} pJ vs ascend {eb:.3} pJ",
        );
        for (e, engine) in [(ea, "analytical"), (eb, "ascend")] {
            assert!(
                (ENERGY_PJ_PER_MAC.0..=ENERGY_PJ_PER_MAC.1).contains(&e),
                "{label}: {engine} energy/MAC {e:.3} pJ outside sanity window",
            );
        }

        // Neither engine may report super-peak throughput.
        for (p, peak, engine) in [
            (&pa, peak_spatial, "analytical"),
            (&pb, peak_ascend, "ascend"),
        ] {
            let util = macs / p.latency_s / peak;
            assert!(
                util > 0.0 && util <= 1.0,
                "{label}: {engine} utilization {util:.4} outside (0, 1]",
            );
        }
    }
}

#[test]
fn cached_results_match_uncached_bit_for_bit() {
    let model = AnalyticalModel::new(TechParams::default());
    let hw = HwConfig::new(16, 16, 4096, 512 * 1024, 128, Dataflow::WeightStationary);
    let ca_model = AscendModel::default();
    let ca_hw = AscendConfig::expert_default();
    let cache = EvalCache::new();

    for (k, c, yx) in GRID {
        let nest = layer(k, c, yx);
        let label = format!("conv k={k} c={c} y=x={yx}");

        let m = small_mapping(&nest);
        let direct = model.evaluate(&hw, &m, &nest).expect("feasible");
        let key = spatial_eval_key(
            EngineTag::DataCentric,
            &hw,
            &m,
            &nest,
            MappingObjective::Latency,
        );
        // First pass populates, second pass must serve the hit — both must
        // be bitwise identical to the direct evaluation.
        for pass in 0..2 {
            let cached = cache
                .get_or_compute(key, || model.evaluate(&hw, &m, &nest))
                .expect("feasible");
            assert_same_bits(&direct, &cached, &format!("{label} analytical pass {pass}"));
        }

        let ca_m = DepthFirstFusionSearch::seed_mapping(&ca_hw, &nest);
        let direct = ca_model.evaluate(&ca_hw, &ca_m, &nest).expect("feasible");
        let key = ascend_eval_key(&ca_hw, &ca_m, &nest);
        for pass in 0..2 {
            let cached = cache
                .get_or_compute(key, || ca_model.evaluate(&ca_hw, &ca_m, &nest))
                .expect("feasible");
            assert_same_bits(&direct, &cached, &format!("{label} ascend pass {pass}"));
        }
    }

    // Every grid entry missed once and hit once, per engine.
    let s = cache.stats();
    assert_eq!(s.misses, 2 * GRID.len() as u64);
    assert_eq!(s.hits, 2 * GRID.len() as u64);
}
