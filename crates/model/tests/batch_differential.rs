//! Differential pinning of the structure-of-arrays batch evaluation
//! path against the scalar per-candidate path, across every PPA engine
//! (analytical data-centric, analytical loop-centric, and the
//! cycle-level Ascend-like simulator).
//!
//! For a structured grid of (hardware config, mapping) candidates the
//! suite asserts:
//!
//! * `Platform::evaluate_batch` is **bitwise** identical to scoring the
//!   same candidates one at a time through `MappingCost::assess`, in
//!   slice order, including infeasible candidates (`None` on both
//!   paths for the same indices);
//! * the guarantee holds with and without an [`EvalCache`] attached,
//!   and on repeat passes that are served from the cache;
//! * the cache's hit/miss/eviction counters advance **exactly** as they
//!   do on the scalar path — batching changes lock traffic, never
//!   accounting.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use unico_camodel::AscendPlatform;
use unico_mapping::{Mapping, MappingOutcome, MappingSpace};
use unico_model::{
    tensor_loads, AnalyticalModel, Dataflow, EvalCache, EvalError, HwConfig, HwSpace, Platform,
    PpaEngine, SpatialPlatform, TechParams, TensorKind,
};
use unico_workloads::{Dim, LoopNest, TensorOp};

/// Structured workload grid: two conv layers sized for every engine's
/// reference hardware plus a GEMM, so both tensor-op lowering paths are
/// exercised.
fn grid() -> Vec<LoopNest> {
    vec![
        TensorOp::Conv2d {
            n: 1,
            k: 16,
            c: 8,
            y: 14,
            x: 14,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest(),
        TensorOp::Conv2d {
            n: 1,
            k: 32,
            c: 16,
            y: 28,
            x: 28,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest(),
        TensorOp::Gemm {
            m: 64,
            n: 48,
            k: 32,
        }
        .to_loop_nest(),
    ]
}

/// Candidate mappings for one nest: random samples (some of which are
/// infeasible on small configs, covering the error path), the identity
/// mapping (whole-problem tiles — infeasible on most configs), and a
/// duplicate of the first sample so one batch carries a repeated key.
fn candidates(nest: &LoopNest, rng: &mut StdRng) -> Vec<Mapping> {
    let space = MappingSpace::new(nest);
    let mut mappings: Vec<Mapping> = (0..14).map(|_| space.sample(rng)).collect();
    mappings.push(Mapping::identity(nest));
    mappings.push(mappings[0].clone());
    mappings
}

fn assert_bitwise(
    scalar: &[Option<MappingOutcome>],
    batched: &[Option<MappingOutcome>],
    label: &str,
) {
    assert_eq!(scalar.len(), batched.len(), "{label}: length diverged");
    for (i, (s, b)) in scalar.iter().zip(batched).enumerate() {
        match (s, b) {
            (None, None) => {}
            (Some(s), Some(b)) => {
                for (x, y, f) in [
                    (s.loss, b.loss, "loss"),
                    (s.latency_s, b.latency_s, "latency_s"),
                    (s.power_mw, b.power_mw, "power_mw"),
                ] {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{label}: candidate {i} {f} differs ({x} vs {y})"
                    );
                }
            }
            (s, b) => {
                panic!("{label}: candidate {i} feasibility diverged: scalar {s:?} batch {b:?}")
            }
        }
    }
}

/// Runs the differential over `n_configs` sampled configs of one
/// platform family. `make(batch_eval, cache)` builds the platform; the
/// scalar twin and the batch twin get separate caches so their counters
/// can be compared at the end.
fn run_differential<P: Platform>(
    make: impl Fn(bool, Option<Arc<EvalCache>>) -> P,
    family: &str,
    seed: u64,
    n_configs: usize,
) {
    // Phase 1: no cache attached — pure compute-path identity.
    {
        let scalar_p = make(false, None);
        let batch_p = make(true, None);
        let mut rng = StdRng::seed_from_u64(seed);
        for (ni, nest) in grid().iter().enumerate() {
            for ci in 0..n_configs {
                let hw = scalar_p.sample_hw(&mut rng);
                let mappings = candidates(nest, &mut rng);
                let label = format!("{family} uncached nest {ni} config {ci}");
                let cost = scalar_p.bind(&hw, nest);
                let scalar: Vec<_> = mappings.iter().map(|m| cost.assess(m)).collect();
                let batched = batch_p.evaluate_batch(&hw, nest, &mappings);
                assert_bitwise(&scalar, &batched, &label);
            }
        }
    }

    // Phase 2: cache attached — identity must survive populate + hit
    // passes, and the two caches must end with identical counters.
    let scalar_cache = Arc::new(EvalCache::new());
    let batch_cache = Arc::new(EvalCache::new());
    let scalar_p = make(false, Some(scalar_cache.clone()));
    let batch_p = make(true, Some(batch_cache.clone()));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut feasible = 0usize;
    let mut infeasible = 0usize;
    for (ni, nest) in grid().iter().enumerate() {
        for ci in 0..n_configs {
            let hw = scalar_p.sample_hw(&mut rng);
            let mappings = candidates(nest, &mut rng);
            let cost = scalar_p.bind(&hw, nest);
            // Pass 0 populates both caches; pass 1 is served from them.
            for pass in 0..2 {
                let label = format!("{family} cached nest {ni} config {ci} pass {pass}");
                let scalar: Vec<_> = mappings.iter().map(|m| cost.assess(m)).collect();
                let batched = batch_p.evaluate_batch(&hw, nest, &mappings);
                assert_bitwise(&scalar, &batched, &label);
                if pass == 0 {
                    feasible += scalar.iter().flatten().count();
                    infeasible += scalar.iter().filter(|o| o.is_none()).count();
                }
            }
        }
    }
    assert!(
        feasible > 0 && infeasible > 0,
        "{family}: grid must exercise both feasible ({feasible}) and \
         infeasible ({infeasible}) candidates"
    );

    // Batched lookups must book exactly the hits/misses/evictions the
    // scalar per-candidate path books.
    let s = scalar_cache.stats();
    let b = batch_cache.stats();
    assert_eq!(s.hits, b.hits, "{family}: hit accounting diverged");
    assert_eq!(s.misses, b.misses, "{family}: miss accounting diverged");
    assert_eq!(
        s.evictions, b.evictions,
        "{family}: eviction accounting diverged"
    );
    assert_eq!(s.entries, b.entries, "{family}: entry counts diverged");
    assert!(
        s.hits > 0,
        "{family}: repeat passes must produce cache hits"
    );
    assert!(s.misses > 0, "{family}: first passes must produce misses");

    // Only the batch twin went through the batched lookup entry point.
    assert_eq!(scalar_cache.batch_stats().lookups, 0);
    let bb = batch_cache.batch_stats();
    assert!(
        bb.lookups > 0,
        "{family}: batch path must book batch lookups"
    );
    assert_eq!(
        bb.keys,
        s.hits + s.misses,
        "{family}: every key resolved must flow through the batched lookups"
    );
}

/// A frozen, straight-line `f64` transcription of the analytical engine
/// as it stood **before** its arithmetic was factored into the generic
/// `cost_core` (shared with the autodiff relaxation). Every operation
/// appears in the original order and association, so any reordering in
/// the generic path — however algebraically innocent — shows up as a bit
/// difference against this reference.
mod prerefactor {
    use super::*;

    pub struct Outputs {
        pub latency_s: f64,
        pub power_mw: f64,
        pub area_mm2: f64,
        pub energy_pj: f64,
        pub compute_cycles: f64,
        pub noc_cycles: f64,
        pub dram_cycles: f64,
        pub total_cycles: f64,
        pub utilization: f64,
        pub noc_bytes: f64,
        pub dram_bytes: f64,
        pub active_pes: u64,
    }

    pub fn area_mm2(t: &TechParams, hw: &HwConfig) -> f64 {
        let pes = hw.num_pes() as f64;
        let l1_total_kb = (hw.l1_bytes() as f64 * pes) / 1024.0;
        let l2_kb = hw.l2_bytes() as f64 / 1024.0;
        t.area_base_mm2
            + pes * t.area_pe_mm2
            + l1_total_kb * t.area_l1_mm2_per_kb
            + l2_kb * t.area_l2_mm2_per_kb
            + pes * (f64::from(hw.noc_bytes_per_cycle()) / 64.0) * t.area_noc_mm2_per_pe_64b
    }

    fn min_loads(tensor: TensorKind, nest: &LoopNest, trips: &[u64; 7]) -> u64 {
        tensor
            .dependent_dims(nest)
            .iter()
            .map(|d| trips[d.index()].max(1))
            .product()
    }

    pub fn evaluate(
        t: &TechParams,
        hw: &HwConfig,
        mapping: &Mapping,
        nest: &LoopNest,
    ) -> Result<Outputs, EvalError> {
        let (sd1, sd2) = mapping.spatial();
        let l1_tile = mapping.l1_tile();
        let e1 = l1_tile[sd1.index()];
        let e2 = l1_tile[sd2.index()];
        if e1 == 1 && e2 == 1 && hw.num_pes() > 1 {
            return Err(EvalError::DegenerateSpatial);
        }
        let active_pes = e1.min(u64::from(hw.pe_x())) * e2.min(u64::from(hw.pe_y()));

        let fp1 = mapping.l1_footprint(nest, t.bytes_per_elem);
        let per_pe = fp1.total().div_ceil(active_pes) * 2;
        if per_pe > hw.l1_bytes() {
            return Err(EvalError::L1Overflow {
                required: per_pe,
                available: hw.l1_bytes(),
            });
        }
        let fp2 = mapping.l2_footprint(nest, t.bytes_per_elem);
        let l2_need = fp2.total() * 2;
        if l2_need > hw.l2_bytes() {
            return Err(EvalError::L2Overflow {
                required: l2_need,
                available: hw.l2_bytes(),
            });
        }

        let t2 = mapping.num_l2_tiles(nest) as f64;
        let t1 = mapping.num_l1_tiles_per_l2() as f64;
        let mut serial: u64 = 1;
        for d in Dim::ALL {
            if d != sd1 && d != sd2 {
                serial *= l1_tile[d.index()];
            }
        }
        let cycles_per_l1_tile = e1.div_ceil(u64::from(hw.pe_x())) as f64
            * e2.div_ceil(u64::from(hw.pe_y())) as f64
            * serial as f64;

        let compute_cycles = t2 * t1 * cycles_per_l1_tile;
        let macs = nest.macs() as f64;
        let num_pes = hw.num_pes() as f64;
        let utilization = macs / (compute_cycles * num_pes).max(1.0);

        let l1_trips = mapping.l1_trip_counts();
        let l2_trips = mapping.l2_trip_counts(nest);
        let order = mapping.order();
        let stationary = match hw.dataflow() {
            Dataflow::WeightStationary => TensorKind::Weight,
            Dataflow::OutputStationary => TensorKind::Output,
        };

        let mut noc_bytes_per_l2 = 0.0f64;
        for tensor in TensorKind::ALL {
            let loads = if tensor == stationary {
                min_loads(tensor, nest, &l1_trips)
            } else {
                tensor_loads(tensor, nest, &l1_trips, &order)
            } as f64;
            let tile_min = min_loads(tensor, nest, &l1_trips) as f64;
            let fp = match tensor {
                TensorKind::Input => fp1.input,
                TensorKind::Weight => fp1.weight,
                TensorKind::Output => fp1.output,
            } as f64;
            let effective = if tensor == TensorKind::Output {
                2.0 * loads - tile_min
            } else {
                loads
            };
            noc_bytes_per_l2 += fp * effective;
        }
        let noc_bytes = noc_bytes_per_l2 * t2;
        let noc_cycles = noc_bytes / f64::from(hw.noc_bytes_per_cycle());

        let mut dram_bytes = 0.0f64;
        for tensor in TensorKind::ALL {
            let loads = tensor_loads(tensor, nest, &l2_trips, &order) as f64;
            let tile_min = min_loads(tensor, nest, &l2_trips) as f64;
            let fp = match tensor {
                TensorKind::Input => fp2.input,
                TensorKind::Weight => fp2.weight,
                TensorKind::Output => fp2.output,
            } as f64;
            let effective = if tensor == TensorKind::Output {
                2.0 * loads - tile_min
            } else {
                loads
            };
            dram_bytes += fp * effective;
        }
        let dram_cycles = dram_bytes / t.dram_bytes_per_cycle;

        let total_cycles = compute_cycles.max(noc_cycles).max(dram_cycles)
            + t2 * t.tile_overhead_cycles
            + t.launch_overhead_cycles;
        let latency_s = total_cycles / t.clock_hz;

        let bf = t.bytes_per_elem as f64;
        let mut e_local = 0.0f64;
        for tensor in TensorKind::ALL {
            let e_per_byte = if tensor == stationary {
                t.e_reg_pj_per_byte
            } else {
                t.e_l1_pj_per_byte
            };
            let per_mac_bytes = match tensor {
                TensorKind::Input | TensorKind::Weight => bf,
                TensorKind::Output => 2.0 * bf,
            };
            e_local += macs * per_mac_bytes * e_per_byte;
        }
        let area = area_mm2(t, hw);
        let e_mac = macs * t.e_mac_pj;
        let e_noc = noc_bytes * t.e_noc_pj_per_byte;
        let e_l2 = (noc_bytes + dram_bytes) * t.e_l2_pj_per_byte;
        let e_dram = dram_bytes * t.e_dram_pj_per_byte;
        let e_leak = t.leakage_mw_per_mm2 * area * latency_s * 1e9;
        let energy_pj = e_mac + e_local + e_noc + e_l2 + e_dram + e_leak;
        let power_mw = energy_pj / (latency_s * 1e9);

        Ok(Outputs {
            latency_s,
            power_mw,
            area_mm2: area,
            energy_pj,
            compute_cycles,
            noc_cycles,
            dram_cycles,
            total_cycles,
            utilization,
            noc_bytes,
            dram_bytes,
            active_pes,
        })
    }
}

/// The refactored generic engine at `f64` is bit-identical to the frozen
/// pre-refactor transcription — every PPA and breakdown field, every
/// feasibility error, over a grid of sampled configs × candidate
/// mappings for both technology presets.
#[test]
fn generic_core_matches_prerefactor_reference_bitwise() {
    let mut rng = StdRng::seed_from_u64(211);
    let mut feasible = 0usize;
    let mut infeasible = 0usize;
    for (tech, hw_space) in [
        (TechParams::default(), HwSpace::edge()),
        (TechParams::cloud(), HwSpace::cloud()),
    ] {
        let model = AnalyticalModel::new(tech);
        for (ni, nest) in grid().iter().enumerate() {
            for ci in 0..4 {
                let hw = hw_space.sample(&mut rng);
                for (mi, m) in candidates(nest, &mut rng).iter().enumerate() {
                    let label = format!("nest {ni} config {ci} mapping {mi}");
                    let got = model.evaluate_detailed(&hw, m, nest);
                    let want = prerefactor::evaluate(&tech, &hw, m, nest);
                    match (got, want) {
                        (Ok((ppa, bd)), Ok(r)) => {
                            feasible += 1;
                            for (x, y, f) in [
                                (ppa.latency_s, r.latency_s, "latency_s"),
                                (ppa.power_mw, r.power_mw, "power_mw"),
                                (ppa.area_mm2, r.area_mm2, "area_mm2"),
                                (ppa.energy_pj, r.energy_pj, "energy_pj"),
                                (bd.compute_cycles, r.compute_cycles, "compute_cycles"),
                                (bd.noc_cycles, r.noc_cycles, "noc_cycles"),
                                (bd.dram_cycles, r.dram_cycles, "dram_cycles"),
                                (bd.total_cycles, r.total_cycles, "total_cycles"),
                                (bd.utilization, r.utilization, "utilization"),
                                (bd.noc_bytes, r.noc_bytes, "noc_bytes"),
                                (bd.dram_bytes, r.dram_bytes, "dram_bytes"),
                            ] {
                                assert_eq!(
                                    x.to_bits(),
                                    y.to_bits(),
                                    "{label}: {f} differs ({x} vs {y})"
                                );
                            }
                            assert_eq!(bd.active_pes, r.active_pes, "{label}: active_pes");
                        }
                        (Err(a), Err(b)) => {
                            infeasible += 1;
                            assert_eq!(a, b, "{label}: error kind diverged");
                        }
                        (a, b) => panic!(
                            "{label}: feasibility diverged: engine {:?} reference {:?}",
                            a.map(|(p, _)| p),
                            b.map(|r| r.latency_s)
                        ),
                    }
                }
            }
        }
    }
    assert!(
        feasible > 0 && infeasible > 0,
        "grid must exercise both paths (feasible {feasible}, infeasible {infeasible})"
    );
}

#[test]
fn analytical_data_centric_batch_matches_scalar() {
    run_differential(
        |batch, cache| {
            let p = SpatialPlatform::edge()
                .with_engine(PpaEngine::DataCentric)
                .with_batch_eval(batch);
            match cache {
                Some(c) => p.with_eval_cache(c),
                None => p,
            }
        },
        "data-centric",
        101,
        3,
    );
}

#[test]
fn analytical_loop_centric_batch_matches_scalar() {
    run_differential(
        |batch, cache| {
            let p = SpatialPlatform::edge()
                .with_engine(PpaEngine::LoopCentric)
                .with_batch_eval(batch);
            match cache {
                Some(c) => p.with_eval_cache(c),
                None => p,
            }
        },
        "loop-centric",
        103,
        3,
    );
}

#[test]
fn ascend_cycle_level_batch_matches_scalar() {
    run_differential(
        |batch, cache| {
            let p = AscendPlatform::new().with_batch_eval(batch);
            match cache {
                Some(c) => p.with_eval_cache(c),
                None => p,
            }
        },
        "ascend",
        107,
        2,
    );
}

#[test]
fn cloud_platform_batch_matches_scalar() {
    run_differential(
        |batch, cache| {
            let p = SpatialPlatform::cloud().with_batch_eval(batch);
            match cache {
                Some(c) => p.with_eval_cache(c),
                None => p,
            }
        },
        "cloud",
        109,
        2,
    );
}
