//! Differential pinning of the structure-of-arrays batch evaluation
//! path against the scalar per-candidate path, across every PPA engine
//! (analytical data-centric, analytical loop-centric, and the
//! cycle-level Ascend-like simulator).
//!
//! For a structured grid of (hardware config, mapping) candidates the
//! suite asserts:
//!
//! * `Platform::evaluate_batch` is **bitwise** identical to scoring the
//!   same candidates one at a time through `MappingCost::assess`, in
//!   slice order, including infeasible candidates (`None` on both
//!   paths for the same indices);
//! * the guarantee holds with and without an [`EvalCache`] attached,
//!   and on repeat passes that are served from the cache;
//! * the cache's hit/miss/eviction counters advance **exactly** as they
//!   do on the scalar path — batching changes lock traffic, never
//!   accounting.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use unico_camodel::AscendPlatform;
use unico_mapping::{Mapping, MappingOutcome, MappingSpace};
use unico_model::{EvalCache, Platform, PpaEngine, SpatialPlatform};
use unico_workloads::{LoopNest, TensorOp};

/// Structured workload grid: two conv layers sized for every engine's
/// reference hardware plus a GEMM, so both tensor-op lowering paths are
/// exercised.
fn grid() -> Vec<LoopNest> {
    vec![
        TensorOp::Conv2d {
            n: 1,
            k: 16,
            c: 8,
            y: 14,
            x: 14,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest(),
        TensorOp::Conv2d {
            n: 1,
            k: 32,
            c: 16,
            y: 28,
            x: 28,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest(),
        TensorOp::Gemm {
            m: 64,
            n: 48,
            k: 32,
        }
        .to_loop_nest(),
    ]
}

/// Candidate mappings for one nest: random samples (some of which are
/// infeasible on small configs, covering the error path), the identity
/// mapping (whole-problem tiles — infeasible on most configs), and a
/// duplicate of the first sample so one batch carries a repeated key.
fn candidates(nest: &LoopNest, rng: &mut StdRng) -> Vec<Mapping> {
    let space = MappingSpace::new(nest);
    let mut mappings: Vec<Mapping> = (0..14).map(|_| space.sample(rng)).collect();
    mappings.push(Mapping::identity(nest));
    mappings.push(mappings[0].clone());
    mappings
}

fn assert_bitwise(
    scalar: &[Option<MappingOutcome>],
    batched: &[Option<MappingOutcome>],
    label: &str,
) {
    assert_eq!(scalar.len(), batched.len(), "{label}: length diverged");
    for (i, (s, b)) in scalar.iter().zip(batched).enumerate() {
        match (s, b) {
            (None, None) => {}
            (Some(s), Some(b)) => {
                for (x, y, f) in [
                    (s.loss, b.loss, "loss"),
                    (s.latency_s, b.latency_s, "latency_s"),
                    (s.power_mw, b.power_mw, "power_mw"),
                ] {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{label}: candidate {i} {f} differs ({x} vs {y})"
                    );
                }
            }
            (s, b) => {
                panic!("{label}: candidate {i} feasibility diverged: scalar {s:?} batch {b:?}")
            }
        }
    }
}

/// Runs the differential over `n_configs` sampled configs of one
/// platform family. `make(batch_eval, cache)` builds the platform; the
/// scalar twin and the batch twin get separate caches so their counters
/// can be compared at the end.
fn run_differential<P: Platform>(
    make: impl Fn(bool, Option<Arc<EvalCache>>) -> P,
    family: &str,
    seed: u64,
    n_configs: usize,
) {
    // Phase 1: no cache attached — pure compute-path identity.
    {
        let scalar_p = make(false, None);
        let batch_p = make(true, None);
        let mut rng = StdRng::seed_from_u64(seed);
        for (ni, nest) in grid().iter().enumerate() {
            for ci in 0..n_configs {
                let hw = scalar_p.sample_hw(&mut rng);
                let mappings = candidates(nest, &mut rng);
                let label = format!("{family} uncached nest {ni} config {ci}");
                let cost = scalar_p.bind(&hw, nest);
                let scalar: Vec<_> = mappings.iter().map(|m| cost.assess(m)).collect();
                let batched = batch_p.evaluate_batch(&hw, nest, &mappings);
                assert_bitwise(&scalar, &batched, &label);
            }
        }
    }

    // Phase 2: cache attached — identity must survive populate + hit
    // passes, and the two caches must end with identical counters.
    let scalar_cache = Arc::new(EvalCache::new());
    let batch_cache = Arc::new(EvalCache::new());
    let scalar_p = make(false, Some(scalar_cache.clone()));
    let batch_p = make(true, Some(batch_cache.clone()));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut feasible = 0usize;
    let mut infeasible = 0usize;
    for (ni, nest) in grid().iter().enumerate() {
        for ci in 0..n_configs {
            let hw = scalar_p.sample_hw(&mut rng);
            let mappings = candidates(nest, &mut rng);
            let cost = scalar_p.bind(&hw, nest);
            // Pass 0 populates both caches; pass 1 is served from them.
            for pass in 0..2 {
                let label = format!("{family} cached nest {ni} config {ci} pass {pass}");
                let scalar: Vec<_> = mappings.iter().map(|m| cost.assess(m)).collect();
                let batched = batch_p.evaluate_batch(&hw, nest, &mappings);
                assert_bitwise(&scalar, &batched, &label);
                if pass == 0 {
                    feasible += scalar.iter().flatten().count();
                    infeasible += scalar.iter().filter(|o| o.is_none()).count();
                }
            }
        }
    }
    assert!(
        feasible > 0 && infeasible > 0,
        "{family}: grid must exercise both feasible ({feasible}) and \
         infeasible ({infeasible}) candidates"
    );

    // Batched lookups must book exactly the hits/misses/evictions the
    // scalar per-candidate path books.
    let s = scalar_cache.stats();
    let b = batch_cache.stats();
    assert_eq!(s.hits, b.hits, "{family}: hit accounting diverged");
    assert_eq!(s.misses, b.misses, "{family}: miss accounting diverged");
    assert_eq!(
        s.evictions, b.evictions,
        "{family}: eviction accounting diverged"
    );
    assert_eq!(s.entries, b.entries, "{family}: entry counts diverged");
    assert!(
        s.hits > 0,
        "{family}: repeat passes must produce cache hits"
    );
    assert!(s.misses > 0, "{family}: first passes must produce misses");

    // Only the batch twin went through the batched lookup entry point.
    assert_eq!(scalar_cache.batch_stats().lookups, 0);
    let bb = batch_cache.batch_stats();
    assert!(
        bb.lookups > 0,
        "{family}: batch path must book batch lookups"
    );
    assert_eq!(
        bb.keys,
        s.hits + s.misses,
        "{family}: every key resolved must flow through the batched lookups"
    );
}

#[test]
fn analytical_data_centric_batch_matches_scalar() {
    run_differential(
        |batch, cache| {
            let p = SpatialPlatform::edge()
                .with_engine(PpaEngine::DataCentric)
                .with_batch_eval(batch);
            match cache {
                Some(c) => p.with_eval_cache(c),
                None => p,
            }
        },
        "data-centric",
        101,
        3,
    );
}

#[test]
fn analytical_loop_centric_batch_matches_scalar() {
    run_differential(
        |batch, cache| {
            let p = SpatialPlatform::edge()
                .with_engine(PpaEngine::LoopCentric)
                .with_batch_eval(batch);
            match cache {
                Some(c) => p.with_eval_cache(c),
                None => p,
            }
        },
        "loop-centric",
        103,
        3,
    );
}

#[test]
fn ascend_cycle_level_batch_matches_scalar() {
    run_differential(
        |batch, cache| {
            let p = AscendPlatform::new().with_batch_eval(batch);
            match cache {
                Some(c) => p.with_eval_cache(c),
                None => p,
            }
        },
        "ascend",
        107,
        2,
    );
}

#[test]
fn cloud_platform_batch_matches_scalar() {
    run_differential(
        |batch, cache| {
            let p = SpatialPlatform::cloud().with_batch_eval(batch);
            match cache {
                Some(c) => p.with_eval_cache(c),
                None => p,
            }
        },
        "cloud",
        109,
        2,
    );
}
