//! Differential and property oracles for the on-disk eval-cache tier.
//!
//! The disk tier's contract is *observational transparency*: routing an
//! optimization's evaluations through `EvalCache + DiskTier` must
//! produce PPA results, golden traces and in-memory hit/miss counters
//! byte-for-byte identical to a memory-only cache — cold or warm — with
//! only the [`DiskTierStats`] counters telling the tiers apart. The
//! suite pins that down three ways:
//!
//! * **Differential:** the same evaluation schedule (feasible and
//!   infeasible mappings, replayed for hits) through a memory-only
//!   cache, a cold memory+disk cache, and a warm memory+disk cache over
//!   a reopened directory. All three must agree on every result bit,
//!   the serialized trace, and the memory-tier counters; the warm run
//!   must additionally answer every distinct key from disk without
//!   invoking the compute closure once.
//! * **Property:** segments round-trip arbitrary IEEE-754 bit patterns
//!   (NaN payloads, infinities, negative zero) exactly through
//!   record → flush → reopen → lookup.
//! * **Corruption:** a segment truncated behind a warm tier's back is
//!   detected on reopen, never served, and the cache falls back to
//!   recomputing the identical bits.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use unico_mapping::Mapping;
use unico_model::{
    spatial_eval_key, AnalyticalModel, CacheStats, Dataflow, DiskTier, EngineTag, EvalCache,
    EvalKey, HwConfig, MappingObjective, Ppa, TechParams,
};
use unico_workloads::{Dim, LoopNest, TensorOp};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "unico-disktier-diff-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&d);
    d
}

/// Small conv layers `(k, c, y=x)` with 3×3 kernels, sized so the
/// 16×16 reference array finds the hand-rolled mapping feasible.
const GRID: [(u64, u64, u64); 5] = [
    (8, 8, 8),
    (16, 8, 14),
    (16, 16, 14),
    (32, 16, 28),
    (8, 16, 8),
];

fn layer(k: u64, c: u64, yx: u64) -> LoopNest {
    TensorOp::Conv2d {
        n: 1,
        k,
        c,
        y: yx,
        x: yx,
        r: 3,
        s: 3,
        stride: 1,
    }
    .to_loop_nest()
}

/// A conservative mapping feasible for every layer in the grid —
/// except with `oversize`, which blows the L1 tile past the scratchpad
/// so the evaluation returns an `EvalError` (errors are cached and
/// serialized too, and must survive the disk tier bit-for-bit).
fn mapping(n: &LoopNest, oversize: bool) -> Mapping {
    let mut l2 = n.extents();
    l2[Dim::C.index()] = l2[Dim::C.index()].min(16);
    let mut l1 = [1u64; 7];
    if oversize {
        l1 = n.extents();
    } else {
        l1[Dim::K.index()] = n.extent(Dim::K).min(8);
        l1[Dim::Y.index()] = n.extent(Dim::Y).min(8);
        l1[Dim::X.index()] = n.extent(Dim::X).min(4);
        l1[Dim::C.index()] = n.extent(Dim::C).min(4);
    }
    Mapping::new(n, l2, l1, Dim::ALL, (Dim::K, Dim::Y))
}

/// Bit-exact fingerprint of an evaluation result (`PartialEq` would
/// conflate NaN payloads and `-0.0`/`0.0`).
fn fingerprint(r: &Result<Ppa, unico_model::EvalError>) -> String {
    match r {
        Ok(p) => format!(
            "ok {:016x} {:016x} {:016x} {:016x}",
            p.latency_s.to_bits(),
            p.power_mw.to_bits(),
            p.area_mm2.to_bits(),
            p.energy_pj.to_bits()
        ),
        Err(e) => format!("err {e:?}"),
    }
}

/// Runs the reference evaluation schedule through `cache`: every grid
/// layer twice (miss then hit) with a feasible and an infeasible
/// mapping. Returns the result fingerprints in schedule order and the
/// number of times the compute closure actually ran.
fn run_schedule(cache: &EvalCache) -> (Vec<String>, u64) {
    let model = AnalyticalModel::new(TechParams::default());
    let hw = HwConfig::new(16, 16, 4096, 512 * 1024, 128, Dataflow::WeightStationary);
    let computes = AtomicU64::new(0);
    let mut out = Vec::new();
    for _pass in 0..2 {
        for (k, c, yx) in GRID {
            for oversize in [false, true] {
                let nest = layer(k, c, yx);
                let m = mapping(&nest, oversize);
                let key = spatial_eval_key(
                    EngineTag::DataCentric,
                    &hw,
                    &m,
                    &nest,
                    MappingObjective::Latency,
                );
                let r = cache.get_or_compute(key, || {
                    computes.fetch_add(1, Ordering::Relaxed);
                    model.evaluate(&hw, &m, &nest)
                });
                out.push(fingerprint(&r));
            }
        }
    }
    (out, computes.load(Ordering::Relaxed))
}

fn assert_same_memory_stats(a: &CacheStats, b: &CacheStats, what: &str) {
    assert_eq!(a.hits, b.hits, "{what}: hits diverged");
    assert_eq!(a.misses, b.misses, "{what}: misses diverged");
    assert_eq!(a.evictions, b.evictions, "{what}: evictions diverged");
    assert_eq!(a.entries, b.entries, "{what}: entries diverged");
}

#[test]
fn disk_tier_is_observationally_transparent() {
    let dir = tmpdir("transparent");

    // Reference: memory-only.
    let mem_only = EvalCache::new();
    let (ref_results, ref_computes) = run_schedule(&mem_only);
    assert!(ref_computes > 0, "schedule must exercise the compute path");

    // Cold disk tier: every result, the trace, and the memory counters
    // must be indistinguishable from the memory-only run.
    let cold = EvalCache::new().with_disk(Arc::new(DiskTier::open(&dir).expect("open cold")));
    let (cold_results, cold_computes) = run_schedule(&cold);
    assert_eq!(ref_results, cold_results, "cold disk changed result bits");
    assert_eq!(
        ref_computes, cold_computes,
        "cold disk changed compute count"
    );
    assert_eq!(
        mem_only.to_trace(),
        cold.to_trace(),
        "cold disk changed the serialized trace"
    );
    assert_same_memory_stats(&mem_only.stats(), &cold.stats(), "cold");
    let cold_disk = cold.disk_stats().expect("cold tier attached");
    assert_eq!(cold_disk.hits, 0, "nothing on disk yet");
    let flushed = cold.flush_disk();
    assert_eq!(
        flushed as u64,
        mem_only.stats().misses,
        "every distinct evaluation (incl. errors) must be flushed"
    );

    // Warm tier over a reopened directory: identical observable
    // behavior again, but now zero computes — every distinct key is
    // answered by the disk index.
    let warm = EvalCache::new().with_disk(Arc::new(DiskTier::open(&dir).expect("reopen warm")));
    let (warm_results, warm_computes) = run_schedule(&warm);
    assert_eq!(ref_results, warm_results, "warm disk changed result bits");
    assert_eq!(warm_computes, 0, "warm disk must answer every miss");
    assert_eq!(
        mem_only.to_trace(),
        warm.to_trace(),
        "warm disk changed the serialized trace"
    );
    assert_same_memory_stats(&mem_only.stats(), &warm.stats(), "warm");
    let warm_disk = warm.disk_stats().expect("warm tier attached");
    assert_eq!(
        warm_disk.hits,
        mem_only.stats().misses,
        "each distinct key must hit disk exactly once"
    );
    assert_eq!(warm_disk.misses, 0);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_segment_is_skipped_and_recomputed_identically() {
    let dir = tmpdir("truncated");
    let cold = EvalCache::new().with_disk(Arc::new(DiskTier::open(&dir).expect("open")));
    let (ref_results, _) = run_schedule(&cold);
    cold.flush_disk();

    // Tear every segment: strip the trailing bytes (including the final
    // newline) so the writer-terminates-with-newline invariant fails.
    let mut torn = 0u64;
    for shard in fs::read_dir(&dir).expect("shards") {
        let shard = shard.expect("shard").path();
        for seg in fs::read_dir(&shard).expect("segments") {
            let seg = seg.expect("segment").path();
            let text = fs::read_to_string(&seg).expect("read segment");
            fs::write(&seg, &text[..text.len().saturating_sub(3)]).expect("truncate");
            torn += 1;
        }
    }
    assert!(torn > 0, "flush must have produced segments");

    let reopened = EvalCache::new().with_disk(Arc::new(DiskTier::open(&dir).expect("reopen")));
    let stats = reopened.disk_stats().expect("tier attached");
    assert_eq!(stats.entries, 0, "no torn entry may be trusted");
    assert_eq!(stats.segments_skipped, torn, "every torn segment counted");

    // The cache degrades to computing — with the exact same bits.
    let (recomputed, computes) = run_schedule(&reopened);
    assert_eq!(ref_results, recomputed, "recomputed bits diverged");
    assert!(computes > 0, "all entries must be recomputed");

    let _ = fs::remove_dir_all(&dir);
}

/// Key/value pair with fully arbitrary bit patterns: the key is any
/// `u128`, the four PPA fields are any `u64` bit patterns — quiet and
/// signaling NaNs, infinities, subnormals, negative zero included.
fn arb_entry() -> impl Strategy<Value = (u128, [u64; 4])> {
    (
        0u64..=u64::MAX,
        0u64..=u64::MAX,
        proptest::array::uniform4(0u64..=u64::MAX),
    )
        .prop_map(|(hi, lo, bits)| (((hi as u128) << 64) | lo as u128, bits))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn segments_round_trip_arbitrary_bit_patterns(entries in proptest::collection::vec(arb_entry(), 1..24)) {
        let dir = tmpdir("proptest");
        let tier = DiskTier::open(&dir).expect("open");
        let mut expected: Vec<(EvalKey, [u64; 4])> = Vec::new();
        for (kbits, vbits) in &entries {
            let key = EvalKey::from_hex(&format!("{kbits:032x}")).expect("key hex");
            let ppa = Ppa {
                latency_s: f64::from_bits(vbits[0]),
                power_mw: f64::from_bits(vbits[1]),
                area_mm2: f64::from_bits(vbits[2]),
                energy_pj: f64::from_bits(vbits[3]),
            };
            tier.record(key, Ok(ppa));
            // First record of a key wins (duplicates in the generated
            // vector are skipped by the tier's index).
            if !expected.iter().any(|(k, _)| *k == key) {
                expected.push((key, *vbits));
            }
        }
        prop_assert_eq!(tier.flush(), expected.len());

        let reopened = DiskTier::open(&dir).expect("reopen");
        prop_assert_eq!(reopened.len(), expected.len());
        for (key, vbits) in &expected {
            let got = reopened
                .lookup(*key)
                .expect("entry present")
                .expect("Ok result");
            let got_bits = [
                got.latency_s.to_bits(),
                got.power_mw.to_bits(),
                got.area_mm2.to_bits(),
                got.energy_pj.to_bits(),
            ];
            prop_assert_eq!(&got_bits, vbits, "bit pattern mangled for key {}", key.to_hex());
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
