//! Finite-difference gradient checks for the autodiff tape and the
//! relaxed analytical cost.
//!
//! # Tolerances and exclusion rules (the contract these tests pin)
//!
//! * **Op-level checks** use central differences with step
//!   `h = 1e-5 · max(|x|, 1)` and require relative agreement within
//!   `1e-4` (denominator `max(|ad|, |fd|, 1e-9)`). Points within `1e-3`
//!   of a `min`/`max` tie are excluded — at a tie the subgradient is
//!   set-valued and the tape's first-operand convention is pinned by a
//!   dedicated test instead.
//! * **`ceil_ste` is excluded from FD agreement by design**: its forward
//!   map is piecewise constant (FD reads 0 between integers and blows up
//!   across them) while its backward is the straight-through identity.
//!   Its op-level test asserts exactly that pair.
//! * **Full-cost checks** perturb only *free* coordinates (dims with
//!   extent ≥ 8; pinned dims sit at their extent with trip counts
//!   exactly 1.0, where the surrogate is locally constant in them) with
//!   relative step `h = 1e-4 · x`, and require relative agreement within
//!   `1e-3` (denominator `max(|ad|, |fd|, tiny)` with
//!   `tiny = 1e-7 · value / x` so coordinates the cost is numerically
//!   insensitive to are treated as zero). Samples whose
//!   [`RelaxedDiag::kink_margin`] is below `1e-2` are excluded: the
//!   surrogate is only piecewise smooth, and within that margin of a
//!   `trip > 1` predicate, a `min`/`max` selection, a latency-bottleneck
//!   crossover, or a feasibility hinge, central differences straddle the
//!   switch and measure the wrong branch.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use unico_autodiff::Tape;
use unico_mapping::{Mapping, RelaxedPoint};
use unico_model::{
    relaxed_eval, AnalyticalModel, Dataflow, HwConfig, MappingObjective, RelaxedDiag, TechParams,
};
use unico_workloads::{LoopNest, TensorOp, DIM_COUNT};

const OP_STEP_SCALE: f64 = 1e-5;
const OP_RTOL: f64 = 1e-4;
const TIE_EXCLUSION: f64 = 1e-3;
const COST_STEP_SCALE: f64 = 1e-4;
const COST_RTOL: f64 = 1e-3;
const KINK_MARGIN_EXCLUSION: f64 = 1e-2;

/// Central finite difference of a scalar function at `x`.
fn central_fd(f: impl Fn(f64) -> f64, x: f64, h: f64) -> f64 {
    (f(x + h) - f(x - h)) / (2.0 * h)
}

fn op_grad_matches(ad: f64, fd: f64) -> bool {
    let denom = ad.abs().max(fd.abs()).max(1e-9);
    (ad - fd).abs() <= OP_RTOL * denom
}

/// Checks one unary op: reverse-mode gradient vs central differences.
fn check_unary(
    name: &str,
    x: f64,
    tape_op: impl for<'t> Fn(unico_autodiff::Var<'t>) -> unico_autodiff::Var<'t>,
    f: impl Fn(f64) -> f64,
) {
    let tape = Tape::new();
    let v = tape.var(x);
    let y = tape_op(v);
    let ad = y.backward().wrt(v);
    let fd = central_fd(&f, x, OP_STEP_SCALE * x.abs().max(1.0));
    assert!(op_grad_matches(ad, fd), "{name}({x}): ad {ad} vs fd {fd}");
}

/// Checks one binary op against central differences in each operand.
fn check_binary(
    name: &str,
    x: f64,
    y: f64,
    tape_op: impl for<'t> Fn(
        unico_autodiff::Var<'t>,
        unico_autodiff::Var<'t>,
    ) -> unico_autodiff::Var<'t>,
    f: impl Fn(f64, f64) -> f64,
) {
    let tape = Tape::new();
    let (a, b) = (tape.var(x), tape.var(y));
    let out = tape_op(a, b);
    let grads = out.backward();
    let fd_x = central_fd(|t| f(t, y), x, OP_STEP_SCALE * x.abs().max(1.0));
    let fd_y = central_fd(|t| f(x, t), y, OP_STEP_SCALE * y.abs().max(1.0));
    assert!(
        op_grad_matches(grads.wrt(a), fd_x),
        "{name}({x},{y}) d/dx: ad {} vs fd {fd_x}",
        grads.wrt(a)
    );
    assert!(
        op_grad_matches(grads.wrt(b), fd_y),
        "{name}({x},{y}) d/dy: ad {} vs fd {fd_y}",
        grads.wrt(b)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every smooth differentiable op agrees with central differences.
    #[test]
    fn ops_match_finite_differences(x in 0.1f64..50.0, y in 0.1f64..50.0, n in 1i32..5) {
        check_binary("add", x, y, |a, b| a + b, |a, b| a + b);
        check_binary("sub", x, y, |a, b| a - b, |a, b| a - b);
        check_binary("mul", x, y, |a, b| a * b, |a, b| a * b);
        check_binary("div", x, y, |a, b| a / b, |a, b| a / b);
        check_unary("neg", x, |v| -v, |t| -t);
        check_unary("ln", x, |v| v.ln(), f64::ln);
        check_unary("exp", x / 10.0, |v| v.exp(), f64::exp);
        check_unary("powi", x, |v| v.powi(n), |t| t.powi(n));
        // min/max away from the tie (set-valued subgradient there).
        if (x - y).abs() > TIE_EXCLUSION {
            check_binary("vmax", x, y, |a, b| a.vmax(b), f64::max);
            check_binary("vmin", x, y, |a, b| a.vmin(b), f64::min);
        }
        // A composite expression exercising the whole tape at once:
        // f = ln(x) * exp(y/10) + x^2 / max(x, y).
        let tape = Tape::new();
        let (a, b) = (tape.var(x), tape.var(y));
        let out = a.ln() * (b / tape.var(10.0)).exp() + a.powi(2) / a.vmax(b);
        let grads = out.backward();
        let f = |p: f64, q: f64| p.ln() * (q / 10.0).exp() + p.powi(2) / p.max(q);
        if (x - y).abs() > TIE_EXCLUSION {
            let fd_x = central_fd(|t| f(t, y), x, OP_STEP_SCALE * x.max(1.0));
            let fd_y = central_fd(|t| f(x, t), y, OP_STEP_SCALE * y.max(1.0));
            prop_assert!(op_grad_matches(grads.wrt(a), fd_x), "composite d/dx");
            prop_assert!(op_grad_matches(grads.wrt(b), fd_y), "composite d/dy");
        }
    }
}

/// `ceil_ste`: true ceiling forward, straight-through identity
/// backward. FD disagrees by design (the forward map is piecewise
/// constant), which is exactly why the full-cost relaxation avoids
/// `ceil` and why this op is excluded from the FD suite above.
#[test]
fn ceil_ste_is_straight_through() {
    for x in [0.3, 1.5, 2.0, 7.99, 100.2] {
        let tape = Tape::new();
        let v = tape.var(x);
        let y = v.ceil_ste();
        assert_eq!(y.value(), x.ceil(), "forward is a true ceil at {x}");
        assert_eq!(y.backward().wrt(v), 1.0, "backward is identity at {x}");
        // And the FD view of the forward map between integers is flat —
        // the mismatch the STE exists to paper over.
        if x.fract() > 0.01 && x.fract() < 0.99 {
            let fd = central_fd(f64::ceil, x, 1e-6);
            assert_eq!(fd, 0.0, "true ceil is locally constant at {x}");
        }
    }
}

/// min/max tie convention: the gradient flows to the FIRST operand.
#[test]
fn tie_gradient_goes_to_first_operand() {
    let tape = Tape::new();
    let (a, b) = (tape.var(3.0), tape.var(3.0));
    let g_max = (a.vmax(b)).backward();
    assert_eq!((g_max.wrt(a), g_max.wrt(b)), (1.0, 0.0));
    let g_min = (a.vmin(b)).backward();
    assert_eq!((g_min.wrt(a), g_min.wrt(b)), (1.0, 0.0));
}

/// Guards the FD suite against vacuousness: the kink-margin exclusion
/// must leave a healthy majority of sampled points checkable, otherwise
/// `relaxed_cost_matches_finite_differences` would silently test nothing.
#[test]
fn kink_margin_exclusion_is_not_vacuous() {
    let mut checked = 0u32;
    let total = 200u32;
    for seed in 0..u64::from(total) {
        let mut rng = StdRng::seed_from_u64(seed);
        let fx = &fixtures()[0];
        let m = template(&fx.nest);
        let (_, p) = sample_point(&fx.nest, &mut rng);
        let (_, diag) = eval(fx, &m, &p, MappingObjective::Latency);
        if diag.kink_margin >= KINK_MARGIN_EXCLUSION {
            checked += 1;
        }
    }
    assert!(
        checked * 2 >= total,
        "only {checked}/{total} sampled points clear the kink margin"
    );
}

struct Fixture {
    model: AnalyticalModel,
    hw: HwConfig,
    nest: LoopNest,
}

fn fixtures() -> Vec<Fixture> {
    vec![
        Fixture {
            model: AnalyticalModel::new(TechParams::default()),
            hw: HwConfig::new(8, 8, 4096, 512 * 1024, 128, Dataflow::WeightStationary),
            nest: TensorOp::Conv2d {
                n: 1,
                k: 64,
                c: 32,
                y: 28,
                x: 28,
                r: 3,
                s: 3,
                stride: 1,
            }
            .to_loop_nest(),
        },
        Fixture {
            model: AnalyticalModel::new(TechParams::default()),
            hw: HwConfig::new(12, 12, 2048, 256 * 1024, 64, Dataflow::OutputStationary),
            nest: TensorOp::Gemm {
                m: 128,
                n: 96,
                k: 64,
            }
            .to_loop_nest(),
        },
    ]
}

/// Free dims (extent ≥ 8) get `l2 = u·ext`, `l1 = 1 + v·(l2−1)`; the
/// rest are pinned exactly at their extent (trips exactly 1.0).
fn sample_point(nest: &LoopNest, rng: &mut StdRng) -> (Vec<usize>, RelaxedPoint) {
    let ext = nest.extents();
    let mut free = Vec::new();
    let mut l2 = [0.0f64; DIM_COUNT];
    let mut l1 = [0.0f64; DIM_COUNT];
    for i in 0..DIM_COUNT {
        if ext[i] >= 8 {
            free.push(i);
            let u: f64 = rng.gen_range(0.35..0.75);
            let v: f64 = rng.gen_range(0.25..0.65);
            l2[i] = u * ext[i] as f64;
            l1[i] = 1.0 + v * (l2[i] - 1.0);
        } else {
            l2[i] = ext[i] as f64;
            l1[i] = ext[i] as f64;
        }
    }
    (free, RelaxedPoint { l2, l1 })
}

fn template(nest: &LoopNest) -> Mapping {
    // Spatial on (K, Y) — free dims in both fixtures — with the
    // canonical order; tiles are irrelevant (only order and spatial are
    // read from the template).
    Mapping::identity(nest)
}

fn eval(
    fx: &Fixture,
    m: &Mapping,
    p: &RelaxedPoint,
    obj: MappingObjective,
) -> (unico_mapping::RelaxedGrad, RelaxedDiag) {
    relaxed_eval(&fx.model, &fx.hw, &fx.nest, m, p, obj).expect("well-formed point")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full relaxed analytical cost: reverse-mode gradients agree
    /// with central finite differences in every free coordinate, for
    /// both objectives, away from kinks.
    #[test]
    fn relaxed_cost_matches_finite_differences(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for fx in fixtures() {
            let m = template(&fx.nest);
            let (free, p) = sample_point(&fx.nest, &mut rng);
            for obj in [MappingObjective::Latency, MappingObjective::Edp] {
                let (g, diag) = eval(&fx, &m, &p, obj);
                if diag.kink_margin < KINK_MARGIN_EXCLUSION {
                    // Documented exclusion: too close to a switching
                    // surface for central differences to be meaningful.
                    continue;
                }
                prop_assert!(g.value.is_finite() && g.value > 0.0);
                for &i in &free {
                    for level in 0..2 {
                        let x = if level == 0 { p.l2[i] } else { p.l1[i] };
                        let h = COST_STEP_SCALE * x;
                        let f = |t: f64| {
                            let mut q = p;
                            if level == 0 { q.l2[i] = t; } else { q.l1[i] = t; }
                            eval(&fx, &m, &q, obj).0.value
                        };
                        let fd = central_fd(f, x, h);
                        let ad = if level == 0 { g.d_l2[i] } else { g.d_l1[i] };
                        let tiny = 1e-7 * g.value / x;
                        let denom = ad.abs().max(fd.abs()).max(tiny);
                        prop_assert!(
                            (ad - fd).abs() <= COST_RTOL * denom,
                            "dim {i} level {level} obj {obj:?}: ad {ad} vs fd {fd} (value {}, margin {})",
                            g.value,
                            diag.kink_margin
                        );
                    }
                }
            }
        }
    }

    /// Pinned dims really are locally inert: the surrogate value is
    /// invariant to the choice the margin rule makes about exact-1.0
    /// trips, because identical points evaluate identically.
    #[test]
    fn relaxed_eval_is_deterministic(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let fx = &fixtures()[0];
        let m = template(&fx.nest);
        let (_, p) = sample_point(&fx.nest, &mut rng);
        let (a, da) = eval(fx, &m, &p, MappingObjective::Latency);
        let (b, db) = eval(fx, &m, &p, MappingObjective::Latency);
        prop_assert_eq!(a.value.to_bits(), b.value.to_bits());
        prop_assert_eq!(da.kink_margin.to_bits(), db.kink_margin.to_bits());
        for i in 0..DIM_COUNT {
            prop_assert_eq!(a.d_l2[i].to_bits(), b.d_l2[i].to_bits());
            prop_assert_eq!(a.d_l1[i].to_bits(), b.d_l1[i].to_bits());
        }
    }
}
