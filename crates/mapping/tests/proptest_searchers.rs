//! Property-based tests across all mapping searchers: budget accounting,
//! monotone best-so-far curves, and resumability equivalence.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use unico_mapping::{
    AnnealingSearch, GeneticConfig, GeneticSearch, GradientSearcher, Mapping, MappingCost,
    MappingOutcome, MappingSearcher, MappingSpace, QLearningSearch, RandomSearch,
};
use unico_workloads::{Dim, TensorOp};

/// A deterministic synthetic cost with both structure and infeasibility.
struct Synthetic {
    k_cap: u64,
}

impl MappingCost for Synthetic {
    fn assess(&self, m: &Mapping) -> Option<MappingOutcome> {
        let t = m.l1_tile();
        if t[Dim::K.index()] > self.k_cap {
            return None;
        }
        let loss = 100.0 / t[Dim::K.index()] as f64
            + (t[Dim::Y.index()] as f64 - t[Dim::X.index()] as f64).abs()
            + m.order_penalty();
        Some(MappingOutcome {
            loss,
            latency_s: loss * 1e-3,
            power_mw: 50.0 + t[Dim::K.index()] as f64,
        })
    }
}

trait OrderPenalty {
    fn order_penalty(&self) -> f64;
}

impl OrderPenalty for Mapping {
    fn order_penalty(&self) -> f64 {
        // Mild preference for reduction loops innermost.
        let pos = self.order_position(Dim::C) as f64;
        (6.0 - pos) * 0.1
    }
}

fn space() -> MappingSpace {
    let nest = TensorOp::Conv2d {
        n: 1,
        k: 64,
        c: 32,
        y: 28,
        x: 28,
        r: 3,
        s: 3,
        stride: 1,
    }
    .to_loop_nest();
    MappingSpace::new(&nest)
}

fn searchers(seed: u64) -> Vec<(&'static str, Box<dyn MappingSearcher>)> {
    vec![
        (
            "random",
            Box::new(RandomSearch::new(space(), StdRng::seed_from_u64(seed))),
        ),
        (
            "annealing",
            Box::new(AnnealingSearch::new(space(), StdRng::seed_from_u64(seed))),
        ),
        (
            "genetic",
            Box::new(GeneticSearch::new(
                space(),
                StdRng::seed_from_u64(seed),
                GeneticConfig::default(),
            )),
        ),
        (
            "q-learning",
            Box::new(QLearningSearch::new(space(), StdRng::seed_from_u64(seed))),
        ),
        // Synthetic has no differentiable surrogate, so this exercises
        // the gradient searcher's random-sampling fallback under the
        // same budget/monotonicity/resumability contracts.
        (
            "gradient",
            Box::new(GradientSearcher::new(space(), StdRng::seed_from_u64(seed))),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every searcher: exact budget accounting, monotone best-so-far,
    /// best() consistent with terminal value.
    #[test]
    fn searcher_contracts(seed in 0u64..500, budget in 20u64..150, k_cap in 4u64..64) {
        let cost = Synthetic { k_cap };
        for (name, mut s) in searchers(seed) {
            s.run_until(&cost, budget);
            prop_assert_eq!(s.history().spent(), budget, "{} budget", name);
            let mut prev = f64::INFINITY;
            for b in 1..=budget {
                if let Some(best) = s.history().best_at(b) {
                    prop_assert!(best.loss <= prev + 1e-12, "{} monotone", name);
                    prev = best.loss;
                }
            }
            if let Some((_, o)) = s.best() {
                prop_assert_eq!(o.loss, s.history().terminal_value());
                // Respect the feasibility constraint.
                let (m, _) = s.best().expect("just checked");
                prop_assert!(m.l1_tile()[Dim::K.index()] <= k_cap, "{name} infeasible best");
            }
        }
    }

    /// Split-budget runs reach the same spent totals and never regress
    /// versus their own earlier prefix.
    #[test]
    fn resumability(seed in 0u64..200, b1 in 10u64..60, b2 in 61u64..160) {
        let cost = Synthetic { k_cap: 32 };
        for (name, mut s) in searchers(seed) {
            s.run_until(&cost, b1);
            let tv1 = s.history().terminal_value();
            s.run_until(&cost, b2);
            prop_assert_eq!(s.history().spent(), b2, "{}", name);
            prop_assert!(s.history().terminal_value() <= tv1, "{} regressed", name);
        }
    }

    /// AUC is within [0, 1] and zero only when no improvement happened.
    #[test]
    fn auc_bounds_hold(seed in 0u64..200, budget in 30u64..120) {
        let cost = Synthetic { k_cap: 32 };
        for (name, mut s) in searchers(seed) {
            s.run_until(&cost, budget);
            let auc = s.history().auc(budget);
            prop_assert!((0.0..=1.0).contains(&auc), "{} auc {}", name, auc);
        }
    }
}
