//! Property tests for evaluation-cache key canonicalization.
//!
//! Two families of guarantees, matching the [`CanonicalMapping`] rewrite
//! rules:
//!
//! * **Soundness of normalization** — mappings that differ only in the
//!   position of a unit loop, or by a permutation inside a contiguous
//!   reduction run, hash to the same key.
//! * **No spurious merging** — on a randomized corpus, mappings with
//!   distinct canonical forms never share a 128-bit key, and key equality
//!   exactly tracks canonical-form equality.

use proptest::array;
use proptest::prelude::*;

use unico_mapping::{CanonicalMapping, Mapping, StableHasher};
use unico_workloads::{Dim, LoopNest, TensorOp, DIM_COUNT};

fn nest() -> LoopNest {
    TensorOp::Conv2d {
        n: 1,
        k: 16,
        c: 8,
        y: 8,
        x: 8,
        r: 3,
        s: 3,
        stride: 1,
    }
    .to_loop_nest()
}

/// The cache key contribution of a mapping: canonicalize, then hash.
fn key(m: &Mapping, n: &LoopNest) -> u128 {
    let mut h = StableHasher::new();
    CanonicalMapping::of(m, n).hash_into(&mut h);
    h.finish128()
}

fn arb_order() -> impl Strategy<Value = [Dim; DIM_COUNT]> {
    Just(Dim::ALL).prop_shuffle()
}

fn arb_tiles() -> impl Strategy<Value = [u64; DIM_COUNT]> {
    // Mapping::new clamps into `1..=extent` (and `l1 ≤ l2`), so any draw
    // yields a valid mapping.
    array::uniform7(1u64..=16)
}

/// Two distinct spatial dims.
fn arb_spatial() -> impl Strategy<Value = (Dim, Dim)> {
    (0usize..DIM_COUNT, 0usize..DIM_COUNT - 1).prop_map(|(a, b)| {
        let b = if b >= a { b + 1 } else { b };
        (Dim::ALL[a], Dim::ALL[b])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Moving a unit loop (trip count 1 at both levels) anywhere in the
    /// temporal order leaves the key unchanged.
    #[test]
    fn unit_loop_position_never_changes_key(
        order in arb_order(),
        l2 in arb_tiles(),
        l1 in arb_tiles(),
        pick in 0usize..DIM_COUNT,
        dest in 0usize..DIM_COUNT,
    ) {
        let n = nest();
        let m = Mapping::new(&n, l2, l1, order, (Dim::K, Dim::Y));
        let l1t = m.l1_trip_counts();
        let l2t = m.l2_trip_counts(&n);
        let units: Vec<Dim> = Dim::ALL
            .iter()
            .copied()
            .filter(|d| l1t[d.index()] == 1 && l2t[d.index()] == 1)
            .collect();
        if units.is_empty() {
            return;
        }
        let unit = units[pick % units.len()];
        let mut moved: Vec<Dim> =
            m.order().iter().copied().filter(|d| *d != unit).collect();
        moved.insert(dest % (moved.len() + 1), unit);
        let m2 = Mapping::new(
            &n,
            m.l2_tile(),
            m.l1_tile(),
            std::array::from_fn(|i| moved[i]),
            m.spatial(),
        );
        prop_assert_eq!(key(&m, &n), key(&m2, &n));
    }

    /// Swapping two adjacent reduction dims inside a contiguous run
    /// leaves the key unchanged (non-depthwise nest: C, R, S all sort).
    #[test]
    fn adjacent_reduction_swap_never_changes_key(
        order in arb_order(),
        l2 in arb_tiles(),
        l1 in arb_tiles(),
        pick in 0usize..DIM_COUNT,
    ) {
        let n = nest();
        let m = Mapping::new(&n, l2, l1, order, (Dim::K, Dim::Y));
        let o = m.order();
        let pairs: Vec<usize> = (0..DIM_COUNT - 1)
            .filter(|&i| o[i].is_reduction() && o[i + 1].is_reduction())
            .collect();
        if pairs.is_empty() {
            return;
        }
        let i = pairs[pick % pairs.len()];
        let mut swapped = o;
        swapped.swap(i, i + 1);
        let m2 = Mapping::new(&n, m.l2_tile(), m.l1_tile(), swapped, m.spatial());
        prop_assert_eq!(key(&m, &n), key(&m2, &n));
    }

    /// Key equality exactly tracks canonical-form equality: equal forms
    /// always collide, distinct forms never do.
    #[test]
    fn key_equality_tracks_canonical_equality(
        o1 in arb_order(), l2a in arb_tiles(), l1a in arb_tiles(), s1 in arb_spatial(),
        o2 in arb_order(), l2b in arb_tiles(), l1b in arb_tiles(), s2 in arb_spatial(),
    ) {
        let n = nest();
        let m1 = Mapping::new(&n, l2a, l1a, o1, s1);
        let m2 = Mapping::new(&n, l2b, l1b, o2, s2);
        let same_form = CanonicalMapping::of(&m1, &n) == CanonicalMapping::of(&m2, &n);
        prop_assert_eq!(same_form, key(&m1, &n) == key(&m2, &n));
    }
}

/// Exhaustive corpus sweep: every pair of distinct canonical forms gets
/// distinct keys (128-bit collisions would be a hasher bug, not luck).
#[test]
fn no_collisions_on_structured_corpus() {
    use std::collections::HashMap;

    let n = nest();
    let orders = [
        Dim::ALL,
        // Differs from Dim::ALL only by the position of N (extent 1):
        // merges with it after canonicalization.
        [Dim::K, Dim::N, Dim::C, Dim::Y, Dim::X, Dim::R, Dim::S],
        // Differs from Dim::ALL only by the R/S swap inside a reduction
        // run: also merges.
        [Dim::N, Dim::K, Dim::C, Dim::Y, Dim::X, Dim::S, Dim::R],
        [Dim::S, Dim::R, Dim::C, Dim::X, Dim::Y, Dim::K, Dim::N],
        [Dim::C, Dim::K, Dim::Y, Dim::S, Dim::X, Dim::R, Dim::N],
    ];
    let spatials = [(Dim::K, Dim::Y), (Dim::Y, Dim::K), (Dim::K, Dim::X)];
    let mut seen: HashMap<u128, CanonicalMapping> = HashMap::new();
    let mut corpus = 0usize;
    for order in orders {
        for spatial in spatials {
            for kt in [1u64, 2, 4, 8, 16] {
                for ct in [1u64, 2, 8] {
                    for yt in [1u64, 4, 8] {
                        let mut l1 = [1u64; DIM_COUNT];
                        l1[Dim::K.index()] = kt;
                        l1[Dim::C.index()] = ct;
                        l1[Dim::Y.index()] = yt;
                        let m = Mapping::new(&n, n.extents(), l1, order, spatial);
                        let c = CanonicalMapping::of(&m, &n);
                        let k = key(&m, &n);
                        corpus += 1;
                        match seen.get(&k) {
                            Some(prev) => assert_eq!(
                                prev, &c,
                                "key collision between distinct canonical forms"
                            ),
                            None => {
                                seen.insert(k, c);
                            }
                        }
                    }
                }
            }
        }
    }
    // The corpus really exercised merging: strictly fewer keys than
    // raw mappings (normalization), but far more than one.
    assert_eq!(corpus, 5 * 3 * 5 * 3 * 3);
    assert!(seen.len() > corpus / 4, "suspiciously few distinct keys");
    assert!(seen.len() < corpus, "normalization never merged anything");
}
