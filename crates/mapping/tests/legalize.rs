//! Legalization round-trip properties: every legalized continuous point
//! is a valid member of the [`MappingSpace`], legalization is
//! idempotent, and the rounded tiles stay within the template's box.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use unico_mapping::MappingSpace;
use unico_workloads::{Dim, TensorOp, DIM_COUNT};

fn spaces() -> Vec<MappingSpace> {
    vec![
        MappingSpace::new(
            &TensorOp::Conv2d {
                n: 1,
                k: 64,
                c: 32,
                y: 28,
                x: 28,
                r: 3,
                s: 3,
                stride: 1,
            }
            .to_loop_nest(),
        ),
        MappingSpace::new(
            &TensorOp::DepthwiseConv2d {
                n: 1,
                c: 32,
                y: 14,
                x: 14,
                r: 3,
                s: 3,
                stride: 1,
            }
            .to_loop_nest(),
        ),
        MappingSpace::new(
            &TensorOp::Gemm {
                m: 128,
                n: 96,
                k: 64,
            }
            .to_loop_nest(),
        ),
    ]
}

/// A random continuous tile point, deliberately allowed to stray
/// outside `[1, extent]` to exercise clamping.
fn random_point(space: &MappingSpace, rng: &mut StdRng) -> ([f64; DIM_COUNT], [f64; DIM_COUNT]) {
    let ext = space.nest().extents();
    let l2: [f64; DIM_COUNT] =
        std::array::from_fn(|i| rng.gen_range(0.5..(ext[i] as f64 * 1.3 + 1.0)));
    let l1: [f64; DIM_COUNT] = std::array::from_fn(|i| rng.gen_range(0.5..(l2[i] + 0.5)));
    (l2, l1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Legalized mappings are members of the space: every tile on the
    /// option list, `l1 ≤ l2`, spatial dims respected.
    #[test]
    fn legalized_mappings_are_space_members(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for space in spaces() {
            let template = space.sample(&mut rng);
            let (l2, l1) = random_point(&space, &mut rng);
            let m = space.legalize(&l2, &l1, template.order(), template.spatial());
            prop_assert!(space.contains(&m), "{m} not in space");
            prop_assert_eq!(m.order(), template.order());
            prop_assert_eq!(m.spatial(), template.spatial());
            for i in 0..DIM_COUNT {
                prop_assert!(m.l1_tile()[i] <= m.l2_tile()[i]);
            }
        }
    }

    /// Legalization is idempotent: re-legalizing a legal mapping's own
    /// tiles (as reals) returns the identical mapping.
    #[test]
    fn legalization_is_idempotent(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for space in spaces() {
            let template = space.sample(&mut rng);
            let (l2, l1) = random_point(&space, &mut rng);
            let once = space.legalize(&l2, &l1, template.order(), template.spatial());
            let again = space.legalize(
                &once.l2_tile().map(|v| v as f64),
                &once.l1_tile().map(|v| v as f64),
                once.order(),
                once.spatial(),
            );
            prop_assert_eq!(&once, &again);
        }
    }

    /// Sampled (already legal) mappings are recognized as members, and
    /// legalizing their own tiles is the identity.
    #[test]
    fn sampled_mappings_round_trip(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for space in spaces() {
            let m = space.sample(&mut rng);
            prop_assert!(space.contains(&m), "{m} sampled outside space");
            let back = space.legalize(
                &m.l2_tile().map(|v| v as f64),
                &m.l1_tile().map(|v| v as f64),
                m.order(),
                m.spatial(),
            );
            prop_assert_eq!(&m, &back);
        }
    }
}

#[test]
fn nearest_tile_picks_log_space_neighbor() {
    let space = &spaces()[0]; // K extent 64: options 1,2,4,...,64 plus others
    let opts = space.tile_options(Dim::K);
    // Exact options map to themselves.
    for &o in opts {
        assert_eq!(space.nearest_tile(Dim::K, o as f64), o);
    }
    // Below/above the range clamp to the ends.
    assert_eq!(space.nearest_tile(Dim::K, 0.0), opts[0]);
    assert_eq!(
        space.nearest_tile(Dim::K, 1e9),
        *opts.last().expect("non-empty")
    );
    // NaN degrades to the smallest option instead of panicking.
    assert_eq!(space.nearest_tile(Dim::K, f64::NAN), opts[0]);
    // The geometric midpoint of two adjacent options ties downward.
    let (a, b) = (opts[2] as f64, opts[3] as f64);
    let mid = (a * b).sqrt();
    assert_eq!(space.nearest_tile(Dim::K, mid), opts[2]);
}
