//! The mapping representation: two-level tiling + loop order + spatial dims.

use std::fmt;

use unico_workloads::{Dim, LoopNest, DIM_COUNT};

/// Per-tensor on-chip footprint of a tile, in bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Footprint {
    /// Input activation bytes.
    pub input: u64,
    /// Weight bytes.
    pub weight: u64,
    /// Output (partial-sum) bytes.
    pub output: u64,
}

impl Footprint {
    /// Total bytes across the three tensors.
    pub fn total(&self) -> u64 {
        self.input + self.weight + self.output
    }
}

/// A software mapping of one loop nest onto a two-level memory hierarchy.
///
/// * `l2_tile` — extents of the tile staged in global (L2) memory.
/// * `l1_tile` — extents of the tile staged in PE-local (L1) scratchpads;
///   element-wise `1 ≤ l1 ≤ l2 ≤ nest extent`.
/// * `order` — temporal loop order (outermost first) used at both tiling
///   levels.
/// * `spatial` — the two distinct dimensions unrolled across the PE array
///   (rows, columns).
///
/// A `Mapping` is pure geometry: whether it *fits* a given hardware
/// configuration is decided by the cost model via [`Mapping::l1_footprint`]
/// and [`Mapping::l2_footprint`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mapping {
    l2_tile: [u64; DIM_COUNT],
    l1_tile: [u64; DIM_COUNT],
    order: [Dim; DIM_COUNT],
    spatial: (Dim, Dim),
}

impl Mapping {
    /// Creates a mapping, clamping tiles into `1 ..= nest extent` and
    /// enforcing `l1 ≤ l2`.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of all seven dims, or if the
    /// two spatial dims are equal.
    pub fn new(
        nest: &LoopNest,
        mut l2_tile: [u64; DIM_COUNT],
        mut l1_tile: [u64; DIM_COUNT],
        order: [Dim; DIM_COUNT],
        spatial: (Dim, Dim),
    ) -> Self {
        assert!(spatial.0 != spatial.1, "spatial dims must differ");
        let mut seen = [false; DIM_COUNT];
        for d in order {
            assert!(!seen[d.index()], "order must be a permutation");
            seen[d.index()] = true;
        }
        let ext = nest.extents();
        for i in 0..DIM_COUNT {
            l2_tile[i] = l2_tile[i].clamp(1, ext[i]);
            l1_tile[i] = l1_tile[i].clamp(1, l2_tile[i]);
        }
        Mapping {
            l2_tile,
            l1_tile,
            order,
            spatial,
        }
    }

    /// A trivial mapping: whole nest as one tile, canonical order,
    /// spatial on `(K, Y)`. Used as a search starting point.
    pub fn identity(nest: &LoopNest) -> Self {
        Mapping::new(
            nest,
            nest.extents(),
            nest.extents(),
            Dim::ALL,
            (Dim::K, Dim::Y),
        )
    }

    /// L2-level tile extents.
    pub fn l2_tile(&self) -> [u64; DIM_COUNT] {
        self.l2_tile
    }

    /// L1-level tile extents.
    pub fn l1_tile(&self) -> [u64; DIM_COUNT] {
        self.l1_tile
    }

    /// Temporal loop order, outermost first.
    pub fn order(&self) -> [Dim; DIM_COUNT] {
        self.order
    }

    /// Spatially unrolled dimensions `(rows, cols)`.
    pub fn spatial(&self) -> (Dim, Dim) {
        self.spatial
    }

    /// Trip counts of the L2-tile loops (`ceil(extent / l2_tile)` per dim).
    pub fn l2_trip_counts(&self, nest: &LoopNest) -> [u64; DIM_COUNT] {
        let ext = nest.extents();
        std::array::from_fn(|i| ext[i].div_ceil(self.l2_tile[i]))
    }

    /// Trip counts of the L1-tile loops inside one L2 tile.
    pub fn l1_trip_counts(&self) -> [u64; DIM_COUNT] {
        std::array::from_fn(|i| self.l2_tile[i].div_ceil(self.l1_tile[i]))
    }

    /// Number of L2 tiles.
    pub fn num_l2_tiles(&self, nest: &LoopNest) -> u64 {
        self.l2_trip_counts(nest).iter().product()
    }

    /// Number of L1 tiles within one L2 tile.
    pub fn num_l1_tiles_per_l2(&self) -> u64 {
        self.l1_trip_counts().iter().product()
    }

    fn footprint_of(nest: &LoopNest, tile: &[u64; DIM_COUNT], bytes_per_elem: u64) -> Footprint {
        let n = tile[Dim::N.index()];
        let k = tile[Dim::K.index()];
        let c = tile[Dim::C.index()];
        let y = tile[Dim::Y.index()];
        let x = tile[Dim::X.index()];
        let r = tile[Dim::R.index()];
        let s = tile[Dim::S.index()];
        let in_rows = nest.input_rows_for(y, r);
        let in_cols = nest.input_cols_for(x, s);
        let in_ch = if nest.is_depthwise() { k } else { c };
        Footprint {
            input: n * in_ch * in_rows * in_cols * bytes_per_elem,
            weight: k * c * r * s * bytes_per_elem,
            output: n * k * y * x * bytes_per_elem,
        }
    }

    /// Bytes each tensor occupies for one **L1** tile.
    pub fn l1_footprint(&self, nest: &LoopNest, bytes_per_elem: u64) -> Footprint {
        Self::footprint_of(nest, &self.l1_tile, bytes_per_elem)
    }

    /// Bytes each tensor occupies for one **L2** tile.
    pub fn l2_footprint(&self, nest: &LoopNest, bytes_per_elem: u64) -> Footprint {
        Self::footprint_of(nest, &self.l2_tile, bytes_per_elem)
    }

    /// MACs within one L1 tile.
    pub fn l1_tile_macs(&self) -> u64 {
        self.l1_tile.iter().product()
    }

    /// Position (0 = outermost) of a dim in the loop order.
    pub fn order_position(&self, dim: Dim) -> usize {
        self.order
            .iter()
            .position(|&d| d == dim)
            .expect("order is a permutation of all dims")
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L2[")?;
        for (i, t) in self.l2_tile.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "] L1[")?;
        for (i, t) in self.l1_tile.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "] order ")?;
        for d in self.order {
            write!(f, "{d}")?;
        }
        write!(f, " spatial ({},{})", self.spatial.0, self.spatial.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unico_workloads::TensorOp;

    fn nest() -> LoopNest {
        TensorOp::Conv2d {
            n: 1,
            k: 64,
            c: 32,
            y: 28,
            x: 28,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest()
    }

    #[test]
    fn identity_covers_whole_nest() {
        let n = nest();
        let m = Mapping::identity(&n);
        assert_eq!(m.num_l2_tiles(&n), 1);
        assert_eq!(m.num_l1_tiles_per_l2(), 1);
        assert_eq!(m.l1_tile_macs(), n.macs());
    }

    #[test]
    fn tiles_clamped_to_extents() {
        let n = nest();
        let m = Mapping::new(&n, [100; 7], [200; 7], Dim::ALL, (Dim::K, Dim::Y));
        assert_eq!(m.l2_tile()[1], 64);
        // l1 clamped to l2
        assert!(m.l1_tile().iter().zip(m.l2_tile()).all(|(a, b)| *a <= b));
    }

    #[test]
    fn trip_counts_use_ceiling() {
        let n = nest();
        let mut l2 = n.extents();
        l2[3] = 10; // Y=28 -> ceil(28/10)=3
        let m = Mapping::new(&n, l2, [1; 7], Dim::ALL, (Dim::K, Dim::Y));
        assert_eq!(m.l2_trip_counts(&n)[3], 3);
        assert_eq!(m.l1_trip_counts()[3], 10);
    }

    #[test]
    fn footprint_accounts_halo() {
        let n = nest();
        let mut l1 = [1; 7];
        l1[Dim::Y.index()] = 4;
        l1[Dim::X.index()] = 4;
        l1[Dim::R.index()] = 3;
        l1[Dim::S.index()] = 3;
        let m = Mapping::new(&n, n.extents(), l1, Dim::ALL, (Dim::K, Dim::Y));
        let fp = m.l1_footprint(&n, 2);
        // input patch (4-1)+3 = 6x6, one channel
        assert_eq!(fp.input, 6 * 6 * 2);
        assert_eq!(fp.weight, 9 * 2);
        assert_eq!(fp.output, 16 * 2);
        assert_eq!(fp.total(), fp.input + fp.weight + fp.output);
    }

    #[test]
    fn depthwise_input_channels_follow_k() {
        let n = TensorOp::DepthwiseConv2d {
            n: 1,
            c: 16,
            y: 8,
            x: 8,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest();
        let mut l1 = n.extents();
        l1[Dim::K.index()] = 4;
        let m = Mapping::new(&n, n.extents(), l1, Dim::ALL, (Dim::K, Dim::Y));
        let fp = m.l1_footprint(&n, 1);
        assert_eq!(fp.input, 4 * 10 * 10);
    }

    #[test]
    #[should_panic(expected = "spatial dims must differ")]
    fn equal_spatial_panics() {
        let n = nest();
        let _ = Mapping::new(&n, n.extents(), n.extents(), Dim::ALL, (Dim::K, Dim::K));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_order_panics() {
        let n = nest();
        let order = [Dim::N, Dim::N, Dim::C, Dim::Y, Dim::X, Dim::R, Dim::S];
        let _ = Mapping::new(&n, n.extents(), n.extents(), order, (Dim::K, Dim::Y));
    }

    #[test]
    fn order_position_roundtrip() {
        let n = nest();
        let m = Mapping::identity(&n);
        for d in Dim::ALL {
            assert_eq!(m.order()[m.order_position(d)], d);
        }
    }
}
