//! Per-nest mapping space: legal tile options, random sampling,
//! mutation and crossover.

use rand::seq::SliceRandom;
use rand::Rng;

use unico_workloads::{Dim, LoopNest, DIM_COUNT};

use crate::mapping::Mapping;

/// The space of legal [`Mapping`]s for one loop nest.
///
/// Tile extents are drawn from a per-dimension option list of "smooth"
/// sizes (products of powers of two and three, plus the full extent), the
/// same flavour of pruning deep-learning schedulers apply. Loop orders are
/// arbitrary permutations and spatial dims any distinct pair of the
/// non-trivial dimensions.
#[derive(Debug, Clone)]
pub struct MappingSpace {
    nest: LoopNest,
    tile_options: [Vec<u64>; DIM_COUNT],
    spatial_candidates: Vec<Dim>,
}

/// Generates the ascending list of candidate tile sizes for an extent:
/// all `2^a * 3^b ≤ extent` plus `extent` itself.
fn smooth_sizes(extent: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut p2 = 1u64;
    while p2 <= extent {
        let mut val = p2;
        while val <= extent {
            v.push(val);
            val *= 3;
        }
        p2 *= 2;
    }
    v.push(extent);
    v.sort_unstable();
    v.dedup();
    v
}

impl MappingSpace {
    /// Builds the mapping space for a loop nest.
    pub fn new(nest: &LoopNest) -> Self {
        let ext = nest.extents();
        let tile_options = std::array::from_fn(|i| smooth_sizes(ext[i]));
        // Spatial unrolling across dimensions with some extent to unroll;
        // reductions R/S are allowed (MAESTRO-style) but N rarely helps
        // at batch 1, so require extent > 1.
        let spatial_candidates: Vec<Dim> = Dim::ALL
            .into_iter()
            .filter(|d| nest.extent(*d) > 1)
            .collect();
        MappingSpace {
            nest: *nest,
            tile_options,
            spatial_candidates,
        }
    }

    /// The loop nest this space maps.
    pub fn nest(&self) -> &LoopNest {
        &self.nest
    }

    /// Dimensions eligible for spatial unrolling (extent > 1), in
    /// [`Dim::ALL`] order. Fewer than two candidates means the space
    /// pins the spatial pair to `(K, Y)`.
    pub fn spatial_candidates(&self) -> &[Dim] {
        &self.spatial_candidates
    }

    /// Candidate tile sizes for one dimension.
    pub fn tile_options(&self, dim: Dim) -> &[u64] {
        &self.tile_options[dim.index()]
    }

    /// Approximate cardinality of the space (log10).
    pub fn log10_size(&self) -> f64 {
        let mut log = 0.0f64;
        for opts in &self.tile_options {
            // l2 choice x l1 choice (ordered pairs).
            let n = opts.len() as f64;
            log += (n * (n + 1.0) / 2.0).log10();
        }
        // 7! orders.
        log += 5040f64.log10();
        let s = self.spatial_candidates.len() as f64;
        if s >= 2.0 {
            log += (s * (s - 1.0)).log10();
        }
        log
    }

    /// Samples a uniformly random legal mapping.
    #[allow(clippy::needless_range_loop)]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Mapping {
        let mut l2 = [1u64; DIM_COUNT];
        let mut l1 = [1u64; DIM_COUNT];
        for i in 0..DIM_COUNT {
            let opts = &self.tile_options[i];
            let a = opts[rng.gen_range(0..opts.len())];
            let b = opts[rng.gen_range(0..opts.len())];
            l2[i] = a.max(b);
            l1[i] = a.min(b);
        }
        let mut order = Dim::ALL;
        order.shuffle(rng);
        let spatial = self.sample_spatial(rng);
        Mapping::new(&self.nest, l2, l1, order, spatial)
    }

    fn sample_spatial<R: Rng + ?Sized>(&self, rng: &mut R) -> (Dim, Dim) {
        if self.spatial_candidates.len() < 2 {
            return (Dim::K, Dim::Y);
        }
        loop {
            let a = self.spatial_candidates[rng.gen_range(0..self.spatial_candidates.len())];
            let b = self.spatial_candidates[rng.gen_range(0..self.spatial_candidates.len())];
            if a != b {
                return (a, b);
            }
        }
    }

    fn step_tile<R: Rng + ?Sized>(&self, rng: &mut R, dim: usize, current: u64) -> u64 {
        let opts = &self.tile_options[dim];
        let pos = opts.partition_point(|&v| v < current).min(opts.len() - 1);
        let dist = rng.gen_range(1..=3i64);
        let delta = if rng.gen_bool(0.5) { dist } else { -dist };
        let new = (pos as i64 + delta).clamp(0, opts.len() as i64 - 1) as usize;
        opts[new]
    }

    /// Produces a neighbour of `m` by perturbing one component (a tile
    /// size, the loop order, or a spatial dim).
    pub fn mutate<R: Rng + ?Sized>(&self, rng: &mut R, m: &Mapping) -> Mapping {
        match rng.gen_range(0..4u8) {
            0 => self.mutate_l2_tile(rng, m),
            1 => self.mutate_l1_tile(rng, m),
            2 => self.mutate_order(rng, m),
            _ => self.mutate_spatial(rng, m),
        }
    }

    /// Steps one random L1 tile a few options up or down.
    pub fn mutate_l1_tile<R: Rng + ?Sized>(&self, rng: &mut R, m: &Mapping) -> Mapping {
        let mut l1 = m.l1_tile();
        let d = rng.gen_range(0..DIM_COUNT);
        l1[d] = self.step_tile(rng, d, l1[d]);
        Mapping::new(&self.nest, m.l2_tile(), l1, m.order(), m.spatial())
    }

    /// Steps one random L2 tile a few options up or down.
    pub fn mutate_l2_tile<R: Rng + ?Sized>(&self, rng: &mut R, m: &Mapping) -> Mapping {
        let mut l2 = m.l2_tile();
        let d = rng.gen_range(0..DIM_COUNT);
        l2[d] = self.step_tile(rng, d, l2[d]);
        Mapping::new(&self.nest, l2, m.l1_tile(), m.order(), m.spatial())
    }

    /// Swaps two positions of the temporal loop order.
    pub fn mutate_order<R: Rng + ?Sized>(&self, rng: &mut R, m: &Mapping) -> Mapping {
        let mut order = m.order();
        let a = rng.gen_range(0..DIM_COUNT);
        let b = rng.gen_range(0..DIM_COUNT);
        order.swap(a, b);
        Mapping::new(&self.nest, m.l2_tile(), m.l1_tile(), order, m.spatial())
    }

    /// Replaces one spatial dimension.
    pub fn mutate_spatial<R: Rng + ?Sized>(&self, rng: &mut R, m: &Mapping) -> Mapping {
        let spatial = m.spatial();
        let s = self.sample_spatial(rng);
        // Replace one side, keep the other when legal.
        let spatial = if rng.gen_bool(0.5) && s.0 != spatial.1 {
            (s.0, spatial.1)
        } else if s.1 != spatial.0 {
            (spatial.0, s.1)
        } else {
            s
        };
        Mapping::new(&self.nest, m.l2_tile(), m.l1_tile(), m.order(), spatial)
    }

    /// Shrinks the mapping's working set: steps the largest L1 tile (or,
    /// when L1 is already minimal, the largest L2 tile) down several
    /// options. Searchers call this after a buffer-overflow rejection to
    /// walk back into the feasible region quickly.
    pub fn shrink<R: Rng + ?Sized>(&self, rng: &mut R, m: &Mapping) -> Mapping {
        let mut l2 = m.l2_tile();
        let mut l1 = m.l1_tile();
        let (sa, sb) = m.spatial();
        let step_down = |opts: &[u64], current: u64, floor: u64| -> u64 {
            let pos = opts.partition_point(|&v| v < current).min(opts.len() - 1);
            opts[pos / 2].max(floor.min(opts[opts.len() - 1]))
        };
        // Spatial tiles keep extent ≥ 2 where possible so shrinking never
        // degenerates the PE-array unrolling.
        let l1_floor = |d: usize| {
            if d == sa.index() || d == sb.index() {
                2
            } else {
                1
            }
        };
        // Largest shrinkable L1 tile first; fall back to L2 when L1 is
        // already minimal.
        let (d1, max1) = (0..l1.len())
            .map(|d| (d, l1[d].saturating_sub(l1_floor(d))))
            .max_by_key(|&(_, slack)| slack)
            .expect("seven dims");
        if max1 > 0 {
            l1[d1] = step_down(&self.tile_options[d1], l1[d1], l1_floor(d1));
            // Half the time also trim the largest L2 tile so the L2
            // working set shrinks too.
            if rng.gen_bool(0.5) {
                let (d2, _) = l2
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &t)| t)
                    .expect("seven dims");
                l2[d2] = step_down(&self.tile_options[d2], l2[d2], 1);
            }
        } else {
            let (d2, _) = l2
                .iter()
                .enumerate()
                .max_by_key(|(_, &t)| t)
                .expect("seven dims");
            l2[d2] = step_down(&self.tile_options[d2], l2[d2], 1);
        }
        Mapping::new(&self.nest, l2, l1, m.order(), m.spatial())
    }

    /// Rounds a continuous tile size to the nearest legal option for
    /// `dim`, measured in log space (ratio distance); ties round down.
    /// Values at or below the smallest option clamp to it, likewise at
    /// the top.
    pub fn nearest_tile(&self, dim: Dim, v: f64) -> u64 {
        let opts = &self.tile_options[dim.index()];
        if v.is_nan() || v <= opts[0] as f64 {
            return opts[0];
        }
        let last = *opts.last().expect("non-empty options");
        if v >= last as f64 {
            return last;
        }
        // First option strictly greater than v; its predecessor exists
        // because v > opts[0].
        let hi_pos = opts.partition_point(|&o| (o as f64) <= v);
        let lo = opts[hi_pos - 1];
        let hi = opts[hi_pos];
        // Log-space distance: compare v/lo against hi/v.
        if v / lo as f64 <= hi as f64 / v {
            lo
        } else {
            hi
        }
    }

    /// Largest legal tile option `<= v` for `dim` (the smallest option
    /// when `v` is below all of them). Rounding down never grows a
    /// footprint, so a capacity-feasible continuous point stays feasible
    /// after discretization — [`nearest_tile`](Self::nearest_tile) can
    /// round a tile *up* across the buffer wall.
    pub fn floor_tile(&self, dim: Dim, v: f64) -> u64 {
        let opts = &self.tile_options[dim.index()];
        if v.is_nan() {
            return opts[0];
        }
        match opts.partition_point(|&o| o as f64 <= v) {
            0 => opts[0],
            p => opts[p - 1],
        }
    }

    /// [`legalize`](Self::legalize) with floor rounding: every tile is
    /// the largest option not exceeding its continuous value. Same
    /// membership and idempotence guarantees.
    pub fn legalize_floor(
        &self,
        l2: &[f64; DIM_COUNT],
        l1: &[f64; DIM_COUNT],
        order: [Dim; DIM_COUNT],
        spatial: (Dim, Dim),
    ) -> Mapping {
        let mut l2t = [1u64; DIM_COUNT];
        let mut l1t = [1u64; DIM_COUNT];
        for d in Dim::ALL {
            let i = d.index();
            l2t[i] = self.floor_tile(d, l2[i]);
            l1t[i] = self.floor_tile(d, l1[i]).min(l2t[i]);
        }
        Mapping::new(&self.nest, l2t, l1t, order, spatial)
    }

    /// Legalizes a continuous tiling: rounds every L2 and L1 tile to the
    /// nearest legal option (log-space nearest, ties down), clamps
    /// `l1 ≤ l2`, and assembles a [`Mapping`] with the given order and
    /// spatial dims.
    ///
    /// The result is always a member of this space ([`MappingSpace::contains`])
    /// and the operation is idempotent: legalizing a legalized mapping's
    /// tiles reproduces it exactly.
    pub fn legalize(
        &self,
        l2: &[f64; DIM_COUNT],
        l1: &[f64; DIM_COUNT],
        order: [Dim; DIM_COUNT],
        spatial: (Dim, Dim),
    ) -> Mapping {
        let mut l2t = [1u64; DIM_COUNT];
        let mut l1t = [1u64; DIM_COUNT];
        for d in Dim::ALL {
            let i = d.index();
            l2t[i] = self.nearest_tile(d, l2[i]);
            // Clamping to the L2 tile keeps membership: every option is
            // itself an option, so min(option, option) is an option.
            l1t[i] = self.nearest_tile(d, l1[i]).min(l2t[i]);
        }
        Mapping::new(&self.nest, l2t, l1t, order, spatial)
    }

    /// Moves one tile of `m` a single option-list step: `level2` selects
    /// the L2 tile (L1 otherwise), `up` the direction. Maintains
    /// `l1 <= l2` by clamping the other level; returns `None` at the
    /// option-list edge, when the move would need `l1 > l2`, or when the
    /// tile is not a legal option (foreign mapping).
    pub fn neighbor_tile(&self, m: &Mapping, dim: Dim, level2: bool, up: bool) -> Option<Mapping> {
        let i = dim.index();
        let opts = &self.tile_options[i];
        let mut l2 = m.l2_tile();
        let mut l1 = m.l1_tile();
        let cur = if level2 { l2[i] } else { l1[i] };
        let pos = opts.iter().position(|&o| o == cur)?;
        let next = if up {
            *opts.get(pos + 1)?
        } else {
            opts[pos.checked_sub(1)?]
        };
        if level2 {
            l2[i] = next;
            l1[i] = l1[i].min(next);
        } else {
            if next > l2[i] {
                return None;
            }
            l1[i] = next;
        }
        Some(Mapping::new(&self.nest, l2, l1, m.order(), m.spatial()))
    }

    /// Whether a mapping is a member of this space: every tile is a
    /// legal option, `l1 ≤ l2` element-wise, and the spatial pair is
    /// drawn from the non-trivial candidates (or is the `(K, Y)`
    /// fallback used when fewer than two candidates exist).
    pub fn contains(&self, m: &Mapping) -> bool {
        for d in Dim::ALL {
            let i = d.index();
            let opts = &self.tile_options[i];
            if opts.binary_search(&m.l2_tile()[i]).is_err()
                || opts.binary_search(&m.l1_tile()[i]).is_err()
                || m.l1_tile()[i] > m.l2_tile()[i]
            {
                return false;
            }
        }
        let (a, b) = m.spatial();
        if a == b {
            return false;
        }
        if self.spatial_candidates.len() < 2 {
            return (a, b) == (Dim::K, Dim::Y);
        }
        self.spatial_candidates.contains(&a) && self.spatial_candidates.contains(&b)
    }

    /// Uniform crossover of two mappings (per-dimension tile inheritance,
    /// order from one parent, spatial from the other).
    pub fn crossover<R: Rng + ?Sized>(&self, rng: &mut R, a: &Mapping, b: &Mapping) -> Mapping {
        let mut l2 = [1u64; DIM_COUNT];
        let mut l1 = [1u64; DIM_COUNT];
        for i in 0..DIM_COUNT {
            let (pa, pb) = if rng.gen_bool(0.5) { (a, b) } else { (b, a) };
            l2[i] = pa.l2_tile()[i];
            l1[i] = pb.l1_tile()[i].min(l2[i]);
        }
        let (order_parent, spatial_parent) = if rng.gen_bool(0.5) { (a, b) } else { (b, a) };
        Mapping::new(
            &self.nest,
            l2,
            l1,
            order_parent.order(),
            spatial_parent.spatial(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use unico_workloads::TensorOp;

    fn space() -> MappingSpace {
        let nest = TensorOp::Conv2d {
            n: 1,
            k: 64,
            c: 32,
            y: 28,
            x: 28,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest();
        MappingSpace::new(&nest)
    }

    #[test]
    fn smooth_sizes_contains_bounds() {
        let v = smooth_sizes(28);
        assert!(v.contains(&1));
        assert!(v.contains(&28));
        assert!(v.contains(&24)); // 2^3 * 3
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert!(v.iter().all(|&t| t <= 28));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn samples_are_legal() {
        let sp = space();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let m = sp.sample(&mut rng);
            let ext = sp.nest().extents();
            for i in 0..DIM_COUNT {
                assert!(m.l1_tile()[i] <= m.l2_tile()[i]);
                assert!(m.l2_tile()[i] <= ext[i]);
                assert!(m.l1_tile()[i] >= 1);
            }
            assert_ne!(m.spatial().0, m.spatial().1);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn mutate_produces_legal_neighbours() {
        let sp = space();
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = sp.sample(&mut rng);
        for _ in 0..300 {
            m = sp.mutate(&mut rng, &m);
            let ext = sp.nest().extents();
            for i in 0..DIM_COUNT {
                assert!(m.l1_tile()[i] <= m.l2_tile()[i]);
                assert!(m.l2_tile()[i] <= ext[i]);
            }
            assert_ne!(m.spatial().0, m.spatial().1);
        }
    }

    #[test]
    fn crossover_is_legal() {
        let sp = space();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let a = sp.sample(&mut rng);
            let b = sp.sample(&mut rng);
            let c = sp.crossover(&mut rng, &a, &b);
            for i in 0..DIM_COUNT {
                assert!(c.l1_tile()[i] <= c.l2_tile()[i]);
            }
        }
    }

    #[test]
    fn space_size_is_large() {
        // Paper: ~1e6 per layer unconstrained; ours is far larger before
        // feasibility pruning.
        assert!(space().log10_size() > 6.0);
    }

    #[test]
    fn gemm_space_excludes_trivial_spatial_dims() {
        let nest = TensorOp::Gemm {
            m: 128,
            n: 256,
            k: 512,
        }
        .to_loop_nest();
        let sp = MappingSpace::new(&nest);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let m = sp.sample(&mut rng);
            // X, R, S, N have extent 1 in a GEMM nest; they can never be
            // spatial because candidates require extent > 1.
            for d in [m.spatial().0, m.spatial().1] {
                assert!(nest.extent(d) > 1, "trivial spatial dim {d}");
            }
        }
    }
}
