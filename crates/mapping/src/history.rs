//! Search histories: monotone best-so-far curves, AUC, and the loss
//! statistics the robustness metric consumes.

use std::cell::Cell;

use crate::cost::MappingOutcome;
use crate::mapping::Mapping;

/// One evaluated (feasible) mapping in a search history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalRecord {
    /// Budget step (1-based) at which the evaluation happened.
    pub step: u64,
    /// Search objective of this candidate.
    pub loss: f64,
    /// Latency of this candidate, seconds.
    pub latency_s: f64,
    /// Power of this candidate, milliwatts.
    pub power_mw: f64,
}

/// The full trace of one software-mapping search.
///
/// Tracks every spent budget step (feasible or not), the feasible
/// evaluation records, and the monotone best-so-far curve. The curve is
/// the object successive halving and the robustness metric reason about:
/// `best_at(b)` is non-increasing in `b` — the monotonicity property the
/// paper assumes of mature mapping tools.
#[derive(Debug, Clone, Default)]
pub struct SearchHistory {
    spent: u64,
    records: Vec<EvalRecord>,
    /// `(step, record)` improvements: records that strictly lowered the
    /// best loss.
    improvements: Vec<EvalRecord>,
    /// `(step, mapping)` for each improvement a searcher chose to note.
    /// Steps mirror `improvements`, so `best_mapping_at(b)` names the
    /// mapping behind `best_at(b)` — which fused-group costing re-prices
    /// under a different traffic model.
    best_mappings: Vec<(u64, Mapping)>,
    /// Single-entry `(budget, auc)` memo: successive-halving promotion
    /// asks for the AUC of the same round budget repeatedly, and the
    /// scan it caches is O(budget). Invalidated by any mutation.
    auc_memo: Cell<Option<(u64, f64)>>,
}

impl SearchHistory {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Budget steps consumed so far (including infeasible evaluations).
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Number of feasible evaluations recorded.
    pub fn evaluations(&self) -> usize {
        self.records.len()
    }

    /// All feasible evaluation records in evaluation order.
    pub fn records(&self) -> &[EvalRecord] {
        &self.records
    }

    /// Registers one consumed budget step with an infeasible candidate.
    pub fn push_infeasible(&mut self) {
        self.spent += 1;
        self.auc_memo.set(None);
    }

    /// Registers one consumed budget step with a feasible outcome.
    pub fn push(&mut self, outcome: MappingOutcome) {
        self.spent += 1;
        self.auc_memo.set(None);
        let rec = EvalRecord {
            step: self.spent,
            loss: outcome.loss,
            latency_s: outcome.latency_s,
            power_mw: outcome.power_mw,
        };
        let improved = self
            .improvements
            .last()
            .is_none_or(|best| rec.loss < best.loss);
        self.records.push(rec);
        if improved {
            self.improvements.push(rec);
        }
    }

    /// Notes the mapping behind the most recent improvement. Searchers
    /// call this immediately after a [`SearchHistory::push`] that lowered
    /// the best loss; the step recorded is the step that push consumed.
    pub fn note_best_mapping(&mut self, mapping: &Mapping) {
        self.best_mappings.push((self.spent, mapping.clone()));
    }

    /// The noted best mapping within the first `budget` steps, if the
    /// searcher noted any by then.
    pub fn best_mapping_at(&self, budget: u64) -> Option<&Mapping> {
        self.best_mappings
            .iter()
            .take_while(|(step, _)| *step <= budget)
            .last()
            .map(|(_, m)| m)
    }

    /// Best record found within the first `budget` steps, if any feasible
    /// candidate was seen by then.
    pub fn best_at(&self, budget: u64) -> Option<EvalRecord> {
        self.improvements
            .iter()
            .take_while(|r| r.step <= budget)
            .last()
            .copied()
    }

    /// Best record over the whole history.
    pub fn best(&self) -> Option<EvalRecord> {
        self.improvements.last().copied()
    }

    /// Terminal value: best loss at the end of the history
    /// (`f64::INFINITY` when nothing feasible was found).
    pub fn terminal_value(&self) -> f64 {
        self.best().map_or(f64::INFINITY, |r| r.loss)
    }

    /// Area-under-curve convergence-rate score over the first `budget`
    /// steps, in `[0, 1]`.
    ///
    /// The paper promotes candidates whose best-so-far curves descend
    /// steeply (Fig. 4b). We quantify steepness as the normalized
    /// improvement area
    /// `AUC = (1/B) Σ_{t=1..B} (L(1) − L(t)) / L(1)`
    /// where `L(t)` is the best loss after `t` steps (losses are positive
    /// latencies/EDPs). A curve that drops early and deeply accumulates
    /// more area, so **higher AUC ⇒ faster convergence**, matching the
    /// promotion rule's intent.
    pub fn auc(&self, budget: u64) -> f64 {
        let budget = budget.min(self.spent);
        if let Some((memo_budget, memo_auc)) = self.auc_memo.get() {
            if memo_budget == budget {
                return memo_auc;
            }
        }
        let auc = self.compute_auc(budget);
        self.auc_memo.set(Some((budget, auc)));
        auc
    }

    /// Uncached AUC scan; see [`SearchHistory::auc`].
    fn compute_auc(&self, budget: u64) -> f64 {
        if budget == 0 || self.improvements.is_empty() {
            return 0.0;
        }
        let first = self.improvements[0];
        if first.step > budget || first.loss <= 0.0 {
            return 0.0;
        }
        let l0 = first.loss;
        let mut area = 0.0;
        let mut idx = 0usize;
        let mut current = l0;
        for t in first.step..=budget {
            while idx < self.improvements.len() && self.improvements[idx].step <= t {
                current = self.improvements[idx].loss;
                idx += 1;
            }
            area += (l0 - current).max(0.0) / l0;
        }
        area / budget as f64
    }

    /// The record whose loss sits at quantile `q` of all feasible losses
    /// (`q = 0.0` ⇒ best). Used to extract the paper's "sub-optimal"
    /// mapping — the `(1−α)` right-tail percentile of the loss history —
    /// for the robustness metric.
    pub fn loss_quantile_record(&self, q: f64) -> Option<EvalRecord> {
        if self.records.is_empty() {
            return None;
        }
        let mut sorted: Vec<usize> = (0..self.records.len()).collect();
        sorted.sort_by(|&a, &b| {
            self.records[a]
                .loss
                .partial_cmp(&self.records[b].loss)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let pos = ((q.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
        Some(self.records[sorted[pos]])
    }

    /// Merges another history into this one, preserving step accounting
    /// (the other history's steps are appended after this one's).
    pub fn absorb(&mut self, other: &SearchHistory) {
        let offset = self.spent;
        self.spent += other.spent;
        self.auc_memo.set(None);
        for r in &other.records {
            let rec = EvalRecord {
                step: r.step + offset,
                ..*r
            };
            let improved = self
                .improvements
                .last()
                .is_none_or(|best| rec.loss < best.loss);
            self.records.push(rec);
            if improved {
                self.improvements.push(rec);
                if let Some((_, m)) = other
                    .best_mappings
                    .iter()
                    .rev()
                    .find(|(step, _)| *step == r.step)
                {
                    self.best_mappings.push((rec.step, m.clone()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out(loss: f64) -> MappingOutcome {
        MappingOutcome {
            loss,
            latency_s: loss,
            power_mw: 2.0 * loss,
        }
    }

    #[test]
    fn best_so_far_is_monotone() {
        let mut h = SearchHistory::new();
        for l in [5.0, 7.0, 3.0, 4.0, 2.0, 9.0] {
            h.push(out(l));
        }
        let mut prev = f64::INFINITY;
        for b in 1..=h.spent() {
            let cur = h.best_at(b).unwrap().loss;
            assert!(cur <= prev, "best-so-far must not increase");
            prev = cur;
        }
        assert_eq!(h.terminal_value(), 2.0);
    }

    #[test]
    fn infeasible_consumes_budget_only() {
        let mut h = SearchHistory::new();
        h.push_infeasible();
        h.push_infeasible();
        assert_eq!(h.spent(), 2);
        assert_eq!(h.evaluations(), 0);
        assert!(h.best().is_none());
        assert_eq!(h.terminal_value(), f64::INFINITY);
        assert_eq!(h.auc(2), 0.0);
    }

    #[test]
    fn auc_rewards_early_convergence() {
        // Fast: drops to 1.0 immediately.
        let mut fast = SearchHistory::new();
        fast.push(out(10.0));
        fast.push(out(1.0));
        for _ in 0..8 {
            fast.push(out(5.0)); // no improvement
        }
        // Slow: drops to 1.0 at the end.
        let mut slow = SearchHistory::new();
        slow.push(out(10.0));
        for _ in 0..8 {
            slow.push(out(10.0));
        }
        slow.push(out(1.0));
        assert!(fast.auc(10) > slow.auc(10));
        assert_eq!(fast.terminal_value(), slow.terminal_value());
    }

    #[test]
    fn auc_bounded_unit_interval() {
        let mut h = SearchHistory::new();
        for l in [100.0, 50.0, 10.0, 1.0, 0.5] {
            h.push(out(l));
        }
        let a = h.auc(5);
        assert!((0.0..=1.0).contains(&a), "auc {a}");
    }

    #[test]
    fn auc_memo_survives_repeats_and_invalidates_on_mutation() {
        let mut h = SearchHistory::new();
        for l in [10.0, 5.0, 2.0] {
            h.push(out(l));
        }
        let first = h.auc(3);
        assert_eq!(h.auc(3), first, "repeated query must hit the memo");
        // Different budget recomputes correctly.
        let at_two = h.auc(2);
        assert!(at_two <= first);

        // push invalidates.
        h.push(out(1.0));
        let mut fresh = SearchHistory::new();
        for l in [10.0, 5.0, 2.0, 1.0] {
            fresh.push(out(l));
        }
        assert_eq!(h.auc(4), fresh.auc(4));

        // absorb invalidates.
        let mut tail = SearchHistory::new();
        tail.push(out(0.5));
        h.absorb(&tail);
        fresh.push(out(0.5));
        assert_eq!(h.auc(5), fresh.auc(5));

        // push_infeasible invalidates (spent grows, curve extends).
        let before = h.auc(h.spent());
        h.push_infeasible();
        fresh.push_infeasible();
        assert_eq!(h.auc(h.spent()), fresh.auc(fresh.spent()));
        assert!(h.auc(h.spent()) >= before * 0.9);
    }

    #[test]
    fn quantile_record_selects_tail() {
        let mut h = SearchHistory::new();
        for l in [9.0, 8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.5] {
            h.push(out(l));
        }
        assert_eq!(h.loss_quantile_record(0.0).unwrap().loss, 0.5);
        assert_eq!(h.loss_quantile_record(1.0).unwrap().loss, 9.0);
        let mid = h.loss_quantile_record(0.05).unwrap().loss;
        assert!((0.5..=2.0).contains(&mid));
    }

    #[test]
    fn absorb_offsets_steps() {
        let mut a = SearchHistory::new();
        a.push(out(5.0));
        let mut b = SearchHistory::new();
        b.push(out(3.0));
        a.absorb(&b);
        assert_eq!(a.spent(), 2);
        assert_eq!(a.records()[1].step, 2);
        assert_eq!(a.terminal_value(), 3.0);
    }

    #[test]
    fn noted_mappings_track_improvement_steps() {
        let nest = unico_workloads::TensorOp::Gemm { m: 4, n: 4, k: 4 }.to_loop_nest();
        let a = Mapping::identity(&nest);
        let mut l1 = a.l1_tile();
        l1[1] = 2;
        let b = Mapping::new(&nest, a.l2_tile(), l1, a.order(), a.spatial());

        let mut h = SearchHistory::new();
        h.push(out(5.0));
        h.note_best_mapping(&a);
        h.push(out(7.0)); // no improvement: nothing noted
        h.push(out(3.0));
        h.note_best_mapping(&b);

        assert!(h.best_mapping_at(0).is_none());
        assert_eq!(h.best_mapping_at(1), Some(&a));
        assert_eq!(h.best_mapping_at(2), Some(&a));
        assert_eq!(h.best_mapping_at(3), Some(&b));

        // absorb carries noted mappings that remain improvements.
        let mut tail = SearchHistory::new();
        tail.push(out(9.0)); // worse than 3.0: filtered out
        tail.note_best_mapping(&a);
        tail.push(out(1.0));
        tail.note_best_mapping(&a);
        h.absorb(&tail);
        assert_eq!(h.best_mapping_at(4), Some(&b));
        assert_eq!(h.best_mapping_at(5), Some(&a));
    }

    #[test]
    fn best_at_respects_budget_cutoff() {
        let mut h = SearchHistory::new();
        h.push(out(5.0));
        h.push(out(4.0));
        h.push(out(1.0));
        assert_eq!(h.best_at(2).unwrap().loss, 4.0);
        assert_eq!(h.best_at(3).unwrap().loss, 1.0);
        assert!(h.best_at(0).is_none());
    }
}
