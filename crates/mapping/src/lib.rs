//! Software mapping space and mapping search for UNICO.
//!
//! A *mapping* ([`Mapping`]) decides how a tensor loop nest executes on an
//! accelerator: two-level tiling (`L2` tile and `L1` tile of the canonical
//! 7-D nest), a temporal loop order, and the two dimensions unrolled
//! spatially across the PE array. The [`MappingSpace`] enumerates, samples
//! and perturbs legal mappings for a given loop nest.
//!
//! Mapping *search* is deliberately decoupled from any particular cost
//! model: searchers score candidates through the [`MappingCost`] trait,
//! which a PPA model (analytical or cycle-accurate) implements. All
//! searchers are **resumable** — `run_until(budget)` consumes only the
//! budget not yet spent — which is exactly what successive halving needs,
//! and every evaluation is appended to a [`SearchHistory`] whose
//! best-so-far curve is monotonically non-increasing (the property the
//! paper's bi-level formulation assumes).
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use unico_workloads::TensorOp;
//! use unico_mapping::{MappingSpace, MappingCost, MappingOutcome, Mapping, RandomSearch, MappingSearcher};
//!
//! // A toy cost: prefer square-ish L1 tiles.
//! struct Toy;
//! impl MappingCost for Toy {
//!     fn assess(&self, m: &Mapping) -> Option<MappingOutcome> {
//!         let t = m.l1_tile();
//!         let loss = (t[1] as f64 - t[3] as f64).abs() + 1.0;
//!         Some(MappingOutcome { loss, latency_s: loss, power_mw: 1.0 })
//!     }
//! }
//!
//! let nest = TensorOp::Gemm { m: 64, n: 64, k: 64 }.to_loop_nest();
//! let space = MappingSpace::new(&nest);
//! let rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut search = RandomSearch::new(space, rng);
//! search.run_until(&Toy, 50);
//! assert_eq!(search.history().evaluations(), 50);
//! assert!(search.best().is_some());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod canon;
mod cost;
mod fusion;
mod gradient;
mod history;
mod mapping;
mod qlearning;
mod search;
mod space;

pub use canon::{CanonicalMapping, StableHasher};
pub use cost::{MappingCost, MappingOutcome, RelaxedGrad, RelaxedPoint};
pub use fusion::{search_fusion, FusionGain, FusionOracle, FusionPlan, FusionStats};
pub use gradient::{GradientConfig, GradientSearcher, GradientStats};
pub use history::{EvalRecord, SearchHistory};
pub use mapping::{Footprint, Mapping};
pub use qlearning::QLearningSearch;
pub use search::{AnnealingSearch, GeneticConfig, GeneticSearch, MappingSearcher, RandomSearch};
pub use space::MappingSpace;
