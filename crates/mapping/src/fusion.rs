//! Inter-layer fusion planning over a network's layer DAG.
//!
//! Fusion keeps the intermediate tensor between a producer and a
//! consumer layer resident in on-chip buffers, skipping its DRAM
//! round-trip. This module plans *which* layers to fuse: a
//! [`FusionPlan`] partitions the layer indices into ordered groups, and
//! [`search_fusion`] grows multi-layer groups greedily along
//! single-producer/single-consumer edges, accepting a merge only when a
//! platform-provided [`FusionOracle`] proves the fused chain is legal
//! (fits the buffers) **and** strictly reduces modeled DRAM traffic.
//!
//! The plan is pure geometry over layer indices — it knows nothing about
//! hardware. All pricing and legality lives behind the oracle, which the
//! PPA-model crate implements; the plan with every group a singleton is
//! by construction identical to the existing per-layer path.

use unico_workloads::FusionEdge;

/// A partition of a network's layer indices into ordered fusion groups.
///
/// Each group is a chain of layer indices executed with intermediates
/// pinned on-chip; groups are sorted by their first member and every
/// layer index in `0..num_layers` appears exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionPlan {
    groups: Vec<Vec<usize>>,
}

impl FusionPlan {
    /// The all-singleton plan: every layer its own group. This is the
    /// identity plan — costing it must be bitwise identical to the
    /// per-layer path.
    pub fn singleton(num_layers: usize) -> Self {
        FusionPlan {
            groups: (0..num_layers).map(|i| vec![i]).collect(),
        }
    }

    /// Builds a plan from explicit groups.
    ///
    /// # Panics
    ///
    /// Panics if the groups are not a partition of `0..Σ|group|` (every
    /// index exactly once, no empty groups) — plans are produced by the
    /// searcher, so a malformed one is a programmer error.
    pub fn from_groups(mut groups: Vec<Vec<usize>>) -> Self {
        assert!(
            groups.iter().all(|g| !g.is_empty()),
            "fusion groups must be non-empty"
        );
        groups.sort_by_key(|g| g[0]);
        let n: usize = groups.iter().map(Vec::len).sum();
        let mut seen = vec![false; n];
        for g in &groups {
            for &i in g {
                assert!(
                    i < n && !seen[i],
                    "fusion groups must partition the layer indices"
                );
                seen[i] = true;
            }
        }
        FusionPlan { groups }
    }

    /// The groups, sorted by first member.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// Number of layers covered by the plan.
    pub fn num_layers(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// Whether every group is a single layer (the identity plan).
    pub fn is_all_singletons(&self) -> bool {
        self.groups.iter().all(|g| g.len() == 1)
    }

    /// Iterator over the groups with more than one member.
    pub fn multi_layer_groups(&self) -> impl Iterator<Item = &[usize]> {
        self.groups
            .iter()
            .filter(|g| g.len() > 1)
            .map(Vec::as_slice)
    }
}

/// Counters from one fusion search, reported as run telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Candidate groups priced through the oracle.
    pub groups_tried: u64,
    /// Candidate groups accepted into the plan (strict DRAM reduction
    /// and legal buffer occupancy).
    pub groups_accepted: u64,
}

impl FusionStats {
    /// Accumulates another search's counters.
    pub fn merge(&mut self, other: FusionStats) {
        self.groups_tried += other.groups_tried;
        self.groups_accepted += other.groups_accepted;
    }
}

/// Modeled DRAM traffic of a candidate fused chain vs the same layers
/// executed unfused. Returned by a [`FusionOracle`] for *legal* chains
/// only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionGain {
    /// Total DRAM bytes of the chain's members executed separately.
    pub dram_bytes_unfused: f64,
    /// Total DRAM bytes with intermediate tensors held on-chip.
    pub dram_bytes_fused: f64,
}

impl FusionGain {
    /// Whether fusing strictly reduces modeled DRAM traffic.
    pub fn is_strict_reduction(&self) -> bool {
        self.dram_bytes_fused < self.dram_bytes_unfused
    }
}

/// Platform-side pricing and legality for candidate fusion chains.
///
/// `chain` lists layer indices in execution order; `edges` are the
/// DAG edges internal to the chain (the intermediates that would stay
/// on-chip). Returns `None` when the chain is illegal — any member's
/// working set plus resident intermediates overflows the buffers, or a
/// member has no priced mapping yet. A `Some` answer must price *all*
/// members under one consistent mapping choice per member.
pub trait FusionOracle {
    /// Prices a candidate chain, or rejects it as illegal.
    fn assess_group(&self, chain: &[usize], edges: &[FusionEdge]) -> Option<FusionGain>;
}

/// Greedy fusion-plan search over a layer DAG.
///
/// Deterministic: candidate edges are those whose producer has
/// out-degree 1 and whose consumer has in-degree 1 (pure pipelines — a
/// residual join is never fused), visited in ascending
/// `(producer, consumer)` order. An edge merges two existing groups
/// when the producer ends its group and the consumer starts its group;
/// the merge is kept iff the oracle prices the combined chain legal
/// with strictly lower DRAM traffic than its members executed unfused.
///
/// Runs in one pass — each edge is offered once, so chains grow
/// left-to-right and the result is independent of oracle pricing noise
/// across calls (the oracle is consulted once per candidate).
pub fn search_fusion(
    num_layers: usize,
    edges: &[FusionEdge],
    oracle: &dyn FusionOracle,
) -> (FusionPlan, FusionStats) {
    let mut stats = FusionStats::default();
    if num_layers == 0 {
        return (FusionPlan { groups: Vec::new() }, stats);
    }
    let mut out_degree = vec![0usize; num_layers];
    let mut in_degree = vec![0usize; num_layers];
    for e in edges {
        if e.producer < num_layers && e.consumer < num_layers {
            out_degree[e.producer] += 1;
            in_degree[e.consumer] += 1;
        }
    }
    let mut candidates: Vec<FusionEdge> = edges
        .iter()
        .copied()
        .filter(|e| {
            e.producer < num_layers
                && e.consumer < num_layers
                && e.producer != e.consumer
                && out_degree[e.producer] == 1
                && in_degree[e.consumer] == 1
        })
        .collect();
    candidates.sort_by_key(|e| (e.producer, e.consumer));

    // group_of[layer] -> index into `groups`; merged-away groups are
    // left empty and dropped at the end.
    let mut groups: Vec<Vec<usize>> = (0..num_layers).map(|i| vec![i]).collect();
    let mut group_of: Vec<usize> = (0..num_layers).collect();

    for e in candidates {
        let gp = group_of[e.producer];
        let gc = group_of[e.consumer];
        if gp == gc {
            continue;
        }
        // Only chain-extending merges: the producer must end its group
        // and the consumer must start its group, so the fused chain
        // stays a straight pipeline.
        if groups[gp].last() != Some(&e.producer) || groups[gc].first() != Some(&e.consumer) {
            continue;
        }
        let mut chain = groups[gp].clone();
        chain.extend_from_slice(&groups[gc]);
        let internal: Vec<FusionEdge> = edges
            .iter()
            .copied()
            .filter(|e| chain.contains(&e.producer) && chain.contains(&e.consumer))
            .collect();
        stats.groups_tried += 1;
        let accept = oracle
            .assess_group(&chain, &internal)
            .is_some_and(|g| g.is_strict_reduction());
        if accept {
            stats.groups_accepted += 1;
            let moved = std::mem::take(&mut groups[gc]);
            for &l in &moved {
                group_of[l] = gp;
            }
            groups[gp].extend(moved);
        }
    }

    let groups: Vec<Vec<usize>> = groups.into_iter().filter(|g| !g.is_empty()).collect();
    (FusionPlan::from_groups(groups), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(p: usize, c: usize, elems: u64) -> FusionEdge {
        FusionEdge {
            producer: p,
            consumer: c,
            elems,
        }
    }

    /// Oracle that accepts chains up to `max_len` with a fixed 10%
    /// saving, rejecting longer ones as illegal.
    struct UpTo(usize);
    impl FusionOracle for UpTo {
        fn assess_group(&self, chain: &[usize], _edges: &[FusionEdge]) -> Option<FusionGain> {
            (chain.len() <= self.0).then_some(FusionGain {
                dram_bytes_unfused: 100.0,
                dram_bytes_fused: 90.0,
            })
        }
    }

    struct RejectAll;
    impl FusionOracle for RejectAll {
        fn assess_group(&self, _c: &[usize], _e: &[FusionEdge]) -> Option<FusionGain> {
            None
        }
    }

    struct NoGain;
    impl FusionOracle for NoGain {
        fn assess_group(&self, _c: &[usize], _e: &[FusionEdge]) -> Option<FusionGain> {
            Some(FusionGain {
                dram_bytes_unfused: 100.0,
                dram_bytes_fused: 100.0,
            })
        }
    }

    #[test]
    fn singleton_plan_is_identity() {
        let p = FusionPlan::singleton(3);
        assert!(p.is_all_singletons());
        assert_eq!(p.num_layers(), 3);
        assert_eq!(p.multi_layer_groups().count(), 0);
    }

    #[test]
    fn greedy_chains_a_pipeline() {
        let edges = [edge(0, 1, 10), edge(1, 2, 10), edge(2, 3, 10)];
        let (plan, stats) = search_fusion(4, &edges, &UpTo(4));
        assert_eq!(plan.groups(), &[vec![0, 1, 2, 3]]);
        assert_eq!(stats.groups_tried, 3);
        assert_eq!(stats.groups_accepted, 3);
    }

    #[test]
    fn capacity_limit_splits_the_chain() {
        let edges = [edge(0, 1, 10), edge(1, 2, 10), edge(2, 3, 10)];
        let (plan, stats) = search_fusion(4, &edges, &UpTo(2));
        assert_eq!(plan.groups(), &[vec![0, 1], vec![2, 3]]);
        assert_eq!(stats.groups_accepted, 2);
        assert!(stats.groups_tried > stats.groups_accepted);
    }

    #[test]
    fn rejection_and_equality_keep_singletons() {
        let edges = [edge(0, 1, 10)];
        let (plan, _) = search_fusion(2, &edges, &RejectAll);
        assert!(plan.is_all_singletons());
        // Equal traffic is not a strict reduction: not accepted.
        let (plan, stats) = search_fusion(2, &edges, &NoGain);
        assert!(plan.is_all_singletons());
        assert_eq!(stats.groups_tried, 1);
        assert_eq!(stats.groups_accepted, 0);
    }

    #[test]
    fn fan_out_and_fan_in_are_never_candidates() {
        // 0 feeds both 1 and 2; both feed 3 (residual diamond).
        let edges = [
            edge(0, 1, 10),
            edge(0, 2, 10),
            edge(1, 3, 10),
            edge(2, 3, 10),
        ];
        let (plan, stats) = search_fusion(4, &edges, &UpTo(4));
        assert!(plan.is_all_singletons());
        assert_eq!(stats.groups_tried, 0);
    }

    #[test]
    fn out_of_range_edges_are_ignored() {
        let edges = [edge(0, 9, 10), edge(0, 1, 10)];
        let (plan, _) = search_fusion(2, &edges, &UpTo(4));
        assert_eq!(plan.groups(), &[vec![0, 1]]);
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn malformed_groups_panic() {
        let _ = FusionPlan::from_groups(vec![vec![0], vec![0]]);
    }
}
