//! FlexTensor-style Q-learning mapping search.
//!
//! FlexTensor guides schedule exploration with a Q-learning policy over
//! *transformation actions*. This searcher follows that design: the
//! state is the incumbent mapping, the action set is a small catalogue of
//! structured moves (grow/shrink a tile level, permute the loop order,
//! flip a spatial dimension), and a tabular Q-function over action types
//! learns which move classes pay off on the current landscape, selected
//! ε-greedily with a decaying exploration rate.

use rand::rngs::StdRng;
use rand::Rng;

use crate::cost::{MappingCost, MappingOutcome};
use crate::history::SearchHistory;
use crate::mapping::Mapping;
use crate::search::MappingSearcher;
use crate::space::MappingSpace;

/// The action catalogue of the Q-learning policy: the typed mutation
/// classes of the mapping space plus a restart escape hatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    MutateL1,
    MutateL2,
    MutateOrder,
    MutateSpatial,
    Shrink,
    Restart,
}

const ACTIONS: [Action; 6] = [
    Action::MutateL1,
    Action::MutateL2,
    Action::MutateOrder,
    Action::MutateSpatial,
    Action::Shrink,
    Action::Restart,
];

/// Q-learning mapping searcher (FlexTensor-like).
#[derive(Debug)]
pub struct QLearningSearch {
    space: MappingSpace,
    rng: StdRng,
    history: SearchHistory,
    best: Option<(Mapping, MappingOutcome)>,
    current: Option<(Mapping, f64)>,
    q: [f64; ACTIONS.len()],
    /// Learning rate.
    alpha: f64,
    /// Exploration rate (decays multiplicatively per step).
    epsilon: f64,
    epsilon_decay: f64,
    warmup: u64,
    infeasible: Option<Mapping>,
    since_improvement: u32,
    restart_after: u32,
}

impl QLearningSearch {
    /// Creates the searcher with FlexTensor-like defaults
    /// (`α = 0.2`, `ε₀ = 0.5` decaying by `0.995` per step, 16 random
    /// warm-up samples).
    pub fn new(space: MappingSpace, rng: StdRng) -> Self {
        QLearningSearch {
            space,
            rng,
            history: SearchHistory::new(),
            best: None,
            current: None,
            q: [0.0; ACTIONS.len()],
            alpha: 0.2,
            epsilon: 0.5,
            epsilon_decay: 0.995,
            warmup: 16,
            infeasible: None,
            since_improvement: 0,
            restart_after: 40,
        }
    }

    fn pick_action(&mut self) -> usize {
        if self.rng.gen_bool(self.epsilon.clamp(0.02, 1.0)) {
            self.rng.gen_range(0..ACTIONS.len())
        } else {
            let mut best = 0usize;
            for i in 1..ACTIONS.len() {
                if self.q[i] > self.q[best] {
                    best = i;
                }
            }
            best
        }
    }

    fn apply(&mut self, action: Action, m: &Mapping) -> Mapping {
        match action {
            Action::MutateL1 => self.space.mutate_l1_tile(&mut self.rng, m),
            Action::MutateL2 => self.space.mutate_l2_tile(&mut self.rng, m),
            Action::MutateOrder => self.space.mutate_order(&mut self.rng, m),
            Action::MutateSpatial => self.space.mutate_spatial(&mut self.rng, m),
            Action::Shrink => self.space.shrink(&mut self.rng, m),
            Action::Restart => self.space.sample(&mut self.rng),
        }
    }

    fn learn(&mut self, action_idx: usize, reward: f64) {
        self.q[action_idx] += self.alpha * (reward - self.q[action_idx]);
    }
}

impl MappingSearcher for QLearningSearch {
    fn run_until(&mut self, cost: &dyn MappingCost, budget: u64) {
        while self.history.spent() < budget {
            let warming = self.history.spent() < self.warmup;
            let (candidate, action_idx) = if let Some(bad) = self.infeasible.take() {
                (self.space.shrink(&mut self.rng, &bad), None)
            } else if warming || self.current.is_none() {
                (self.space.sample(&mut self.rng), None)
            } else {
                let a = self.pick_action();
                let base = self
                    .current
                    .as_ref()
                    .map(|(m, _)| m.clone())
                    .expect("current checked above");
                (self.apply(ACTIONS[a], &base), Some(a))
            };
            match cost.assess(&candidate) {
                Some(o) => {
                    // Reward: relative improvement over the incumbent walk
                    // position.
                    if let (Some(a), Some((_, cur))) = (action_idx, &self.current) {
                        let reward = ((cur - o.loss) / cur.max(1e-12)).clamp(-1.0, 1.0);
                        self.learn(a, reward);
                    }
                    // Annealing-style acceptance with temperature tied to
                    // the exploration rate: improving moves always accepted,
                    // worsening moves with decaying probability, and a
                    // rejected walk occasionally snaps back to the best.
                    let accept = match &self.current {
                        None => true,
                        Some((_, cur)) => {
                            if o.loss <= *cur {
                                true
                            } else {
                                let rel = (o.loss - cur) / cur.max(1e-12);
                                let t = (0.25 * self.epsilon).max(0.01);
                                self.rng.gen_bool((-rel / t).exp().clamp(0.0, 1.0))
                            }
                        }
                    };
                    if accept {
                        self.current = Some((candidate.clone(), o.loss));
                    } else if self.rng.gen_bool(0.3) {
                        self.current = self.best.as_ref().map(|(m, b)| (m.clone(), b.loss));
                    }
                    let improved = self.best.as_ref().is_none_or(|(_, b)| o.loss < b.loss);
                    if improved {
                        self.best = Some((candidate.clone(), o));
                        self.current = Some((candidate, o.loss));
                        self.since_improvement = 0;
                    } else {
                        self.since_improvement += 1;
                    }
                    self.history.push(o);
                    if improved {
                        if let Some((m, _)) = &self.best {
                            let m = m.clone();
                            self.history.note_best_mapping(&m);
                        }
                    }
                }
                None => {
                    if let Some(a) = action_idx {
                        self.learn(a, -0.5);
                    }
                    let minimal = candidate.l1_tile().iter().all(|&t| t <= 2)
                        && candidate.l2_tile().iter().all(|&t| t <= 2);
                    if !minimal {
                        self.infeasible = Some(candidate);
                    }
                    self.since_improvement += 1;
                    self.history.push_infeasible();
                }
            }
            if self.since_improvement >= self.restart_after {
                // Stale: fresh random restart with a burst of exploration.
                self.current = None;
                self.epsilon = (self.epsilon * 4.0).min(0.5);
                self.since_improvement = 0;
            }
            self.epsilon *= self.epsilon_decay;
        }
    }

    fn history(&self) -> &SearchHistory {
        &self.history
    }

    fn best(&self) -> Option<(&Mapping, MappingOutcome)> {
        self.best.as_ref().map(|(m, o)| (m, *o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use unico_workloads::{Dim, TensorOp};

    struct Structured;
    impl MappingCost for Structured {
        fn assess(&self, m: &Mapping) -> Option<MappingOutcome> {
            let k = m.l1_tile()[Dim::K.index()];
            if k > 32 {
                return None;
            }
            let loss = 64.0 / k as f64 + m.l2_tile()[Dim::C.index()] as f64 * 0.01;
            Some(MappingOutcome {
                loss,
                latency_s: loss * 1e-3,
                power_mw: 100.0,
            })
        }
    }

    fn space() -> MappingSpace {
        let nest = TensorOp::Conv2d {
            n: 1,
            k: 64,
            c: 32,
            y: 28,
            x: 28,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest();
        MappingSpace::new(&nest)
    }

    #[test]
    fn q_search_is_resumable_and_improves() {
        let mut s = QLearningSearch::new(space(), StdRng::seed_from_u64(3));
        s.run_until(&Structured, 50);
        assert_eq!(s.history().spent(), 50);
        let at_50 = s.history().terminal_value();
        s.run_until(&Structured, 250);
        assert_eq!(s.history().spent(), 250);
        assert!(s.history().terminal_value() <= at_50);
        // Finds a good K tile.
        let (m, _) = s.best().expect("feasible best");
        assert!(m.l1_tile()[Dim::K.index()] >= 8);
    }

    #[test]
    fn q_values_move_away_from_zero() {
        let mut s = QLearningSearch::new(space(), StdRng::seed_from_u64(5));
        s.run_until(&Structured, 200);
        assert!(
            s.q.iter().any(|&q| q.abs() > 1e-6),
            "Q-table never updated: {:?}",
            s.q
        );
    }

    #[test]
    fn competitive_with_random_search_on_average() {
        use crate::search::RandomSearch;
        let budget = 300;
        let mut q_sum = 0.0;
        let mut r_sum = 0.0;
        for seed in 0..5 {
            let mut q = QLearningSearch::new(space(), StdRng::seed_from_u64(seed));
            let mut r = RandomSearch::new(space(), StdRng::seed_from_u64(seed + 50));
            q.run_until(&Structured, budget);
            r.run_until(&Structured, budget);
            q_sum += q.history().terminal_value();
            r_sum += r.history().terminal_value();
        }
        assert!(
            q_sum <= 1.3 * r_sum,
            "q-learning mean {q_sum} vs random mean {r_sum}"
        );
    }

    #[test]
    fn repairs_infeasibility_under_tight_constraints() {
        /// Tight working-set constraint: most blind samples are rejected.
        struct Tight;
        impl MappingCost for Tight {
            fn assess(&self, m: &Mapping) -> Option<MappingOutcome> {
                if m.l1_tile().iter().product::<u64>() > 2048 {
                    return None;
                }
                let loss = 1.0 + m.l2_tile()[Dim::C.index()] as f64 * 0.01;
                Some(MappingOutcome {
                    loss,
                    latency_s: loss,
                    power_mw: 1.0,
                })
            }
        }
        let mut q = QLearningSearch::new(space(), StdRng::seed_from_u64(7));
        q.run_until(&Tight, 300);
        // Shrink-repair keeps the feasible-evaluation rate high despite
        // the tight constraint.
        assert!(
            q.history().evaluations() > 200,
            "only {} feasible evaluations in 300 steps",
            q.history().evaluations()
        );
    }
}
