//! Mapping canonicalization and stable hashing for evaluation-cache keys.
//!
//! The PPA engines price a [`Mapping`] through two ingredients: the tile
//! extents (footprints and trip counts) and the loop-centric traffic rule
//! — a tensor tile is re-fetched once per iteration of every loop it
//! depends on, plus once per iteration of every independent loop wrapped
//! outside its innermost dependent loop, where **loops with trip count 1
//! never contribute**. Two syntactically different mappings can therefore
//! be semantically identical, and an evaluation cache keyed on the raw
//! representation would miss on them. [`CanonicalMapping`] normalizes
//! exactly the two rewrite families that are provably neutral for every
//! engine:
//!
//! 1. **Unit loops** — a dimension whose trip count is 1 at *both* tiling
//!    levels is skipped by the traffic rule at both levels, so its
//!    position in the temporal order is irrelevant. Such dims are dropped
//!    from the canonical order.
//! 2. **Reduction runs** — inside a maximal contiguous run of reduction
//!    dims (`C`, `R`, `S`) every tensor sees a homogeneous dependence
//!    status (output: all independent; weight and input: all dependent),
//!    so permuting the run changes neither the product of dependent trip
//!    counts nor which independent loops sit outside the innermost
//!    dependent loop. Runs are sorted into canonical dim order.
//!    For depthwise nests the input depends on `R`/`S` but not `C`, so
//!    only `R`/`S` participate in run sorting there.
//!
//! Spatial dims are **not** normalized: swapping them changes how tiles
//! land on the `PE_x × PE_y` array. Tile extents are kept verbatim.
//!
//! [`StableHasher`] is a process- and platform-independent 128-bit
//! hasher (two decorrelated FNV-1a-64 lanes with an avalanche finisher)
//! used to derive cache keys that stay valid across runs, which is what
//! the golden-trace record/replay machinery requires. `std`'s `Hasher`
//! is deliberately not used: its output is not guaranteed stable across
//! releases.

use unico_workloads::{Dim, LoopNest, DIM_COUNT};

use crate::mapping::Mapping;

/// A deterministic, platform-stable 128-bit streaming hasher.
///
/// Two FNV-1a-64 lanes consume the same byte stream with different
/// offset bases and per-lane byte tweaks, then each lane is passed
/// through a 64-bit avalanche finisher. The result is stable across
/// processes, architectures and releases, so it can name entries in
/// on-disk golden traces.
#[derive(Debug, Clone, Copy)]
pub struct StableHasher {
    a: u64,
    b: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        StableHasher {
            a: FNV_OFFSET,
            b: FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, byte: u8) {
        self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        self.b = (self.b ^ u64::from(byte ^ 0x5c)).wrapping_mul(FNV_PRIME);
    }

    /// Feeds a `u64` in one round per lane (word-wise FNV-1a; roughly
    /// 8× cheaper than byte-wise, and cache keys are built per
    /// evaluation so this is hot).
    pub fn write_u64(&mut self, value: u64) {
        self.a = (self.a ^ value).wrapping_mul(FNV_PRIME);
        self.b = (self.b ^ value.rotate_left(17)).wrapping_mul(FNV_PRIME);
    }

    /// Feeds a boolean as one byte.
    pub fn write_bool(&mut self, value: bool) {
        self.write_u8(u8::from(value));
    }

    /// 64-bit avalanche finisher (the murmur3 `fmix64` constants).
    fn fmix64(mut x: u64) -> u64 {
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        x ^= x >> 33;
        x
    }

    /// Finishes into a 128-bit digest.
    pub fn finish128(&self) -> u128 {
        (u128::from(Self::fmix64(self.a)) << 64) | u128::from(Self::fmix64(self.b))
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

/// The semantic normal form of a [`Mapping`] for a fixed [`LoopNest`]:
/// tiles and spatial dims verbatim, temporal order reduced to the loops
/// that can influence any PPA engine (see the module docs for the
/// invariance argument).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalMapping {
    l2_tile: [u64; DIM_COUNT],
    l1_tile: [u64; DIM_COUNT],
    order: Vec<Dim>,
    spatial: (Dim, Dim),
}

impl CanonicalMapping {
    /// Canonicalizes `mapping` against `nest`.
    pub fn of(mapping: &Mapping, nest: &LoopNest) -> Self {
        let l1_trips = mapping.l1_trip_counts();
        let l2_trips = mapping.l2_trip_counts(nest);
        let mut buf = [Dim::N; DIM_COUNT];
        let len = Self::order_into(
            &mapping.order(),
            &l1_trips,
            &l2_trips,
            nest.is_depthwise(),
            &mut buf,
        );
        CanonicalMapping {
            l2_tile: mapping.l2_tile(),
            l1_tile: mapping.l1_tile(),
            order: buf[..len].to_vec(),
            spatial: mapping.spatial(),
        }
    }

    /// Computes only the canonical temporal order into a caller-provided
    /// stack buffer, returning its length — the allocation-free core of
    /// [`CanonicalMapping::of`], for batched cache-key building where the
    /// trip counts are already at hand.
    ///
    /// `buf[..len]` holds `order` with unit loops (trip count 1 at both
    /// levels) removed and maximal reduction runs sorted; see the module
    /// docs for why both rewrites are engine-neutral.
    pub fn order_into(
        order: &[Dim; DIM_COUNT],
        l1_trips: &[u64; DIM_COUNT],
        l2_trips: &[u64; DIM_COUNT],
        depthwise: bool,
        buf: &mut [Dim; DIM_COUNT],
    ) -> usize {
        // Unit loops: trip count 1 at both levels contributes to neither
        // the L1- nor the L2-level traffic sweep.
        let mut len = 0usize;
        for &d in order {
            if l1_trips[d.index()] > 1 || l2_trips[d.index()] > 1 {
                buf[len] = d;
                len += 1;
            }
        }
        Self::sort_reduction_runs(&mut buf[..len], depthwise);
        len
    }

    /// Sorts maximal contiguous reduction runs of a unit-loop-free order
    /// into canonical dim order, in place. For depthwise nests the input
    /// tensor depends on R/S but not C, so C is excluded from runs to
    /// keep every run homogeneous per tensor.
    fn sort_reduction_runs(buf: &mut [Dim], depthwise: bool) {
        let sortable = |d: Dim| {
            if depthwise {
                matches!(d, Dim::R | Dim::S)
            } else {
                d.is_reduction()
            }
        };
        let len = buf.len();
        let mut i = 0;
        while i < len {
            if sortable(buf[i]) {
                let mut j = i;
                while j < len && sortable(buf[j]) {
                    j += 1;
                }
                buf[i..j].sort_by_key(|d| d.index());
                i = j;
            } else {
                i += 1;
            }
        }
    }

    /// L2-level tile extents (verbatim from the mapping).
    pub fn l2_tile(&self) -> [u64; DIM_COUNT] {
        self.l2_tile
    }

    /// L1-level tile extents (verbatim from the mapping).
    pub fn l1_tile(&self) -> [u64; DIM_COUNT] {
        self.l1_tile
    }

    /// Canonical temporal order: unit loops removed, reduction runs
    /// sorted. May be shorter than [`DIM_COUNT`].
    pub fn order(&self) -> &[Dim] {
        &self.order
    }

    /// Spatially unrolled dims, verbatim.
    pub fn spatial(&self) -> (Dim, Dim) {
        self.spatial
    }

    /// Feeds the full canonical form (tiles, order, spatial) into a
    /// [`StableHasher`].
    pub fn hash_into(&self, h: &mut StableHasher) {
        self.hash_tiles_into(h);
        h.write_u64(self.order.len() as u64);
        for d in &self.order {
            h.write_u8(d.index() as u8);
        }
        h.write_u8(self.spatial.0.index() as u8);
        h.write_u8(self.spatial.1.index() as u8);
    }

    /// Feeds only the tile extents into a [`StableHasher`] — for engines
    /// that are blind to temporal order and spatial placement (the
    /// Ascend-like cycle model reads tiles alone).
    pub fn hash_tiles_into(&self, h: &mut StableHasher) {
        for t in self.l2_tile {
            h.write_u64(t);
        }
        for t in self.l1_tile {
            h.write_u64(t);
        }
    }

    /// Allocation-free equivalent of
    /// `CanonicalMapping::of(mapping, nest).hash_into(h)`: canonicalizes
    /// the temporal order into a stack buffer and streams the identical
    /// bytes. This is the hot path of cache-key building — one call per
    /// candidate per cohort — where the `order` vec of
    /// [`CanonicalMapping::of`] would be a per-candidate heap
    /// allocation. Byte-equality with the materialized form is pinned
    /// by a unit test.
    pub fn hash_mapping_into(mapping: &Mapping, nest: &LoopNest, h: &mut StableHasher) {
        let l2_tile = mapping.l2_tile();
        let l1_tile = mapping.l1_tile();
        for t in l2_tile {
            h.write_u64(t);
        }
        for t in l1_tile {
            h.write_u64(t);
        }
        // Unit-loop test without trip-count divisions: for b >= 1,
        // `a.div_ceil(b) > 1` iff `a > b`, so an L1 trip count exceeds 1
        // iff the L2 tile out-sizes the L1 tile, and an L2 trip count
        // exceeds 1 iff the nest extent out-sizes the L2 tile.
        let ext = nest.extents();
        let mut buf = [Dim::N; DIM_COUNT];
        let mut len = 0usize;
        for &d in &mapping.order() {
            let i = d.index();
            if l2_tile[i] > l1_tile[i] || ext[i] > l2_tile[i] {
                buf[len] = d;
                len += 1;
            }
        }
        Self::sort_reduction_runs(&mut buf[..len], nest.is_depthwise());
        h.write_u64(len as u64);
        for d in &buf[..len] {
            h.write_u8(d.index() as u8);
        }
        h.write_u8(mapping.spatial().0.index() as u8);
        h.write_u8(mapping.spatial().1.index() as u8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unico_workloads::TensorOp;

    fn nest() -> LoopNest {
        TensorOp::Conv2d {
            n: 1,
            k: 16,
            c: 8,
            y: 8,
            x: 8,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest()
    }

    #[test]
    fn stable_hasher_is_deterministic_and_input_sensitive() {
        let mut h1 = StableHasher::new();
        let mut h2 = StableHasher::new();
        for v in [1u64, 2, 3] {
            h1.write_u64(v);
            h2.write_u64(v);
        }
        assert_eq!(h1.finish128(), h2.finish128());
        let mut h3 = StableHasher::new();
        for v in [1u64, 2, 4] {
            h3.write_u64(v);
        }
        assert_ne!(h1.finish128(), h3.finish128());
        // Known-answer: locks the digest across releases so on-disk
        // golden traces stay valid.
        let mut h = StableHasher::new();
        h.write_u64(0);
        assert_eq!(h.finish128(), 0xb903_4ad3_7056_f5fb_232e_6081_017c_ef1b);
    }

    #[test]
    fn byte_boundaries_matter() {
        // (1, 0) and (0, 1) must hash differently even though the raw
        // byte multiset matches.
        let mut h1 = StableHasher::new();
        h1.write_u64(1);
        h1.write_u64(0);
        let mut h2 = StableHasher::new();
        h2.write_u64(0);
        h2.write_u64(1);
        assert_ne!(h1.finish128(), h2.finish128());
    }

    #[test]
    fn allocation_free_hash_matches_materialized_form() {
        use crate::space::MappingSpace;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        for n in [
            nest(),
            LoopNest::new([1, 8, 4, 8, 8, 3, 3]).into_depthwise(),
        ] {
            let space = MappingSpace::new(&n);
            let mut rng = StdRng::seed_from_u64(5);
            for _ in 0..64 {
                let m = space.sample(&mut rng);
                let mut ha = StableHasher::new();
                CanonicalMapping::of(&m, &n).hash_into(&mut ha);
                let mut hb = StableHasher::new();
                CanonicalMapping::hash_mapping_into(&m, &n, &mut hb);
                assert_eq!(ha.finish128(), hb.finish128(), "mapping {m:?}");
            }
            // The identity mapping exercises the empty canonical order.
            let m = Mapping::identity(&n);
            let mut ha = StableHasher::new();
            CanonicalMapping::of(&m, &n).hash_into(&mut ha);
            let mut hb = StableHasher::new();
            CanonicalMapping::hash_mapping_into(&m, &n, &mut hb);
            assert_eq!(ha.finish128(), hb.finish128());
        }
    }

    #[test]
    fn unit_dims_dropped_from_order() {
        let n = nest();
        // Whole-nest tiles at both levels: every trip count is 1.
        let m = Mapping::identity(&n);
        let c = CanonicalMapping::of(&m, &n);
        assert!(c.order().is_empty());
        // Tiling K only leaves K in the canonical order.
        let mut l1 = n.extents();
        l1[Dim::K.index()] = 4;
        let m = Mapping::new(&n, n.extents(), l1, Dim::ALL, (Dim::K, Dim::Y));
        let c = CanonicalMapping::of(&m, &n);
        assert_eq!(c.order(), &[Dim::K]);
    }

    #[test]
    fn unit_dim_position_is_irrelevant() {
        let n = nest();
        let mut l1 = [1u64; DIM_COUNT];
        l1[Dim::K.index()] = 4;
        l1[Dim::Y.index()] = 4;
        l1[Dim::X.index()] = 4;
        // N has extent 1: its position never matters.
        let o1 = [Dim::N, Dim::K, Dim::C, Dim::Y, Dim::X, Dim::R, Dim::S];
        let o2 = [Dim::K, Dim::C, Dim::Y, Dim::X, Dim::R, Dim::S, Dim::N];
        let m1 = Mapping::new(&n, n.extents(), l1, o1, (Dim::K, Dim::Y));
        let m2 = Mapping::new(&n, n.extents(), l1, o2, (Dim::K, Dim::Y));
        assert_eq!(CanonicalMapping::of(&m1, &n), CanonicalMapping::of(&m2, &n));
    }

    #[test]
    fn reduction_runs_sorted() {
        let n = nest();
        let l1 = [1u64; DIM_COUNT];
        // C, R, S all have trips > 1 (l1 tile 1 < extent); the runs
        // S-R and R-S canonicalize identically.
        let o1 = [Dim::K, Dim::S, Dim::R, Dim::Y, Dim::C, Dim::X, Dim::N];
        let o2 = [Dim::K, Dim::R, Dim::S, Dim::Y, Dim::C, Dim::X, Dim::N];
        let m1 = Mapping::new(&n, n.extents(), l1, o1, (Dim::K, Dim::Y));
        let m2 = Mapping::new(&n, n.extents(), l1, o2, (Dim::K, Dim::Y));
        assert_eq!(CanonicalMapping::of(&m1, &n), CanonicalMapping::of(&m2, &n));
        // Separated runs do NOT merge across a non-reduction loop with
        // trips > 1: C..Y..R,S keeps C apart from R/S.
        let o3 = [Dim::K, Dim::C, Dim::Y, Dim::S, Dim::R, Dim::X, Dim::N];
        let c3 = CanonicalMapping::of(&Mapping::new(&n, n.extents(), l1, o3, (Dim::K, Dim::Y)), &n);
        assert_eq!(
            c3.order(),
            &[Dim::K, Dim::C, Dim::Y, Dim::R, Dim::S, Dim::X]
        );
    }

    #[test]
    fn spatial_dims_not_normalized() {
        let n = nest();
        let l1 = [1u64; DIM_COUNT];
        let m1 = Mapping::new(&n, n.extents(), l1, Dim::ALL, (Dim::K, Dim::Y));
        let m2 = Mapping::new(&n, n.extents(), l1, Dim::ALL, (Dim::Y, Dim::K));
        assert_ne!(CanonicalMapping::of(&m1, &n), CanonicalMapping::of(&m2, &n));
    }

    #[test]
    fn depthwise_keeps_c_out_of_runs() {
        let n = LoopNest::new([1, 8, 4, 8, 8, 3, 3]).into_depthwise();
        let l1 = [1u64; DIM_COUNT];
        // For a depthwise nest with C > 1 the input depends on R/S but
        // not C, so C must not be re-ordered against R/S.
        let o1 = [Dim::K, Dim::C, Dim::R, Dim::S, Dim::Y, Dim::X, Dim::N];
        let o2 = [Dim::K, Dim::R, Dim::C, Dim::S, Dim::Y, Dim::X, Dim::N];
        let m1 = Mapping::new(&n, n.extents(), l1, o1, (Dim::K, Dim::Y));
        let m2 = Mapping::new(&n, n.extents(), l1, o2, (Dim::K, Dim::Y));
        assert_ne!(CanonicalMapping::of(&m1, &n), CanonicalMapping::of(&m2, &n));
        // R and S still sort against each other.
        let o3 = [Dim::K, Dim::C, Dim::S, Dim::R, Dim::Y, Dim::X, Dim::N];
        let m3 = Mapping::new(&n, n.extents(), l1, o3, (Dim::K, Dim::Y));
        assert_eq!(CanonicalMapping::of(&m1, &n), CanonicalMapping::of(&m3, &n));
    }

    #[test]
    fn hash_distinguishes_tiles() {
        let n = nest();
        let mut l1a = [1u64; DIM_COUNT];
        l1a[Dim::K.index()] = 2;
        let mut l1b = [1u64; DIM_COUNT];
        l1b[Dim::K.index()] = 4;
        let ca = CanonicalMapping::of(
            &Mapping::new(&n, n.extents(), l1a, Dim::ALL, (Dim::K, Dim::Y)),
            &n,
        );
        let cb = CanonicalMapping::of(
            &Mapping::new(&n, n.extents(), l1b, Dim::ALL, (Dim::K, Dim::Y)),
            &n,
        );
        let mut ha = StableHasher::new();
        ca.hash_into(&mut ha);
        let mut hb = StableHasher::new();
        cb.hash_into(&mut hb);
        assert_ne!(ha.finish128(), hb.finish128());
    }
}
