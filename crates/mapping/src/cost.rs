//! The interface between mapping searchers and PPA cost models.

use unico_workloads::DIM_COUNT;

use crate::mapping::Mapping;

/// Result of evaluating one mapping on one hardware configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingOutcome {
    /// Scalar search objective (lower is better); typically latency or
    /// energy-delay product, chosen by the cost adapter.
    pub loss: f64,
    /// End-to-end latency in seconds.
    pub latency_s: f64,
    /// Average power in milliwatts.
    pub power_mw: f64,
}

/// A continuous relaxation of a mapping's tiling factors: per-dimension
/// L2 and L1 tile sizes as positive reals (linear space). The loop order
/// and spatial dims are taken from a discrete *template* mapping — only
/// the tiles are relaxed. Produced by gradient searchers and consumed by
/// [`MappingCost::assess_relaxed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelaxedPoint {
    /// Continuous L2 tile sizes per dimension (`≥ 1`, `≤` extent).
    pub l2: [f64; DIM_COUNT],
    /// Continuous L1 tile sizes per dimension (`≥ 1`, `≤ l2`).
    pub l1: [f64; DIM_COUNT],
}

/// Value and gradient of a relaxed objective at a [`RelaxedPoint`],
/// with partial derivatives in **linear** tile space (callers working in
/// log space apply the chain rule `dL/d ln t = t · dL/dt` themselves).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelaxedGrad {
    /// The relaxed objective value (objective scaled by any soft
    /// feasibility penalties the implementation applies).
    pub value: f64,
    /// `∂value/∂l2[d]`.
    pub d_l2: [f64; DIM_COUNT],
    /// `∂value/∂l1[d]`.
    pub d_l1: [f64; DIM_COUNT],
}

/// A cost oracle for mappings of a fixed `(workload, hardware)` pair.
///
/// Implementations bind a PPA model (analytical or cycle-accurate), a
/// hardware configuration and a loop nest, and score each candidate
/// mapping. Returning `None` marks the mapping infeasible (e.g. a tile
/// that overflows a buffer); searchers skip infeasible candidates but the
/// evaluation still consumes budget, mirroring a real compiler-in-the-loop
/// setup.
pub trait MappingCost {
    /// Scores a mapping; `None` if infeasible on this hardware.
    fn assess(&self, mapping: &Mapping) -> Option<MappingOutcome>;

    /// Scores a whole batch of candidates, element `i` of the result
    /// corresponding to `mappings[i]`.
    ///
    /// The default loops [`MappingCost::assess`]; PPA-backed adapters
    /// override it with a structure-of-arrays path that amortizes
    /// per-batch invariants and cache locking. Overrides must return
    /// exactly what per-candidate `assess` calls in slice order would —
    /// searchers rely on this for bitwise-reproducible runs.
    fn assess_batch(&self, mappings: &[Mapping]) -> Vec<Option<MappingOutcome>> {
        mappings.iter().map(|m| self.assess(m)).collect()
    }

    /// Simulated wall-clock seconds one `assess` call costs (used for
    /// search-cost accounting). Analytical models are fractions of a
    /// second; cycle-accurate models minutes.
    fn eval_cost_seconds(&self) -> f64 {
        0.05
    }

    /// Differentiable-relaxation hook: the value and tile-space gradient
    /// of a smooth surrogate of this cost at `point`, with the loop
    /// order and spatial dims frozen to `template`'s.
    ///
    /// The default returns `None` — "this cost has no differentiable
    /// surrogate" — which makes gradient searchers fall back to random
    /// sampling. Analytical-model adapters override it. Surrogate
    /// evaluations are free (they consume no search budget); only exact
    /// `assess` calls count as samples.
    fn assess_relaxed(&self, template: &Mapping, point: &RelaxedPoint) -> Option<RelaxedGrad> {
        let _ = (template, point);
        None
    }
}

impl<T: MappingCost + ?Sized> MappingCost for &T {
    fn assess(&self, mapping: &Mapping) -> Option<MappingOutcome> {
        (**self).assess(mapping)
    }

    fn assess_batch(&self, mappings: &[Mapping]) -> Vec<Option<MappingOutcome>> {
        (**self).assess_batch(mappings)
    }

    fn eval_cost_seconds(&self) -> f64 {
        (**self).eval_cost_seconds()
    }

    fn assess_relaxed(&self, template: &Mapping, point: &RelaxedPoint) -> Option<RelaxedGrad> {
        (**self).assess_relaxed(template, point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unico_workloads::TensorOp;

    struct Fixed(f64);
    impl MappingCost for Fixed {
        fn assess(&self, _m: &Mapping) -> Option<MappingOutcome> {
            Some(MappingOutcome {
                loss: self.0,
                latency_s: self.0,
                power_mw: 1.0,
            })
        }
    }

    #[test]
    fn reference_forwarding() {
        let nest = TensorOp::Gemm { m: 4, n: 4, k: 4 }.to_loop_nest();
        let m = crate::Mapping::identity(&nest);
        let c = Fixed(3.5);
        let r: &dyn MappingCost = &c;
        assert_eq!(r.assess(&m).unwrap().loss, 3.5);
        assert_eq!(c.eval_cost_seconds(), 0.05);
    }
}
