//! Resumable software-mapping searchers.
//!
//! All searchers implement [`MappingSearcher`]: give them a cost oracle
//! and a *total* budget, and they consume exactly the not-yet-spent steps.
//! That makes them directly usable as successive-halving arms — a
//! promoted arm simply gets `run_until` called again with a larger budget
//! and continues from its internal state.

use rand::rngs::StdRng;
use rand::Rng;

use crate::cost::{MappingCost, MappingOutcome};
use crate::history::SearchHistory;
use crate::mapping::Mapping;
use crate::space::MappingSpace;

/// A resumable mapping search over one [`MappingSpace`].
pub trait MappingSearcher {
    /// Runs the search until `budget` total steps have been consumed
    /// (no-op if the history already reached it).
    fn run_until(&mut self, cost: &dyn MappingCost, budget: u64);

    /// The evaluation trace so far.
    fn history(&self) -> &SearchHistory;

    /// Best mapping and its outcome, if any feasible candidate was found.
    fn best(&self) -> Option<(&Mapping, MappingOutcome)>;

    /// Gradient-search telemetry, if this searcher is gradient-based
    /// (`None` for the sampling searchers). Drivers use this to book the
    /// gradient counters into the run report without downcasting.
    fn gradient_stats(&self) -> Option<crate::gradient::GradientStats> {
        None
    }

    /// The mapping behind the best-so-far curve at `budget` steps, if the
    /// searcher noted one by then. Fused-group costing re-prices this
    /// mapping under a different DRAM traffic model.
    fn best_mapping_at(&self, budget: u64) -> Option<&Mapping> {
        self.history().best_mapping_at(budget)
    }
}

/// Tracks the incumbent best candidate for a searcher.
#[derive(Debug, Clone, Default)]
pub(crate) struct Incumbent {
    best: Option<(Mapping, MappingOutcome)>,
}

impl Incumbent {
    pub(crate) fn offer(&mut self, m: &Mapping, o: MappingOutcome) -> bool {
        let improved = self.best.as_ref().is_none_or(|(_, b)| o.loss < b.loss);
        if improved {
            self.best = Some((m.clone(), o));
        }
        improved
    }

    pub(crate) fn get(&self) -> Option<(&Mapping, MappingOutcome)> {
        self.best.as_ref().map(|(m, o)| (m, *o))
    }
}

/// Candidate chunk size for the batch-assessing searchers (random and
/// genetic). Candidate *generation* consumes the RNG and assessment does
/// not, so generating a chunk up front and batch-assessing it produces
/// the same RNG stream, history and incumbent as the scalar interleaving
/// — only the evaluation throughput changes.
const ASSESS_CHUNK: usize = 64;

/// Offers each `(mapping, outcome)` pair to the incumbent and pushes it
/// onto the history, in slice order — the shared tail of scalar and
/// batched assessment.
fn record_outcomes(
    candidates: &[Mapping],
    outcomes: Vec<Option<MappingOutcome>>,
    incumbent: &mut Incumbent,
    history: &mut SearchHistory,
) {
    for (m, o) in candidates.iter().zip(outcomes) {
        match o {
            Some(o) => {
                let improved = incumbent.offer(m, o);
                history.push(o);
                if improved {
                    history.note_best_mapping(m);
                }
            }
            None => history.push_infeasible(),
        }
    }
}

/// Uniform random mapping search (the weakest sensible baseline).
#[derive(Debug)]
pub struct RandomSearch {
    space: MappingSpace,
    rng: StdRng,
    history: SearchHistory,
    incumbent: Incumbent,
}

impl RandomSearch {
    /// Creates a random search over `space` with its own RNG stream.
    pub fn new(space: MappingSpace, rng: StdRng) -> Self {
        RandomSearch {
            space,
            rng,
            history: SearchHistory::new(),
            incumbent: Incumbent::default(),
        }
    }
}

impl MappingSearcher for RandomSearch {
    fn run_until(&mut self, cost: &dyn MappingCost, budget: u64) {
        while self.history.spent() < budget {
            let n = usize::try_from(budget - self.history.spent())
                .unwrap_or(usize::MAX)
                .min(ASSESS_CHUNK);
            let candidates: Vec<Mapping> =
                (0..n).map(|_| self.space.sample(&mut self.rng)).collect();
            let outcomes = cost.assess_batch(&candidates);
            record_outcomes(
                &candidates,
                outcomes,
                &mut self.incumbent,
                &mut self.history,
            );
        }
    }

    fn history(&self) -> &SearchHistory {
        &self.history
    }

    fn best(&self) -> Option<(&Mapping, MappingOutcome)> {
        self.incumbent.get()
    }
}

/// FlexTensor-style simulated-annealing search: a random walk over
/// mapping mutations with a temperature schedule, restarting from the
/// incumbent when stuck.
///
/// Annealing assesses candidates one at a time by construction: each
/// proposal and accept decision consumes RNG conditioned on the previous
/// outcome, so there is no batch of independent candidates to hand to
/// [`MappingCost::assess_batch`] without changing the RNG stream.
#[derive(Debug)]
pub struct AnnealingSearch {
    space: MappingSpace,
    rng: StdRng,
    history: SearchHistory,
    incumbent: Incumbent,
    current: Option<(Mapping, f64)>,
    initial_temp: f64,
    cooling: f64,
    since_improvement: u32,
    restart_after: u32,
    warmup: u64,
    /// Last rejected (infeasible) candidate; the next proposal shrinks
    /// it toward the feasible region instead of sampling blindly.
    infeasible: Option<Mapping>,
}

impl AnnealingSearch {
    /// Creates an annealing search with default schedule
    /// (16 random warm-up samples, `T0 = 0.3`, geometric cooling `0.97`,
    /// restart from the incumbent after 40 stale steps).
    pub fn new(space: MappingSpace, rng: StdRng) -> Self {
        AnnealingSearch {
            space,
            rng,
            history: SearchHistory::new(),
            incumbent: Incumbent::default(),
            current: None,
            initial_temp: 0.3,
            cooling: 0.97,
            since_improvement: 0,
            restart_after: 40,
            warmup: 16,
            infeasible: None,
        }
    }

    fn temperature(&self) -> f64 {
        self.initial_temp * self.cooling.powi(self.history.spent() as i32)
    }
}

impl MappingSearcher for AnnealingSearch {
    fn run_until(&mut self, cost: &dyn MappingCost, budget: u64) {
        while self.history.spent() < budget {
            let warming = self.history.spent() < self.warmup;
            let candidate = if let Some(bad) = self.infeasible.take() {
                // Feasibility repair: walk the rejected candidate's
                // working set down until it fits.
                self.space.shrink(&mut self.rng, &bad)
            } else {
                match (&self.current, warming) {
                    (Some((m, _)), false) => self.space.mutate(&mut self.rng, m),
                    _ => self.space.sample(&mut self.rng),
                }
            };
            match cost.assess(&candidate) {
                Some(o) => {
                    let accept = match &self.current {
                        None => true,
                        Some((_, cur_loss)) => {
                            if o.loss < *cur_loss {
                                true
                            } else {
                                // Relative worsening tempered by T.
                                let rel = (o.loss - cur_loss) / cur_loss.max(1e-12);
                                let t = self.temperature().max(1e-9);
                                self.rng.gen_bool((-rel / t).exp().clamp(0.0, 1.0))
                            }
                        }
                    };
                    let improved = self.incumbent.offer(&candidate, o);
                    if improved {
                        self.since_improvement = 0;
                    } else {
                        self.since_improvement += 1;
                    }
                    if warming {
                        // During warm-up the walk always tracks the
                        // incumbent so annealing starts from the best
                        // random sample.
                        self.current = self.incumbent.get().map(|(m, b)| (m.clone(), b.loss));
                    } else if accept {
                        self.current = Some((candidate.clone(), o.loss));
                    }
                    self.history.push(o);
                    if improved {
                        self.history.note_best_mapping(&candidate);
                    }
                }
                None => {
                    self.since_improvement += 1;
                    self.history.push_infeasible();
                    // Only repair when we have nothing feasible to mutate
                    // yet, or the repair chain is still making progress
                    // (tiles not yet minimal).
                    let minimal = candidate.l1_tile().iter().all(|&t| t <= 2)
                        && candidate.l2_tile().iter().all(|&t| t <= 2);
                    if !minimal {
                        self.infeasible = Some(candidate);
                    }
                }
            }
            if self.since_improvement >= self.restart_after {
                // Restart the walk from the incumbent (or fresh if none).
                self.current = self.incumbent.get().map(|(m, o)| (m.clone(), o.loss));
                self.since_improvement = 0;
            }
        }
    }

    fn history(&self) -> &SearchHistory {
        &self.history
    }

    fn best(&self) -> Option<(&Mapping, MappingOutcome)> {
        self.incumbent.get()
    }
}

/// Configuration for [`GeneticSearch`].
#[derive(Debug, Clone, Copy)]
pub struct GeneticConfig {
    /// Population size.
    pub population: usize,
    /// Fraction of offspring produced by crossover (the rest mutate).
    pub crossover_rate: f64,
    /// Elite individuals carried to the next generation unchanged.
    pub elites: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
}

impl Default for GeneticConfig {
    fn default() -> Self {
        GeneticConfig {
            population: 20,
            crossover_rate: 0.6,
            elites: 2,
            tournament: 3,
        }
    }
}

/// GAMMA-style genetic mapping search.
#[derive(Debug)]
pub struct GeneticSearch {
    space: MappingSpace,
    rng: StdRng,
    cfg: GeneticConfig,
    history: SearchHistory,
    incumbent: Incumbent,
    /// Scored population `(mapping, loss)`; infeasible individuals carry
    /// `f64::INFINITY`.
    population: Vec<(Mapping, f64)>,
}

impl GeneticSearch {
    /// Creates a genetic search with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `population == 0` or `tournament == 0`.
    pub fn new(space: MappingSpace, rng: StdRng, cfg: GeneticConfig) -> Self {
        assert!(cfg.population > 0, "population must be positive");
        assert!(cfg.tournament > 0, "tournament size must be positive");
        GeneticSearch {
            space,
            rng,
            cfg,
            history: SearchHistory::new(),
            incumbent: Incumbent::default(),
            population: Vec::new(),
        }
    }

    /// Batch-assesses one generation's candidates, recording outcomes in
    /// candidate order (identical to per-candidate assessment: the RNG is
    /// only consumed by candidate *generation*, which happened already).
    fn assess_generation(
        &mut self,
        candidates: Vec<Mapping>,
        cost: &dyn MappingCost,
    ) -> Vec<(Mapping, f64)> {
        let outcomes = cost.assess_batch(&candidates);
        candidates
            .into_iter()
            .zip(outcomes)
            .map(|(m, o)| match o {
                Some(o) => {
                    let improved = self.incumbent.offer(&m, o);
                    self.history.push(o);
                    if improved {
                        self.history.note_best_mapping(&m);
                    }
                    (m, o.loss)
                }
                None => {
                    self.history.push_infeasible();
                    (m, f64::INFINITY)
                }
            })
            .collect()
    }

    fn tournament_pick(&mut self) -> Mapping {
        let mut best: Option<&(Mapping, f64)> = None;
        for _ in 0..self.cfg.tournament {
            let idx = self.rng.gen_range(0..self.population.len());
            let cand = &self.population[idx];
            if best.is_none_or(|b| cand.1 < b.1) {
                best = Some(cand);
            }
        }
        best.expect("non-empty population").0.clone()
    }
}

impl MappingSearcher for GeneticSearch {
    fn run_until(&mut self, cost: &dyn MappingCost, budget: u64) {
        // Seed generation: sample the whole missing cohort first, then
        // batch-assess it (identical RNG stream and history order to the
        // scalar interleaving).
        while self.population.len() < self.cfg.population && self.history.spent() < budget {
            let n = (self.cfg.population - self.population.len())
                .min(usize::try_from(budget - self.history.spent()).unwrap_or(usize::MAX));
            let seeds: Vec<Mapping> = (0..n).map(|_| self.space.sample(&mut self.rng)).collect();
            let scored = self.assess_generation(seeds, cost);
            self.population.extend(scored);
        }
        while self.history.spent() < budget {
            // Build the next generation, spending at most the remaining
            // budget.
            let mut next: Vec<(Mapping, f64)> = Vec::with_capacity(self.cfg.population);
            let mut ranked: Vec<usize> = (0..self.population.len()).collect();
            ranked.sort_by(|&a, &b| {
                self.population[a]
                    .1
                    .partial_cmp(&self.population[b].1)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for &i in ranked.iter().take(self.cfg.elites) {
                next.push(self.population[i].clone());
            }
            while next.len() < self.cfg.population && self.history.spent() < budget {
                // Children derive from the *previous* generation only
                // (tournaments read `self.population`), so a whole
                // cohort can be generated before any of it is assessed.
                let n = (self.cfg.population - next.len())
                    .min(usize::try_from(budget - self.history.spent()).unwrap_or(usize::MAX));
                let children: Vec<Mapping> = (0..n)
                    .map(|_| {
                        if self.rng.gen_bool(self.cfg.crossover_rate) {
                            let a = self.tournament_pick();
                            let b = self.tournament_pick();
                            self.space.crossover(&mut self.rng, &a, &b)
                        } else {
                            let p = self.tournament_pick();
                            self.space.mutate(&mut self.rng, &p)
                        }
                    })
                    .collect();
                let scored = self.assess_generation(children, cost);
                next.extend(scored);
            }
            if next.len() >= self.cfg.elites.max(1) {
                self.population = next;
            }
        }
    }

    fn history(&self) -> &SearchHistory {
        &self.history
    }

    fn best(&self) -> Option<(&Mapping, MappingOutcome)> {
        self.incumbent.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use unico_workloads::{Dim, TensorOp};

    /// Cost with clear structure: prefer large L1 K-tiles and penalize
    /// tile K > 32 as infeasible.
    struct Structured;
    impl MappingCost for Structured {
        fn assess(&self, m: &Mapping) -> Option<MappingOutcome> {
            let k = m.l1_tile()[Dim::K.index()];
            if k > 32 {
                return None;
            }
            let loss = 64.0 / k as f64 + m.l2_tile()[Dim::C.index()] as f64 * 0.01;
            Some(MappingOutcome {
                loss,
                latency_s: loss * 1e-3,
                power_mw: 100.0,
            })
        }
    }

    fn space() -> MappingSpace {
        let nest = TensorOp::Conv2d {
            n: 1,
            k: 64,
            c: 32,
            y: 28,
            x: 28,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest();
        MappingSpace::new(&nest)
    }

    #[test]
    fn run_until_is_resumable_and_exact() {
        let mut s = RandomSearch::new(space(), StdRng::seed_from_u64(1));
        s.run_until(&Structured, 20);
        assert_eq!(s.history().spent(), 20);
        let best_20 = s.history().terminal_value();
        s.run_until(&Structured, 20); // no-op
        assert_eq!(s.history().spent(), 20);
        s.run_until(&Structured, 50);
        assert_eq!(s.history().spent(), 50);
        assert!(s.history().terminal_value() <= best_20);
    }

    #[test]
    fn annealing_beats_or_matches_random_on_structured_cost() {
        let budget = 300;
        let mut better = 0;
        for seed in 0..5 {
            let mut rs = RandomSearch::new(space(), StdRng::seed_from_u64(seed));
            let mut an = AnnealingSearch::new(space(), StdRng::seed_from_u64(seed + 100));
            rs.run_until(&Structured, budget);
            an.run_until(&Structured, budget);
            if an.history().terminal_value() <= rs.history().terminal_value() {
                better += 1;
            }
        }
        assert!(better >= 3, "annealing won only {better}/5 seeds");
    }

    #[test]
    fn genetic_makes_progress() {
        let mut ga =
            GeneticSearch::new(space(), StdRng::seed_from_u64(9), GeneticConfig::default());
        ga.run_until(&Structured, 200);
        assert_eq!(ga.history().spent(), 200);
        let (m, o) = ga.best().expect("feasible best");
        assert!(m.l1_tile()[Dim::K.index()] <= 32);
        // Should find a near-maximal legal K tile.
        assert!(o.loss < 64.0 / 8.0, "ga loss {}", o.loss);
    }

    #[test]
    fn infeasible_heavy_cost_still_consumes_budget() {
        struct MostlyInfeasible;
        impl MappingCost for MostlyInfeasible {
            fn assess(&self, m: &Mapping) -> Option<MappingOutcome> {
                if m.l1_tile()[Dim::K.index()] != 1 {
                    return None;
                }
                Some(MappingOutcome {
                    loss: 1.0,
                    latency_s: 1.0,
                    power_mw: 1.0,
                })
            }
        }
        let mut s = AnnealingSearch::new(space(), StdRng::seed_from_u64(3));
        s.run_until(&MostlyInfeasible, 100);
        assert_eq!(s.history().spent(), 100);
    }

    #[test]
    fn best_mapping_matches_terminal_value() {
        let mut s = AnnealingSearch::new(space(), StdRng::seed_from_u64(5));
        s.run_until(&Structured, 150);
        let (_, o) = s.best().unwrap();
        assert_eq!(o.loss, s.history().terminal_value());
    }

    #[test]
    #[should_panic(expected = "population")]
    fn zero_population_panics() {
        let cfg = GeneticConfig {
            population: 0,
            ..GeneticConfig::default()
        };
        let _ = GeneticSearch::new(space(), StdRng::seed_from_u64(1), cfg);
    }
}
