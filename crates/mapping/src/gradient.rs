//! Differentiable one-loop mapping search (DOSA-inspired).
//!
//! [`GradientSearcher`] relaxes the integer tiling factors of a mapping
//! to continuous values and descends a differentiable surrogate of the
//! cost (exposed by [`MappingCost::assess_relaxed`]) by momentum gradient
//! descent **in log space**: the optimization variables are
//! `z = ln(tile)`, which makes multiplicative structure additive, keeps
//! tiles positive by construction, and equalizes step scales across
//! dimensions spanning `1 ..= 512`.
//!
//! One descent iteration is: query the surrogate gradient at the current
//! point, apply the chain rule `∂L/∂z = tile · ∂L/∂tile`, normalize,
//! take a momentum step, and *project* back into the box
//! `ln(floor) ≤ z1 ≤ z2 ≤ ln(extent)`. If the surrogate value got worse
//! the step is rejected, the pre-step point restored exactly, and the
//! learning rate halved (a backtracking line search); improvements
//! slowly re-expand it. After every few surrogate steps the continuous
//! point is **legalized**: nearest- and floor-rounding onto the
//! [`MappingSpace`] option lists compete (floor never inflates a
//! footprint across the buffer wall), the winner is *polished* by free
//! greedy moves over the discrete neighborhood (tile option steps,
//! correlated pair steps, order transpositions, spatial swaps), and the
//! result is re-evaluated through the normal exact (cached `f64`) path.
//! Because the surrogate uses straight-through-estimator rounding, its
//! value at integer tiles reproduces the exact model's quantization
//! cliffs, so all of that screening is trustworthy and free. Only the
//! exact evaluations consume search budget, which is exactly the
//! sample-efficiency claim the fig7-style comparison measures.
//!
//! The loop order and spatial dims are not relaxed; each trajectory
//! starts from a surrogate-screened template — random draws on explore
//! restarts, jittered/mutated copies of the incumbent on alternating
//! exploit restarts — and the polish step may still swap order
//! positions or re-point the spatial pair when that helps. Restarts
//! trigger after several distinct legalizations without per-trajectory
//! improvement. Costs without a differentiable surrogate
//! (`assess_relaxed` returning `None`, e.g. the loop-centric engine)
//! degrade to plain random sampling so the searcher stays usable
//! everywhere.

use rand::rngs::StdRng;
use rand::Rng;

use unico_workloads::{Dim, DIM_COUNT};

use crate::cost::{MappingCost, MappingOutcome, RelaxedPoint};
use crate::history::SearchHistory;
use crate::mapping::Mapping;
use crate::search::{Incumbent, MappingSearcher};
use crate::space::MappingSpace;

/// Monotonic counters a [`GradientSearcher`] accumulates; surfaced
/// through [`MappingSearcher::gradient_stats`] and booked into the run
/// report's telemetry by the drivers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GradientStats {
    /// Surrogate gradient-descent steps taken (free: no budget).
    pub gradient_steps: u64,
    /// Continuous points legalized and exactly re-evaluated.
    pub legalizations: u64,
    /// Backtracking line-search rejections (step undone, rate halved).
    pub backtracks: u64,
    /// Trajectory restarts from a fresh random template.
    pub restarts: u64,
}

impl GradientStats {
    /// Element-wise sum, for aggregating across jobs/sessions.
    pub fn absorb(&mut self, o: &GradientStats) {
        self.gradient_steps += o.gradient_steps;
        self.legalizations += o.legalizations;
        self.backtracks += o.backtracks;
        self.restarts += o.restarts;
    }

    /// Element-wise difference against an `earlier` snapshot of the same
    /// monotone counters — what drivers book when they advance sessions
    /// that may already carry progress from a previous round.
    pub fn delta_since(&self, earlier: &GradientStats) -> GradientStats {
        GradientStats {
            gradient_steps: self.gradient_steps.saturating_sub(earlier.gradient_steps),
            legalizations: self.legalizations.saturating_sub(earlier.legalizations),
            backtracks: self.backtracks.saturating_sub(earlier.backtracks),
            restarts: self.restarts.saturating_sub(earlier.restarts),
        }
    }
}

/// Tunables for [`GradientSearcher`].
#[derive(Debug, Clone, Copy)]
pub struct GradientConfig {
    /// Initial log-space step size (on the ∞-normalized gradient).
    pub learning_rate: f64,
    /// Momentum coefficient on the velocity term.
    pub momentum: f64,
    /// Surrogate descent steps between legalizations.
    pub steps_per_legalization: u32,
    /// Legalizations without incumbent improvement before a restart.
    pub restart_after: u32,
    /// Hard cap on legalizations per trajectory (forces template
    /// diversity even while a long descent keeps improving slowly).
    pub max_rounds_per_trajectory: u32,
}

impl Default for GradientConfig {
    fn default() -> Self {
        GradientConfig {
            learning_rate: 0.25,
            momentum: 0.7,
            steps_per_legalization: 8,
            restart_after: 4,
            max_rounds_per_trajectory: 12,
        }
    }
}

/// One descent trajectory: a discrete template (order + spatial dims)
/// plus the continuous log-space tile point and optimizer state.
#[derive(Debug, Clone)]
struct Trajectory {
    template: Mapping,
    z2: [f64; DIM_COUNT],
    z1: [f64; DIM_COUNT],
    v2: [f64; DIM_COUNT],
    v1: [f64; DIM_COUNT],
    /// Pre-step point, restored verbatim on a backtrack (subtracting the
    /// velocity would not undo a step that projection clamped).
    prev_z2: [f64; DIM_COUNT],
    prev_z1: [f64; DIM_COUNT],
    lr: f64,
    prev_value: f64,
    rounds: u32,
    stale_rounds: u32,
    /// Best exact loss this trajectory has produced itself; staleness is
    /// judged against this, not the global incumbent, so a healthy
    /// descent is not killed for merely trailing an earlier trajectory.
    best_loss: f64,
    last_legal: Option<Mapping>,
}

/// Gradient-descent mapping search over a differentiable cost surrogate.
#[derive(Debug)]
pub struct GradientSearcher {
    space: MappingSpace,
    rng: StdRng,
    cfg: GradientConfig,
    history: SearchHistory,
    incumbent: Incumbent,
    stats: GradientStats,
    traj: Option<Trajectory>,
    /// `Some(false)` once the cost declined `assess_relaxed`; the
    /// searcher then behaves as random sampling.
    relaxation_supported: Option<bool>,
}

impl GradientSearcher {
    /// Creates a gradient search with the default configuration.
    pub fn new(space: MappingSpace, rng: StdRng) -> Self {
        GradientSearcher::with_config(space, rng, GradientConfig::default())
    }

    /// Creates a gradient search with explicit tunables.
    ///
    /// # Panics
    ///
    /// Panics if `steps_per_legalization == 0` or rates are not finite
    /// and positive.
    pub fn with_config(space: MappingSpace, rng: StdRng, cfg: GradientConfig) -> Self {
        assert!(cfg.steps_per_legalization > 0, "steps_per_legalization");
        assert!(
            cfg.learning_rate.is_finite() && cfg.learning_rate > 0.0,
            "learning_rate"
        );
        assert!(
            (0.0..1.0).contains(&cfg.momentum),
            "momentum must be in [0, 1)"
        );
        GradientSearcher {
            space,
            rng,
            cfg,
            history: SearchHistory::new(),
            incumbent: Incumbent::default(),
            stats: GradientStats::default(),
            traj: None,
            relaxation_supported: None,
        }
    }

    /// The accumulated gradient counters.
    pub fn stats(&self) -> GradientStats {
        self.stats
    }

    /// Spends one exact evaluation on `m`, recording it in the history
    /// and offering it to the incumbent. Returns the outcome.
    fn exact_eval(&mut self, cost: &dyn MappingCost, m: &Mapping) -> Option<MappingOutcome> {
        match cost.assess(m) {
            Some(o) => {
                let improved = self.incumbent.offer(m, o);
                self.history.push(o);
                if improved {
                    self.history.note_best_mapping(m);
                }
                Some(o)
            }
            None => {
                self.history.push_infeasible();
                None
            }
        }
    }

    /// Starts a fresh trajectory. Candidate starting points are screened
    /// with *free* surrogate queries: several random `(template, tiles)`
    /// draws compete and the lowest surrogate value wins, so no exact
    /// budget is burned on unvetted random templates. Every other
    /// restart *exploits* instead — descent resumes from the incumbent's
    /// discrete template (order + spatial dims) with jittered tiles,
    /// refining the best-known region rather than starting cold.
    fn start_trajectory(&mut self, cost: &dyn MappingCost) {
        const SCREEN: usize = 16;
        let ext = self.space.nest().extents();
        let exploit = self.stats.restarts % 2 == 1;
        let incumbent = self.incumbent.get().map(|(m, _)| m.clone());
        let mut best: Option<(Mapping, [f64; DIM_COUNT], [f64; DIM_COUNT], f64)> = None;
        let mut unscreened: Option<(Mapping, [f64; DIM_COUNT], [f64; DIM_COUNT])> = None;
        for _ in 0..SCREEN {
            let (template, mut z2, mut z1) = match &incumbent {
                Some(m) if exploit => {
                    // Jittered copies of the incumbent's tiles — restarting
                    // at the exact incumbent with zero velocity would only
                    // stall, so every candidate moves off it a little. Half
                    // the candidates also perturb the discrete template
                    // (order / spatial dims): free local search over the
                    // choices the continuous descent cannot reach, screened
                    // by the surrogate like everything else.
                    let template = if self.rng.gen_bool(0.5) {
                        if self.rng.gen_bool(0.5) {
                            self.space.mutate_order(&mut self.rng, m)
                        } else {
                            self.space.mutate_spatial(&mut self.rng, m)
                        }
                    } else {
                        m.clone()
                    };
                    let l2 = m.l2_tile();
                    let l1 = m.l1_tile();
                    let z2: [f64; DIM_COUNT] = std::array::from_fn(|i| {
                        (l2[i] as f64).ln() + self.rng.gen_range(-0.8..0.8)
                    });
                    let z1: [f64; DIM_COUNT] = std::array::from_fn(|i| {
                        (l1[i] as f64).ln() + self.rng.gen_range(-0.8..0.8)
                    });
                    (template, z2, z1)
                }
                _ => {
                    let m = self.space.sample(&mut self.rng);
                    let l2 = m.l2_tile();
                    let l1 = m.l1_tile();
                    let z2 = std::array::from_fn(|i| (l2[i] as f64).ln());
                    let z1 = std::array::from_fn(|i| (l1[i] as f64).ln());
                    (m, z2, z1)
                }
            };
            project(&template, &mut z2, &mut z1, &ext);
            let point = RelaxedPoint {
                l2: z2.map(f64::exp),
                l1: z1.map(f64::exp),
            };
            match cost.assess_relaxed(&template, &point) {
                Some(g) if g.value.is_finite() => {
                    let better = match &best {
                        Some((_, _, _, v)) => g.value < *v,
                        None => true,
                    };
                    if better {
                        best = Some((template, z2, z1, g.value));
                    }
                }
                _ => unscreened = Some((template, z2, z1)),
            }
        }
        let (template, z2, z1) = match best {
            Some((t, z2, z1, _)) => (t, z2, z1),
            // No candidate had a finite surrogate value (no relaxation at
            // all, or every draw degenerate): keep the last draw; the
            // descent loop detects the missing surrogate on its first
            // step and falls back to random sampling.
            None => unscreened.expect("SCREEN > 0"),
        };
        // When exploiting, the incumbent is already paid for — seeding
        // `last_legal` stops the first legalization from re-buying it.
        let last_legal = if exploit { incumbent } else { None };
        self.traj = Some(Trajectory {
            template,
            z2,
            z1,
            v2: [0.0; DIM_COUNT],
            v1: [0.0; DIM_COUNT],
            prev_z2: z2,
            prev_z1: z1,
            lr: self.cfg.learning_rate,
            prev_value: f64::INFINITY,
            rounds: 0,
            stale_rounds: 0,
            best_loss: f64::INFINITY,
            last_legal,
        });
    }

    /// One surrogate descent step. Returns `false` if the cost has no
    /// differentiable surrogate.
    fn surrogate_step(&mut self, cost: &dyn MappingCost) -> bool {
        let ext = self.space.nest().extents();
        let lr0 = self.cfg.learning_rate;
        let momentum = self.cfg.momentum;
        let Some(traj) = self.traj.as_mut() else {
            return true;
        };
        let point = RelaxedPoint {
            l2: traj.z2.map(f64::exp),
            l1: traj.z1.map(f64::exp),
        };
        let Some(g) = cost.assess_relaxed(&traj.template, &point) else {
            return false;
        };
        self.stats.gradient_steps += 1;

        // Backtracking line search: if the last step made the surrogate
        // worse, restore the exact pre-step point and halve the rate.
        if g.value > traj.prev_value && traj.prev_value.is_finite() {
            self.stats.backtracks += 1;
            traj.z2 = traj.prev_z2;
            traj.z1 = traj.prev_z1;
            traj.v2 = [0.0; DIM_COUNT];
            traj.v1 = [0.0; DIM_COUNT];
            traj.lr = (traj.lr * 0.5).max(1e-3);
            return true;
        }
        traj.prev_value = g.value;
        traj.lr = (traj.lr * 1.1).min(lr0);

        // Chain rule into log space and ∞-normalize so the step size is
        // scale-free across objectives (seconds vs pJ·s).
        let mut gz2 = [0.0f64; DIM_COUNT];
        let mut gz1 = [0.0f64; DIM_COUNT];
        let mut max_mag = 0.0f64;
        for i in 0..DIM_COUNT {
            gz2[i] = g.d_l2[i] * point.l2[i];
            gz1[i] = g.d_l1[i] * point.l1[i];
            max_mag = max_mag.max(gz2[i].abs()).max(gz1[i].abs());
        }
        if max_mag > 0.0 && max_mag.is_finite() {
            traj.prev_z2 = traj.z2;
            traj.prev_z1 = traj.z1;
            let lr = traj.lr;
            for i in 0..DIM_COUNT {
                traj.v2[i] = momentum * traj.v2[i] - lr * gz2[i] / max_mag;
                traj.v1[i] = momentum * traj.v1[i] - lr * gz1[i] / max_mag;
                traj.z2[i] += traj.v2[i];
                traj.z1[i] += traj.v1[i];
            }
        }
        project(&traj.template, &mut traj.z2, &mut traj.z1, &ext);
        true
    }

    /// Legalizes the current continuous point and spends one exact
    /// evaluation on it (unless it equals the previous legalization,
    /// which would waste budget on a duplicate). Two discretizations
    /// compete — nearest rounding and floor rounding — screened by free
    /// surrogate queries at their integer points: nearest rounding can
    /// inflate a footprint across the buffer wall even when the
    /// continuous point is feasible, and the steep feasibility penalty
    /// makes the screen reject exactly those candidates.
    fn legalize_and_eval(&mut self, cost: &dyn MappingCost) {
        let legal = {
            let Some(traj) = self.traj.as_mut() else {
                return;
            };
            let l2 = traj.z2.map(f64::exp);
            let l1 = traj.z1.map(f64::exp);
            let order = traj.template.order();
            let spatial = traj.template.spatial();
            let near = self.space.legalize(&l2, &l1, order, spatial);
            let floor = self.space.legalize_floor(&l2, &l1, order, spatial);
            let m =
                if near == floor || surrogate_value(cost, &near) <= surrogate_value(cost, &floor) {
                    near
                } else {
                    floor
                };
            // Free greedy polish at the integer level: with STE rounding
            // the surrogate value at integer tiles reproduces the exact
            // model's quantization behavior, so discrete moves — option
            // steps, correlated pair steps, order transpositions and
            // spatial swaps — can all be ranked without spending budget.
            // This is what finds PE-multiple tiles and reuse-friendly
            // orders that plain rounding misses.
            let m = polish(&self.space, cost, m);
            if traj.last_legal.as_ref() == Some(&m) {
                traj.stale_rounds += 1;
                return;
            }
            // Only distinct (budget-spending) legalizations count toward
            // the per-trajectory round cap; duplicates are free.
            traj.rounds += 1;
            traj.last_legal = Some(m.clone());
            m
        };
        self.stats.legalizations += 1;
        let outcome = self.exact_eval(cost, &legal);
        let traj = self.traj.as_mut().expect("trajectory");
        match outcome {
            Some(o) if o.loss < traj.best_loss => {
                traj.best_loss = o.loss;
                traj.stale_rounds = 0;
            }
            _ => traj.stale_rounds += 1,
        }
    }

    /// Random-sampling fallback for costs without a surrogate.
    fn fallback_random(&mut self, cost: &dyn MappingCost, budget: u64) {
        while self.history.spent() < budget {
            let m = self.space.sample(&mut self.rng);
            self.exact_eval(cost, &m);
        }
    }
}

/// Projects the log-space point into the legal box: spatial L1 tiles
/// keep extent ≥ 2 where the dimension allows (so the PE-array
/// unrolling never degenerates), everything else stays within
/// `1 ≤ l1 ≤ l2 ≤ extent`.
fn project(
    template: &Mapping,
    z2: &mut [f64; DIM_COUNT],
    z1: &mut [f64; DIM_COUNT],
    ext: &[u64; DIM_COUNT],
) {
    let (sa, sb) = template.spatial();
    for d in Dim::ALL {
        let i = d.index();
        let z_ext = (ext[i] as f64).ln();
        let spatial = i == sa.index() || i == sb.index();
        let floor = if spatial && ext[i] >= 2 {
            2f64.ln()
        } else {
            0.0
        };
        z2[i] = z2[i].clamp(floor.min(z_ext), z_ext);
        z1[i] = z1[i].clamp(floor.min(z_ext), z2[i]);
    }
}

/// Free surrogate query at a mapping's own integer tiles. Under STE
/// rounding the relaxed model agrees with the exact model at integer
/// points, so this ranks discrete candidates faithfully without
/// spending evaluation budget. Infeasible or surrogate-less queries
/// rank last.
fn surrogate_value(cost: &dyn MappingCost, m: &Mapping) -> f64 {
    let p = RelaxedPoint {
        l2: m.l2_tile().map(|v| v as f64),
        l1: m.l1_tile().map(|v| v as f64),
    };
    cost.assess_relaxed(m, &p)
        .map_or(f64::INFINITY, |g| g.value)
}

/// Free greedy descent over the full discrete neighborhood of `m`:
/// single-option tile steps, correlated same-level pair steps (trading
/// one option between two dims), loop-order transpositions, and
/// spatial-pair replacements. Every candidate is screened by
/// [`surrogate_value`] at its own template, so order and spatial moves
/// are ranked just as faithfully as tile moves. Sweeps repeat until a
/// local optimum or the sweep cap; only strictly improving moves are
/// taken, so the result is deterministic in `m`.
fn polish(space: &MappingSpace, cost: &dyn MappingCost, mut m: Mapping) -> Mapping {
    let mut cur = surrogate_value(cost, &m);
    if !cur.is_finite() {
        return m;
    }
    let spatial_cands = space.spatial_candidates();
    for _ in 0..6 {
        let mut improved = false;
        let consider = |cand: Mapping, cur: &mut f64, m: &mut Mapping| {
            let v = surrogate_value(cost, &cand);
            if v < *cur {
                *cur = v;
                *m = cand;
                true
            } else {
                false
            }
        };
        // Single-coordinate option steps.
        for d in Dim::ALL {
            for (level2, up) in [(true, true), (true, false), (false, true), (false, false)] {
                if let Some(cand) = space.neighbor_tile(&m, d, level2, up) {
                    improved |= consider(cand, &mut cur, &mut m);
                }
            }
        }
        // Correlated pair steps: trade one option between two dims at
        // the same level (e.g. rebalancing factors across the spatial
        // pair), which single moves cannot reach without passing
        // through a worse intermediate.
        for a in Dim::ALL {
            for b in Dim::ALL {
                if a.index() >= b.index() {
                    continue;
                }
                for (level2, up) in [(true, true), (true, false), (false, true), (false, false)] {
                    let cand = space
                        .neighbor_tile(&m, a, level2, up)
                        .and_then(|c| space.neighbor_tile(&c, b, level2, !up));
                    if let Some(cand) = cand {
                        improved |= consider(cand, &mut cur, &mut m);
                    }
                }
            }
        }
        // Loop-order transpositions: reuse is order-dependent, and the
        // continuous descent cannot move the order at all.
        for i in 0..DIM_COUNT {
            for j in (i + 1)..DIM_COUNT {
                let mut order = m.order();
                order.swap(i, j);
                let cand = Mapping::new(space.nest(), m.l2_tile(), m.l1_tile(), order, m.spatial());
                improved |= consider(cand, &mut cur, &mut m);
            }
        }
        // Spatial-pair replacements: re-point the PE-array unrolling at
        // any other eligible ordered pair of dimensions.
        if spatial_cands.len() >= 2 {
            for &a in spatial_cands {
                for &b in spatial_cands {
                    if a == b || (a, b) == m.spatial() {
                        continue;
                    }
                    let cand =
                        Mapping::new(space.nest(), m.l2_tile(), m.l1_tile(), m.order(), (a, b));
                    improved |= consider(cand, &mut cur, &mut m);
                }
            }
        }
        if !improved {
            break;
        }
    }
    m
}

impl MappingSearcher for GradientSearcher {
    fn run_until(&mut self, cost: &dyn MappingCost, budget: u64) {
        if self.relaxation_supported == Some(false) {
            self.fallback_random(cost, budget);
            return;
        }
        while self.history.spent() < budget {
            if self.traj.is_none() {
                self.start_trajectory(cost);
                continue;
            }
            for _ in 0..self.cfg.steps_per_legalization {
                if !self.surrogate_step(cost) {
                    self.relaxation_supported = Some(false);
                    self.traj = None;
                    self.fallback_random(cost, budget);
                    return;
                }
            }
            self.relaxation_supported = Some(true);
            self.legalize_and_eval(cost);
            let traj = self.traj.as_ref().expect("trajectory");
            if traj.stale_rounds >= self.cfg.restart_after
                || traj.rounds >= self.cfg.max_rounds_per_trajectory
            {
                self.stats.restarts += 1;
                self.traj = None;
            }
        }
    }

    fn history(&self) -> &SearchHistory {
        &self.history
    }

    fn best(&self) -> Option<(&Mapping, MappingOutcome)> {
        self.incumbent.get()
    }

    fn gradient_stats(&self) -> Option<GradientStats> {
        Some(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::RelaxedGrad;
    use rand::SeedableRng;
    use unico_workloads::TensorOp;

    fn space() -> MappingSpace {
        let nest = TensorOp::Conv2d {
            n: 1,
            k: 64,
            c: 32,
            y: 28,
            x: 28,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest();
        MappingSpace::new(&nest)
    }

    /// A smooth toy cost with a differentiable surrogate: loss is the
    /// squared log-distance of every tile from a target size, so the
    /// gradient points straight at the optimum.
    struct Quadratic {
        target: f64,
    }

    impl Quadratic {
        fn loss_of(&self, l2: &[f64; DIM_COUNT], l1: &[f64; DIM_COUNT]) -> f64 {
            let t = self.target.ln();
            let mut s = 1.0;
            for i in 0..DIM_COUNT {
                s += (l2[i].ln() - t).powi(2) + (l1[i].ln() - t).powi(2);
            }
            s
        }
    }

    impl MappingCost for Quadratic {
        fn assess(&self, m: &Mapping) -> Option<MappingOutcome> {
            let l2 = m.l2_tile().map(|v| v as f64);
            let l1 = m.l1_tile().map(|v| v as f64);
            let loss = self.loss_of(&l2, &l1);
            Some(MappingOutcome {
                loss,
                latency_s: loss,
                power_mw: 1.0,
            })
        }

        fn assess_relaxed(&self, _t: &Mapping, p: &RelaxedPoint) -> Option<RelaxedGrad> {
            let t = self.target.ln();
            let value = self.loss_of(&p.l2, &p.l1);
            // d/dl of (ln l - t)^2 = 2 (ln l - t) / l.
            let d_l2 = std::array::from_fn(|i| 2.0 * (p.l2[i].ln() - t) / p.l2[i]);
            let d_l1 = std::array::from_fn(|i| 2.0 * (p.l1[i].ln() - t) / p.l1[i]);
            Some(RelaxedGrad { value, d_l2, d_l1 })
        }
    }

    #[test]
    fn descends_toward_target_tiles() {
        let mut gs = GradientSearcher::new(space(), StdRng::seed_from_u64(11));
        let cost = Quadratic { target: 4.0 };
        gs.run_until(&cost, 60);
        assert_eq!(gs.history().spent(), 60);
        let (m, o) = gs.best().expect("feasible best");
        // The incumbent should have most tiles pulled near the target
        // (dims with extent < 4 clamp at their extent).
        assert!(o.loss < 20.0, "loss {} for {m}", o.loss);
        let stats = gs.stats();
        assert!(stats.gradient_steps > 0);
        assert!(stats.legalizations > 0);
    }

    #[test]
    fn run_until_is_resumable_and_exact() {
        let cost = Quadratic { target: 8.0 };
        let mut gs = GradientSearcher::new(space(), StdRng::seed_from_u64(3));
        gs.run_until(&cost, 25);
        assert_eq!(gs.history().spent(), 25);
        let best_25 = gs.history().terminal_value();
        gs.run_until(&cost, 25); // no-op
        assert_eq!(gs.history().spent(), 25);
        gs.run_until(&cost, 60);
        assert_eq!(gs.history().spent(), 60);
        assert!(gs.history().terminal_value() <= best_25);
    }

    #[test]
    fn falls_back_to_random_without_surrogate() {
        struct NoSurrogate;
        impl MappingCost for NoSurrogate {
            fn assess(&self, m: &Mapping) -> Option<MappingOutcome> {
                let loss = m.l1_tile().iter().map(|&t| t as f64).sum();
                Some(MappingOutcome {
                    loss,
                    latency_s: loss,
                    power_mw: 1.0,
                })
            }
        }
        let mut gs = GradientSearcher::new(space(), StdRng::seed_from_u64(5));
        gs.run_until(&NoSurrogate, 40);
        assert_eq!(gs.history().spent(), 40);
        assert!(gs.best().is_some());
        // No surrogate: zero gradient steps, pure sampling.
        assert_eq!(gs.stats().gradient_steps, 0);
    }

    #[test]
    fn same_seed_same_trace() {
        let cost = Quadratic { target: 4.0 };
        let run = |seed| {
            let mut gs = GradientSearcher::new(space(), StdRng::seed_from_u64(seed));
            gs.run_until(&cost, 50);
            let losses: Vec<(u64, u64)> = gs
                .history()
                .records()
                .iter()
                .map(|r| (r.step, r.loss.to_bits()))
                .collect();
            (losses, gs.stats())
        };
        assert_eq!(run(7), run(7));
    }
}
