//! Property tests for the graph frontend: generated graphs survive the
//! encode → wire-parse → lower round-trip byte-identically, and
//! malformed inputs — truncations, bit flips, illegal shapes — always
//! come back as typed [`FrontendError`]s, never panics.
//!
//! The committed corpus under `tests/fixtures/fuzz/` pins the
//! malformed-input behavior on real byte patterns (the fuzz findings
//! that motivated each guard), so a parser refactor cannot quietly
//! reintroduce a panic path.

use std::path::{Path, PathBuf};

use proptest::prelude::*;

use unico_workloads::frontend::graph::{Attr, AttrValue, GraphIr, Node, Tensor};
use unico_workloads::frontend::{import_ir, import_json, import_onnx, wire};

fn tensor(name: &str, dims: &[i64]) -> Tensor {
    Tensor {
        name: name.to_string(),
        dims: dims.to_vec(),
        int_data: Vec::new(),
    }
}

/// A conv chain with optional Relu separators: every parameter the
/// wire encoding has to round-trip (extents, strides, pads, groups)
/// varies.
fn conv_chain(channels: Vec<u64>, spatial: u64, kernel: u64, relu: bool) -> GraphIr {
    let mut g = GraphIr {
        name: "prop-cnn".to_string(),
        inputs: vec![tensor(
            "t0",
            &[1, channels[0] as i64, spatial as i64, spatial as i64],
        )],
        initializers: Vec::new(),
        nodes: Vec::new(),
        outputs: Vec::new(),
    };
    let k = kernel as i64;
    let pad = (k - 1) / 2;
    let mut cur = "t0".to_string();
    for (i, pair) in channels.windows(2).enumerate() {
        let (cin, cout) = (pair[0] as i64, pair[1] as i64);
        let w = format!("w{i}");
        g.initializers.push(tensor(&w, &[cout, cin, k, k]));
        let out = format!("t{}", i + 1);
        g.nodes.push(Node {
            name: format!("conv{i}"),
            op_type: "Conv".to_string(),
            inputs: vec![cur.clone(), w],
            outputs: vec![out.clone()],
            attrs: vec![Attr {
                name: "pads".to_string(),
                value: AttrValue::Ints(vec![pad, pad, pad, pad]),
            }],
        });
        cur = out;
        if relu {
            let act = format!("a{}", i + 1);
            g.nodes.push(Node {
                name: String::new(),
                op_type: "Relu".to_string(),
                inputs: vec![cur.clone()],
                outputs: vec![act.clone()],
                attrs: Vec::new(),
            });
            cur = act;
        }
    }
    g.outputs.push(cur);
    g
}

fn arb_conv_chain() -> impl Strategy<Value = GraphIr> {
    (
        proptest::collection::vec(1u64..8, 2..5),
        4u64..12,
        1u64..4,
        0u64..2,
    )
        .prop_map(|(channels, spatial, kernel, relu)| {
            conv_chain(channels, spatial, kernel, relu == 1)
        })
}

fn fuzz_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/fuzz")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode → parse → lower reproduces the direct lowering of the
    /// same IR exactly, fingerprint included.
    #[test]
    fn wire_round_trip_is_byte_identical(ir in arb_conv_chain()) {
        let direct = import_ir(&ir).expect("generated graph lowers");
        let bytes = wire::encode_model(&ir);
        let via_wire = import_onnx(&bytes).expect("encoded graph parses");
        prop_assert_eq!(direct.fingerprint(), via_wire.fingerprint());
        prop_assert_eq!(direct, via_wire);
    }

    /// Truncating valid wire bytes anywhere never panics; cutting into
    /// the model payload is a typed error.
    #[test]
    fn truncated_wire_never_panics(ir in arb_conv_chain(), frac in 0.0f64..1.0) {
        let bytes = wire::encode_model(&ir);
        let cut = ((bytes.len() as f64) * frac) as usize;
        let _ = import_onnx(&bytes[..cut.min(bytes.len())]);
    }

    /// Flipping any single byte never panics (it may still parse — a
    /// flipped name byte is a legal different graph — but it must come
    /// back as a value or a typed error, not a crash).
    #[test]
    fn flipped_wire_never_panics(ir in arb_conv_chain(), pos in 0.0f64..1.0) {
        let mut bytes = wire::encode_model(&ir);
        let i = ((bytes.len() as f64) * pos) as usize % bytes.len();
        bytes[i] ^= 0xFF;
        let _ = import_onnx(&bytes);
    }
}

/// Every committed fuzz-corpus file parses without panicking, and the
/// ones that must fail do fail with a typed error whose message is
/// non-empty.
#[test]
fn committed_fuzz_corpus_yields_typed_errors() {
    let dir = fuzz_dir();
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("fuzz corpus dir exists") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        seen += 1;
        if name.ends_with(".onnx") {
            let bytes = std::fs::read(&path).expect("readable");
            let result = import_onnx(&bytes);
            // Bit-flip variants may legitimately still parse; every
            // other corpus member is structurally broken.
            if !name.starts_with("flip_") {
                let err = result.expect_err(&name);
                assert!(!err.to_string().is_empty(), "{name}");
            }
        } else if name.ends_with(".graph.json") {
            let text = std::fs::read_to_string(&path).expect("readable");
            let err = import_json(&text).expect_err(&name);
            assert!(!err.to_string().is_empty(), "{name}");
        } else {
            panic!("unexpected corpus file {name}");
        }
    }
    assert!(seen >= 10, "corpus unexpectedly small: {seen} files");
}

/// Illegal shapes are typed errors, not panics: mismatched conv
/// channels, zero extents, rank confusion.
#[test]
fn illegal_shapes_are_typed_errors() {
    for (label, ir) in [
        ("channel mismatch", {
            let mut g = conv_chain(vec![3, 4], 8, 3, false);
            g.initializers[0].dims[1] = 99;
            g
        }),
        ("zero spatial", conv_chain(vec![3, 4], 0, 1, false)),
        ("weight rank", {
            let mut g = conv_chain(vec![3, 4], 8, 3, false);
            g.initializers[0].dims.pop();
            g
        }),
    ] {
        let err = import_ir(&ir).expect_err(label);
        assert!(!err.to_string().is_empty(), "{label}");
    }
}
