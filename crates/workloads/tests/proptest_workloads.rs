//! Property-based tests of workload lowering and footprint arithmetic.

use proptest::prelude::*;

use unico_workloads::{Dim, Layer, Network, TensorOp};

fn arb_conv() -> impl Strategy<Value = TensorOp> {
    (
        1u64..=4,
        1u64..=256,
        1u64..=256,
        1u64..=64,
        1u64..=64,
        1u64..=7,
        1u64..=7,
        1u64..=3,
    )
        .prop_map(|(n, k, c, y, x, r, s, stride)| TensorOp::Conv2d {
            n,
            k,
            c,
            y,
            x,
            r,
            s,
            stride,
        })
}

fn arb_gemm() -> impl Strategy<Value = TensorOp> {
    (1u64..=2048, 1u64..=2048, 1u64..=2048).prop_map(|(m, n, k)| TensorOp::Gemm { m, n, k })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Lowering preserves MAC counts for convolutions by construction.
    #[test]
    fn conv_macs_match_closed_form(op in arb_conv()) {
        if let TensorOp::Conv2d { n, k, c, y, x, r, s, .. } = op {
            prop_assert_eq!(op.macs(), n * k * c * y * x * r * s);
        }
        let nest = op.to_loop_nest();
        prop_assert_eq!(nest.macs(), op.macs());
    }

    /// GEMM lowering: M·N·K MACs, output M·N, reduction on C.
    #[test]
    fn gemm_lowering_invariants(op in arb_gemm()) {
        if let TensorOp::Gemm { m, n, k } = op {
            let nest = op.to_loop_nest();
            prop_assert_eq!(nest.macs(), m * n * k);
            prop_assert_eq!(nest.output_elems(), m * n);
            prop_assert_eq!(nest.extent(Dim::C), k);
            prop_assert!(!nest.is_depthwise());
        }
    }

    /// The input footprint always covers at least the output spatial
    /// extent (halo can only add) and scales linearly in batch.
    #[test]
    fn input_footprint_bounds(op in arb_conv()) {
        let nest = op.to_loop_nest();
        let per_pixel_min = nest.extent(Dim::N) * nest.extent(Dim::C);
        prop_assert!(nest.input_elems() >= per_pixel_min);
        // Halo arithmetic: input rows for the full extent equals the
        // closed form.
        let y = nest.extent(Dim::Y);
        let r = nest.extent(Dim::R);
        prop_assert_eq!(
            nest.input_rows_for(y, r),
            (y - 1) * nest.stride_y() + r
        );
    }

    /// Layer repetition scales MACs linearly and network totals add up.
    #[test]
    fn network_macs_are_additive(
        ops in proptest::collection::vec(arb_gemm(), 1..6),
        reps in proptest::collection::vec(1u32..5, 1..6),
    ) {
        let layers: Vec<Layer> = ops
            .iter()
            .zip(&reps)
            .enumerate()
            .map(|(i, (op, &r))| Layer::repeated(format!("l{i}"), *op, r))
            .collect();
        let expected: u64 = layers.iter().map(Layer::total_macs).sum();
        let net = Network::new("prop", layers);
        prop_assert_eq!(net.total_macs(), expected);
        // Dominant-layer reduction never increases totals.
        let reduced = net.dominant_layers(2);
        prop_assert!(reduced.total_macs() <= net.total_macs());
        prop_assert!(reduced.len() <= 2);
    }

    /// Arithmetic intensity is maximized when reuse is possible: a GEMM
    /// with larger M and N at fixed footprint has higher intensity than
    /// a skinny one of the same MACs.
    #[test]
    fn square_gemm_beats_skinny_intensity(side in 8u64..64) {
        let square = TensorOp::Gemm { m: side, n: side, k: side }.to_loop_nest();
        let skinny = TensorOp::Gemm { m: side * side, n: 1, k: side }.to_loop_nest();
        prop_assert_eq!(square.macs(), skinny.macs());
        prop_assert!(
            square.ideal_arithmetic_intensity() > skinny.ideal_arithmetic_intensity()
        );
    }
}
