//! DNN workload definitions for HW-SW co-optimization.
//!
//! This crate provides the *workload* side of the UNICO stack: tensor
//! operators ([`TensorOp`]), their canonical 7-D loop-nest form
//! ([`LoopNest`]), named [`Layer`]s, and whole [`Network`] layer tables for
//! every model used in the paper's evaluation (BERT, MobileNet family,
//! ResNet, SRGAN, UNet, ViT, Xception, VGG, NASNetMobile, EfficientNetV2,
//! ConvNeXt, ResUNet, FSRCNN and a DLEU-like upscaler).
//!
//! All dimensions are static; a workload is just data. Cost models and
//! mapping searchers consume [`LoopNest`]s, so any operator that can be
//! lowered to the canonical `(N, K, C, Y, X, R, S)` nest is supported.
//!
//! # Example
//!
//! ```
//! use unico_workloads::zoo;
//!
//! let net = zoo::resnet50();
//! assert!(net.total_macs() > 1_000_000_000);
//! for layer in net.layers() {
//!     let nest = layer.op().to_loop_nest();
//!     assert!(nest.macs() > 0);
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod frontend;
mod layer;
mod nest;
mod network;
mod ops;
pub mod zoo;

pub use frontend::{FrontendError, FusionEdge, ImportedGraph};
pub use layer::Layer;
pub use nest::{Dim, LoopNest, DIM_COUNT};
pub use network::Network;
pub use ops::TensorOp;
