//! Tensor operators and their lowering to the canonical loop nest.

use std::fmt;

use crate::nest::LoopNest;

/// A tensor operator as it appears in a DNN layer table.
///
/// Every variant lowers to the canonical 7-D [`LoopNest`] via
/// [`TensorOp::to_loop_nest`]; cost models and mapping searchers never see
/// the operator kind directly (except through the depthwise flag carried by
/// the nest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TensorOp {
    /// Dense 2-D convolution producing `n × k × y × x` outputs from
    /// `c` input channels with an `r × s` filter.
    Conv2d {
        /// Batch size.
        n: u64,
        /// Output channels.
        k: u64,
        /// Input channels.
        c: u64,
        /// Output height.
        y: u64,
        /// Output width.
        x: u64,
        /// Filter height.
        r: u64,
        /// Filter width.
        s: u64,
        /// Spatial stride (same in both axes).
        stride: u64,
    },
    /// Depthwise 2-D convolution: one filter per channel.
    DepthwiseConv2d {
        /// Batch size.
        n: u64,
        /// Channels (input == output).
        c: u64,
        /// Output height.
        y: u64,
        /// Output width.
        x: u64,
        /// Filter height.
        r: u64,
        /// Filter width.
        s: u64,
        /// Spatial stride.
        stride: u64,
    },
    /// General matrix multiply `C[m,n] += A[m,k] * B[k,n]`.
    Gemm {
        /// Output rows.
        m: u64,
        /// Output columns.
        n: u64,
        /// Reduction depth.
        k: u64,
    },
}

impl TensorOp {
    /// Convenience constructor for a pointwise (1×1) convolution.
    pub fn pointwise(n: u64, k: u64, c: u64, y: u64, x: u64) -> Self {
        TensorOp::Conv2d {
            n,
            k,
            c,
            y,
            x,
            r: 1,
            s: 1,
            stride: 1,
        }
    }

    /// Lowers the operator to the canonical 7-D loop nest.
    pub fn to_loop_nest(&self) -> LoopNest {
        match *self {
            TensorOp::Conv2d {
                n,
                k,
                c,
                y,
                x,
                r,
                s,
                stride,
            } => LoopNest::with_strides([n, k, c, y, x, r, s], stride, stride),
            TensorOp::DepthwiseConv2d {
                n,
                c,
                y,
                x,
                r,
                s,
                stride,
            } => LoopNest::with_strides([n, c, 1, y, x, r, s], stride, stride).into_depthwise(),
            TensorOp::Gemm { m, n, k } => LoopNest::new([1, n, k, m, 1, 1, 1]),
        }
    }

    /// Total multiply-accumulate operations.
    pub fn macs(&self) -> u64 {
        self.to_loop_nest().macs()
    }

    /// Short human-readable kind tag.
    pub fn kind(&self) -> &'static str {
        match self {
            TensorOp::Conv2d { .. } => "conv",
            TensorOp::DepthwiseConv2d { .. } => "dwconv",
            TensorOp::Gemm { .. } => "gemm",
        }
    }
}

impl fmt::Display for TensorOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.kind(), self.to_loop_nest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::Dim;

    #[test]
    fn conv_lowering() {
        let op = TensorOp::Conv2d {
            n: 1,
            k: 64,
            c: 3,
            y: 112,
            x: 112,
            r: 7,
            s: 7,
            stride: 2,
        };
        let nest = op.to_loop_nest();
        assert_eq!(nest.extent(Dim::K), 64);
        assert_eq!(nest.stride_y(), 2);
        assert_eq!(op.macs(), 64 * 3 * 112 * 112 * 49);
    }

    #[test]
    fn gemm_lowering() {
        let op = TensorOp::Gemm {
            m: 128,
            n: 768,
            k: 768,
        };
        let nest = op.to_loop_nest();
        assert_eq!(nest.extent(Dim::Y), 128);
        assert_eq!(nest.extent(Dim::K), 768);
        assert_eq!(nest.extent(Dim::C), 768);
        assert_eq!(nest.extent(Dim::X), 1);
        assert_eq!(op.macs(), 128 * 768 * 768);
    }

    #[test]
    fn depthwise_lowering() {
        let op = TensorOp::DepthwiseConv2d {
            n: 1,
            c: 32,
            y: 56,
            x: 56,
            r: 3,
            s: 3,
            stride: 1,
        };
        let nest = op.to_loop_nest();
        assert!(nest.is_depthwise());
        assert_eq!(nest.extent(Dim::C), 1);
        assert_eq!(op.macs(), 32 * 56 * 56 * 9);
    }

    #[test]
    fn pointwise_helper() {
        let op = TensorOp::pointwise(1, 256, 128, 14, 14);
        assert_eq!(op.macs(), 256 * 128 * 14 * 14);
        assert_eq!(op.kind(), "conv");
    }

    #[test]
    fn display_contains_kind() {
        let op = TensorOp::Gemm { m: 2, n: 3, k: 4 };
        assert!(format!("{op}").starts_with("gemm"));
    }
}
