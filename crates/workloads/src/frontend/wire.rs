//! Hand-rolled ONNX-subset protobuf wire parsing (and encoding).
//!
//! The repo is air-gapped and dependency-free, so instead of a
//! generated protobuf stack this module implements the wire format
//! directly: varints, the four live wire types, and exactly the
//! `ModelProto`/`GraphProto`/`NodeProto`/`AttributeProto`/
//! `TensorProto`/`ValueInfoProto` fields the frontend needs. Unknown
//! fields are skipped (forward-compatible, like any proto reader);
//! structurally broken input — truncated varints, lengths running past
//! the buffer, deprecated group wire types — yields a typed
//! [`FrontendError::Proto`], never a panic.
//!
//! The matching [`encode_model`] writer exists so fixtures and
//! property tests can produce real wire bytes without an ONNX
//! exporter in the loop: `encode → parse` is a round-trip.

use super::graph::{Attr, AttrValue, GraphIr, Node, Tensor};
use super::FrontendError;

// Field numbers from onnx.proto3 (the stable public schema).
const MODEL_GRAPH: u64 = 7;
const GRAPH_NODE: u64 = 1;
const GRAPH_NAME: u64 = 2;
const GRAPH_INITIALIZER: u64 = 5;
const GRAPH_INPUT: u64 = 11;
const GRAPH_OUTPUT: u64 = 12;
const NODE_INPUT: u64 = 1;
const NODE_OUTPUT: u64 = 2;
const NODE_NAME: u64 = 3;
const NODE_OP_TYPE: u64 = 4;
const NODE_ATTRIBUTE: u64 = 5;
const ATTR_NAME: u64 = 1;
const ATTR_F: u64 = 2;
const ATTR_I: u64 = 3;
const ATTR_S: u64 = 4;
const ATTR_INTS: u64 = 7;
const TENSOR_DIMS: u64 = 1;
const TENSOR_DATA_TYPE: u64 = 2;
const TENSOR_INT64_DATA: u64 = 7;
const TENSOR_NAME: u64 = 8;
const TENSOR_RAW_DATA: u64 = 9;
const VALUE_INFO_NAME: u64 = 1;
const VALUE_INFO_TYPE: u64 = 2;
const TYPE_TENSOR_TYPE: u64 = 1;
const TENSOR_TYPE_SHAPE: u64 = 2;
const SHAPE_DIM: u64 = 1;
const DIM_VALUE: u64 = 1;
const DIM_PARAM: u64 = 2;

/// `TensorProto.DataType.INT64` — the only payload type whose data the
/// frontend retains (shape tensors for `Reshape`).
const DATA_TYPE_INT64: u64 = 7;

const WIRE_VARINT: u8 = 0;
const WIRE_I64: u8 = 1;
const WIRE_LEN: u8 = 2;
const WIRE_I32: u8 = 5;

fn err(msg: impl Into<String>) -> FrontendError {
    FrontendError::Proto(msg.into())
}

/// A bounds-checked cursor over wire bytes.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn done(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn varint(&mut self) -> Result<u64, FrontendError> {
        let mut value: u64 = 0;
        for shift in 0..10u32 {
            let b = *self
                .buf
                .get(self.pos)
                .ok_or_else(|| err(format!("truncated varint at byte {}", self.pos)))?;
            self.pos += 1;
            if shift == 9 && b > 1 {
                return Err(err(format!("varint overflows u64 at byte {}", self.pos)));
            }
            value |= u64::from(b & 0x7f) << (7 * shift);
            if b & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(err(format!("varint longer than 10 bytes at {}", self.pos)))
    }

    /// Reads a field key, returning `(field_number, wire_type)`.
    fn key(&mut self) -> Result<(u64, u8), FrontendError> {
        let at = self.pos;
        let key = self.varint()?;
        let field = key >> 3;
        let wire = (key & 0x7) as u8;
        if field == 0 {
            return Err(err(format!("field number 0 at byte {at}")));
        }
        match wire {
            WIRE_VARINT | WIRE_I64 | WIRE_LEN | WIRE_I32 => Ok((field, wire)),
            3 | 4 => Err(err(format!(
                "deprecated group wire type for field {field} at byte {at}"
            ))),
            w => Err(err(format!("unknown wire type {w} at byte {at}"))),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrontendError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                err(format!(
                    "length {n} at byte {} runs past end of buffer ({} bytes)",
                    self.pos,
                    self.buf.len()
                ))
            })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a length-delimited payload.
    fn bytes(&mut self) -> Result<&'a [u8], FrontendError> {
        let len = self.varint()?;
        let len = usize::try_from(len).map_err(|_| err("length overflows usize"))?;
        self.take(len)
    }

    fn string(&mut self) -> Result<String, FrontendError> {
        let raw = self.bytes()?;
        std::str::from_utf8(raw)
            .map(str::to_string)
            .map_err(|_| err("string field is not valid utf-8"))
    }

    /// Skips a field's payload by wire type.
    fn skip(&mut self, wire: u8) -> Result<(), FrontendError> {
        match wire {
            WIRE_VARINT => self.varint().map(|_| ()),
            WIRE_I64 => self.take(8).map(|_| ()),
            WIRE_LEN => self.bytes().map(|_| ()),
            WIRE_I32 => self.take(4).map(|_| ()),
            _ => unreachable!("key() filtered wire types"),
        }
    }

    /// Reads one `int64` value or a packed list of them, depending on
    /// the wire type actually present (proto3 writers may use either).
    fn int64s(&mut self, wire: u8, out: &mut Vec<i64>) -> Result<(), FrontendError> {
        match wire {
            WIRE_VARINT => {
                out.push(self.varint()? as i64);
                Ok(())
            }
            WIRE_LEN => {
                let payload = self.bytes()?;
                let mut inner = Reader::new(payload);
                while !inner.done() {
                    out.push(inner.varint()? as i64);
                }
                Ok(())
            }
            w => Err(err(format!("int64 field with wire type {w}"))),
        }
    }
}

/// Parses ONNX-subset `ModelProto` wire bytes into the graph IR.
///
/// # Errors
///
/// [`FrontendError::Proto`] on any structural problem: truncation,
/// lengths past the buffer, group wire types, missing graph.
pub fn parse_model(bytes: &[u8]) -> Result<GraphIr, FrontendError> {
    let mut r = Reader::new(bytes);
    let mut graph = None;
    while !r.done() {
        let (field, wire) = r.key()?;
        if field == MODEL_GRAPH && wire == WIRE_LEN {
            graph = Some(parse_graph(r.bytes()?)?);
        } else {
            r.skip(wire)?;
        }
    }
    graph.ok_or_else(|| err("model has no graph field"))
}

fn parse_graph(bytes: &[u8]) -> Result<GraphIr, FrontendError> {
    let mut r = Reader::new(bytes);
    let mut g = GraphIr {
        name: String::new(),
        inputs: Vec::new(),
        initializers: Vec::new(),
        nodes: Vec::new(),
        outputs: Vec::new(),
    };
    while !r.done() {
        let (field, wire) = r.key()?;
        match (field, wire) {
            (GRAPH_NODE, WIRE_LEN) => g.nodes.push(parse_node(r.bytes()?)?),
            (GRAPH_NAME, WIRE_LEN) => g.name = r.string()?,
            (GRAPH_INITIALIZER, WIRE_LEN) => g.initializers.push(parse_tensor(r.bytes()?)?),
            (GRAPH_INPUT, WIRE_LEN) => g.inputs.push(parse_value_info(r.bytes()?)?),
            (GRAPH_OUTPUT, WIRE_LEN) => g.outputs.push(parse_value_info(r.bytes()?)?.name),
            _ => r.skip(wire)?,
        }
    }
    Ok(g)
}

fn parse_node(bytes: &[u8]) -> Result<Node, FrontendError> {
    let mut r = Reader::new(bytes);
    let mut node = Node {
        name: String::new(),
        op_type: String::new(),
        inputs: Vec::new(),
        outputs: Vec::new(),
        attrs: Vec::new(),
    };
    while !r.done() {
        let (field, wire) = r.key()?;
        match (field, wire) {
            (NODE_INPUT, WIRE_LEN) => node.inputs.push(r.string()?),
            (NODE_OUTPUT, WIRE_LEN) => node.outputs.push(r.string()?),
            (NODE_NAME, WIRE_LEN) => node.name = r.string()?,
            (NODE_OP_TYPE, WIRE_LEN) => node.op_type = r.string()?,
            (NODE_ATTRIBUTE, WIRE_LEN) => {
                if let Some(attr) = parse_attribute(r.bytes()?)? {
                    node.attrs.push(attr);
                }
            }
            _ => r.skip(wire)?,
        }
    }
    Ok(node)
}

/// Parses one attribute; returns `None` for value kinds the subset
/// does not model (tensors, graphs) — lowering only reads the kinds
/// the supported ops carry, so dropping the rest is safe.
fn parse_attribute(bytes: &[u8]) -> Result<Option<Attr>, FrontendError> {
    let mut r = Reader::new(bytes);
    let mut name = String::new();
    let mut value = None;
    let mut ints: Vec<i64> = Vec::new();
    while !r.done() {
        let (field, wire) = r.key()?;
        match (field, wire) {
            (ATTR_NAME, WIRE_LEN) => name = r.string()?,
            (ATTR_F, WIRE_I32) => {
                let raw: [u8; 4] = r.take(4)?.try_into().expect("take(4) returns 4 bytes");
                value = Some(AttrValue::Float(f32::from_le_bytes(raw)));
            }
            (ATTR_I, WIRE_VARINT) => value = Some(AttrValue::Int(r.varint()? as i64)),
            (ATTR_S, WIRE_LEN) => {
                let raw = r.bytes()?;
                let s = std::str::from_utf8(raw)
                    .map_err(|_| err("string attribute is not valid utf-8"))?;
                value = Some(AttrValue::Str(s.to_string()));
            }
            (ATTR_INTS, w) => r.int64s(w, &mut ints)?,
            _ => r.skip(wire)?,
        }
    }
    if !ints.is_empty() {
        value = Some(AttrValue::Ints(ints));
    }
    Ok(value.map(|value| Attr { name, value }))
}

fn parse_tensor(bytes: &[u8]) -> Result<Tensor, FrontendError> {
    let mut r = Reader::new(bytes);
    let mut t = Tensor {
        name: String::new(),
        dims: Vec::new(),
        int_data: Vec::new(),
    };
    let mut data_type = 0u64;
    let mut raw_data: &[u8] = &[];
    while !r.done() {
        let (field, wire) = r.key()?;
        match (field, wire) {
            (TENSOR_DIMS, w @ (WIRE_VARINT | WIRE_LEN)) => r.int64s(w, &mut t.dims)?,
            (TENSOR_DATA_TYPE, WIRE_VARINT) => data_type = r.varint()?,
            (TENSOR_INT64_DATA, w) => r.int64s(w, &mut t.int_data)?,
            (TENSOR_NAME, WIRE_LEN) => t.name = r.string()?,
            (TENSOR_RAW_DATA, WIRE_LEN) => raw_data = r.bytes()?,
            _ => r.skip(wire)?,
        }
    }
    // Shape tensors may carry their payload as raw little-endian i64.
    if data_type == DATA_TYPE_INT64 && t.int_data.is_empty() && !raw_data.is_empty() {
        if !raw_data.len().is_multiple_of(8) {
            return Err(err(format!(
                "INT64 raw_data of tensor {:?} has {} bytes, not a multiple of 8",
                t.name,
                raw_data.len()
            )));
        }
        t.int_data = raw_data
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
            .collect();
    }
    Ok(t)
}

fn parse_value_info(bytes: &[u8]) -> Result<Tensor, FrontendError> {
    let mut r = Reader::new(bytes);
    let mut t = Tensor {
        name: String::new(),
        dims: Vec::new(),
        int_data: Vec::new(),
    };
    while !r.done() {
        let (field, wire) = r.key()?;
        match (field, wire) {
            (VALUE_INFO_NAME, WIRE_LEN) => t.name = r.string()?,
            (VALUE_INFO_TYPE, WIRE_LEN) => t.dims = parse_type_proto(r.bytes()?)?,
            _ => r.skip(wire)?,
        }
    }
    Ok(t)
}

fn parse_type_proto(bytes: &[u8]) -> Result<Vec<i64>, FrontendError> {
    let mut r = Reader::new(bytes);
    let mut dims = Vec::new();
    while !r.done() {
        let (field, wire) = r.key()?;
        if field == TYPE_TENSOR_TYPE && wire == WIRE_LEN {
            let mut tr = Reader::new(r.bytes()?);
            while !tr.done() {
                let (tf, tw) = tr.key()?;
                if tf == TENSOR_TYPE_SHAPE && tw == WIRE_LEN {
                    dims = parse_shape_proto(tr.bytes()?)?;
                } else {
                    tr.skip(tw)?;
                }
            }
        } else {
            r.skip(wire)?;
        }
    }
    Ok(dims)
}

fn parse_shape_proto(bytes: &[u8]) -> Result<Vec<i64>, FrontendError> {
    let mut r = Reader::new(bytes);
    let mut dims = Vec::new();
    while !r.done() {
        let (field, wire) = r.key()?;
        if field == SHAPE_DIM && wire == WIRE_LEN {
            let mut dr = Reader::new(r.bytes()?);
            // Symbolic dims (dim_param) become -1; rejected at shape
            // inference only if a node actually depends on them.
            let mut dim: i64 = -1;
            while !dr.done() {
                let (df, dw) = dr.key()?;
                match (df, dw) {
                    (DIM_VALUE, WIRE_VARINT) => dim = dr.varint()? as i64,
                    (DIM_PARAM, WIRE_LEN) => {
                        dr.bytes()?;
                        dim = -1;
                    }
                    _ => dr.skip(dw)?,
                }
            }
            dims.push(dim);
        } else {
            r.skip(wire)?;
        }
    }
    Ok(dims)
}

// ---------------------------------------------------------------------------
// Encoder — fixtures and property tests produce real wire bytes here.

struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn varint(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.out.push(b);
                break;
            }
            self.out.push(b | 0x80);
        }
    }

    fn key(&mut self, field: u64, wire: u8) {
        self.varint(field << 3 | u64::from(wire));
    }

    fn bytes(&mut self, field: u64, payload: &[u8]) {
        self.key(field, WIRE_LEN);
        self.varint(payload.len() as u64);
        self.out.extend_from_slice(payload);
    }

    fn string(&mut self, field: u64, s: &str) {
        self.bytes(field, s.as_bytes());
    }

    fn int(&mut self, field: u64, v: i64) {
        self.key(field, WIRE_VARINT);
        self.varint(v as u64);
    }

    /// Packed repeated int64 (the proto3 default encoding).
    fn packed_ints(&mut self, field: u64, vs: &[i64]) {
        if vs.is_empty() {
            return;
        }
        let mut inner = Writer { out: Vec::new() };
        for &v in vs {
            inner.varint(v as u64);
        }
        self.bytes(field, &inner.out);
    }

    fn message(&mut self, field: u64, build: impl FnOnce(&mut Writer)) {
        let mut inner = Writer { out: Vec::new() };
        build(&mut inner);
        self.bytes(field, &inner.out);
    }
}

/// Encodes the graph IR as ONNX-subset `ModelProto` wire bytes; the
/// result parses back via [`parse_model`] to an equivalent IR.
pub fn encode_model(graph: &GraphIr) -> Vec<u8> {
    let mut w = Writer { out: Vec::new() };
    w.message(MODEL_GRAPH, |g| {
        for node in &graph.nodes {
            g.message(GRAPH_NODE, |n| {
                for input in &node.inputs {
                    n.string(NODE_INPUT, input);
                }
                for output in &node.outputs {
                    n.string(NODE_OUTPUT, output);
                }
                if !node.name.is_empty() {
                    n.string(NODE_NAME, &node.name);
                }
                n.string(NODE_OP_TYPE, &node.op_type);
                for attr in &node.attrs {
                    n.message(NODE_ATTRIBUTE, |a| {
                        a.string(ATTR_NAME, &attr.name);
                        match &attr.value {
                            AttrValue::Float(f) => {
                                a.key(ATTR_F, WIRE_I32);
                                a.out.extend_from_slice(&f.to_le_bytes());
                            }
                            AttrValue::Int(i) => a.int(ATTR_I, *i),
                            AttrValue::Str(s) => a.string(ATTR_S, s),
                            AttrValue::Ints(vs) => a.packed_ints(ATTR_INTS, vs),
                        }
                    });
                }
            });
        }
        g.string(GRAPH_NAME, &graph.name);
        for init in &graph.initializers {
            g.message(GRAPH_INITIALIZER, |t| {
                t.packed_ints(TENSOR_DIMS, &init.dims);
                if init.int_data.is_empty() {
                    // Dims-only float tensor: payload irrelevant to
                    // the cost model, so none is written.
                    t.int(TENSOR_DATA_TYPE, 1);
                } else {
                    t.int(TENSOR_DATA_TYPE, DATA_TYPE_INT64 as i64);
                    t.packed_ints(TENSOR_INT64_DATA, &init.int_data);
                }
                t.string(TENSOR_NAME, &init.name);
            });
        }
        for input in &graph.inputs {
            g.message(GRAPH_INPUT, |vi| encode_value_info(vi, input));
        }
        for output in &graph.outputs {
            g.message(GRAPH_OUTPUT, |vi| {
                vi.string(VALUE_INFO_NAME, output);
            });
        }
    });
    w.out
}

fn encode_value_info(w: &mut Writer, t: &Tensor) {
    w.string(VALUE_INFO_NAME, &t.name);
    w.message(VALUE_INFO_TYPE, |ty| {
        ty.message(TYPE_TENSOR_TYPE, |tt| {
            tt.int(1, 1); // elem_type: FLOAT
            tt.message(TENSOR_TYPE_SHAPE, |sh| {
                for &d in &t.dims {
                    sh.message(SHAPE_DIM, |dim| {
                        if d < 0 {
                            dim.string(DIM_PARAM, "dyn");
                        } else {
                            dim.int(DIM_VALUE, d);
                        }
                    });
                }
            });
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ir() -> GraphIr {
        GraphIr {
            name: "t".into(),
            inputs: vec![Tensor {
                name: "x".into(),
                dims: vec![1, 3, 8, 8],
                int_data: vec![],
            }],
            initializers: vec![Tensor {
                name: "w".into(),
                dims: vec![4, 3, 3, 3],
                int_data: vec![],
            }],
            nodes: vec![Node {
                name: "c0".into(),
                op_type: "Conv".into(),
                inputs: vec!["x".into(), "w".into()],
                outputs: vec!["y".into()],
                attrs: vec![Attr {
                    name: "strides".into(),
                    value: AttrValue::Ints(vec![1, 1]),
                }],
            }],
            outputs: vec!["y".into()],
        }
    }

    #[test]
    fn encode_parse_round_trips() {
        let ir = tiny_ir();
        let bytes = encode_model(&ir);
        let back = parse_model(&bytes).expect("round-trip");
        assert_eq!(back, ir);
    }

    #[test]
    fn truncation_is_a_typed_error_everywhere() {
        let bytes = encode_model(&tiny_ir());
        for cut in 0..bytes.len() {
            match parse_model(&bytes[..cut]) {
                Ok(_) => {} // a shorter prefix can still be valid proto
                Err(FrontendError::Proto(_)) => {}
                Err(e) => panic!("truncation at {cut} gave non-proto error {e}"),
            }
        }
    }

    #[test]
    fn group_wire_type_rejected() {
        // field 1, wire type 3 (start group)
        let err = parse_model(&[0x0b]).expect_err("groups unsupported");
        assert!(matches!(err, FrontendError::Proto(_)));
        assert!(err.to_string().contains("group"));
    }

    #[test]
    fn missing_graph_rejected() {
        // A valid message with only an unknown field.
        let err = parse_model(&[0x08, 0x01]).expect_err("no graph");
        assert!(err.to_string().contains("no graph"));
    }

    #[test]
    fn varint_overflow_rejected() {
        let bytes = [
            0x3a, 0x0b, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f,
        ];
        assert!(parse_model(&bytes).is_err());
    }

    #[test]
    fn raw_data_int64_decodes() {
        // TensorProto { dims: [2], data_type: 7, raw_data: 16 LE bytes }
        let mut w = Writer { out: Vec::new() };
        w.message(MODEL_GRAPH, |g| {
            g.message(GRAPH_INITIALIZER, |t| {
                t.packed_ints(TENSOR_DIMS, &[2]);
                t.int(TENSOR_DATA_TYPE, 7);
                t.string(TENSOR_NAME, "shape");
                let mut raw = Vec::new();
                raw.extend_from_slice(&16i64.to_le_bytes());
                raw.extend_from_slice(&(-1i64).to_le_bytes());
                t.bytes(TENSOR_RAW_DATA, &raw);
            });
            g.message(GRAPH_NODE, |n| {
                n.string(NODE_OP_TYPE, "Identity");
                n.string(NODE_INPUT, "shape");
                n.string(NODE_OUTPUT, "y");
            });
        });
        let ir = parse_model(&w.out).expect("parses");
        assert_eq!(ir.initializer("shape").unwrap().int_data, vec![16, -1]);
    }
}
