//! The frontend's graph intermediate representation.
//!
//! Both concrete formats — the hand-rolled ONNX-subset protobuf wire
//! parser ([`crate::frontend::wire`]) and the human-writable JSON graph
//! form ([`crate::frontend::import_json`]) — parse into this one IR,
//! so shape inference and lowering are written once and the two forms
//! are equivalent by construction. The IR is deliberately close to
//! ONNX `GraphProto`: named tensors, a node list in topological order,
//! initializers for weights (dims kept, float payloads dropped — the
//! cost model only needs shapes), and integer payloads retained for
//! shape-carrying tensors (`Reshape` targets).

/// A named tensor: graph input, initializer, or (implicitly) a node
/// output. Dims use `i64` as on the ONNX wire; `-1` marks a symbolic
/// dimension (`dim_param`), rejected later if a node actually needs it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tensor {
    /// Tensor name (the graph-wide identifier edges refer to).
    pub name: String,
    /// Dimensions in source order; `-1` for symbolic dims.
    pub dims: Vec<i64>,
    /// Integer payload, kept only for INT64 initializers (shape
    /// tensors consumed by `Reshape`); empty otherwise.
    pub int_data: Vec<i64>,
}

/// An attribute value (the subset of ONNX `AttributeProto` the
/// supported ops use).
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A single integer (`group`, `axis`, `transB`, ...).
    Int(i64),
    /// An integer list (`kernel_shape`, `strides`, `pads`, `perm`, ...).
    Ints(Vec<i64>),
    /// A float (`alpha`, `beta`, ...; parsed but unused by lowering).
    Float(f32),
    /// A string attribute (parsed for completeness).
    Str(String),
}

/// A named node attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Attr {
    /// Attribute name.
    pub name: String,
    /// Attribute value.
    pub value: AttrValue,
}

/// One operator node: op type, data edges by tensor name, attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Node name (may be empty on the wire; lowering synthesizes one).
    pub name: String,
    /// Operator type (`"Conv"`, `"Gemm"`, `"Relu"`, ...).
    pub op_type: String,
    /// Input tensor names in operator order.
    pub inputs: Vec<String>,
    /// Output tensor names.
    pub outputs: Vec<String>,
    /// Attributes.
    pub attrs: Vec<Attr>,
}

impl Node {
    /// Looks up an integer attribute.
    pub fn attr_int(&self, name: &str) -> Option<i64> {
        self.attrs.iter().find(|a| a.name == name).and_then(|a| {
            if let AttrValue::Int(v) = a.value {
                Some(v)
            } else {
                None
            }
        })
    }

    /// Looks up an integer-list attribute.
    pub fn attr_ints(&self, name: &str) -> Option<&[i64]> {
        self.attrs.iter().find(|a| a.name == name).and_then(|a| {
            if let AttrValue::Ints(v) = &a.value {
                Some(v.as_slice())
            } else {
                None
            }
        })
    }
}

/// A whole imported graph, the common output of both parsers and the
/// input to shape inference and lowering.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphIr {
    /// Graph (network) name.
    pub name: String,
    /// Graph inputs with their declared shapes.
    pub inputs: Vec<Tensor>,
    /// Initializers (weights/biases/shape tensors); float payloads are
    /// dropped at parse time, only dims (and INT64 data) survive.
    pub initializers: Vec<Tensor>,
    /// Operator nodes, expected in topological order.
    pub nodes: Vec<Node>,
    /// Graph output tensor names.
    pub outputs: Vec<String>,
}

impl GraphIr {
    /// Finds an initializer by name.
    pub fn initializer(&self, name: &str) -> Option<&Tensor> {
        self.initializers.iter().find(|t| t.name == name)
    }
}
