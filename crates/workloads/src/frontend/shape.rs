//! Shape inference helpers.
//!
//! The frontend validates every shape *before* constructing a
//! [`crate::LoopNest`] — the nest constructor panics on zero extents
//! (loud-failure convention for programmer errors), while imported
//! graphs are user input and must produce typed errors instead.

use std::collections::HashMap;

use super::FrontendError;

/// Known tensor shapes by name, grown as nodes are walked in
/// topological order.
pub(super) struct ShapeEnv {
    shapes: HashMap<String, Vec<u64>>,
}

impl ShapeEnv {
    pub(super) fn new() -> Self {
        ShapeEnv {
            shapes: HashMap::new(),
        }
    }

    pub(super) fn insert(&mut self, name: &str, dims: Vec<u64>) {
        self.shapes.insert(name.to_string(), dims);
    }

    /// The shape of a tensor, or a typed error naming the node that
    /// needed it (undefined names and use-before-def both land here).
    pub(super) fn get(&self, node: &str, tensor: &str) -> Result<&[u64], FrontendError> {
        self.shapes
            .get(tensor)
            .map(Vec::as_slice)
            .ok_or_else(|| FrontendError::MissingTensor {
                node: node.to_string(),
                tensor: tensor.to_string(),
            })
    }
}

/// Converts wire dims (`i64`, `-1` for symbolic) to concrete extents.
/// Symbolic dims default to `default_sym` when `Some` (graph inputs:
/// dynamic batch becomes 1) and are rejected otherwise (initializers
/// must be concrete).
pub(super) fn concrete_dims(
    node: &str,
    dims: &[i64],
    default_sym: Option<u64>,
) -> Result<Vec<u64>, FrontendError> {
    dims.iter()
        .map(|&d| {
            if d >= 0 {
                Ok(d as u64)
            } else if let Some(sub) = default_sym {
                Ok(sub)
            } else {
                Err(FrontendError::BadShape {
                    node: node.to_string(),
                    reason: format!("symbolic dimension in {dims:?}"),
                })
            }
        })
        .collect()
}

/// Number of elements of a shape (scalars have one element).
pub(super) fn elems(dims: &[u64]) -> u64 {
    dims.iter().product()
}

fn bad(node: &str, reason: impl Into<String>) -> FrontendError {
    FrontendError::BadShape {
        node: node.to_string(),
        reason: reason.into(),
    }
}

/// One spatial output extent of a conv/pool window:
/// `floor((in + pad_begin + pad_end - kernel) / stride) + 1`.
fn window_out(
    node: &str,
    input: u64,
    kernel: u64,
    pad_begin: u64,
    pad_end: u64,
    stride: u64,
) -> Result<u64, FrontendError> {
    let padded = input + pad_begin + pad_end;
    if stride == 0 {
        return Err(bad(node, "stride must be positive"));
    }
    if kernel == 0 || kernel > padded {
        return Err(bad(
            node,
            format!("kernel {kernel} does not fit input {input} (+{pad_begin}+{pad_end} pad)"),
        ));
    }
    Ok((padded - kernel) / stride + 1)
}

/// Output shape of a 2-D sliding window over an NCHW input:
/// `[N, out_channels, Ho, Wo]`.
pub(super) fn window_output_shape(
    node: &str,
    input: &[u64],
    out_channels: u64,
    kernel: [u64; 2],
    pads: [u64; 4],
    strides: [u64; 2],
) -> Result<Vec<u64>, FrontendError> {
    if input.len() != 4 {
        return Err(bad(
            node,
            format!("expected NCHW rank-4 input, got rank {}", input.len()),
        ));
    }
    let ho = window_out(node, input[2], kernel[0], pads[0], pads[2], strides[0])?;
    let wo = window_out(node, input[3], kernel[1], pads[1], pads[3], strides[1])?;
    Ok(vec![input[0], out_channels, ho, wo])
}

/// Resolves a `Reshape` target: `0` copies the input dim, one `-1`
/// infers from the remaining product; the element count must match.
pub(super) fn reshape_output(
    node: &str,
    input: &[u64],
    target: &[i64],
) -> Result<Vec<u64>, FrontendError> {
    let total = elems(input);
    let mut out: Vec<u64> = Vec::with_capacity(target.len());
    let mut infer_at = None;
    for (i, &d) in target.iter().enumerate() {
        match d {
            0 => {
                let copied = *input.get(i).ok_or_else(|| {
                    bad(node, format!("shape dim {i} copies a missing input dim"))
                })?;
                out.push(copied);
            }
            -1 if infer_at.is_none() => {
                infer_at = Some(i);
                out.push(1);
            }
            -1 => return Err(bad(node, "more than one -1 in reshape target")),
            d if d > 0 => out.push(d as u64),
            d => return Err(bad(node, format!("negative dim {d} in reshape target"))),
        }
    }
    let known = elems(&out);
    if let Some(i) = infer_at {
        if known == 0 || !total.is_multiple_of(known) {
            return Err(bad(
                node,
                format!("cannot infer -1: {total} elements not divisible by {known}"),
            ));
        }
        out[i] = total / known;
    } else if known != total {
        return Err(bad(
            node,
            format!("reshape changes element count {total} -> {known}"),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_math_matches_onnx() {
        // 8x8, 3x3 kernel, pad 1, stride 1 -> 8x8
        let out = window_output_shape("n", &[1, 3, 8, 8], 16, [3, 3], [1, 1, 1, 1], [1, 1])
            .expect("fits");
        assert_eq!(out, vec![1, 16, 8, 8]);
        // stride 2, no pad: (8-3)/2+1 = 3
        let out = window_output_shape("n", &[2, 4, 8, 8], 4, [3, 3], [0; 4], [2, 2]).expect("fits");
        assert_eq!(out, vec![2, 4, 3, 3]);
    }

    #[test]
    fn oversized_kernel_is_typed() {
        let e = window_output_shape("n", &[1, 3, 4, 4], 8, [5, 5], [0; 4], [1, 1]);
        assert!(matches!(e, Err(FrontendError::BadShape { .. })));
    }

    #[test]
    fn reshape_rules() {
        assert_eq!(
            reshape_output("n", &[2, 3, 4], &[0, -1]).unwrap(),
            vec![2, 12]
        );
        assert_eq!(
            reshape_output("n", &[2, 3, 4], &[4, 6]).unwrap(),
            vec![4, 6]
        );
        assert!(reshape_output("n", &[2, 3, 4], &[-1, -1]).is_err());
        assert!(reshape_output("n", &[2, 3, 4], &[5, 5]).is_err());
        assert!(reshape_output("n", &[2, 3, 4], &[7, -1]).is_err());
    }

    #[test]
    fn symbolic_dims_default_only_when_allowed() {
        assert_eq!(concrete_dims("n", &[-1, 3], Some(1)).unwrap(), vec![1, 3]);
        assert!(concrete_dims("n", &[-1, 3], None).is_err());
    }
}
