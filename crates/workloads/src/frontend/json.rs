//! Human-writable JSON graph form.
//!
//! The second frontend format is a JSON document mirroring the graph
//! IR one-to-one, for hand-authoring networks and for service clients
//! that would rather not emit protobuf. Schema (all tensor dims are
//! integers; `-1` marks a symbolic dim):
//!
//! ```json
//! {
//!   "name": "tiny-cnn",
//!   "inputs":       [{"name": "x", "dims": [1, 3, 32, 32]}],
//!   "initializers": [{"name": "w1", "dims": [16, 3, 3, 3]},
//!                    {"name": "shape", "dims": [2], "int_data": [1, -1]}],
//!   "nodes": [
//!     {"op": "Conv", "name": "conv1",
//!      "inputs": ["x", "w1"], "outputs": ["t1"],
//!      "attrs": {"strides": [1, 1], "pads": [1, 1, 1, 1], "group": 1}}
//!   ],
//!   "outputs": ["t1"]
//! }
//! ```
//!
//! `attrs` values may be an integer, an integer array, a float, or a
//! string — the same four kinds the wire form models. This module
//! carries its own tiny JSON reader: `unico_workloads` sits below the
//! service crate in the dependency graph, so it cannot borrow the job
//! API's parser, and the grammar needed here (objects, arrays,
//! strings, numbers) is small.

use super::graph::{Attr, AttrValue, GraphIr, Node, Tensor};
use super::FrontendError;

fn err(msg: impl Into<String>) -> FrontendError {
    FrontendError::Json(msg.into())
}

/// Parses the JSON graph form into the IR.
pub fn parse_graph_json(text: &str) -> Result<GraphIr, FrontendError> {
    let value = parse_value(text)?;
    let obj = value.as_obj("graph")?;
    let mut g = GraphIr {
        name: get_str(obj, "name")?.unwrap_or_default(),
        inputs: Vec::new(),
        initializers: Vec::new(),
        nodes: Vec::new(),
        outputs: Vec::new(),
    };
    for item in get_arr(obj, "inputs")?.unwrap_or_default() {
        g.inputs.push(tensor_from(item, "inputs[]")?);
    }
    for item in get_arr(obj, "initializers")?.unwrap_or_default() {
        g.initializers.push(tensor_from(item, "initializers[]")?);
    }
    for item in get_arr(obj, "nodes")?.unwrap_or_default() {
        g.nodes.push(node_from(item)?);
    }
    for item in get_arr(obj, "outputs")?.unwrap_or_default() {
        g.outputs.push(item.as_str("outputs[]")?.to_string());
    }
    Ok(g)
}

fn tensor_from(v: &Value, what: &str) -> Result<Tensor, FrontendError> {
    let obj = v.as_obj(what)?;
    Ok(Tensor {
        name: get_str(obj, "name")?.ok_or_else(|| err(format!("{what}: missing name")))?,
        dims: get_ints(obj, "dims")?.unwrap_or_default(),
        int_data: get_ints(obj, "int_data")?.unwrap_or_default(),
    })
}

fn node_from(v: &Value) -> Result<Node, FrontendError> {
    let obj = v.as_obj("nodes[]")?;
    let op_type = get_str(obj, "op")?.ok_or_else(|| err("nodes[]: missing op"))?;
    let mut node = Node {
        name: get_str(obj, "name")?.unwrap_or_default(),
        op_type,
        inputs: Vec::new(),
        outputs: Vec::new(),
        attrs: Vec::new(),
    };
    for item in get_arr(obj, "inputs")?.unwrap_or_default() {
        node.inputs.push(item.as_str("inputs[]")?.to_string());
    }
    for item in get_arr(obj, "outputs")?.unwrap_or_default() {
        node.outputs.push(item.as_str("outputs[]")?.to_string());
    }
    if let Some(attrs) = find(obj, "attrs") {
        for (name, value) in attrs.as_obj("attrs")? {
            node.attrs.push(Attr {
                name: name.clone(),
                value: attr_value_from(name, value)?,
            });
        }
    }
    Ok(node)
}

fn attr_value_from(name: &str, v: &Value) -> Result<AttrValue, FrontendError> {
    match v {
        Value::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => Ok(AttrValue::Int(*n as i64)),
        Value::Num(n) => Ok(AttrValue::Float(*n as f32)),
        Value::Str(s) => Ok(AttrValue::Str(s.clone())),
        Value::Arr(items) => {
            let mut ints = Vec::with_capacity(items.len());
            for item in items {
                ints.push(item.as_int(&format!("attr {name:?} element"))?);
            }
            Ok(AttrValue::Ints(ints))
        }
        other => Err(err(format!(
            "attr {name:?}: expected number, string or integer array, found {}",
            other.kind()
        ))),
    }
}

// --- schema helpers over the generic value --------------------------------

fn find<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_str(obj: &[(String, Value)], key: &str) -> Result<Option<String>, FrontendError> {
    find(obj, key)
        .map(|v| v.as_str(key).map(str::to_string))
        .transpose()
}

fn get_arr<'a>(
    obj: &'a [(String, Value)],
    key: &str,
) -> Result<Option<&'a [Value]>, FrontendError> {
    find(obj, key).map(|v| v.as_arr(key)).transpose()
}

fn get_ints(obj: &[(String, Value)], key: &str) -> Result<Option<Vec<i64>>, FrontendError> {
    match find(obj, key) {
        None => Ok(None),
        Some(v) => {
            let items = v.as_arr(key)?;
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(item.as_int(&format!("{key}[]"))?);
            }
            Ok(Some(out))
        }
    }
}

// --- the tiny JSON reader --------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    fn as_obj(&self, what: &str) -> Result<&[(String, Value)], FrontendError> {
        match self {
            Value::Obj(fields) => Ok(fields),
            v => Err(err(format!("{what}: expected object, found {}", v.kind()))),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&[Value], FrontendError> {
        match self {
            Value::Arr(items) => Ok(items),
            v => Err(err(format!("{what}: expected array, found {}", v.kind()))),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, FrontendError> {
        match self {
            Value::Str(s) => Ok(s),
            v => Err(err(format!("{what}: expected string, found {}", v.kind()))),
        }
    }

    fn as_int(&self, what: &str) -> Result<i64, FrontendError> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => Ok(*n as i64),
            v => Err(err(format!("{what}: expected integer, found {}", v.kind()))),
        }
    }
}

/// Recursion bound: parse of untrusted text must not overflow the stack.
const MAX_DEPTH: usize = 64;

fn parse_value(text: &str) -> Result<Value, FrontendError> {
    let mut p = Cursor {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(err(format!("trailing garbage at byte {}", p.pos)));
    }
    Ok(v)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), FrontendError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(err(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, FrontendError> {
        if depth > MAX_DEPTH {
            return Err(err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) if self.eat_lit("null") => Ok(Value::Null),
            Some(_) if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(_) if self.eat_lit("false") => Ok(Value::Bool(false)),
            _ => Err(err(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, FrontendError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            fields.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(err(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, FrontendError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(err(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn number(&mut self) -> Result<Value, FrontendError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        s.parse::<f64>()
            .ok()
            .filter(|v| v.is_finite())
            .map(Value::Num)
            .ok_or_else(|| err(format!("bad number at byte {start}")))
    }

    fn string(&mut self) -> Result<String, FrontendError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        _ => return Err(err(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(err(format!("raw control character at byte {}", self.pos)))
                }
                Some(_) => {
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| err("invalid utf-8 in string"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_schema() {
        let g = parse_graph_json(
            r#"{
              "name": "t",
              "inputs": [{"name": "x", "dims": [1, 3, 8, 8]}],
              "initializers": [{"name": "w", "dims": [4, 3, 3, 3]},
                               {"name": "shape", "dims": [2], "int_data": [1, -1]}],
              "nodes": [{"op": "Conv", "name": "c0",
                         "inputs": ["x", "w"], "outputs": ["y"],
                         "attrs": {"strides": [2, 2], "group": 1, "alpha": 0.5,
                                   "mode": "same"}}],
              "outputs": ["y"]
            }"#,
        )
        .expect("parses");
        assert_eq!(g.name, "t");
        assert_eq!(g.inputs[0].dims, vec![1, 3, 8, 8]);
        assert_eq!(g.initializer("shape").unwrap().int_data, vec![1, -1]);
        let node = &g.nodes[0];
        assert_eq!(node.attr_ints("strides"), Some(&[2, 2][..]));
        assert_eq!(node.attr_int("group"), Some(1));
        assert!(node
            .attrs
            .iter()
            .any(|a| matches!(a.value, AttrValue::Float(f) if f == 0.5)));
        assert!(node
            .attrs
            .iter()
            .any(|a| matches!(&a.value, AttrValue::Str(s) if s == "same")));
    }

    #[test]
    fn malformed_json_is_a_typed_error() {
        for bad in [
            "",
            "{",
            "not json",
            r#"{"nodes": [{"inputs": ["x"]}]}"#, // missing op
            r#"{"inputs": [{"dims": [1]}]}"#,    // missing name
            r#"{"inputs": [{"name": "x", "dims": [1.5]}]}"#,
            r#"{"nodes": 3}"#,
            r#"{"outputs": [7]}"#,
        ] {
            match parse_graph_json(bad) {
                Err(FrontendError::Json(_)) => {}
                other => panic!("{bad:?}: expected Json error, got {other:?}"),
            }
        }
        let bomb = "[".repeat(100_000);
        assert!(parse_graph_json(&bomb).is_err());
    }
}
