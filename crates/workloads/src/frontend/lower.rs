//! Lowering: graph IR → [`Network`] + fusion edges.
//!
//! The walk visits nodes in topological order, infers every output
//! shape, and emits one [`Layer`] per MAC-bearing op (Conv, Gemm,
//! MatMul, depthwise Conv). Element-wise and shape ops (Relu, Add,
//! Reshape, Flatten, ...) lower to no layer but *propagate* the
//! producing layer's identity, so a `Conv -> Relu -> Conv` chain still
//! yields a fusion edge between the two convs. Pooling ops also lower
//! to no layer but deliberately *break* the association: a pooled
//! intermediate is re-read with a different access pattern, which the
//! fused cost model does not account, so it must go through DRAM.

use std::collections::HashMap;

use crate::layer::Layer;
use crate::network::Network;
use crate::ops::TensorOp;

use super::graph::{GraphIr, Node};
use super::shape::{concrete_dims, elems, reshape_output, window_output_shape, ShapeEnv};
use super::{FrontendError, FusionEdge, ImportedGraph};

fn bad_shape(node: &str, reason: impl Into<String>) -> FrontendError {
    FrontendError::BadShape {
        node: node.to_string(),
        reason: reason.into(),
    }
}

fn bad_attr(node: &str, attr: &str, reason: impl Into<String>) -> FrontendError {
    FrontendError::BadAttr {
        node: node.to_string(),
        attr: attr.to_string(),
        reason: reason.into(),
    }
}

/// Lowers a parsed graph into a network plus its fusion edges.
pub(super) fn lower(ir: &GraphIr) -> Result<ImportedGraph, FrontendError> {
    if ir.nodes.is_empty() {
        return Err(FrontendError::EmptyGraph);
    }
    let mut env = ShapeEnv::new();
    // Tensor name -> the layer whose output it (transitively) is.
    let mut assoc: HashMap<String, usize> = HashMap::new();
    for input in &ir.inputs {
        // Dynamic dims in graph inputs (symbolic batch) default to 1.
        env.insert(
            &input.name,
            concrete_dims(&input.name, &input.dims, Some(1))?,
        );
    }
    for init in &ir.initializers {
        env.insert(&init.name, concrete_dims(&init.name, &init.dims, None)?);
    }

    let mut layers: Vec<Layer> = Vec::new();
    let mut edges: Vec<FusionEdge> = Vec::new();
    let mut ops_lowered: u64 = 0;

    for (i, node) in ir.nodes.iter().enumerate() {
        let name = if node.name.is_empty() {
            format!("{}_{i}", node.op_type)
        } else {
            node.name.clone()
        };
        let out_name = node
            .outputs
            .first()
            .ok_or_else(|| bad_shape(&name, "node has no output"))?;

        // Fusion edges into a would-be layer: every *activation* input
        // produced (transitively) by an earlier layer.
        let incoming = |env: &ShapeEnv, assoc: &HashMap<String, usize>| -> Vec<(usize, u64)> {
            node.inputs
                .iter()
                .filter_map(|t| {
                    let producer = *assoc.get(t)?;
                    let dims = env.get(&name, t).ok()?;
                    Some((producer, elems(dims)))
                })
                .collect()
        };

        match node.op_type.as_str() {
            "Conv" => {
                let (op, out_dims) = lower_conv(&name, node, &env, ir)?;
                let layer_idx = layers.len();
                for (producer, edge_elems) in incoming(&env, &assoc) {
                    edges.push(FusionEdge {
                        producer,
                        consumer: layer_idx,
                        elems: edge_elems,
                    });
                }
                layers.push(Layer::new(name, op));
                env.insert(out_name, out_dims);
                assoc.insert(out_name.clone(), layer_idx);
            }
            "Gemm" | "MatMul" => {
                let (op, out_dims) = if node.op_type == "Gemm" {
                    lower_gemm(&name, node, &env)?
                } else {
                    lower_matmul(&name, node, &env)?
                };
                let layer_idx = layers.len();
                for (producer, edge_elems) in incoming(&env, &assoc) {
                    edges.push(FusionEdge {
                        producer,
                        consumer: layer_idx,
                        elems: edge_elems,
                    });
                }
                layers.push(Layer::new(name, op));
                env.insert(out_name, out_dims);
                assoc.insert(out_name.clone(), layer_idx);
            }
            // Element-wise: shape and layer association pass through.
            "Relu" | "Sigmoid" | "Tanh" | "Softmax" | "Identity" | "Clip" => {
                let x = node
                    .inputs
                    .first()
                    .ok_or_else(|| bad_shape(&name, "missing input"))?;
                let dims = env.get(&name, x)?.to_vec();
                if let Some(&p) = assoc.get(x) {
                    assoc.insert(out_name.clone(), p);
                }
                env.insert(out_name, dims);
            }
            "Add" | "Mul" | "Sub" => {
                let out_dims = lower_binary(&name, node, &env)?;
                // Exactly one layer-produced operand: association
                // passes through (bias/scale). Two: a residual join,
                // which breaks fusion — the joined tensor is consumed
                // with two producers and must be materialized.
                let producers: Vec<usize> = node
                    .inputs
                    .iter()
                    .filter_map(|t| assoc.get(t).copied())
                    .collect();
                if let [single] = producers.as_slice() {
                    assoc.insert(out_name.clone(), *single);
                }
                env.insert(out_name, out_dims);
            }
            "MaxPool" | "AveragePool" => {
                let out_dims = lower_pool(&name, node, &env)?;
                // Pooling changes the access pattern; break fusion.
                env.insert(out_name, out_dims);
            }
            "GlobalAveragePool" => {
                let x = node
                    .inputs
                    .first()
                    .ok_or_else(|| bad_shape(&name, "missing input"))?;
                let dims = env.get(&name, x)?;
                if dims.len() != 4 {
                    return Err(bad_shape(&name, "expected NCHW rank-4 input"));
                }
                env.insert(out_name, vec![dims[0], dims[1], 1, 1]);
            }
            "Reshape" => {
                let x = node
                    .inputs
                    .first()
                    .ok_or_else(|| bad_shape(&name, "missing input"))?;
                let in_dims = env.get(&name, x)?.to_vec();
                let target: Vec<i64> = if let Some(shape_name) = node.inputs.get(1) {
                    let t = ir.initializer(shape_name).ok_or_else(|| {
                        bad_shape(
                            &name,
                            format!("reshape target {shape_name:?} is not a constant initializer"),
                        )
                    })?;
                    t.int_data.clone()
                } else if let Some(shape) = node.attr_ints("shape") {
                    shape.to_vec()
                } else {
                    return Err(bad_attr(&name, "shape", "missing reshape target"));
                };
                let out_dims = reshape_output(&name, &in_dims, &target)?;
                if let Some(&p) = assoc.get(x) {
                    assoc.insert(out_name.clone(), p);
                }
                env.insert(out_name, out_dims);
            }
            "Flatten" => {
                let x = node
                    .inputs
                    .first()
                    .ok_or_else(|| bad_shape(&name, "missing input"))?;
                let dims = env.get(&name, x)?.to_vec();
                let rank = dims.len() as i64;
                let mut axis = node.attr_int("axis").unwrap_or(1);
                if axis < 0 {
                    axis += rank;
                }
                if axis < 0 || axis > rank {
                    return Err(bad_attr(&name, "axis", format!("{axis} out of range")));
                }
                let split = axis as usize;
                let out_dims = vec![elems(&dims[..split]).max(1), elems(&dims[split..]).max(1)];
                if let Some(&p) = assoc.get(x) {
                    assoc.insert(out_name.clone(), p);
                }
                env.insert(out_name, out_dims);
            }
            "Transpose" => {
                let x = node
                    .inputs
                    .first()
                    .ok_or_else(|| bad_shape(&name, "missing input"))?;
                let dims = env.get(&name, x)?.to_vec();
                let perm: Vec<usize> = match node.attr_ints("perm") {
                    Some(p) => p
                        .iter()
                        .map(|&v| {
                            usize::try_from(v).map_err(|_| bad_attr(&name, "perm", "negative axis"))
                        })
                        .collect::<Result<_, _>>()?,
                    None => (0..dims.len()).rev().collect(),
                };
                if perm.len() != dims.len() || perm.iter().any(|&p| p >= dims.len()) {
                    return Err(bad_attr(
                        &name,
                        "perm",
                        format!("{perm:?} is not a permutation"),
                    ));
                }
                let out_dims: Vec<u64> = perm.iter().map(|&p| dims[p]).collect();
                if let Some(&p) = assoc.get(x) {
                    assoc.insert(out_name.clone(), p);
                }
                env.insert(out_name, out_dims);
            }
            other => {
                return Err(FrontendError::UnsupportedOp {
                    node: name,
                    op_type: other.to_string(),
                })
            }
        }
        ops_lowered += 1;
    }

    if layers.is_empty() {
        return Err(FrontendError::EmptyGraph);
    }
    let net_name = if ir.name.is_empty() {
        "imported".to_string()
    } else {
        ir.name.clone()
    };
    Ok(ImportedGraph {
        network: Network::new(net_name, layers),
        edges,
        ops_lowered,
    })
}

fn attr_pair(
    node: &Node,
    node_name: &str,
    name: &str,
    default: Option<[u64; 2]>,
) -> Result<[u64; 2], FrontendError> {
    match (node.attr_ints(name), default) {
        (None, Some(d)) => Ok(d),
        (None, None) => Err(bad_attr(node_name, name, "required attribute missing")),
        (Some([a, b]), _) if *a > 0 && *b > 0 => Ok([*a as u64, *b as u64]),
        (Some(other), _) => Err(bad_attr(
            node_name,
            name,
            format!("expected two positive ints, got {other:?}"),
        )),
    }
}

fn lower_pool(name: &str, node: &Node, env: &ShapeEnv) -> Result<Vec<u64>, FrontendError> {
    let x = node
        .inputs
        .first()
        .ok_or_else(|| bad_shape(name, "missing input"))?;
    let dims = env.get(name, x)?.to_vec();
    if dims.len() != 4 {
        return Err(bad_shape(name, "expected NCHW rank-4 input"));
    }
    let kernel = attr_pair(node, name, "kernel_shape", None)?;
    let strides = attr_pair(node, name, "strides", Some([1, 1]))?;
    let pads = attr_pads(node, name)?;
    window_output_shape(name, &dims, dims[1], kernel, pads, strides)
}

fn attr_pads(node: &Node, node_name: &str) -> Result<[u64; 4], FrontendError> {
    match node.attr_ints("pads") {
        None => Ok([0; 4]),
        Some([t, l, b, r]) if [*t, *l, *b, *r].iter().all(|&p| p >= 0) => {
            Ok([*t as u64, *l as u64, *b as u64, *r as u64])
        }
        Some(other) => Err(bad_attr(
            node_name,
            "pads",
            format!("expected four non-negative ints, got {other:?}"),
        )),
    }
}

fn lower_conv(
    name: &str,
    node: &Node,
    env: &ShapeEnv,
    ir: &GraphIr,
) -> Result<(TensorOp, Vec<u64>), FrontendError> {
    let x_name = node
        .inputs
        .first()
        .ok_or_else(|| bad_shape(name, "missing data input"))?;
    let w_name = node
        .inputs
        .get(1)
        .ok_or_else(|| bad_shape(name, "missing weight input"))?;
    let x = env.get(name, x_name)?.to_vec();
    // Weights usually arrive as initializers; activations as shapes.
    let w = match ir.initializer(w_name) {
        Some(t) => concrete_dims(name, &t.dims, None)?,
        None => env.get(name, w_name)?.to_vec(),
    };
    if x.len() != 4 || w.len() != 4 {
        return Err(bad_shape(
            name,
            format!(
                "Conv expects NCHW input and KCRS weights, got ranks {} and {}",
                x.len(),
                w.len()
            ),
        ));
    }
    for d in node.attr_ints("dilations").unwrap_or(&[]) {
        if *d != 1 {
            return Err(bad_attr(name, "dilations", "only dilation 1 is supported"));
        }
    }
    let strides = attr_pair(node, name, "strides", Some([1, 1]))?;
    if strides[0] != strides[1] {
        return Err(bad_attr(
            name,
            "strides",
            format!("anisotropic strides {strides:?} are not supported"),
        ));
    }
    let pads = attr_pads(node, name)?;
    let group = node.attr_int("group").unwrap_or(1);
    let (n, c_in) = (x[0], x[1]);
    let (k, c_per_group, r, s) = (w[0], w[1], w[2], w[3]);
    let out = window_output_shape(name, &x, k, [r, s], pads, strides)?;
    let (y, xo) = (out[2], out[3]);
    if n == 0 || k == 0 || c_in == 0 || r == 0 || s == 0 {
        return Err(bad_shape(name, "zero-sized convolution"));
    }
    let op = match group {
        1 => {
            if c_per_group != c_in {
                return Err(bad_shape(
                    name,
                    format!("weight channels {c_per_group} != input channels {c_in}"),
                ));
            }
            TensorOp::Conv2d {
                n,
                k,
                c: c_in,
                y,
                x: xo,
                r,
                s,
                stride: strides[0],
            }
        }
        g if g > 0 && g as u64 == c_in && c_per_group == 1 && k == c_in => {
            TensorOp::DepthwiseConv2d {
                n,
                c: c_in,
                y,
                x: xo,
                r,
                s,
                stride: strides[0],
            }
        }
        g => {
            return Err(FrontendError::UnsupportedOp {
                node: name.to_string(),
                op_type: format!("Conv(group={g})"),
            })
        }
    };
    Ok((op, out))
}

fn lower_gemm(
    name: &str,
    node: &Node,
    env: &ShapeEnv,
) -> Result<(TensorOp, Vec<u64>), FrontendError> {
    let a_name = node
        .inputs
        .first()
        .ok_or_else(|| bad_shape(name, "missing A input"))?;
    let b_name = node
        .inputs
        .get(1)
        .ok_or_else(|| bad_shape(name, "missing B input"))?;
    let mut a = env.get(name, a_name)?.to_vec();
    let mut b = env.get(name, b_name)?.to_vec();
    if a.len() != 2 || b.len() != 2 {
        return Err(bad_shape(
            name,
            format!(
                "Gemm expects rank-2 operands, got ranks {} and {}",
                a.len(),
                b.len()
            ),
        ));
    }
    if node.attr_int("transA").unwrap_or(0) != 0 {
        a.swap(0, 1);
    }
    if node.attr_int("transB").unwrap_or(0) != 0 {
        b.swap(0, 1);
    }
    let (m, k) = (a[0], a[1]);
    let (kb, n) = (b[0], b[1]);
    if k != kb {
        return Err(bad_shape(name, format!("inner dims disagree: {k} vs {kb}")));
    }
    if m == 0 || n == 0 || k == 0 {
        return Err(bad_shape(name, "zero-sized Gemm"));
    }
    Ok((TensorOp::Gemm { m, n, k }, vec![m, n]))
}

fn lower_matmul(
    name: &str,
    node: &Node,
    env: &ShapeEnv,
) -> Result<(TensorOp, Vec<u64>), FrontendError> {
    let a_name = node
        .inputs
        .first()
        .ok_or_else(|| bad_shape(name, "missing A input"))?;
    let b_name = node
        .inputs
        .get(1)
        .ok_or_else(|| bad_shape(name, "missing B input"))?;
    let a = env.get(name, a_name)?.to_vec();
    let b = env.get(name, b_name)?.to_vec();
    if a.len() < 2 {
        return Err(bad_shape(name, "MatMul A must have rank >= 2"));
    }
    if b.len() != 2 {
        // Batched right-hand sides change weight reuse per batch; the
        // 7-D nest cannot express that, so the subset stops at rank 2.
        return Err(FrontendError::UnsupportedOp {
            node: name.to_string(),
            op_type: format!("MatMul(B rank {})", b.len()),
        });
    }
    // Leading batch dims of A fold into M: each extra row is another
    // output row against the same right-hand matrix.
    let k = *a.last().expect("rank >= 2");
    let m = elems(&a[..a.len() - 1]);
    let (kb, n) = (b[0], b[1]);
    if k != kb {
        return Err(bad_shape(name, format!("inner dims disagree: {k} vs {kb}")));
    }
    if m == 0 || n == 0 || k == 0 {
        return Err(bad_shape(name, "zero-sized MatMul"));
    }
    let mut out = a[..a.len() - 1].to_vec();
    out.push(n);
    Ok((TensorOp::Gemm { m, n, k }, out))
}

fn lower_binary(name: &str, node: &Node, env: &ShapeEnv) -> Result<Vec<u64>, FrontendError> {
    let a_name = node
        .inputs
        .first()
        .ok_or_else(|| bad_shape(name, "missing input"))?;
    let b_name = node
        .inputs
        .get(1)
        .ok_or_else(|| bad_shape(name, "missing second input"))?;
    let a = env.get(name, a_name)?.to_vec();
    let b = env.get(name, b_name)?.to_vec();
    if a == b {
        return Ok(a);
    }
    // Unidirectional broadcast of the smaller operand (bias patterns):
    // allowed when every trailing dim matches or is 1.
    let (big, small) = if elems(&a) >= elems(&b) {
        (a, b)
    } else {
        (b, a)
    };
    let offset = big.len().saturating_sub(small.len());
    let ok = small
        .iter()
        .rev()
        .zip(big.iter().rev())
        .all(|(&s, &g)| s == g || s == 1)
        && small.len() + offset == big.len();
    if ok {
        Ok(big)
    } else {
        Err(bad_shape(
            name,
            format!("operand shapes do not broadcast: {big:?} vs {small:?}"),
        ))
    }
}
