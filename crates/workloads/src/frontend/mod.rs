//! Dependency-free graph-format frontend.
//!
//! Imports real exported networks into the workload representation the
//! co-optimizer already understands. Two concrete forms are accepted —
//! an ONNX-subset protobuf wire format parsed by hand ([`import_onnx`])
//! and a human-writable JSON graph ([`import_json`]) — both landing in
//! one IR ([`graph::GraphIr`]), one shape-inference pass, and one
//! lowering to [`Network`]. Lowering additionally reports the
//! layer-DAG *fusion edges* (producer layer, consumer layer, elements
//! of the intermediate tensor) that the inter-layer fusion search in
//! `unico_mapping` partitions into fused groups.
//!
//! Everything here treats its input as untrusted: malformed bytes,
//! truncated messages, unknown ops and illegal shapes all surface as a
//! typed [`FrontendError`], never a panic.
//!
//! ```
//! use unico_workloads::frontend;
//!
//! let graph = r#"{
//!   "name": "two-layer",
//!   "inputs": [{"name": "x", "dims": [1, 8, 16, 16]}],
//!   "initializers": [{"name": "w1", "dims": [16, 8, 3, 3]},
//!                    {"name": "w2", "dims": [16, 16, 3, 3]}],
//!   "nodes": [
//!     {"op": "Conv", "name": "c1", "inputs": ["x", "w1"], "outputs": ["t1"],
//!      "attrs": {"pads": [1, 1, 1, 1]}},
//!     {"op": "Relu", "inputs": ["t1"], "outputs": ["t2"]},
//!     {"op": "Conv", "name": "c2", "inputs": ["t2", "w2"], "outputs": ["y"],
//!      "attrs": {"pads": [1, 1, 1, 1]}}
//!   ],
//!   "outputs": ["y"]
//! }"#;
//! let imported = frontend::import_json(graph).expect("valid graph");
//! assert_eq!(imported.network().len(), 2);
//! assert_eq!(imported.edges().len(), 1); // c1 -> c2 through the Relu
//! ```

pub mod graph;
pub mod json;
mod lower;
mod shape;
pub mod wire;

use std::fmt;

use crate::network::Network;

/// A typed frontend failure. Every parse/validation problem in either
/// input form maps here; the frontend never panics on bad input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontendError {
    /// Structurally broken protobuf wire bytes.
    Proto(String),
    /// Malformed JSON graph text.
    Json(String),
    /// An operator outside the supported subset.
    UnsupportedOp {
        /// Node name (or synthesized position name).
        node: String,
        /// The offending operator type.
        op_type: String,
    },
    /// A node references a tensor with no known shape (undefined name
    /// or use before definition).
    MissingTensor {
        /// Node name.
        node: String,
        /// The missing tensor name.
        tensor: String,
    },
    /// Shapes that cannot lower to a positive-extent loop nest.
    BadShape {
        /// Node name.
        node: String,
        /// What was wrong.
        reason: String,
    },
    /// An attribute outside the supported subset or with an illegal
    /// value.
    BadAttr {
        /// Node name.
        node: String,
        /// Attribute name.
        attr: String,
        /// What was wrong.
        reason: String,
    },
    /// The graph lowers to no layers at all.
    EmptyGraph,
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Proto(msg) => write!(f, "protobuf: {msg}"),
            FrontendError::Json(msg) => write!(f, "json: {msg}"),
            FrontendError::UnsupportedOp { node, op_type } => {
                write!(f, "node {node:?}: unsupported op {op_type:?}")
            }
            FrontendError::MissingTensor { node, tensor } => {
                write!(f, "node {node:?}: unknown tensor {tensor:?}")
            }
            FrontendError::BadShape { node, reason } => {
                write!(f, "node {node:?}: bad shape: {reason}")
            }
            FrontendError::BadAttr { node, attr, reason } => {
                write!(f, "node {node:?}: bad attribute {attr:?}: {reason}")
            }
            FrontendError::EmptyGraph => write!(f, "graph lowers to no layers"),
        }
    }
}

impl std::error::Error for FrontendError {}

/// One edge of the lowered layer DAG: `producer`'s output tensor is
/// (transitively, through element-wise ops) an input of `consumer`.
/// `elems` is the intermediate tensor's element count — the quantity a
/// fused schedule keeps on-chip instead of round-tripping to DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionEdge {
    /// Index of the producing layer in the lowered network.
    pub producer: usize,
    /// Index of the consuming layer.
    pub consumer: usize,
    /// Elements of the intermediate tensor.
    pub elems: u64,
}

/// The result of importing a graph: the lowered network, the fusion
/// edges of its layer DAG, and how many graph ops the walk processed.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportedGraph {
    network: Network,
    edges: Vec<FusionEdge>,
    ops_lowered: u64,
}

impl ImportedGraph {
    /// Wraps an already-lowered network as an import result with no
    /// fusion edges (lets zoo workloads ride alongside imported graphs
    /// in one co-search environment). `ops_lowered` stays zero: no
    /// frontend walk happened.
    pub fn from_network(network: Network) -> Self {
        ImportedGraph {
            network,
            edges: Vec::new(),
            ops_lowered: 0,
        }
    }

    /// The lowered network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Fusion edges between lowered layers (original layer indices).
    pub fn edges(&self) -> &[FusionEdge] {
        &self.edges
    }

    /// How many graph ops lowering processed (MAC-bearing layers plus
    /// element-wise/shape/pool ops) — the `frontend_ops_lowered`
    /// telemetry counter.
    pub fn ops_lowered(&self) -> u64 {
        self.ops_lowered
    }

    /// A stable 64-bit fingerprint of the lowered form: layer names,
    /// repeats, nest extents/strides/depthwise flags, and fusion
    /// edges, folded with FNV-1a. Both input forms of the same network
    /// must produce identical fingerprints — the round-trip tests pin
    /// this.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x100_0000_01b3;
        fn fold_bytes(h: u64, bytes: &[u8]) -> u64 {
            bytes
                .iter()
                .fold(h, |h, &b| (h ^ u64::from(b)).wrapping_mul(PRIME))
        }
        fn fold(h: u64, v: u64) -> u64 {
            fold_bytes(h, &v.to_le_bytes())
        }
        let mut h = OFFSET;
        for layer in self.network.layers() {
            h = fold_bytes(h, layer.name().as_bytes());
            let nest = layer.op().to_loop_nest();
            h = fold(h, u64::from(layer.repeat()));
            for e in nest.extents() {
                h = fold(h, e);
            }
            h = fold(h, nest.stride_y());
            h = fold(h, nest.stride_x());
            h = fold(h, u64::from(nest.is_depthwise()));
        }
        for e in &self.edges {
            h = fold(h, e.producer as u64);
            h = fold(h, e.consumer as u64);
            h = fold(h, e.elems);
        }
        h
    }
}

/// Imports ONNX-subset protobuf wire bytes.
///
/// # Errors
///
/// [`FrontendError`] on malformed bytes, unsupported ops, or shapes
/// that cannot lower.
pub fn import_onnx(bytes: &[u8]) -> Result<ImportedGraph, FrontendError> {
    lower::lower(&wire::parse_model(bytes)?)
}

/// Imports the JSON graph form (schema documented in this module and
/// EXPERIMENTS.md).
///
/// # Errors
///
/// [`FrontendError`] on malformed text, unsupported ops, or shapes
/// that cannot lower.
pub fn import_json(text: &str) -> Result<ImportedGraph, FrontendError> {
    lower::lower(&json::parse_graph_json(text)?)
}

/// Lowers an already-parsed IR (property tests drive this directly).
///
/// # Errors
///
/// [`FrontendError`] on unsupported ops or shapes that cannot lower.
pub fn import_ir(ir: &graph::GraphIr) -> Result<ImportedGraph, FrontendError> {
    lower::lower(ir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::Dim;

    fn cnn_json() -> &'static str {
        r#"{
          "name": "tiny-cnn",
          "inputs": [{"name": "x", "dims": [1, 3, 16, 16]}],
          "initializers": [
            {"name": "w1", "dims": [8, 3, 3, 3]},
            {"name": "b1", "dims": [1, 8, 1, 1]},
            {"name": "w2", "dims": [8, 1, 3, 3]},
            {"name": "w3", "dims": [16, 8, 1, 1]},
            {"name": "wfc", "dims": [10, 1024]}
          ],
          "nodes": [
            {"op": "Conv", "name": "conv1", "inputs": ["x", "w1"], "outputs": ["t1"],
             "attrs": {"pads": [1, 1, 1, 1]}},
            {"op": "Add", "inputs": ["t1", "b1"], "outputs": ["t1b"]},
            {"op": "Relu", "inputs": ["t1b"], "outputs": ["t2"]},
            {"op": "Conv", "name": "dw", "inputs": ["t2", "w2"], "outputs": ["t3"],
             "attrs": {"pads": [1, 1, 1, 1], "group": 8}},
            {"op": "Conv", "name": "pw", "inputs": ["t3", "w3"], "outputs": ["t4"]},
            {"op": "MaxPool", "inputs": ["t4"], "outputs": ["t5"],
             "attrs": {"kernel_shape": [2, 2], "strides": [2, 2]}},
            {"op": "Flatten", "inputs": ["t5"], "outputs": ["t6"]},
            {"op": "Gemm", "name": "fc", "inputs": ["t6", "wfc"], "outputs": ["y"],
             "attrs": {"transB": 1}},
            {"op": "Softmax", "inputs": ["y"], "outputs": ["probs"]}
          ],
          "outputs": ["probs"]
        }"#
    }

    #[test]
    fn cnn_lowers_with_edges_and_pool_break() {
        let g = import_json(cnn_json()).expect("valid");
        let net = g.network();
        assert_eq!(net.name(), "tiny-cnn");
        let kinds: Vec<&str> = net.layers().iter().map(|l| l.op().kind()).collect();
        assert_eq!(kinds, vec!["conv", "dwconv", "conv", "gemm"]);
        // conv1 -(Add bias, Relu)-> dw -> pw; the MaxPool breaks
        // pw -> fc, so exactly two edges survive.
        assert_eq!(
            g.edges(),
            &[
                FusionEdge {
                    producer: 0,
                    consumer: 1,
                    elems: 8 * 16 * 16
                },
                FusionEdge {
                    producer: 1,
                    consumer: 2,
                    elems: 8 * 16 * 16
                },
            ]
        );
        assert_eq!(g.ops_lowered(), 9);
        // dw is genuinely depthwise, fc sees the flattened 1024 reduction.
        let dw_nest = net.layers()[1].op().to_loop_nest();
        assert!(dw_nest.is_depthwise());
        let fc_nest = net.layers()[3].op().to_loop_nest();
        assert_eq!(fc_nest.extent(Dim::C), 1024);
        assert_eq!(fc_nest.extent(Dim::K), 10);
    }

    #[test]
    fn json_and_wire_forms_fingerprint_identically() {
        let via_json = import_json(cnn_json()).expect("valid json");
        // Re-encode the same IR as wire bytes and import through the
        // protobuf path.
        let ir = super::json::parse_graph_json(cnn_json()).expect("parses");
        let bytes = wire::encode_model(&ir);
        let via_wire = import_onnx(&bytes).expect("valid wire");
        assert_eq!(via_json.fingerprint(), via_wire.fingerprint());
        assert_eq!(via_json, via_wire);
    }

    #[test]
    fn unsupported_and_missing_are_typed() {
        let bad_op = r#"{
          "inputs": [{"name": "x", "dims": [1, 3, 8, 8]}],
          "nodes": [{"op": "LSTM", "inputs": ["x"], "outputs": ["y"]}],
          "outputs": ["y"]
        }"#;
        assert!(matches!(
            import_json(bad_op),
            Err(FrontendError::UnsupportedOp { .. })
        ));

        let missing = r#"{
          "inputs": [],
          "nodes": [{"op": "Relu", "inputs": ["ghost"], "outputs": ["y"]}],
          "outputs": ["y"]
        }"#;
        assert!(matches!(
            import_json(missing),
            Err(FrontendError::MissingTensor { .. })
        ));

        let empty = r#"{"nodes": [], "outputs": []}"#;
        assert!(matches!(import_json(empty), Err(FrontendError::EmptyGraph)));

        // Only pools: processes fine but lowers no layers.
        let pool_only = r#"{
          "inputs": [{"name": "x", "dims": [1, 3, 8, 8]}],
          "nodes": [{"op": "MaxPool", "inputs": ["x"], "outputs": ["y"],
                     "attrs": {"kernel_shape": [2, 2], "strides": [2, 2]}}],
          "outputs": ["y"]
        }"#;
        assert!(matches!(
            import_json(pool_only),
            Err(FrontendError::EmptyGraph)
        ));
    }

    #[test]
    fn illegal_shapes_never_panic() {
        // Kernel larger than the input.
        let big_kernel = r#"{
          "inputs": [{"name": "x", "dims": [1, 3, 2, 2]}],
          "initializers": [{"name": "w", "dims": [4, 3, 5, 5]}],
          "nodes": [{"op": "Conv", "inputs": ["x", "w"], "outputs": ["y"]}],
          "outputs": ["y"]
        }"#;
        assert!(matches!(
            import_json(big_kernel),
            Err(FrontendError::BadShape { .. })
        ));
        // Gemm inner-dim mismatch.
        let mismatch = r#"{
          "inputs": [{"name": "a", "dims": [4, 8]}],
          "initializers": [{"name": "b", "dims": [9, 5]}],
          "nodes": [{"op": "Gemm", "inputs": ["a", "b"], "outputs": ["y"]}],
          "outputs": ["y"]
        }"#;
        assert!(matches!(
            import_json(mismatch),
            Err(FrontendError::BadShape { .. })
        ));
    }

    #[test]
    fn residual_join_breaks_fusion() {
        let residual = r#"{
          "inputs": [{"name": "x", "dims": [1, 8, 8, 8]}],
          "initializers": [{"name": "w1", "dims": [8, 8, 1, 1]},
                           {"name": "w2", "dims": [8, 8, 1, 1]},
                           {"name": "w3", "dims": [8, 8, 1, 1]}],
          "nodes": [
            {"op": "Conv", "name": "a", "inputs": ["x", "w1"], "outputs": ["t1"]},
            {"op": "Conv", "name": "b", "inputs": ["t1", "w2"], "outputs": ["t2"]},
            {"op": "Add", "inputs": ["t1", "t2"], "outputs": ["t3"]},
            {"op": "Conv", "name": "c", "inputs": ["t3", "w3"], "outputs": ["y"]}
          ],
          "outputs": ["y"]
        }"#;
        let g = import_json(residual).expect("valid");
        // a -> b survives; the Add of two layer outputs breaks the
        // association, so nothing flows into c.
        assert_eq!(g.edges().len(), 1);
        assert_eq!((g.edges()[0].producer, g.edges()[0].consumer), (0, 1));
    }
}
