//! Whole-network layer tables.

use std::fmt;

use crate::layer::Layer;
use crate::nest::LoopNest;

/// A neural network expressed as an ordered table of [`Layer`]s.
///
/// Networks are pure data: co-optimization treats each layer's loop nest as
/// an independent tensor workload and aggregates per-layer results
/// (weighted by repeat count) into network-level PPA.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    name: String,
    layers: Vec<Layer>,
}

impl Network {
    /// Creates a network from a layer table.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(name: impl Into<String>, layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "network must have at least one layer");
        Network {
            name: name.into(),
            layers,
        }
    }

    /// Network name (matches the paper's table labels).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer table.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of distinct layer entries.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the layer table is empty (never true for a constructed
    /// network).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total MACs for one inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::total_macs).sum()
    }

    /// Iterator over `(loop nest, repeat)` pairs, the form consumed by the
    /// co-optimizer.
    pub fn nests(&self) -> impl Iterator<Item = (LoopNest, u32)> + '_ {
        self.layers
            .iter()
            .map(|l| (l.op().to_loop_nest(), l.repeat()))
    }

    /// MAC share of each operator kind: `(conv, dwconv, gemm)` fractions
    /// summing to 1. Used to characterize how compute-heavy vs
    /// memory-bound a network's layer mix is.
    pub fn op_mix(&self) -> (f64, f64, f64) {
        let total = self.total_macs() as f64;
        let mut conv = 0.0;
        let mut dw = 0.0;
        let mut gemm = 0.0;
        for l in &self.layers {
            let share = l.total_macs() as f64 / total;
            match l.op().kind() {
                "conv" => conv += share,
                "dwconv" => dw += share,
                _ => gemm += share,
            }
        }
        (conv, dw, gemm)
    }

    /// A reduced workload consisting of the `count` layers with the largest
    /// MAC contribution. Co-search drivers use this to bound inner-loop
    /// cost while keeping the layers that dominate end-to-end PPA.
    pub fn dominant_layers(&self, count: usize) -> Network {
        Network {
            name: self.name.clone(),
            layers: self
                .dominant_indices(count)
                .into_iter()
                .map(|i| self.layers[i].clone())
                .collect(),
        }
    }

    /// The original-table indices [`Network::dominant_layers`] keeps, in
    /// ascending order. Callers that carry per-layer side tables (e.g.
    /// fusion edges between layer indices) use this to remap them onto
    /// the reduced network.
    pub fn dominant_indices(&self, count: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.layers.len()).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(self.layers[i].total_macs()));
        idx.truncate(count.max(1));
        idx.sort_unstable();
        idx
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({} layer entries, {:.2} GMACs)",
            self.name,
            self.layers.len(),
            self.total_macs() as f64 / 1e9
        )?;
        for l in &self.layers {
            writeln!(f, "  {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::TensorOp;

    fn toy() -> Network {
        Network::new(
            "toy",
            vec![
                Layer::new("a", TensorOp::Gemm { m: 8, n: 8, k: 8 }),
                Layer::repeated("b", TensorOp::Gemm { m: 2, n: 2, k: 2 }, 3),
            ],
        )
    }

    #[test]
    fn totals() {
        let net = toy();
        assert_eq!(net.total_macs(), 512 + 8 * 3);
        assert_eq!(net.len(), 2);
        assert!(!net.is_empty());
    }

    #[test]
    fn nests_iterate_with_repeat() {
        let net = toy();
        let v: Vec<_> = net.nests().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(v[1].1, 3);
    }

    #[test]
    fn op_mix_sums_to_one() {
        let net = Network::new(
            "mix",
            vec![
                Layer::new("c", TensorOp::pointwise(1, 8, 8, 4, 4)),
                Layer::new(
                    "d",
                    TensorOp::DepthwiseConv2d {
                        n: 1,
                        c: 8,
                        y: 4,
                        x: 4,
                        r: 3,
                        s: 3,
                        stride: 1,
                    },
                ),
                Layer::new("g", TensorOp::Gemm { m: 8, n: 8, k: 8 }),
            ],
        );
        let (c, d, g) = net.op_mix();
        assert!((c + d + g - 1.0).abs() < 1e-12);
        assert!(c > 0.0 && d > 0.0 && g > 0.0);
    }

    #[test]
    fn op_mix_pure_gemm_network() {
        let net = toy();
        let (c, d, g) = net.op_mix();
        assert_eq!((c, d), (0.0, 0.0));
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dominant_layers_picks_heaviest() {
        let net = toy();
        let d = net.dominant_layers(1);
        assert_eq!(d.len(), 1);
        assert_eq!(d.layers()[0].name(), "a");
    }

    #[test]
    fn dominant_layers_keeps_order() {
        let net = Network::new(
            "t",
            vec![
                Layer::new("small", TensorOp::Gemm { m: 1, n: 1, k: 1 }),
                Layer::new("big", TensorOp::Gemm { m: 9, n: 9, k: 9 }),
                Layer::new("mid", TensorOp::Gemm { m: 4, n: 4, k: 4 }),
            ],
        );
        let d = net.dominant_layers(2);
        assert_eq!(d.layers()[0].name(), "big");
        assert_eq!(d.layers()[1].name(), "mid");
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_network_panics() {
        let _ = Network::new("empty", vec![]);
    }
}
