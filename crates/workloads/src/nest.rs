//! Canonical 7-D loop-nest representation of a tensor operator.

use std::fmt;

/// Number of dimensions in the canonical convolution loop nest.
pub const DIM_COUNT: usize = 7;

/// A dimension of the canonical 7-D convolution loop nest
/// `for n, k, c, y, x, r, s: O[n,k,y,x] += W[k,c,r,s] * I[n,c,y+r,x+s]`.
///
/// General matrix multiply is expressed in the same nest with
/// `Y = M`, `X = 1`, `R = S = 1`, `K = N_gemm`, `C = K_gemm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dim {
    /// Batch.
    N,
    /// Output channels (or GEMM output columns).
    K,
    /// Input channels (reduction).
    C,
    /// Output rows.
    Y,
    /// Output columns.
    X,
    /// Filter rows (reduction).
    R,
    /// Filter columns (reduction).
    S,
}

impl Dim {
    /// All dimensions in canonical order `[N, K, C, Y, X, R, S]`.
    pub const ALL: [Dim; DIM_COUNT] = [Dim::N, Dim::K, Dim::C, Dim::Y, Dim::X, Dim::R, Dim::S];

    /// Index of this dimension in the canonical order.
    pub fn index(self) -> usize {
        match self {
            Dim::N => 0,
            Dim::K => 1,
            Dim::C => 2,
            Dim::Y => 3,
            Dim::X => 4,
            Dim::R => 5,
            Dim::S => 6,
        }
    }

    /// Whether iterating this dimension re-reads the output tensor
    /// (i.e. it is a reduction dimension).
    pub fn is_reduction(self) -> bool {
        matches!(self, Dim::C | Dim::R | Dim::S)
    }

    /// Dimension from canonical index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= DIM_COUNT`.
    pub fn from_index(idx: usize) -> Dim {
        Dim::ALL[idx]
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Dim::N => 'N',
            Dim::K => 'K',
            Dim::C => 'C',
            Dim::Y => 'Y',
            Dim::X => 'X',
            Dim::R => 'R',
            Dim::S => 'S',
        };
        write!(f, "{c}")
    }
}

/// A concrete 7-D loop nest: the extent of each canonical dimension,
/// plus convolution strides.
///
/// This is the lingua franca between workloads, cost models and mapping
/// searchers: every [`crate::TensorOp`] lowers to a `LoopNest`, and every
/// mapping is expressed as a tiling/ordering of these seven loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopNest {
    dims: [u64; DIM_COUNT],
    stride_y: u64,
    stride_x: u64,
    /// Depthwise convolutions share the channel index between input and
    /// output; modelled as `K` groups with `C = 1` and flagged here so
    /// cost models can account input reuse correctly.
    depthwise: bool,
}

impl LoopNest {
    /// Creates a dense loop nest with unit strides.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero.
    pub fn new(dims: [u64; DIM_COUNT]) -> Self {
        Self::with_strides(dims, 1, 1)
    }

    /// Creates a loop nest with explicit output strides.
    ///
    /// # Panics
    ///
    /// Panics if any extent or stride is zero.
    pub fn with_strides(dims: [u64; DIM_COUNT], stride_y: u64, stride_x: u64) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "loop nest extents must be positive, got {dims:?}"
        );
        assert!(stride_y > 0 && stride_x > 0, "strides must be positive");
        LoopNest {
            dims,
            stride_y,
            stride_x,
            depthwise: false,
        }
    }

    /// Marks the nest as a depthwise convolution (input channel == output
    /// channel group).
    pub fn into_depthwise(mut self) -> Self {
        self.depthwise = true;
        self
    }

    /// Whether this nest represents a depthwise convolution.
    pub fn is_depthwise(&self) -> bool {
        self.depthwise
    }

    /// Extent of a dimension.
    pub fn extent(&self, dim: Dim) -> u64 {
        self.dims[dim.index()]
    }

    /// All seven extents in canonical order.
    pub fn extents(&self) -> [u64; DIM_COUNT] {
        self.dims
    }

    /// Convolution stride along `Y`.
    pub fn stride_y(&self) -> u64 {
        self.stride_y
    }

    /// Convolution stride along `X`.
    pub fn stride_x(&self) -> u64 {
        self.stride_x
    }

    /// Total multiply-accumulate operations in the nest.
    pub fn macs(&self) -> u64 {
        self.dims.iter().product()
    }

    /// Number of output elements (`N*K*Y*X`).
    pub fn output_elems(&self) -> u64 {
        self.extent(Dim::N) * self.extent(Dim::K) * self.extent(Dim::Y) * self.extent(Dim::X)
    }

    /// Number of weight elements (`K*C*R*S`).
    pub fn weight_elems(&self) -> u64 {
        self.extent(Dim::K) * self.extent(Dim::C) * self.extent(Dim::R) * self.extent(Dim::S)
    }

    /// Number of input elements touched
    /// (`N*C*((Y-1)*stride_y + R)*((X-1)*stride_x + S)`), where for a
    /// depthwise nest the channel count is `K` instead of `C`.
    pub fn input_elems(&self) -> u64 {
        let h = (self.extent(Dim::Y) - 1) * self.stride_y + self.extent(Dim::R);
        let w = (self.extent(Dim::X) - 1) * self.stride_x + self.extent(Dim::S);
        let ch = if self.depthwise {
            self.extent(Dim::K)
        } else {
            self.extent(Dim::C)
        };
        self.extent(Dim::N) * ch * h * w
    }

    /// Input patch height for a given output-row tile extent.
    pub fn input_rows_for(&self, y_tile: u64, r_tile: u64) -> u64 {
        (y_tile.max(1) - 1) * self.stride_y + r_tile.max(1)
    }

    /// Input patch width for a given output-column tile extent.
    pub fn input_cols_for(&self, x_tile: u64, s_tile: u64) -> u64 {
        (x_tile.max(1) - 1) * self.stride_x + s_tile.max(1)
    }

    /// Arithmetic intensity assuming each operand byte is read once
    /// (MACs per element of total tensor footprint). Used for
    /// roofline-style sanity checks.
    pub fn ideal_arithmetic_intensity(&self) -> f64 {
        let traffic = self.input_elems() + self.weight_elems() + self.output_elems();
        self.macs() as f64 / traffic as f64
    }
}

impl fmt::Display for LoopNest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N{} K{} C{} Y{} X{} R{} S{}",
            self.dims[0],
            self.dims[1],
            self.dims[2],
            self.dims[3],
            self.dims[4],
            self.dims[5],
            self.dims[6]
        )?;
        if self.stride_y != 1 || self.stride_x != 1 {
            write!(f, " /({},{})", self.stride_y, self.stride_x)?;
        }
        if self.depthwise {
            write!(f, " dw")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_roundtrip() {
        for (i, d) in Dim::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(Dim::from_index(i), *d);
        }
    }

    #[test]
    fn reduction_dims() {
        assert!(Dim::C.is_reduction());
        assert!(Dim::R.is_reduction());
        assert!(Dim::S.is_reduction());
        assert!(!Dim::N.is_reduction());
        assert!(!Dim::K.is_reduction());
        assert!(!Dim::Y.is_reduction());
        assert!(!Dim::X.is_reduction());
    }

    #[test]
    fn macs_and_footprints() {
        // 1x8x4x6x6x3x3 conv
        let nest = LoopNest::new([1, 8, 4, 6, 6, 3, 3]);
        assert_eq!(nest.macs(), 8 * 4 * 6 * 6 * 9);
        assert_eq!(nest.output_elems(), 8 * 36);
        assert_eq!(nest.weight_elems(), 8 * 4 * 9);
        assert_eq!(nest.input_elems(), 4 * 8 * 8);
    }

    #[test]
    fn strided_input_footprint() {
        let nest = LoopNest::with_strides([1, 1, 1, 4, 4, 3, 3], 2, 2);
        // (4-1)*2 + 3 = 9
        assert_eq!(nest.input_elems(), 81);
        assert_eq!(nest.input_rows_for(4, 3), 9);
        assert_eq!(nest.input_cols_for(2, 3), 5);
    }

    #[test]
    fn depthwise_channels() {
        let nest = LoopNest::new([1, 32, 1, 10, 10, 3, 3]).into_depthwise();
        assert!(nest.is_depthwise());
        assert_eq!(nest.input_elems(), 32 * 12 * 12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_panics() {
        let _ = LoopNest::new([0, 1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn display_formats() {
        let nest = LoopNest::with_strides([1, 2, 3, 4, 5, 6, 7], 2, 1);
        let s = format!("{nest}");
        assert!(s.contains("N1"));
        assert!(s.contains("/(2,1)"));
        assert_eq!(format!("{}", Dim::K), "K");
    }

    #[test]
    fn intensity_positive() {
        let nest = LoopNest::new([1, 64, 64, 14, 14, 3, 3]);
        assert!(nest.ideal_arithmetic_intensity() > 1.0);
    }
}
